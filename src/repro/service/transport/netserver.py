"""Asyncio TCP front-end of the placement server.

:class:`PlacementTransportServer` puts the in-process
:class:`~repro.service.server.PlacementServer` on a real wire: clients
connect over TCP, speak CRC-framed protocol messages
(:mod:`repro.service.transport.framing`), and the batching/caching/
admission pipeline behind it stays exactly the in-process one.

Concurrency model -- everything placement-server-shaped runs on **one**
event loop thread:

* each accepted connection gets a reader coroutine that decodes frames,
  validates protocol messages, and submits requests;
* one *pump loop* coroutine fires due batches (``PlacementServer.pump``)
  on the server's real clock every ``pump_interval_s`` and routes the
  resulting decisions back to the connections waiting on them;
* replies are written under a per-connection lock with ``drain()``, so a
  slow reader pauses its own writes (asyncio's flow control), never the
  loop.

Robustness rules:

* **backpressure** -- a connection may have at most ``max_inflight``
  undecided requests; past that the reader parks until decisions drain
  (counted as ``merch_transport_backpressure_pauses_total``);
* **idle/read timeout** -- a connection that sends no complete frame for
  ``idle_timeout_s`` is closed;
* **idempotent resubmission** -- decisions are remembered per request id
  in a bounded window, so a client retry (same id, possibly on a new
  connection) is answered from the record instead of re-planned: retries
  can never double-grant DRAM or double-count a request;
* **fault injection** -- an optional
  :class:`~repro.sim.faults.FaultInjector` is consulted per reply at the
  ``wire`` fault point (torn frame, corrupt CRC, stalled peer, mid-reply
  disconnect), so the chaos tests reach the socket layer.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.service.protocol import (
    PlacementDecision,
    ProtocolError,
    decode_request,
    encode_decision,
    encode_error,
)
from repro.service.server import PlacementServer
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME,
    FrameCorrupt,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    decode_health,
    encode_frame,
    encode_health,
    is_health,
    read_frame,
)
from repro.sim.faults import RobustnessLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry
    from repro.replay.recorder import FlightRecorder
    from repro.sim.faults import FaultInjector

__all__ = ["PlacementTransportServer"]


def _frame_error_kind(exc: FrameError) -> str:
    if isinstance(exc, FrameTooLarge):
        return "oversize"
    if isinstance(exc, FrameTruncated):
        return "truncated"
    if isinstance(exc, FrameCorrupt):
        return "corrupt"
    return "corrupt"


class _Connection:
    """Per-connection state: writer, in-flight window, write lock."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        self.inflight = 0
        self.closed = False
        self.window_open = asyncio.Event()
        self.window_open.set()
        self.lock = asyncio.Lock()


class PlacementTransportServer:
    """TCP transport over a :class:`PlacementServer` (one loop thread)."""

    def __init__(
        self,
        server: PlacementServer,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        max_inflight: int = 64,
        idle_timeout_s: float = 30.0,
        pump_interval_s: float = 0.001,
        completed_window: int = 4096,
        evicted_window: int = 65536,
        telemetry: "Telemetry | None" = None,
        faults: "FaultInjector | None" = None,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if idle_timeout_s <= 0:
            raise ValueError("idle_timeout_s must be positive")
        if pump_interval_s <= 0:
            raise ValueError("pump_interval_s must be positive")
        if completed_window < 1:
            raise ValueError("completed_window must be >= 1")
        if evicted_window < 1:
            raise ValueError("evicted_window must be >= 1")
        self.server = server
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.max_inflight = max_inflight
        self.idle_timeout_s = idle_timeout_s
        self.pump_interval_s = pump_interval_s
        self.completed_window = completed_window
        self.evicted_window = evicted_window
        self.telemetry = telemetry
        self.faults = faults
        #: flight recorder for *observational* wire events (wire faults,
        #: resubmissions, teardown swallows).  Defaults to the wrapped
        #: server's recorder so one tap captures both layers; the command
        #: journal itself is written by the server.
        self.recorder = recorder if recorder is not None else server.recorder
        self.log = RobustnessLog()
        #: request id -> connections waiting on its decision
        self._waiters: dict[str, list[_Connection]] = {}
        #: bounded record of decided requests (idempotent resubmission)
        self._completed: "OrderedDict[str, PlacementDecision]" = OrderedDict()
        #: ids whose decision record was evicted from the bounded window --
        #: kept (bounded, cheaper: no decision payload) so a late retry of
        #: an evicted id is *detected* and re-planned loudly, not silently
        self._evicted: "OrderedDict[str, None]" = OrderedDict()
        self._conns: set[_Connection] = set()
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._pump_task: asyncio.Task | None = None
        self._running = False
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self.stats: dict[str, int] = {
            "connections": 0,
            "requests": 0,
            "resubmissions": 0,
            "replies": 0,
            "duplicates": 0,
            "frame_errors": 0,
            "protocol_errors": 0,
            "idle_timeouts": 0,
            "backpressure_pauses": 0,
            "health_probes": 0,
            "decided_evictions": 0,
            "evicted_replans": 0,
            "teardown_errors": 0,
        }

    # ------------------------------------------------------------------
    # observability helpers
    # ------------------------------------------------------------------
    def _observe(self, event: str, **payload: object) -> None:
        """Journal an observational wire event (ignored by the replayer,
        but it lets divergence reports account for torn connections,
        injected faults, and retries instead of losing them)."""
        if self.recorder is not None:
            self.recorder.record(event, self.server.clock(), **payload)

    def _teardown_error(self, path: str, exc: BaseException) -> None:
        """A teardown-path exception we deliberately survive: counted and
        journaled at debug level, never silently swallowed."""
        self.stats["teardown_errors"] += 1
        self.log.record(
            "transport.teardown_swallowed",
            self.server.clock(),
            level="debug",
            path=path,
            error_type=type(exc).__name__,
            error=str(exc),
        )
        if self.telemetry is not None:
            self.telemetry.inc(
                "merch_transport_teardown_errors_total", path=path
            )
        self._observe("teardown", path=path, error_type=type(exc).__name__)

    # ------------------------------------------------------------------
    # lifecycle (async core + thread wrapper)
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) -- resolves ``port=0`` to the real one."""
        if self._asyncio_server is None:
            raise RuntimeError("transport server is not started")
        return self._asyncio_server.sockets[0].getsockname()[:2]

    async def start_async(self) -> "PlacementTransportServer":
        if self._running:
            raise RuntimeError("transport server already started")
        self._running = True
        self._asyncio_server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self._pump_task = asyncio.ensure_future(self._pump_loop())
        return self

    async def stop_async(self) -> None:
        self._running = False
        if self._pump_task is not None:
            self._pump_task.cancel()
            try:
                await self._pump_task
            except asyncio.CancelledError as exc:
                # expected cancellation, but journaled: a divergence report
                # must be able to account for a pump loop torn down mid-batch
                self._teardown_error("pump_cancel", exc)
            self._pump_task = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        for conn in list(self._conns):
            await self._close_conn(conn)

    def start(self) -> "PlacementTransportServer":
        """Run the server on a dedicated event-loop thread (for blocking
        callers: tests, the ``transport_load`` experiment, CLIs)."""
        if self._thread is not None:
            raise RuntimeError("transport server already started")
        started = threading.Event()
        failure: list[BaseException] = []

        def _main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                loop.run_until_complete(self.start_async())
            except BaseException as exc:  # surface bind errors to start()
                failure.append(exc)
                started.set()
                loop.close()
                return
            started.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=_main, name="placement-transport", daemon=True
        )
        self._thread.start()
        started.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self

    def stop(self) -> None:
        if self._loop is None or self._thread is None:
            return
        future = asyncio.run_coroutine_threadsafe(self.stop_async(), self._loop)
        future.result(timeout=10.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "PlacementTransportServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Connection(writer)
        self._conns.add(conn)
        self.stats["connections"] += 1
        if self.telemetry is not None:
            self.telemetry.inc("merch_transport_connections_total")
            self.telemetry.set(
                "merch_transport_active_connections", float(len(self._conns))
            )
        try:
            while self._running:
                try:
                    got = await read_frame(
                        reader, self.max_frame, timeout=self.idle_timeout_s
                    )
                except (asyncio.TimeoutError, TimeoutError):
                    self.stats["idle_timeouts"] += 1
                    if self.telemetry is not None:
                        self.telemetry.inc("merch_transport_idle_timeouts_total")
                    break
                except FrameError as exc:
                    # the stream has no trustworthy resync point past a
                    # framing error: report, then drop the connection
                    self.stats["frame_errors"] += 1
                    if self.telemetry is not None:
                        self.telemetry.inc(
                            "merch_transport_frame_errors_total",
                            kind=_frame_error_kind(exc),
                        )
                    await self._send(conn, encode_error(str(exc)), faulted=False)
                    break
                except (ConnectionError, OSError):
                    break
                if got is None:
                    break  # clean EOF
                payload, nbytes = got
                if self.telemetry is not None:
                    self.telemetry.inc(
                        "merch_transport_frames_total", direction="rx"
                    )
                    self.telemetry.inc(
                        "merch_transport_bytes_total", nbytes, direction="rx"
                    )
                await self._handle_message(conn, payload)
        finally:
            await self._close_conn(conn)

    async def _handle_message(self, conn: _Connection, payload: dict) -> None:
        if is_health(payload):
            # liveness probe: echo the nonce straight back, before the
            # request path (measures "is the loop alive", costs no plan).
            # The reply rides the faulted send path on purpose: a wire
            # fault corrupting it reads as a missed heartbeat, which is
            # exactly the failure heartbeats exist to detect.
            self.stats["health_probes"] += 1
            try:
                nonce, _, _ = decode_health(payload)
            except ProtocolError as exc:
                self.stats["protocol_errors"] += 1
                await self._send(conn, encode_error(str(exc)), faulted=False)
                return
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_transport_health_probes_total", result="ok"
                )
            await self._send(conn, encode_health(nonce, reply=True))
            return
        try:
            request = decode_request(payload)
        except ProtocolError as exc:
            # frame-aligned failure: answer it, keep the connection
            self.stats["protocol_errors"] += 1
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_transport_frame_errors_total", kind="protocol"
                )
            rid = payload.get("request_id")
            rid = rid if isinstance(rid, str) else None
            await self._send(conn, encode_error(str(exc), rid), faulted=False)
            return
        self.stats["requests"] += 1
        rid = request.request_id
        done = self._completed.get(rid)
        if done is not None:
            # idempotent resubmission: answer from the record, never re-plan
            self.stats["resubmissions"] += 1
            self._observe("resubmission", request_id=rid, source="completed")
            await self._send_decision(conn, done)
            return
        waiters = self._waiters.get(rid)
        if waiters is not None:
            # in flight already (a retry raced the decision): register
            # interest; the pump loop will fan the one decision out
            self.stats["resubmissions"] += 1
            self._observe("resubmission", request_id=rid, source="inflight")
            if conn not in waiters:
                waiters.append(conn)
                conn.inflight += 1
            return
        if rid in self._evicted:
            # a retry outlived its idempotency record: the decision was
            # evicted from the bounded window, so exactly-once can no
            # longer be answered from memory -- re-plan, but *loudly*
            # (silent re-planning here hid double-plans until PR 6)
            del self._evicted[rid]
            self.stats["evicted_replans"] += 1
            self.log.record(
                "transport.evicted_id_replanned",
                self.server.clock(),
                level="warning",
                request_id=rid,
                completed_window=self.completed_window,
            )
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_transport_decided_evicted_replans_total"
                )
        # bounded in-flight window: park the reader until decisions drain
        if conn.inflight >= self.max_inflight:
            self.stats["backpressure_pauses"] += 1
            if self.telemetry is not None:
                self.telemetry.inc("merch_transport_backpressure_pauses_total")
            while (
                conn.inflight >= self.max_inflight
                and self._running
                and not conn.closed
            ):
                conn.window_open.clear()
                await conn.window_open.wait()
            if conn.closed or not self._running:
                return
        decision = self.server.submit(request)
        if decision is not None:  # shed at admission: answered immediately
            self._remember(rid, decision)
            await self._send_decision(conn, decision)
        else:
            self._waiters[rid] = [conn]
            conn.inflight += 1

    # ------------------------------------------------------------------
    # pump loop: fire due batches, route decisions back
    # ------------------------------------------------------------------
    async def _pump_loop(self) -> None:
        while self._running:
            for decision in self.server.pump():
                self._finish(decision)
            await asyncio.sleep(self.pump_interval_s)

    def _finish(self, decision: PlacementDecision) -> None:
        rid = decision.request_id
        if rid in self._completed:
            # must never happen: one request id decided twice
            self.stats["duplicates"] += 1
        self._remember(rid, decision)
        for conn in self._waiters.pop(rid, []):
            conn.inflight -= 1
            if conn.inflight < self.max_inflight:
                conn.window_open.set()
            if not conn.closed:
                asyncio.ensure_future(self._send_decision(conn, decision))

    def _remember(self, rid: str, decision: PlacementDecision) -> None:
        self._completed[rid] = decision
        self._completed.move_to_end(rid)
        while len(self._completed) > self.completed_window:
            evicted_rid, _ = self._completed.popitem(last=False)
            self.stats["decided_evictions"] += 1
            if self.telemetry is not None:
                self.telemetry.inc("merch_transport_decided_evictions_total")
            self._evicted[evicted_rid] = None
            self._evicted.move_to_end(evicted_rid)
            while len(self._evicted) > self.evicted_window:
                self._evicted.popitem(last=False)

    # ------------------------------------------------------------------
    # reply path (with wire fault injection)
    # ------------------------------------------------------------------
    async def _send_decision(
        self, conn: _Connection, decision: PlacementDecision
    ) -> None:
        await self._send(conn, encode_decision(decision))

    async def _send(
        self, conn: _Connection, message: dict, faulted: bool = True
    ) -> None:
        async with conn.lock:
            if conn.closed:
                return
            action = None
            if faulted and self.faults is not None:
                action = self.faults.wire_fault(self.server.clock())
            if action is not None:
                self._observe(
                    "wire_fault",
                    action=action,
                    request_id=message.get("request_id"),
                )
            if action == "stall":
                await asyncio.sleep(self.faults.config.wire_stall_s)
            elif action == "disconnect":
                await self._close_conn(conn)
                return
            frame = encode_frame(message)
            if action == "corrupt_crc":
                frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
            elif action == "torn_frame":
                frame = frame[: max(1, len(frame) // 2)]
            try:
                conn.writer.write(frame)
                await conn.writer.drain()  # slow-reader write pause
            except (ConnectionError, OSError):
                await self._close_conn(conn)
                return
            if action == "torn_frame":
                await self._close_conn(conn)
                return
            self.stats["replies"] += 1
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_transport_frames_total", direction="tx"
                )
                self.telemetry.inc(
                    "merch_transport_bytes_total", len(frame), direction="tx"
                )

    async def _close_conn(self, conn: _Connection) -> None:
        if conn.closed:
            return
        conn.closed = True
        conn.window_open.set()  # unblock a parked reader
        self._conns.discard(conn)
        if self.telemetry is not None:
            self.telemetry.set(
                "merch_transport_active_connections", float(len(self._conns))
            )
        try:
            conn.writer.close()
            await conn.writer.wait_closed()
        except (ConnectionError, OSError) as exc:
            self._teardown_error("conn_close", exc)
