"""Admission control: bounded queues and load-shedding.

The server's intake is protected the same way the PR-1 guardrails protect
the policy: a small hysteresis state machine plus a typed event log.
When the pending-request queue reaches ``max_queue`` the controller trips
into SATURATED and every new request is *shed* -- answered immediately
with a degrade-to-daemon decision (the exact fallback the misprediction
watchdog uses) instead of being queued or dropped.  The controller
re-admits once the queue drains to ``resume_below``.

Shed is an answer, not a drop: the no-lost-requests invariant ("every
submitted request is eventually decided") is enforced by tests and the
``service_load`` saturation scenario.

Events land in the same :class:`~repro.sim.faults.RobustnessLog` the
guardrails write to (``service.saturated`` / ``service.resumed`` /
``service.shed``), so one log tells the whole degradation story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.sim.faults import RobustnessLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry

__all__ = ["AdmissionConfig", "AdmissionController"]


@dataclass(frozen=True)
class AdmissionConfig:
    """Watermarks of the bounded intake queue."""

    #: queue depth at which the controller trips into SATURATED
    max_queue: int = 64
    #: queue depth at which a saturated controller re-admits
    resume_below: int = 16

    def __post_init__(self) -> None:
        if self.max_queue <= 0:
            raise ValueError("max_queue must be positive")
        if not 0 <= self.resume_below < self.max_queue:
            raise ValueError("resume_below must be in [0, max_queue)")


class AdmissionController:
    """Hysteresis gate in front of the batching scheduler.

    State machine (mirrors the misprediction watchdog's shape)::

        NORMAL --(queue depth >= max_queue)--> SATURATED
        SATURATED --(queue depth <= resume_below)--> NORMAL

    The two-watermark gap prevents flapping at the boundary: once
    overloaded, the server keeps shedding until real headroom exists.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        log: RobustnessLog | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.config = config or AdmissionConfig()
        self.log = log if log is not None else RobustnessLog()
        self.telemetry = telemetry
        self.saturated = False
        self.shed_count = 0
        self.admitted_count = 0

    def admit(self, queue_depth: int, now: float) -> bool:
        """Decide one arrival given the current pending-queue depth."""
        if not self.saturated and queue_depth >= self.config.max_queue:
            self.saturated = True
            self.log.record("service.saturated", now, queue_depth=queue_depth)
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_service_saturation_transitions_total", to="saturated"
                )
        elif self.saturated and queue_depth <= self.config.resume_below:
            self.saturated = False
            self.log.record("service.resumed", now, queue_depth=queue_depth)
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_service_saturation_transitions_total", to="normal"
                )
        if self.saturated:
            self.shed_count += 1
            self.log.record("service.shed", now, queue_depth=queue_depth)
            if self.telemetry is not None:
                self.telemetry.inc("merch_service_shed_total")
            return False
        self.admitted_count += 1
        return True
