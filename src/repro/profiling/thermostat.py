"""Thermostat-style DRAM profiler (Agarwal & Wenisch, ASPLOS'17).

Thermostat samples one 4 KB page out of every 2 MB huge-page region and
scales its observed access count by 512 to estimate the region's activity.
The paper uses it on DRAM only: it is accurate and cheap at tens of GB but
too slow for TB-scale PM (Section 4).  Merchandiser uses it to find *cold*
DRAM pages to demote.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import PAGE_SIZE, make_rng
from repro.sim.pages import PageTable

__all__ = ["ThermostatProfiler", "RegionEstimate"]

#: Pages per 2 MiB huge-page region.
PAGES_PER_REGION: int = (2 * 1024 * 1024) // PAGE_SIZE  # 512


@dataclass(frozen=True)
class RegionEstimate:
    """Estimated per-2MB-region access counts for one object."""

    obj: str
    #: first 4 KB page index of each region
    region_starts: np.ndarray
    #: estimated accesses per region over the interval (scaled x512)
    estimated_accesses: np.ndarray

    def coldest_regions(self, limit: int | None = None) -> np.ndarray:
        order = np.argsort(self.estimated_accesses, kind="stable")
        starts = self.region_starts[order]
        return starts if limit is None else starts[:limit]


class ThermostatProfiler:
    """One-page-in-512 sampling over each object's DRAM-resident span."""

    def __init__(self, seed=None, faults=None) -> None:
        self._rng = make_rng(seed)
        #: optional :class:`~repro.sim.faults.FaultInjector`; Thermostat is
        #: an accessed-bit scan like the PTE profiler, so whole region
        #: estimates can be lost to the same scan faults
        self.faults = faults

    def sample(
        self,
        page_table: PageTable,
        access_rates: dict[str, np.ndarray],
        interval_s: float,
        now: float = 0.0,
    ) -> list[RegionEstimate]:
        """Estimate per-region access counts for every object.

        For each 2 MiB-aligned region of each object, one uniformly chosen
        4 KB page is observed (Poisson-sampled true count) and scaled by the
        region size in pages.
        """
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        out: list[RegionEstimate] = []
        for obj in page_table:
            rates = access_rates.get(obj.name)
            n_regions = -(-obj.n_pages // PAGES_PER_REGION)
            starts = np.arange(n_regions) * PAGES_PER_REGION
            sizes = np.minimum(obj.n_pages - starts, PAGES_PER_REGION)
            probe_offsets = (self._rng.random(n_regions) * sizes).astype(np.int64)
            probes = starts + probe_offsets
            if rates is None:
                counts = np.zeros(n_regions)
            else:
                expected = rates[probes] * interval_s
                counts = self._rng.poisson(np.maximum(expected, 0.0)).astype(np.float64)
            out.append(
                RegionEstimate(
                    obj=obj.name,
                    region_starts=starts,
                    estimated_accesses=counts * sizes,
                )
            )
        if self.faults is not None:
            out = self.faults.corrupt_region_estimates(out, now)
        return out
