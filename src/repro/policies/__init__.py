"""Competing placement-policy backends behind one registry.

Every backend is an engine :class:`~repro.sim.engine.PlacementPolicy` that
works on 2-tier and N-tier topologies alike; the registry
(:mod:`repro.policies.registry`) is what the multitier experiment and the
policy-conformance harness enumerate.
"""

from repro.policies.registry import (
    PolicyBuildContext,
    PolicySpec,
    build_policy,
    register_policy,
    registered_policies,
)
from repro.policies.merchandiser import TieredMerchandiserPolicy
from repro.policies.ltr import LearnedRankingPolicy
from repro.policies.interval import IntervalReconfigPolicy

__all__ = [
    "PolicyBuildContext",
    "PolicySpec",
    "build_policy",
    "register_policy",
    "registered_policies",
    "TieredMerchandiserPolicy",
    "LearnedRankingPolicy",
    "IntervalReconfigPolicy",
]
