"""Critical-path-aware DRAM allocation for task DAGs.

Algorithm 1 balances the *slowest task at the barrier*: grow the longest
task's DRAM share until it dips under the second-longest.  Under a DAG the
quantity that gates completion is not the slowest task but the longest
dependency chain, and the chain's length moves as allocation proceeds --
pouring DRAM into the chain's head only shifts the bottleneck downstream.

The planner therefore generalises Algorithm 1's grow-the-bottleneck loop
from tasks to paths: each round it recomputes the critical path under the
*currently planned* times, then grants one 5 % ratio step to the on-path
task with the best predicted time reduction per DRAM page.  When the
critical path can no longer improve (its tasks are saturated or DRAM-bound)
the remaining capacity goes to the longest still-improvable chains, so no
DRAM is left idle.  Per-task time grids come from the same
:meth:`~repro.core.model.PerformanceModel.ratio_grids` pricing the barrier
planner uses (one stacked model call; the scalar escape hatch applies).

**Barrier fallback, bit-identical.**  When the planned set carries no
dependency edges -- in particular any single topological level of a
level-sequence DAG lowered to barrier regions -- every path is one task,
the critical path *is* the longest task, and the loop would degenerate to
Algorithm 1 modulo tie-breaking.  Rather than rely on that, the planner
detects the edge-free case and calls :func:`~repro.core.planner.greedy_plan`
on the untouched inputs: the plan is the barrier plan, bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.common import PAGE_SIZE, scalar_kernels_enabled
from repro.core.model import PerformanceModel, TaskModelInputs
from repro.core.planner import (
    PlanResult,
    TaskQuota,
    _pages_for,
    _step_levels,
    greedy_plan,
)

__all__ = ["CriticalPathPlan", "critical_path_plan"]


@dataclass(frozen=True)
class CriticalPathPlan:
    """A DAG-aware plan: barrier-comparable quotas plus path predictions.

    ``plan`` carries per-task quotas and own predicted times (comparable to
    barrier plans and to measured task times); ``predicted_critical_path_s``
    is the longest planned chain, the planner's estimate of the gated
    region's duration.
    """

    plan: PlanResult
    #: max over tasks of own predicted time (the barrier-style makespan)
    predicted_wave_s: float
    #: longest dependency chain under the planned times
    predicted_critical_path_s: float
    #: False when the edge-free fallback reproduced the barrier objective
    shifted: bool


def _toposort(deps: Mapping[str, tuple[str, ...]]) -> list[str]:
    indeg = {t: len(ds) for t, ds in deps.items()}
    succs: dict[str, list[str]] = {t: [] for t in deps}
    for t, ds in deps.items():
        for d in ds:
            succs[d].append(t)
    order = sorted(t for t, n in indeg.items() if n == 0)
    frontier = list(order)
    while frontier:
        nxt: list[str] = []
        for t in frontier:
            for s in succs[t]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    nxt.append(s)
        nxt.sort()
        order.extend(nxt)
        frontier = nxt
    if len(order) != len(deps):
        raise ValueError("dependency edges contain a cycle")
    return order


def _chain_lengths(
    order: Sequence[str],
    deps: Mapping[str, tuple[str, ...]],
    succs: Mapping[str, Sequence[str]],
    time_of: Mapping[str, float],
) -> tuple[dict[str, float], dict[str, float], float]:
    """Per task: longest chain *into* it (exclusive) and longest chain
    *from* it (inclusive); plus the overall critical-path length."""
    top: dict[str, float] = {}
    for t in order:
        top[t] = max((top[d] + time_of[d] for d in deps[t]), default=0.0)
    bottom: dict[str, float] = {}
    for t in reversed(order):
        bottom[t] = time_of[t] + max((bottom[s] for s in succs[t]), default=0.0)
    critical = max((top[t] + bottom[t] for t in order), default=0.0)
    return top, bottom, critical


def critical_path_plan(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: "int | Sequence[int]",
    task_bytes: Mapping[str, int],
    deps: Mapping[str, Sequence[str]],
    step: float = 0.05,
    footprints: Mapping[str, Sequence[tuple[str, float, int]]] | None = None,
) -> CriticalPathPlan:
    """Plan DRAM quotas that minimise the DAG's predicted critical path.

    ``dram_capacity_bytes`` may be a per-tier capacity vector (fastest
    first, as in :class:`~repro.sim.memspec.TopologySpec`): the fast-tier
    entry is the budget this planner spends and the slowest tier is the
    unbudgeted backing store, exactly as a scalar budget treats PM.  A
    scalar and a 2-vector ``(scalar, anything)`` therefore plan
    bit-identically.

    ``deps[task_id]`` lists the task's in-region dependencies (edges to
    tasks outside the planned set must be dropped by the caller); missing
    entries count as no dependencies.

    ``footprints[task_id]`` optionally gives ``(object, access_fraction,
    object_pages)`` triples for realization-aware pricing.  Without it a
    ratio step is priced from ``task_bytes`` -- which divides shared
    objects across their sharers, so when sharers are granted *different*
    ratios the plan can nominally buy more pages than DRAM holds and the
    runtime truncates whoever is served last.  With footprints the planner
    simulates per-object resident fractions: a step costs exactly the new
    pages it promotes, shared pages are bought once, and tasks whose
    objects were promoted by another grant get their level upgrades free.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    if not isinstance(dram_capacity_bytes, (int, np.integer)):
        capacities = tuple(int(c) for c in dram_capacity_bytes)
        if not capacities:
            raise ValueError("capacity vector must not be empty")
        if any(c < 0 for c in capacities):
            raise ValueError("capacities must be non-negative")
        dram_capacity_bytes = capacities[0]
    ids = [t.task_id for t in tasks]
    id_set = set(ids)
    dep_of: dict[str, tuple[str, ...]] = {}
    for tid in ids:
        ds = tuple(d for d in deps.get(tid, ()) if d in id_set and d != tid)
        unknown = [d for d in deps.get(tid, ()) if d not in id_set]
        if unknown:
            raise ValueError(
                f"dependencies of {tid!r} reference unplanned tasks: {unknown}"
            )
        dep_of[tid] = ds

    if not any(dep_of.values()):
        # no edges: every chain is one task and the objective degenerates
        # to Algorithm 1; call it verbatim so the fallback is bit-identical
        plan = greedy_plan(tasks, model, dram_capacity_bytes, task_bytes, step)
        return CriticalPathPlan(
            plan=plan,
            predicted_wave_s=plan.predicted_makespan_s,
            predicted_critical_path_s=plan.predicted_makespan_s,
            shifted=False,
        )

    order = _toposort(dep_of)
    succs: dict[str, list[str]] = {t: [] for t in ids}
    for t, ds in dep_of.items():
        for d in ds:
            succs[d].append(t)

    levels = _step_levels(step)
    if scalar_kernels_enabled():
        grid = {t.task_id: model.ratio_grid(t, levels) for t in tasks}
    else:
        grid = model.ratio_grids(tasks, levels)
    task_pages = {
        tid: max(1, int(np.ceil(task_bytes[tid] / PAGE_SIZE))) for tid in ids
    }
    capacity_pages = dram_capacity_bytes // PAGE_SIZE

    idx = {tid: 0 for tid in ids}
    pages = {tid: _pages_for(task_pages[tid], levels[0]) for tid in ids}
    last = len(levels) - 1
    rounds = 0

    fp: dict[str, tuple[tuple[str, float, int], ...]] = {}
    if footprints is not None:
        # merge duplicate objects within a footprint (a tile read as both
        # panels of one update) and order each task's objects by per-page
        # benefit, mirroring how the promotion queue spends pages
        for tid in ids:
            merged: dict[str, tuple[float, int]] = {}
            for obj, frac, n_pages in footprints.get(tid, ()):  # noqa: B909
                prev = merged.get(obj)
                merged[obj] = (
                    (prev[0] + frac, n_pages) if prev else (frac, n_pages)
                )
            fp[tid] = tuple(
                sorted(
                    ((o, f, p) for o, (f, p) in merged.items()),
                    key=lambda e: (-e[1] / max(e[2], 1), e[0]),
                )
            )
        res_frac: dict[str, float] = {}
        obj_pages: dict[str, int] = {}
        for entries in fp.values():
            for obj, _, n_pages in entries:
                obj_pages[obj] = n_pages
                res_frac.setdefault(obj, 0.0)
        pages_used = 0.0
    else:
        pages_used = float(sum(pages.values()))

    def realized_r(tid: str) -> float:
        return min(
            1.0, sum(f * res_frac[o] for o, f, _ in fp[tid])
        )

    def promo_sim(tid: str, target: float, commit: bool) -> float:
        """Pages needed to raise ``tid``'s realized ratio to ``target``
        (``inf`` when its objects cannot get it there)."""
        need = target - realized_r(tid)
        if need <= 1e-12:
            return 0.0
        cost = 0.0
        moves: list[tuple[str, float]] = []
        for obj, frac, n_pages in fp[tid]:
            if frac <= 0.0:
                continue
            avail = 1.0 - res_frac[obj]
            if avail <= 0.0:
                continue
            take = min(avail, need / frac)
            cost += take * n_pages
            moves.append((obj, take))
            need -= take * frac
            if need <= 1e-12:
                break
        if need > 1e-12:
            return float("inf")
        if commit:
            for obj, take in moves:
                res_frac[obj] += take
        return cost

    def free_upgrades() -> None:
        # grants raise shared objects' residency, so other tasks may now sit
        # above their granted level at zero cost: advance them
        for tid in ids:
            r = realized_r(tid)
            while idx[tid] < last and r >= levels[idx[tid] + 1] - 1e-12:
                idx[tid] += 1
                pages[tid] = _pages_for(task_pages[tid], levels[idx[tid]])

    def step_cost(tid: str) -> float:
        if footprints is not None:
            return promo_sim(tid, float(levels[idx[tid] + 1]), commit=False)
        return float(
            _pages_for(task_pages[tid], levels[idx[tid] + 1]) - pages[tid]
        )

    def step_gain(tid: str) -> float:
        g = grid[tid]
        return float(g[idx[tid]] - g[idx[tid] + 1])

    while True:
        time_of = {tid: float(grid[tid][idx[tid]]) for tid in ids}
        top, bottom, critical = _chain_lengths(order, dep_of, succs, time_of)
        steppable = [
            tid
            for tid in ids
            if idx[tid] < last
            and pages_used + step_cost(tid) <= capacity_pages
            and step_gain(tid) > 0.0
        ]
        if not steppable:
            break
        on_path = [
            tid
            for tid in steppable
            if top[tid] + bottom[tid] >= critical * (1.0 - 1e-12)
        ]
        if on_path:
            # grow the path bottleneck: best time reduction per DRAM page
            tid = min(
                on_path,
                key=lambda t: (-step_gain(t) / max(step_cost(t), 1), t),
            )
        else:
            # critical path cannot improve: spend the remainder on the
            # longest still-improvable chain instead of idling DRAM
            tid = min(
                steppable,
                key=lambda t: (
                    -(top[t] + bottom[t]),
                    -step_gain(t) / max(step_cost(t), 1),
                    t,
                ),
            )
        if footprints is not None:
            pages_used += promo_sim(tid, float(levels[idx[tid] + 1]), commit=True)
            idx[tid] += 1
            pages[tid] = _pages_for(task_pages[tid], levels[idx[tid]])
            free_upgrades()
        else:
            pages_used += step_cost(tid)
            idx[tid] += 1
            pages[tid] = _pages_for(task_pages[tid], levels[idx[tid]])
        rounds += 1

    time_of = {tid: float(grid[tid][idx[tid]]) for tid in ids}
    _, _, critical = _chain_lengths(order, dep_of, succs, time_of)
    quotas = tuple(
        TaskQuota(
            task_id=t.task_id,
            dram_accesses=float(levels[idx[t.task_id]]) * t.total_accesses,
            r_dram=float(levels[idx[t.task_id]]),
            dram_pages=pages[t.task_id],
            predicted_time_s=time_of[t.task_id],
        )
        for t in tasks
    )
    wave = max(time_of.values())
    plan = PlanResult(
        quotas=quotas,
        predicted_makespan_s=wave,
        dram_pages_used=int(min(pages_used, capacity_pages)),
        rounds=rounds,
    )
    return CriticalPathPlan(
        plan=plan,
        predicted_wave_s=wave,
        predicted_critical_path_s=critical,
        shifted=True,
    )
