"""Every script in examples/ must run end to end.

The examples are the documentation users actually execute; a refactor that
breaks one silently rots the front door.  Each script is run as a real
subprocess (fresh interpreter, ``PYTHONPATH=src``) exactly as the README
tells users to run it.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent
EXAMPLES = sorted((ROOT / "examples").glob("*.py"))


def test_examples_directory_is_populated():
    assert len(EXAMPLES) >= 6


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script: Path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    proc = subprocess.run(
        [sys.executable, str(script)],
        cwd=ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, (
        f"{script.name} exited {proc.returncode}\n"
        f"stdout:\n{proc.stdout[-2000:]}\nstderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script.name} produced no output"
