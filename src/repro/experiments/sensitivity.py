"""DRAM-capacity sensitivity sweep (our extension).

The paper evaluates at one DRAM:footprint ratio per application.  This
sweep varies the DRAM capacity around the paper's 192 GB point and maps
where Merchandiser's advantage over the task-agnostic baseline lives:

* with almost no DRAM there is nothing to allocate -- everyone is slow;
* with DRAM exceeding the footprint there is nothing to ration -- every
  policy converges to DRAM speed;
* the win concentrates in between, where *whose* pages get the scarce fast
  memory decides the barrier's completion time.
"""

from __future__ import annotations

import numpy as np

from repro.apps import SpGEMMApp
from repro.baselines import MemoryOptimizerPolicy, PMOnlyPolicy
from repro.common import GIB
from repro.sim import Engine, MachineModel
from repro.sim.memspec import DEFAULT_SCALE, HMConfig, TierSpec, optane_hm_config
from repro.experiments.common import ExperimentContext, format_table

#: DRAM capacities in paper-scale GB (192 GB is the paper's platform)
CAPACITY_POINTS_GB = (48, 96, 192, 384, 768)


def resized_hm(dram_gb: float) -> HMConfig:
    base = optane_hm_config()
    dram = TierSpec(
        name="dram",
        capacity_bytes=int(dram_gb * GIB * DEFAULT_SCALE),
        seq_read_latency_ns=base.dram.seq_read_latency_ns,
        rand_read_latency_ns=base.dram.rand_read_latency_ns,
        read_bandwidth=base.dram.read_bandwidth,
        write_bandwidth=base.dram.write_bandwidth,
    )
    return HMConfig(dram=dram, pm=base.pm)


def run(ctx: ExperimentContext) -> dict[str, object]:
    app = SpGEMMApp.paper_scale(seed=ctx.seed)
    wl = app.build_workload(seed=ctx.seed)
    machine = MachineModel()
    rows = []
    curve: dict[float, dict[str, float]] = {}
    for gb in CAPACITY_POINTS_GB:
        hm = resized_hm(gb)
        engine = Engine(machine, hm)
        t_pm = engine.run(wl, PMOnlyPolicy(), seed=ctx.seed + 1).total_time_s
        t_mo = engine.run(
            wl, MemoryOptimizerPolicy(seed=ctx.seed + 7), seed=ctx.seed + 1
        ).total_time_s
        policy = ctx.system.policy(app.binding(wl), seed=ctx.seed + 5)
        t_m = engine.run(wl, policy, seed=ctx.seed + 1).total_time_s
        curve[gb] = {
            "pm_only_s": t_pm,
            "memory_optimizer_s": t_mo,
            "merchandiser_s": t_m,
            "merch_over_mo": t_mo / t_m,
        }
        rows.append(
            [
                f"{gb} GB",
                f"{gb / 429.3:.2f}x",
                t_pm / t_m,
                t_mo / t_m,
            ]
        )
    print("DRAM-capacity sensitivity (SpGEMM; paper point = 192 GB)")
    print(
        format_table(
            ["DRAM", "of footprint", "merch vs pm-only", "merch vs mem-optimizer"],
            rows,
        )
    )
    gains = [curve[gb]["merch_over_mo"] for gb in CAPACITY_POINTS_GB]
    peak = CAPACITY_POINTS_GB[int(np.argmax(gains))]
    print(f"  advantage peaks at {peak} GB (scarce-but-meaningful fast memory)")
    return curve
