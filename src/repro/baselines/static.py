"""Static single-tier placements."""

from __future__ import annotations

import numpy as np

from repro.sim.engine import EngineContext, PlacementPolicy

__all__ = ["PMOnlyPolicy", "DRAMOnlyPolicy", "DRAMGreedyPolicy"]


class PMOnlyPolicy(PlacementPolicy):
    """Everything stays in PM -- the paper's normalisation baseline."""

    name = "pm-only"

    def on_workload_start(self, ctx: EngineContext) -> None:
        for obj in ctx.page_table:
            obj.set_residency(0.0)


class DRAMOnlyPolicy(PlacementPolicy):
    """Everything in DRAM -- the performance upper bound.

    Only valid when the workload's footprint fits in DRAM; raises otherwise
    (on real hardware the allocation would simply fail).
    """

    name = "dram-only"

    def on_workload_start(self, ctx: EngineContext) -> None:
        ctx.page_table.place_all(1.0)


class DRAMGreedyPolicy(PlacementPolicy):
    """All-DRAM-greedy: allocate into DRAM first-fit until it is full.

    What a DRAM-preferred allocator (e.g. first-touch on the fast node)
    gives a footprint that exceeds DRAM: objects land in declaration order,
    page by page, and everything past capacity spills to PM.  Blind to both
    access hotness and cross-task balance.
    """

    name = "dram-greedy"

    def on_workload_start(self, ctx: EngineContext) -> None:
        table = ctx.page_table
        for obj in table:
            obj.set_residency(0.0)
        for obj in table:
            free = table.dram_free_pages()
            if free <= 0:
                break
            n = min(int(free), len(obj.residency))
            obj.residency[np.arange(n)] = 1.0
