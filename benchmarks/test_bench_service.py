"""Microbenchmarks for the placement-service hot paths.

Quantifies the two speedups the ``service_load`` experiment's acceptance
rests on, against the real trained model:

* **cache hit vs miss** -- a memoized f(.) evaluation
  (:class:`~repro.service.cache.CachedCorrelation`) vs walking the GBR;
* **batched vs singleton planning** -- one stacked model call pricing a
  whole batch of tasks (`PerformanceModel.ratio_grids`) vs one model
  call per task.
"""

import numpy as np
import pytest

from repro.apps.codesamples import generate_corpus
from repro.common import make_rng, spawn_rng
from repro.core.model import TaskModelInputs
from repro.service import (
    CachedCorrelation,
    PlacementRequest,
    PlacementServer,
    PredictionCache,
    TaskSpec,
)
from repro.sim import MachineModel, optane_hm_config
from repro.sim.counters import collect_pmcs

N_TASKS = 24


@pytest.fixture(scope="module")
def levels():
    return np.round(np.arange(0.0, 1.025, 0.05), 10)


@pytest.fixture(scope="module")
def tasks(ctx):
    machine, hm = MachineModel(), optane_hm_config()
    samples = generate_corpus(N_TASKS, seed=7)
    rng = make_rng(11)
    out = []
    for j, sample in enumerate(samples):
        fp = sample.footprint(1.0)
        t_dram, t_pm = machine.endpoint_times(fp, hm)
        out.append(
            TaskModelInputs(
                task_id=f"t{j}",
                t_pm_only=t_pm,
                t_dram_only=t_dram,
                total_accesses=fp.total_accesses,
                pmcs=collect_pmcs(fp, machine, hm, rng=spawn_rng(rng)),
            )
        )
    return out


# ----------------------------------------------------------------------
# prediction cache: hit vs miss
# ----------------------------------------------------------------------
def test_bench_predict_batch_miss(benchmark, ctx, tasks, levels):
    """The uncached path: one full GBR walk per call."""
    f = ctx.system.correlation
    pmcs = tasks[0].pmcs
    benchmark(f.predict_batch, pmcs, levels)


def test_bench_predict_batch_cache_hit(benchmark, ctx, tasks, levels):
    """The memoized path: one dict lookup plus an array copy."""
    cached = CachedCorrelation(ctx.system.correlation, PredictionCache(256))
    pmcs = tasks[0].pmcs
    cached.predict_batch(pmcs, levels)  # warm
    result = benchmark(cached.predict_batch, pmcs, levels)
    assert np.allclose(result, ctx.system.correlation.predict_batch(pmcs, levels))


# ----------------------------------------------------------------------
# planning: batched (stacked) vs singleton model evaluation
# ----------------------------------------------------------------------
def test_bench_grids_singleton(benchmark, ctx, tasks, levels):
    """One model call per task (what per-request planning pays)."""
    model = ctx.system.performance_model

    def per_task():
        return {t.task_id: model.ratio_grid(t, levels) for t in tasks}

    benchmark(per_task)


def test_bench_grids_batched(benchmark, ctx, tasks, levels):
    """One stacked call for the whole batch (what the scheduler pays)."""
    model = ctx.system.performance_model
    grids = benchmark(model.ratio_grids, tasks, levels)
    reference = {t.task_id: model.ratio_grid(t, levels) for t in tasks}
    assert all(np.array_equal(grids[k], reference[k]) for k in reference)


# ----------------------------------------------------------------------
# server end to end: planned batch vs cached batch
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def request_shape(tasks):
    machine, hm = MachineModel(), optane_hm_config()
    samples = generate_corpus(4, seed=13)
    specs = []
    for j, sample in enumerate(samples):
        fp = sample.footprint(1.0)
        t_dram, t_pm = machine.endpoint_times(fp, hm)
        specs.append(
            TaskSpec(
                task_id=f"task{j}",
                t_pm_only=t_pm,
                t_dram_only=t_dram,
                total_accesses=fp.total_accesses,
                pmcs=collect_pmcs(fp, machine, hm, rng=make_rng(17)),
                size_bytes=fp.total_bytes,
            )
        )
    return tuple(specs)


def test_bench_server_planned(benchmark, ctx, request_shape):
    hm = optane_hm_config()
    server = PlacementServer(
        ctx.system.performance_model, hm.dram.capacity_bytes, window_s=0.0
    )
    counter = iter(range(10**9))

    def fresh():
        return server.request(
            PlacementRequest(
                request_id=f"r{next(counter)}", tenant="bench", tasks=request_shape
            )
        )

    assert benchmark(fresh).status == "planned"


def test_bench_server_cached(benchmark, ctx, request_shape):
    hm = optane_hm_config()
    server = PlacementServer(
        ctx.system.performance_model,
        hm.dram.capacity_bytes,
        window_s=0.0,
        cache=PredictionCache(64),
    )
    counter = iter(range(10**9))

    def ask():
        return server.request(
            PlacementRequest(
                request_id=f"r{next(counter)}", tenant="bench", tasks=request_shape
            )
        )

    ask()  # warm the decision cache
    assert benchmark(ask).status == "cached"
