"""Lease-based arbitration of the global DRAM quota across shards.

One :class:`QuotaCoordinator` owns the cluster's *global* DRAM page budget.
Shards never hold quota outright -- they hold **TTL leases** on slices of
it, sized from their observed demand telemetry and renewed every heartbeat
interval.  The rules, in invariant order:

1. **never over-commit** -- at any instant, the sum of live lease pages is
   ``<= global_quota_pages``.  Grants come only from the unleased
   remainder; a renewal may grow a lease only by what is free *after* the
   coordinator reclaims expired leases;
2. **a dead shard can never strand quota** -- a lease that is not renewed
   within ``ttl_s`` expires and its pages return to the pool, so a killed
   shard's slice is re-grantable after one TTL, promotion or not;
3. **stale renewals lose** -- every lease carries a monotonically
   increasing ``lease_id``; a renewal quoting an id the coordinator no
   longer holds (expired and possibly re-granted: the lease-expiry race)
   is rejected with :class:`LeaseRejected` instead of resurrecting the old
   lease, and the shard must re-acquire from the pool.

Shards mirror rule 2 locally: a shard whose lease has passed its expiry
(e.g. renewals lost to a router/coordinator partition) plans with **zero**
capacity until a renewal lands -- conservative, degraded, and incapable of
over-committing pages the coordinator may have re-granted elsewhere.

The coordinator is synchronous and clock-free (every method takes ``now``)
like the batching scheduler; the router layers heartbeat-paced renewal on
top and the chaos soak drives it on a virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.sim.faults import RobustnessLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry

__all__ = ["QuotaLease", "QuotaCoordinator", "LeaseRejected"]


class LeaseRejected(RuntimeError):
    """The coordinator refused a lease operation (stale id, unknown shard)."""


@dataclass(frozen=True)
class QuotaLease:
    """One shard's live slice of the global DRAM budget."""

    lease_id: int
    shard_id: str
    pages: int
    granted_s: float
    expires_s: float

    def live(self, now: float) -> bool:
        return now <= self.expires_s


class QuotaCoordinator:
    """TTL-leased slices of one global DRAM page budget."""

    def __init__(
        self,
        global_quota_pages: int,
        ttl_s: float = 1.0,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if global_quota_pages < 0:
            raise ValueError("global_quota_pages must be >= 0")
        if ttl_s <= 0:
            raise ValueError("ttl_s must be positive")
        self.global_quota_pages = global_quota_pages
        self.ttl_s = ttl_s
        self.telemetry = telemetry
        self.log = RobustnessLog()
        self._leases: dict[str, QuotaLease] = {}
        self._next_lease_id = 0
        #: lease operations by outcome (asserted on by the chaos soak)
        self.stats: dict[str, int] = {
            "granted": 0,
            "renewed": 0,
            "rejected": 0,
            "expired": 0,
            "released": 0,
        }

    # ------------------------------------------------------------------
    # accounting (the soak asserts these every tick)
    # ------------------------------------------------------------------
    def leases(self, now: float) -> dict[str, QuotaLease]:
        """Live leases by shard (expired ones excluded but not reclaimed)."""
        return {s: l for s, l in self._leases.items() if l.live(now)}

    def granted_pages(self, now: float) -> int:
        """Sum of live lease pages -- must never exceed the global quota."""
        return sum(l.pages for l in self._leases.values() if l.live(now))

    def available_pages(self, now: float) -> int:
        """Unleased remainder of the global budget at ``now``.

        Pages of *expired but not yet reclaimed* leases do not count as
        available: reclamation is explicit (:meth:`expire`), so the window
        between expiry and reclamation can only under-grant, never double-
        grant.
        """
        held = sum(l.pages for l in self._leases.values())
        return max(self.global_quota_pages - held, 0)

    # ------------------------------------------------------------------
    # lease lifecycle
    # ------------------------------------------------------------------
    def expire(self, now: float) -> list[QuotaLease]:
        """Reclaim every lease past its TTL; returns the reclaimed ones."""
        dead = [l for l in self._leases.values() if not l.live(now)]
        for lease in dead:
            del self._leases[lease.shard_id]
            self.stats["expired"] += 1
            self.log.record(
                "cluster.lease_expired",
                now,
                shard=lease.shard_id,
                lease_id=lease.lease_id,
                pages=lease.pages,
            )
            self._count("expired")
        if dead:
            self._gauge(now)
        return dead

    def acquire(
        self, shard_id: str, demand_pages: int, now: float
    ) -> QuotaLease:
        """Grant ``shard_id`` a fresh lease of up to ``demand_pages``.

        An existing lease for the shard (e.g. a pre-promotion incarnation
        that never expired) is replaced, its pages returning to the pool
        first -- one shard, one lease, always.
        """
        if demand_pages < 0:
            raise ValueError("demand_pages must be >= 0")
        self.expire(now)
        old = self._leases.pop(shard_id, None)
        if old is not None:
            self.stats["released"] += 1
            self._count("released")
        grant = min(demand_pages, self.available_pages(now))
        lease = QuotaLease(
            lease_id=self._next_lease_id,
            shard_id=shard_id,
            pages=grant,
            granted_s=now,
            expires_s=now + self.ttl_s,
        )
        self._next_lease_id += 1
        self._leases[shard_id] = lease
        self.stats["granted"] += 1
        self.log.record(
            "cluster.lease_granted",
            now,
            shard=shard_id,
            lease_id=lease.lease_id,
            pages=grant,
            demand=demand_pages,
        )
        self._count("granted")
        self._gauge(now)
        return lease

    def renew(
        self, lease: QuotaLease, demand_pages: int, now: float
    ) -> QuotaLease:
        """Extend ``lease`` and resize it toward ``demand_pages``.

        Shrinking always succeeds (pages return to the pool); growing is
        capped by what is free.  Renewing a lease the coordinator no longer
        holds under the same id raises :class:`LeaseRejected` -- the
        expired-and-reissued race must not resurrect stale quota.
        """
        if demand_pages < 0:
            raise ValueError("demand_pages must be >= 0")
        self.expire(now)
        current = self._leases.get(lease.shard_id)
        if current is None or current.lease_id != lease.lease_id:
            self.stats["rejected"] += 1
            self.log.record(
                "cluster.lease_renewal_rejected",
                now,
                shard=lease.shard_id,
                lease_id=lease.lease_id,
                held_id=current.lease_id if current is not None else -1,
            )
            self._count("rejected")
            raise LeaseRejected(
                f"lease {lease.lease_id} of shard {lease.shard_id!r} is no "
                f"longer held (expired or replaced); re-acquire"
            )
        headroom = self.available_pages(now)
        pages = min(demand_pages, current.pages + headroom)
        renewed = replace(
            current, pages=pages, granted_s=now, expires_s=now + self.ttl_s
        )
        self._leases[lease.shard_id] = renewed
        self.stats["renewed"] += 1
        self.log.record(
            "cluster.lease_renewed",
            now,
            shard=lease.shard_id,
            lease_id=renewed.lease_id,
            pages=pages,
            demand=demand_pages,
        )
        self._count("renewed")
        self._gauge(now)
        return renewed

    def release(self, lease: QuotaLease, now: float) -> bool:
        """Voluntarily return a lease (clean shard shutdown)."""
        current = self._leases.get(lease.shard_id)
        if current is None or current.lease_id != lease.lease_id:
            return False
        del self._leases[lease.shard_id]
        self.stats["released"] += 1
        self.log.record(
            "cluster.lease_released",
            now,
            shard=lease.shard_id,
            lease_id=lease.lease_id,
            pages=lease.pages,
        )
        self._count("released")
        self._gauge(now)
        return True

    # ------------------------------------------------------------------
    def _count(self, event: str) -> None:
        if self.telemetry is not None:
            self.telemetry.inc("merch_cluster_lease_events_total", event=event)

    def _gauge(self, now: float) -> None:
        if self.telemetry is not None:
            self.telemetry.set(
                "merch_cluster_leased_pages", float(self.granted_pages(now))
            )
