"""Load-balance-aware DRAM allocation (Section 6, Algorithm 1).

Deciding how many of each task's accesses should be served from DRAM is a
knapsack-style NP-hard problem (DRAM capacity = knapsack weight, pages =
items, predicted speedup = value).  The paper's greedy heuristic repeatedly
takes the task with the longest *predicted* execution time and grows its
DRAM accesses in 5 % steps until it dips under the second-longest task,
stopping when DRAM is exhausted.

Pages are mapped from accesses under Algorithm 1's stated assumption that a
task's accesses are evenly distributed over its pages:
``pages(DRAM_Acc_i) = DRAM_Acc_i / Total_Acc_i * task_pages_i``.

For the ablation study we also implement the makespan-optimal allocation
under the same model and 5 % discretisation (:func:`optimal_quotas`, by
bisection on the makespan), so the greedy's gap to optimum is measurable.

Each planner has two implementations that produce bit-identical plans
(PERFORMANCE.md documents the float-ordering rules; ``tests/test_kernels.py``
enforces identity): an array-native kernel whose per-round argmax /
second-max / pages-used updates are numpy reductions over flat task arrays,
and a dict-based scalar reference selected by the ``MERCH_SCALAR_KERNELS``
escape hatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.common import PAGE_SIZE, scalar_kernels_enabled
from repro.core.model import (
    PerformanceModel,
    TaskModelInputs,
    TieredPerformanceModel,
    TieredTaskInputs,
)

__all__ = [
    "TaskQuota",
    "PlanResult",
    "TieredTaskQuota",
    "TieredPlanResult",
    "greedy_plan",
    "tiered_greedy_plan",
    "optimal_quotas",
    "throughput_plan",
]


@dataclass(frozen=True)
class TaskQuota:
    """Planner output for one task."""

    task_id: str
    dram_accesses: float
    r_dram: float
    dram_pages: int
    predicted_time_s: float


@dataclass(frozen=True)
class PlanResult:
    """Planner output for a region's task set."""

    quotas: tuple[TaskQuota, ...]
    predicted_makespan_s: float
    dram_pages_used: int
    rounds: int

    def quota(self, task_id: str) -> TaskQuota:
        for q in self.quotas:
            if q.task_id == task_id:
                return q
        raise KeyError(task_id)

    def r_by_task(self) -> dict[str, float]:
        return {q.task_id: q.r_dram for q in self.quotas}

    def to_jsonable(self) -> dict:
        return {
            "predicted_makespan_s": self.predicted_makespan_s,
            "dram_pages_used": self.dram_pages_used,
            "rounds": self.rounds,
            "quotas": [
                {
                    "task_id": q.task_id,
                    "dram_accesses": q.dram_accesses,
                    "r_dram": q.r_dram,
                    "dram_pages": q.dram_pages,
                    "predicted_time_s": q.predicted_time_s,
                }
                for q in self.quotas
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "PlanResult":
        return cls(
            quotas=tuple(TaskQuota(**q) for q in payload["quotas"]),
            predicted_makespan_s=payload["predicted_makespan_s"],
            dram_pages_used=payload["dram_pages_used"],
            rounds=payload["rounds"],
        )


def _pages_for(task_pages: int, r: float) -> int:
    """MAP_TO_PAGES under the even-distribution assumption."""
    return int(np.ceil(task_pages * min(max(r, 0.0), 1.0)))


def _step_levels(step: float) -> np.ndarray:
    levels = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
    levels[-1] = min(levels[-1], 1.0)
    return levels


def _task_pages_map(
    tasks: Sequence[TaskModelInputs], task_bytes: Mapping[str, int]
) -> dict[str, int]:
    return {
        t.task_id: max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE)))
        for t in tasks
    }


def greedy_plan(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float = 0.05,
    grids: Mapping[str, "np.ndarray"] | None = None,
) -> PlanResult:
    """Algorithm 1.

    ``task_bytes[task_id]`` is the total size of the task's data objects
    (what MAP_TO_PAGES converts access quotas into).  Beyond the paper's
    pseudocode, two termination details are made explicit: a task saturated
    at 100 % DRAM accesses is excluded from further rounds, and the final
    allocation is clamped to capacity.

    ``grids`` may carry precomputed per-task predicted-time grids over this
    step's ratio levels (``model.ratio_grids``); the placement service uses
    it to price a whole request batch with one stacked model call.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")

    # precompute every task's predicted time on the 5% ratio grid
    # (Algorithm 1 only ever visits grid points): the kernel path prices
    # the whole task set with ONE stacked model call, the scalar path with
    # one stacked call per task.  Both constructions are bit-identical
    # (the batching contract, tests/test_kernels.py), so the planners
    # still agree bit for bit.
    levels = _step_levels(step)
    use_scalar = scalar_kernels_enabled()
    if grids is None:
        if use_scalar:
            grid = {t.task_id: model.ratio_grid(t, levels) for t in tasks}
        else:
            grid = model.ratio_grids(tasks, levels)
    else:
        grid = {t.task_id: grids[t.task_id] for t in tasks}
        if any(len(g) != len(levels) for g in grid.values()):
            raise ValueError("precomputed grids do not match the step grid")

    if use_scalar:
        return _greedy_plan_scalar(
            tasks, dram_capacity_bytes, task_bytes, step, levels, grid
        )
    return _greedy_plan_kernel(
        tasks, dram_capacity_bytes, task_bytes, step, levels, grid
    )


def _greedy_plan_scalar(
    tasks: Sequence[TaskModelInputs],
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float,
    levels: np.ndarray,
    grid: Mapping[str, np.ndarray],
) -> PlanResult:
    """Reference dict-based Algorithm 1 (the pre-kernel implementation)."""
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    task_pages = _task_pages_map(tasks, task_bytes)
    by_id = {t.task_id: t for t in tasks}

    def level_index(value: float) -> int:
        return int(np.clip(round(value / step), 0, len(levels) - 1))

    r: dict[str, float] = {t.task_id: 0.0 for t in tasks}
    d_pred: dict[str, float] = {t.task_id: t.t_pm_only for t in tasks}
    saturated: set[str] = set()
    rounds = 0

    def pages_used() -> int:
        return sum(_pages_for(task_pages[tid], r[tid]) for tid in r)

    while True:
        rounds += 1
        candidates = [tid for tid in r if tid not in saturated]
        if not candidates:
            break
        longest = max(candidates, key=lambda tid: d_pred[tid])
        others = [d_pred[tid] for tid in r if tid != longest]
        second_t = max(others) if others else 0.0

        r_i = r[longest]
        while True:
            r_i = min(1.0, r_i + step)
            d_pred[longest] = float(grid[longest][level_index(r_i)])
            if d_pred[longest] <= second_t or r_i >= 1.0:
                break
        r[longest] = r_i
        if r_i >= 1.0:
            saturated.add(longest)
        if pages_used() >= capacity_pages:
            break

    # clamp the final overshoot back under capacity (shrink the last-grown
    # task until the plan fits), keeping quotas on the step grid so the
    # reported predictions stay consistent with the allocations
    overshoot = pages_used() - capacity_pages
    if overshoot > 0:
        order = sorted(r, key=lambda tid: r[tid], reverse=True)
        for tid in order:
            if overshoot <= 0:
                break
            # flooring to the step grid then re-ceiling the pages can land
            # exactly one page back over capacity, so keep shrinking this
            # task until its contribution fits (or it reaches zero)
            while overshoot > 0 and r[tid] > 0.0:
                removable = _pages_for(task_pages[tid], r[tid])
                shrink_pages = min(removable, overshoot)
                shrunk = max(0.0, r[tid] - shrink_pages / task_pages[tid])
                new_r = float(np.floor(shrunk / step) * step)
                if new_r >= r[tid]:  # force at least one grid step down
                    new_r = max(0.0, float((round(r[tid] / step) - 1) * step))
                r[tid] = new_r
                d_pred[tid] = float(grid[tid][level_index(r[tid])])
                overshoot = pages_used() - capacity_pages

    quotas = tuple(
        TaskQuota(
            task_id=tid,
            dram_accesses=r[tid] * by_id[tid].total_accesses,
            r_dram=r[tid],
            dram_pages=_pages_for(task_pages[tid], r[tid]),
            predicted_time_s=d_pred[tid],
        )
        for tid in r
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=max(d_pred.values()),
        dram_pages_used=pages_used(),
        rounds=rounds,
    )


def _greedy_plan_kernel(
    tasks: Sequence[TaskModelInputs],
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float,
    levels: np.ndarray,
    grid: Mapping[str, np.ndarray],
) -> PlanResult:
    """Array-native Algorithm 1 (PERFORMANCE.md, "greedy_plan").

    Task state lives in flat arrays indexed by input position (the scalar
    path's dict insertion order).  Per round, the longest task is a masked
    ``np.argmax`` (first-max, like Python ``max``), the barrier is a masked
    ``np.max`` (order-independent for float max), and pages-used is one
    ceil/clip/sum reduction.  The inner growth walk stays a tiny Python
    loop because the scalar path accumulates ``r_i`` as a *sequential*
    float sum (``min(1.0, r_i + step)`` is not ``k * step`` in floats) --
    at most ``len(levels)`` iterations, it is never the bottleneck.
    """
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    n = len(tasks)
    ids = [t.task_id for t in tasks]
    pages_arr = np.array(
        [max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE))) for t in tasks],
        dtype=np.int64,
    )
    grid_mat = np.vstack([np.asarray(grid[t.task_id], dtype=np.float64) for t in tasks])
    n_levels = len(levels)

    def level_index(value: float) -> int:
        return int(np.clip(round(value / step), 0, n_levels - 1))

    r_arr = np.zeros(n, dtype=np.float64)
    d_pred = np.array([t.t_pm_only for t in tasks], dtype=np.float64)
    alive = np.ones(n, dtype=bool)  # not saturated
    rounds = 0

    # per-task page counts are maintained incrementally: integer adds are
    # exact, so tracking the sum equals re-summing the whole array (what
    # the scalar path's pages_used() does) at every probe
    page_counts = np.zeros(n, dtype=np.int64)
    used = 0

    def set_quota(i: int, r_new: float) -> None:
        nonlocal used
        pc = _pages_for(int(pages_arr[i]), r_new)
        used += pc - int(page_counts[i])
        page_counts[i] = pc
        r_arr[i] = r_new

    neg_inf = -np.inf
    while True:
        rounds += 1
        if not alive.any():
            break
        # first-max among non-saturated tasks == Python max() over the
        # candidate list in insertion order
        longest = int(np.argmax(np.where(alive, d_pred, neg_inf)))
        if n > 1:
            masked = d_pred.copy()
            masked[longest] = neg_inf
            second_t = float(np.max(masked))
        else:
            second_t = 0.0

        r_i = float(r_arr[longest])
        row = grid_mat[longest]
        while True:
            r_i = min(1.0, r_i + step)
            t_new = float(row[level_index(r_i)])
            if t_new <= second_t or r_i >= 1.0:
                break
        d_pred[longest] = t_new
        set_quota(longest, r_i)
        if r_i >= 1.0:
            alive[longest] = False
        if used >= capacity_pages:
            break

    overshoot = used - capacity_pages
    if overshoot > 0:
        # stable descending order matches sorted(..., reverse=True): ties
        # keep input order under both
        order = np.argsort(-r_arr, kind="stable")
        for i in order:
            if overshoot <= 0:
                break
            i = int(i)
            # flooring to the step grid then re-ceiling the pages can land
            # exactly one page back over capacity, so keep shrinking this
            # task until its contribution fits (or it reaches zero) --
            # same loop as the scalar path, floats and all
            while overshoot > 0 and r_arr[i] > 0.0:
                removable = _pages_for(int(pages_arr[i]), float(r_arr[i]))
                shrink_pages = min(removable, overshoot)
                shrunk = max(0.0, r_arr[i] - shrink_pages / int(pages_arr[i]))
                new_r = float(np.floor(shrunk / step) * step)
                if new_r >= float(r_arr[i]):  # force one grid step down
                    new_r = max(
                        0.0, float((round(float(r_arr[i]) / step) - 1) * step)
                    )
                set_quota(i, new_r)
                d_pred[i] = float(grid_mat[i][level_index(float(r_arr[i]))])
                overshoot = used - capacity_pages

    quotas = tuple(
        TaskQuota(
            task_id=ids[i],
            dram_accesses=float(r_arr[i] * tasks[i].total_accesses),
            r_dram=float(r_arr[i]),
            dram_pages=int(page_counts[i]),
            predicted_time_s=float(d_pred[i]),
        )
        for i in range(n)
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=float(np.max(d_pred)),
        dram_pages_used=used,
        rounds=rounds,
    )


def optimal_quotas(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float = 0.05,
) -> PlanResult:
    """Makespan-optimal allocation at the same 5 % granularity.

    Because each task's predicted time is (weakly) decreasing in its own
    DRAM share and tasks are independent, the minimum feasible makespan can
    be found by bisection: a makespan ``M`` is feasible iff the cheapest
    per-task shares achieving time <= M fit in DRAM together.  This is the
    oracle the greedy heuristic approximates.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    levels = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
    if scalar_kernels_enabled():
        return _optimal_quotas_scalar(
            tasks, model, dram_capacity_bytes, task_bytes, levels
        )
    return _optimal_quotas_kernel(
        tasks, model, dram_capacity_bytes, task_bytes, levels
    )


def _optimal_quotas_scalar(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    levels: np.ndarray,
) -> PlanResult:
    """Reference per-task-dict bisection (the pre-kernel implementation)."""
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    task_pages = _task_pages_map(tasks, task_bytes)
    # precompute predicted time per (task, level); enforce monotonicity so
    # bisection is sound even if the learned f(.) wiggles
    times: dict[str, np.ndarray] = {}
    for t in tasks:
        raw = model.ratio_grid(t, levels)
        times[t.task_id] = np.minimum.accumulate(raw)

    def min_pages_for_makespan(m: float) -> int | None:
        total = 0
        for t in tasks:
            feasible = np.flatnonzero(times[t.task_id] <= m)
            if len(feasible) == 0:
                return None
            total += _pages_for(task_pages[t.task_id], float(levels[feasible[0]]))
        return total

    candidates = sorted({float(v) for arr in times.values() for v in arr})
    lo, hi = 0, len(candidates) - 1
    best: float | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        pages = min_pages_for_makespan(candidates[mid])
        if pages is not None and pages <= capacity_pages:
            best = candidates[mid]
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        best = candidates[-1]

    quotas = []
    used = 0
    for t in tasks:
        feasible = np.flatnonzero(times[t.task_id] <= best)
        level = float(levels[feasible[0]]) if len(feasible) else 1.0
        pages = _pages_for(task_pages[t.task_id], level)
        used += pages
        quotas.append(
            TaskQuota(
                task_id=t.task_id,
                dram_accesses=level * t.total_accesses,
                r_dram=level,
                dram_pages=pages,
                predicted_time_s=float(
                    times[t.task_id][feasible[0]] if len(feasible) else times[t.task_id][-1]
                ),
            )
        )
    return PlanResult(
        quotas=tuple(quotas),
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=used,
        rounds=1,
    )


def _optimal_quotas_kernel(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    levels: np.ndarray,
) -> PlanResult:
    """Array-native bisection (PERFORMANCE.md, "optimal_quotas").

    The (tasks, levels) time matrix replaces the per-task dict; each
    feasibility probe is two reductions (per-row first feasible level via
    ``argmax`` over a boolean matrix, then one pages sum) instead of a
    Python loop over tasks.  ``np.unique`` over the matrix equals
    ``sorted(set(...))`` for float candidates, so bisection visits the
    same makespans and returns the same optimum.
    """
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    n = len(tasks)
    pages_arr = np.array(
        [max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE))) for t in tasks],
        dtype=np.int64,
    )
    g = model.ratio_grids(tasks, levels)  # one stacked model call
    raw = np.vstack([np.asarray(g[t.task_id]) for t in tasks])
    times = np.minimum.accumulate(raw, axis=1)  # (n, L), non-increasing rows

    def min_pages_for_makespan(m: float) -> int | None:
        feasible = times <= m                       # (n, L)
        ok = feasible.any(axis=1)
        if not ok.all():
            return None
        first = np.argmax(feasible, axis=1)          # first True per row
        lv = levels[first]
        return int(np.sum(np.ceil(pages_arr * np.clip(lv, 0.0, 1.0)).astype(np.int64)))

    candidates = np.unique(times)
    lo, hi = 0, len(candidates) - 1
    best: float | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        pages = min_pages_for_makespan(float(candidates[mid]))
        if pages is not None and pages <= capacity_pages:
            best = float(candidates[mid])
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        best = float(candidates[-1])

    feasible = times <= best
    has = feasible.any(axis=1)
    first = np.argmax(feasible, axis=1)
    level_arr = np.where(has, levels[first], 1.0)
    time_arr = np.where(has, times[np.arange(n), first], times[:, -1])
    page_counts = np.ceil(pages_arr * np.clip(level_arr, 0.0, 1.0)).astype(np.int64)
    quotas = tuple(
        TaskQuota(
            task_id=tasks[i].task_id,
            dram_accesses=float(level_arr[i] * tasks[i].total_accesses),
            r_dram=float(level_arr[i]),
            dram_pages=int(page_counts[i]),
            predicted_time_s=float(time_arr[i]),
        )
        for i in range(n)
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=float(np.max(time_arr)),
        dram_pages_used=int(page_counts.sum()),
        rounds=1,
    )


def throughput_plan(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float = 0.05,
) -> PlanResult:
    """Throughput-greedy knapsack baseline (for the ablation study).

    The natural-but-wrong objective: repeatedly give the next 5% of DRAM
    accesses to whichever task buys the most *total time saved per page*,
    ignoring the barrier.  This is what a task-aware but balance-unaware
    allocator would do -- it showers fast memory on the most
    placement-sensitive tasks even when they are nowhere near the critical
    path.  Comparing its makespan against Algorithm 1's isolates the value
    of the paper's load-balance objective from the value of task awareness.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    levels = _step_levels(step)
    if scalar_kernels_enabled():
        grid = {
            t.task_id: np.minimum.accumulate(model.ratio_grid(t, levels))
            for t in tasks
        }
        return _throughput_plan_scalar(
            tasks, dram_capacity_bytes, task_bytes, levels, grid
        )
    g = model.ratio_grids(tasks, levels)  # one stacked model call
    grid = {tid: np.minimum.accumulate(v) for tid, v in g.items()}
    return _throughput_plan_kernel(
        tasks, dram_capacity_bytes, task_bytes, levels, grid
    )


def _throughput_plan_scalar(
    tasks: Sequence[TaskModelInputs],
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    levels: np.ndarray,
    grid: Mapping[str, np.ndarray],
) -> PlanResult:
    """Reference density-greedy loop (the pre-kernel implementation)."""
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    task_pages = _task_pages_map(tasks, task_bytes)
    by_id = {t.task_id: t for t in tasks}

    level_idx = {t.task_id: 0 for t in tasks}

    def pages_used() -> int:
        return sum(
            _pages_for(task_pages[tid], float(levels[level_idx[tid]]))
            for tid in level_idx
        )

    while True:
        best: tuple[float, str] | None = None
        for tid, k in level_idx.items():
            if k + 1 >= len(levels):
                continue
            saved = float(grid[tid][k] - grid[tid][k + 1])
            extra_pages = _pages_for(task_pages[tid], float(levels[k + 1])) - _pages_for(
                task_pages[tid], float(levels[k])
            )
            density = saved / max(extra_pages, 1)
            if best is None or density > best[0]:
                best = (density, tid)
        if best is None or best[0] <= 0:
            break
        tid = best[1]
        level_idx[tid] += 1
        if pages_used() > capacity_pages:
            level_idx[tid] -= 1
            break

    quotas = tuple(
        TaskQuota(
            task_id=tid,
            dram_accesses=float(levels[k]) * by_id[tid].total_accesses,
            r_dram=float(levels[k]),
            dram_pages=_pages_for(task_pages[tid], float(levels[k])),
            predicted_time_s=float(grid[tid][k]),
        )
        for tid, k in level_idx.items()
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=pages_used(),
        rounds=sum(level_idx.values()),
    )


def _throughput_plan_kernel(
    tasks: Sequence[TaskModelInputs],
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    levels: np.ndarray,
    grid: Mapping[str, np.ndarray],
) -> PlanResult:
    """Array-native density greedy (PERFORMANCE.md, "throughput_plan").

    Per-level page counts and per-step time savings are precomputed as
    (tasks, levels) matrices; each greedy step is then one gather plus an
    ``np.argmax`` (first-max == the scalar loop's strict ``>`` update
    rule, which also keeps the first of tied candidates).
    """
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    n = len(tasks)
    n_levels = len(levels)
    pages_arr = np.array(
        [max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE))) for t in tasks],
        dtype=np.int64,
    )
    grid_mat = np.vstack([np.asarray(grid[t.task_id], dtype=np.float64) for t in tasks])
    # pages at each level and the density of every possible upgrade step,
    # all precomputed -- the greedy loop only gathers
    pages_at = np.ceil(
        pages_arr[:, None] * np.clip(levels, 0.0, 1.0)[None, :]
    ).astype(np.int64)                                   # (n, L)
    saved = grid_mat[:, :-1] - grid_mat[:, 1:]           # (n, L-1)
    extra = pages_at[:, 1:] - pages_at[:, :-1]           # (n, L-1)
    density_mat = saved / np.maximum(extra, 1)           # (n, L-1)

    level_idx = np.zeros(n, dtype=np.int64)
    rows = np.arange(n)

    while True:
        at_top = level_idx + 1 >= n_levels
        density = np.where(
            at_top, -np.inf, density_mat[rows, np.minimum(level_idx, n_levels - 2)]
        )
        best = int(np.argmax(density))
        if not np.isfinite(density[best]) or density[best] <= 0:
            break
        level_idx[best] += 1
        used = int(np.sum(pages_at[rows, level_idx]))
        if used > capacity_pages:
            level_idx[best] -= 1
            break

    level_vals = levels[level_idx]
    time_vals = grid_mat[rows, level_idx]
    page_counts = pages_at[rows, level_idx]
    quotas = tuple(
        TaskQuota(
            task_id=tasks[i].task_id,
            dram_accesses=float(level_vals[i]) * tasks[i].total_accesses,
            r_dram=float(level_vals[i]),
            dram_pages=int(page_counts[i]),
            predicted_time_s=float(time_vals[i]),
        )
        for i in range(n)
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=int(page_counts.sum()),
        rounds=int(level_idx.sum()),
    )

# ----------------------------------------------------------------------
# N-tier allocation (capacity vector instead of a single DRAM budget)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TieredTaskQuota:
    """Planner output for one task on an N-tier topology.

    ``fractions[k]``/``pages[k]`` is the task's access fraction / page
    count on tier ``k`` (fastest first; fractions sum to 1).
    """

    task_id: str
    fractions: tuple[float, ...]
    pages: tuple[int, ...]
    effective_ratio: float
    predicted_time_s: float


@dataclass(frozen=True)
class TieredPlanResult:
    """N-tier planner output; per-tier usage replaces the DRAM scalar."""

    quotas: tuple[TieredTaskQuota, ...]
    predicted_makespan_s: float
    pages_used: tuple[int, ...]
    rounds: int

    def quota(self, task_id: str) -> TieredTaskQuota:
        for q in self.quotas:
            if q.task_id == task_id:
                return q
        raise KeyError(task_id)

    def fractions_by_task(self) -> dict[str, tuple[float, ...]]:
        return {q.task_id: q.fractions for q in self.quotas}

    def to_jsonable(self) -> dict:
        return {
            "predicted_makespan_s": self.predicted_makespan_s,
            "pages_used": list(self.pages_used),
            "rounds": self.rounds,
            "quotas": [
                {
                    "task_id": q.task_id,
                    "fractions": list(q.fractions),
                    "pages": list(q.pages),
                    "effective_ratio": q.effective_ratio,
                    "predicted_time_s": q.predicted_time_s,
                }
                for q in self.quotas
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "TieredPlanResult":
        return cls(
            quotas=tuple(
                TieredTaskQuota(
                    task_id=q["task_id"],
                    fractions=tuple(q["fractions"]),
                    pages=tuple(q["pages"]),
                    effective_ratio=q["effective_ratio"],
                    predicted_time_s=q["predicted_time_s"],
                )
                for q in payload["quotas"]
            ),
            predicted_makespan_s=payload["predicted_makespan_s"],
            pages_used=tuple(payload["pages_used"]),
            rounds=payload["rounds"],
        )


def tiered_greedy_plan(
    tasks: Sequence[TieredTaskInputs],
    model: "PerformanceModel | TieredPerformanceModel",
    capacities_bytes: Sequence[int],
    task_bytes: Mapping[str, int],
    step: float = 0.05,
) -> TieredPlanResult:
    """Algorithm 1 generalised to a per-tier capacity vector.

    With exactly two tiers this *delegates* to :func:`greedy_plan` and
    re-expresses its result as fraction/page vectors, so the paper's
    2-tier plans are bit-identical through this entry point (the
    conformance harness pins that down).  With more tiers the same
    longest-task-first loop runs, but a growth step promotes a ``step``
    slice of the task's pages from its slowest occupied tier into the
    fastest tier with free capacity; predicted times come from the
    effective-ratio reduction (:class:`TieredPerformanceModel`).  No tier
    is ever over-committed: promotions are clamped to per-tier free pages
    and the initial placement waterfalls from the slowest tier up.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    caps = tuple(int(c) for c in capacities_bytes)
    n_tiers = len(caps)
    if n_tiers < 2:
        raise ValueError("need a capacity for at least two tiers")
    for t in tasks:
        if t.n_tiers != n_tiers:
            raise ValueError(
                f"task {t.task_id!r} has {t.n_tiers} tier endpoints for a "
                f"{n_tiers}-tier capacity vector"
            )
    tmodel = (
        model
        if isinstance(model, TieredPerformanceModel)
        else TieredPerformanceModel(model)
    )

    two_tier = [t.as_two_tier() for t in tasks]
    task_pages = _task_pages_map(two_tier, task_bytes)

    if n_tiers == 2:
        plan = greedy_plan(two_tier, tmodel.model, caps[0], task_bytes, step)
        quotas = []
        for q in plan.quotas:
            tp = task_pages[q.task_id]
            slow_pages = max(0, tp - q.dram_pages)
            quotas.append(
                TieredTaskQuota(
                    task_id=q.task_id,
                    fractions=(q.r_dram, 1.0 - q.r_dram),
                    pages=(q.dram_pages, slow_pages),
                    effective_ratio=q.r_dram,
                    predicted_time_s=q.predicted_time_s,
                )
            )
        return TieredPlanResult(
            quotas=tuple(quotas),
            predicted_makespan_s=plan.predicted_makespan_s,
            pages_used=(
                plan.dram_pages_used,
                sum(q.pages[1] for q in quotas),
            ),
            rounds=plan.rounds,
        )

    # ---- general N-tier case -----------------------------------------
    cap_pages = [c // PAGE_SIZE for c in caps]
    ids = [t.task_id for t in tasks]
    if sum(task_pages.values()) > sum(cap_pages):
        raise ValueError("workload does not fit in the topology")

    # initial placement: waterfall from the slowest tier up (what a
    # first-touch-in-far-memory system gives you), in task input order
    pages: dict[str, list[int]] = {tid: [0] * n_tiers for tid in ids}
    free = list(cap_pages)
    for tid in ids:
        remaining = task_pages[tid]
        for k in range(n_tiers - 1, -1, -1):
            take = min(remaining, free[k])
            pages[tid][k] = take
            free[k] -= take
            remaining -= take
            if remaining == 0:
                break

    levels = _step_levels(step)
    grid = {t.task_id: tmodel.ratio_grid(t, levels) for t in tasks}
    weights = {t.task_id: t.slowdown_weights() for t in tasks}

    def level_index(value: float) -> int:
        return int(np.clip(round(value / step), 0, len(levels) - 1))

    def effective_ratio(tid: str) -> float:
        tp = task_pages[tid]
        w = weights[tid]
        return min(
            1.0, sum(pages[tid][k] / tp * w[k] for k in range(n_tiers))
        )

    def predicted(tid: str) -> float:
        return float(grid[tid][level_index(effective_ratio(tid))])

    def promote(tid: str) -> int:
        """Move one step's worth of pages up a tier; returns pages moved."""
        want = max(1, int(np.ceil(step * task_pages[tid])))
        src = -1
        for k in range(n_tiers - 1, 0, -1):
            if pages[tid][k] > 0:
                src = k
                break
        if src < 0:
            return 0  # everything already in the fastest tier
        for dst in range(src):
            if free[dst] > 0:
                moved = min(want, pages[tid][src], free[dst])
                pages[tid][src] -= moved
                pages[tid][dst] += moved
                free[src] += moved
                free[dst] -= moved
                return moved
        return 0  # nothing faster has room

    d_pred = {tid: predicted(tid) for tid in ids}
    saturated: set[str] = set()
    rounds = 0
    while True:
        rounds += 1
        candidates = [tid for tid in ids if tid not in saturated]
        if not candidates:
            break
        longest = max(candidates, key=lambda tid: d_pred[tid])
        others = [d_pred[tid] for tid in ids if tid != longest]
        second_t = max(others) if others else 0.0
        while True:
            if promote(longest) == 0:
                saturated.add(longest)
                break
            d_pred[longest] = predicted(longest)
            if d_pred[longest] <= second_t:
                break

    quotas = tuple(
        TieredTaskQuota(
            task_id=tid,
            fractions=tuple(
                pages[tid][k] / task_pages[tid] for k in range(n_tiers)
            ),
            pages=tuple(pages[tid]),
            effective_ratio=effective_ratio(tid),
            predicted_time_s=d_pred[tid],
        )
        for tid in ids
    )
    return TieredPlanResult(
        quotas=quotas,
        predicted_makespan_s=max(d_pred.values()),
        pages_used=tuple(
            sum(pages[tid][k] for tid in ids) for k in range(n_tiers)
        ),
        rounds=rounds,
    )
