"""The placement server: admission -> batching -> cache -> plan.

:class:`PlacementServer` is the facade gluing the service subsystem
together.  One instance owns

* an :class:`~repro.service.admission.AdmissionController` guarding a
  bounded intake queue (overload is *answered* with a degrade-to-daemon
  decision, never dropped),
* a :class:`~repro.service.scheduler.BatchScheduler` coalescing admitted
  requests and arbitrating the one shared DRAM budget,
* an optional :class:`~repro.service.cache.PredictionCache` of decisions
  keyed by (region fingerprint, input size, quota bucket), invalidated
  explicitly on alpha refinement / guardrail quarantine via
  :meth:`invalidate_region`,
* an optional :class:`~repro.service.pool.WorkerPool` that plans multiple
  due batches concurrently, and
* an optional :class:`~repro.sim.faults.FaultInjector` consulted at the
  ``service_batch`` crash point: a worker crash mid-batch is retried
  once, then the batch's requests are shed -- decided either way (the
  never-lost invariant, tested by the chaos case).

The server is clock-injectable.  Production uses ``time.monotonic``; the
``service_load`` experiment and the batching tests drive a virtual clock,
submitting with :meth:`submit` and firing batches with :meth:`pump` /
:meth:`flush`.
"""

from __future__ import annotations

import dataclasses
import time
from typing import TYPE_CHECKING, Callable, Sequence

from repro.sim.faults import RobustnessLog
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.cache import PredictionCache
from repro.service.pool import WorkerPool
from repro.service.protocol import (
    PlacementDecision,
    PlacementRequest,
    daemon_decision,
)
from repro.service.scheduler import BatchScheduler, PendingRequest

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel
    from repro.core.telemetry import Telemetry
    from repro.replay.recorder import FlightRecorder
    from repro.sim.faults import FaultInjector

__all__ = ["PlacementServer", "WorkerCrashed"]


class WorkerCrashed(RuntimeError):
    """A planning worker died mid-batch (injected via sim.faults)."""


class PlacementServer:
    """Batched, cached, load-shedding front-end over Algorithm 1."""

    def __init__(
        self,
        model: "PerformanceModel",
        dram_capacity_bytes: int,
        window_s: float = 0.005,
        max_batch: int = 32,
        step: float = 0.05,
        cache: PredictionCache | None = None,
        admission: AdmissionConfig | None = None,
        pool: WorkerPool | None = None,
        telemetry: "Telemetry | None" = None,
        clock: Callable[[], float] | None = None,
        faults: "FaultInjector | None" = None,
        max_batch_retries: int = 1,
        recorder: "FlightRecorder | None" = None,
    ) -> None:
        self.clock = clock or time.monotonic
        self.telemetry = telemetry
        self.log = RobustnessLog()
        self.cache = cache
        self.scheduler = BatchScheduler(
            model,
            dram_capacity_bytes,
            window_s=window_s,
            max_batch=max_batch,
            step=step,
            cache=cache,
            telemetry=telemetry,
        )
        self.admission = AdmissionController(
            admission, log=self.log, telemetry=telemetry
        )
        self.pool = pool
        self.faults = faults
        self.max_batch_retries = max_batch_retries
        #: opt-in flight recorder journaling the command stream
        #: (request/fire/decision) for deterministic replay
        self.recorder = recorder
        #: requests accepted / decided (the never-lost invariant is
        #: ``submitted == decided`` once the queue is drained)
        self.submitted = 0
        self.decided = 0
        #: wall seconds spent inside plan_batch, per fired batch
        self.batch_wall_s: list[float] = []

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def submit(
        self, request: PlacementRequest, now: float | None = None
    ) -> PlacementDecision | None:
        """Admit one request.

        Returns ``None`` when the request was queued (a later
        :meth:`pump`/:meth:`flush` decides it), or the immediate *shed*
        decision when admission control is saturated.
        """
        now = self.clock() if now is None else now
        self.submitted += 1
        if self.recorder is not None:
            self.recorder.record_request(request, now)
        if not self.admission.admit(self.scheduler.pending_depth, now):
            decision = self._daemon_decision(request)
            self._finish([decision], now)
            return decision
        request = dataclasses.replace(request, arrival_s=now)
        self.scheduler.submit(request, now)
        return None

    # ------------------------------------------------------------------
    # batch firing
    # ------------------------------------------------------------------
    def pump(self, now: float | None = None) -> list[PlacementDecision]:
        """Fire every batch due at ``now``; returns their decisions."""
        now = self.clock() if now is None else now
        if self.recorder is not None and self.scheduler.due(now):
            self.recorder.record_fire("pump", now)
        batches: list[list[PendingRequest]] = []
        while self.scheduler.due(now):
            batches.append(self.scheduler.take_batch())
        return self._execute(batches, now)

    def step(self, now: float | None = None) -> list[PlacementDecision]:
        """Fire at most one batch (the oldest), window elapsed or not.

        The single-worker integration point: an external event loop (the
        ``service_load`` queueing simulation, or a real serving loop) pops
        one batch per free worker and charges its service time itself.
        """
        now = self.clock() if now is None else now
        if not self.scheduler.pending_depth:
            return []
        if self.recorder is not None:
            self.recorder.record_fire("step", now)
        return self._execute([self.scheduler.take_batch()], now)

    def flush(self, now: float | None = None) -> list[PlacementDecision]:
        """Fire everything still pending, window elapsed or not."""
        now = self.clock() if now is None else now
        if self.recorder is not None and self.scheduler.pending_depth:
            self.recorder.record_fire("flush", now)
        batches: list[list[PendingRequest]] = []
        while self.scheduler.pending_depth:
            batches.append(self.scheduler.take_batch())
        return self._execute(batches, now)

    def request(
        self, request: PlacementRequest, now: float | None = None
    ) -> PlacementDecision:
        """Synchronous convenience: submit, then decide immediately."""
        now = self.clock() if now is None else now
        shed = self.submit(request, now)
        if shed is not None:
            return shed
        for decision in self.flush(now):
            if decision.request_id == request.request_id:
                return decision
        raise RuntimeError(  # pragma: no cover - flush always answers
            f"request {request.request_id!r} was not decided"
        )

    # ------------------------------------------------------------------
    # cache invalidation hooks (wired to refinement / quarantine events)
    # ------------------------------------------------------------------
    def invalidate_region(self, region_fingerprint: str, reason: str = "") -> int:
        """Drop cached decisions for one region (alpha refinement or
        guardrail quarantine made them stale); returns the entry count."""
        if self.cache is None:
            return 0
        dropped = self.cache.invalidate_tag(region_fingerprint)
        if dropped:
            self.log.record(
                "service.cache_invalidated",
                self.clock(),
                region=region_fingerprint,
                reason=reason or "unspecified",
                entries=dropped,
            )
        return dropped

    def on_alpha_refined(self, region_fingerprint: str) -> int:
        return self.invalidate_region(region_fingerprint, "alpha_refinement")

    def on_quarantine(self, region_fingerprint: str) -> int:
        return self.invalidate_region(region_fingerprint, "guardrail_quarantine")

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _execute(
        self, batches: Sequence[list[PendingRequest]], now: float
    ) -> list[PlacementDecision]:
        if not batches:
            return []
        decisions: list[PlacementDecision] = []
        if self.pool is not None and len(batches) > 1:
            results = self.pool.map(
                self._plan_one, [(list(b), now) for b in batches]
            )
            for batch, res in zip(batches, results):
                if res.ok:
                    decisions.extend(res.value)
                else:
                    decisions.extend(self._recover_batch(batch, now))
        else:
            for batch in batches:
                try:
                    decisions.extend(self._plan_one(batch, now))
                except Exception:
                    decisions.extend(self._recover_batch(batch, now))
        self._finish(decisions, now)
        return decisions

    def _plan_one(
        self, batch: list[PendingRequest], now: float
    ) -> list[PlacementDecision]:
        if self.faults is not None and self.faults.crash_due(
            "service_batch", now
        ):
            raise WorkerCrashed(f"worker crashed planning a {len(batch)}-request batch")
        t0 = time.perf_counter()
        out = self.scheduler.plan_batch(batch, now)
        self.batch_wall_s.append(time.perf_counter() - t0)
        # admission-to-decision latency on the server's clock (a virtual
        # clock reads as queue wait + window; wall clocks add compute time)
        done = self.clock()
        return [
            dataclasses.replace(
                dec, latency_s=max(done - entry.admitted_s, 0.0)
            )
            for entry, dec in zip(batch, out)
        ]

    def _recover_batch(
        self, batch: list[PendingRequest], now: float
    ) -> list[PlacementDecision]:
        """Crash recovery: retry the batch, then shed it -- never lose it."""
        self.log.record(
            "service.batch_crashed", now, requests=len(batch)
        )
        for _ in range(self.max_batch_retries):
            try:
                retried = self._plan_one(batch, now)
            except Exception:
                continue
            self.log.record(
                "service.batch_retried", now, requests=len(batch)
            )
            return retried
        # retries exhausted: answer every request with the daemon fallback
        if self.telemetry is not None:
            for _ in batch:
                self.telemetry.inc("merch_service_shed_total")
        for entry in batch:
            self.log.record(
                "service.shed",
                now,
                queue_depth=self.scheduler.pending_depth,
                cause="worker_crash",
            )
        return [self._daemon_decision(entry.request) for entry in batch]

    def _daemon_decision(self, request: PlacementRequest) -> PlacementDecision:
        """The shed answer: no quotas, fall back to the hot-page daemon
        (exactly the degraded mode of the PR-1 misprediction watchdog)."""
        return daemon_decision(request)

    def _finish(self, decisions: list[PlacementDecision], now: float) -> None:
        self.decided += len(decisions)
        if self.recorder is not None:
            for dec in decisions:
                self.recorder.record_decision(dec, now)
        if self.telemetry is None:
            return
        for dec in decisions:
            if dec.status == "shed":
                self.telemetry.inc(
                    "merch_service_requests_total", status="shed"
                )
            self.telemetry.observe(
                "merch_service_request_latency_seconds", max(dec.latency_s, 0.0)
            )
