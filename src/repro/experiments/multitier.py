"""Multitier: competing placement policies on N-tier topologies.

Races the generalised Merchandiser incumbent against the two competing
backends from the literature -- pairwise learning-to-rank placement
(Moura et al.) and interval-based hotness reconfiguration (Olson et
al.) -- on the 2-tier paper machine and on 3- and 4-tier extensions of
it (HBM above DRAM, CXL between DRAM and PM).  All backends run through
the same :mod:`repro.policies` registry, the same engine, and the same
SpGEMM workload, so the comparison isolates the placement decision.

Two properties the conformance CI asserts from this experiment's JSON:

* on the paper's 2-tier config the incumbent beats or matches both
  competing backends (the load-balance-aware plan is the paper's claim);
* the 2-tier run through the generalised ``topology=`` entry point is
  bit-exact with the classic ``HMConfig`` path (the N-tier refactor is
  a strict generalisation, not a behavioural change).
"""

from __future__ import annotations

from repro.core.model import PerformanceModel
from repro.experiments.common import ExperimentContext, format_table
from repro.apps import SpGEMMApp
from repro.policies import PolicyBuildContext, build_policy
from repro.sim import Engine, MachineModel, optane_hm_config
from repro.sim.memspec import topology_preset

#: the competing backends, raced on every topology
POLICIES = ("merchandiser", "ltr", "interval")

#: preset name -> topology under test, smallest first
TOPOLOGIES = ("dram_pm", "hbm_dram_pm", "hbm_dram_cxl_pm")


def run(ctx: ExperimentContext) -> dict[str, object]:
    machine = MachineModel()
    model = PerformanceModel(ctx.system.correlation)
    wl = ctx.workload(SpGEMMApp)
    seed = ctx.seed + 1

    # degenerate-case contract: the topology entry point must reproduce the
    # classic HMConfig engine bit-for-bit on the paper's 2-tier machine
    two_tier = topology_preset("dram_pm")
    bctx2 = PolicyBuildContext(
        machine=machine, topology=two_tier, model=model, seed=seed
    )
    classic = Engine(machine, optane_hm_config(), telemetry=ctx.telemetry).run(
        wl, build_policy("static", bctx2), seed=seed
    )
    via_topo = Engine(machine, topology=two_tier, telemetry=ctx.telemetry).run(
        wl, build_policy("static", bctx2), seed=seed
    )
    bitexact = classic.total_time_s == via_topo.total_time_s

    out: dict[str, object] = {
        "workload": wl.name,
        "seed": seed,
        "two_tier_bitexact": bitexact,
        "classic_hm_time_s": classic.total_time_s,
        "topology_path_time_s": via_topo.total_time_s,
        "topologies": {},
    }
    rows = []
    for preset in TOPOLOGIES:
        topo = topology_preset(preset)
        bctx = PolicyBuildContext(
            machine=machine, topology=topo, model=model, seed=seed
        )
        static = Engine(machine, topology=topo, telemetry=ctx.telemetry).run(
            wl, build_policy("static", bctx), seed=seed
        )
        per: dict[str, dict[str, float]] = {}
        for name in POLICIES:
            policy = build_policy(name, bctx)
            res = Engine(machine, topology=topo, telemetry=ctx.telemetry).run(
                wl, policy, seed=seed
            )
            per[name] = {
                "total_time_s": res.total_time_s,
                "pages_migrated": res.pages_migrated,
                "speedup_vs_static": static.total_time_s / res.total_time_s,
            }
            rows.append(
                [
                    preset,
                    topo.n_tiers,
                    name,
                    res.total_time_s,
                    static.total_time_s / res.total_time_s,
                    res.pages_migrated,
                ]
            )
        winner = min(per, key=lambda p: per[p]["total_time_s"])
        out["topologies"][preset] = {
            "n_tiers": topo.n_tiers,
            "tiers": [t.name for t in topo.tiers],
            "static_time_s": static.total_time_s,
            "policies": per,
            "winner": winner,
        }

    print(
        format_table(
            ["topology", "tiers", "policy", "time_s", "speedup", "migrated"],
            rows,
        )
    )
    print(
        f"\n2-tier bit-exactness (HMConfig vs TopologySpec path): "
        f"{'OK' if bitexact else 'MISMATCH'}"
    )
    for preset, data in out["topologies"].items():
        print(f"{preset}: winner = {data['winner']}")
    return out
