"""Hybrid base-input profiler (Section 4, "Estimation of memory access count").

The paper profiles the base input with two mechanisms chosen by tier:

* pages resident in **PM** are profiled MemoryOptimizer-style -- a bounded
  random PTE sample, cheap enough for TB-scale PM but coarse;
* pages resident in **DRAM** are profiled Thermostat-style -- one 4 KB page
  per 2 MB region, accurate (<1% overhead at tens of GB) but too costly for
  PM's capacity.

The estimator therefore sees per-object access counts whose *noise depends
on where the object currently lives*: DRAM-resident portions are measured
finely, PM-resident portions coarsely.  This class reproduces exactly that
error structure, parameterised by each mechanism's effective sampling
period.
"""

from __future__ import annotations

from typing import Mapping

from repro.common import make_rng
from repro.tasks.task import Footprint

__all__ = ["HybridBaseProfiler"]


class HybridBaseProfiler:
    """Tier-aware per-object access-count measurement for the base input."""

    def __init__(
        self,
        pm_period: int = 2048,
        dram_period: int = 128,
        seed=None,
        faults=None,
    ) -> None:
        """``pm_period``/``dram_period`` are the effective one-in-N sampling
        rates of the PTE scan and the Thermostat probe respectively; the
        paper's accuracy ordering requires ``dram_period < pm_period``."""
        if pm_period < 1 or dram_period < 1:
            raise ValueError("sampling periods must be >= 1")
        if dram_period > pm_period:
            raise ValueError(
                "Thermostat (DRAM) must sample finer than the PTE scan (PM)"
            )
        self.pm_period = pm_period
        self.dram_period = dram_period
        self._rng = make_rng(seed)
        #: optional :class:`~repro.sim.faults.FaultInjector`; base-profile
        #: windows are event-sampled counts, so they share the PEBS-style
        #: drop/duplicate fault model
        self.faults = faults
        #: whether the most recent measurement window was fault-flagged
        self.last_window_flagged = False

    def measure(
        self,
        footprint: Footprint,
        dram_fractions: Mapping[str, float] | None = None,
        now: float = 0.0,
    ) -> dict[str, float]:
        """Estimated per-object access counts for one base-input instance.

        ``dram_fractions[obj]`` is the access-weighted share of the object
        currently served from DRAM (defaults to 0: everything starts in PM,
        as in the paper's workflow where profiling precedes migration).
        """
        fractions = dram_fractions or {}
        out: dict[str, float] = {}
        for obj, count in footprint.accesses_by_object().items():
            r = min(1.0, max(0.0, float(fractions.get(obj, 0.0))))
            dram_part = int(round(count * r))
            pm_part = count - dram_part
            est = 0.0
            if pm_part:
                est += (
                    self._rng.binomial(pm_part, 1.0 / self.pm_period)
                    * self.pm_period
                )
            if dram_part:
                est += (
                    self._rng.binomial(dram_part, 1.0 / self.dram_period)
                    * self.dram_period
                )
            out[obj] = float(est)
        self.last_window_flagged = False
        if self.faults is not None:
            out, self.last_window_flagged = self.faults.corrupt_window_counts(
                out, now, source="base_profile"
            )
        return out
