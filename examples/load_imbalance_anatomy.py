#!/usr/bin/env python
"""Anatomy of the paper's load-imbalance problem (Sections 1-2).

Reconstructs the motivating observation on a minimal workload: four
identical-looking tasks whose *data locality* differs.  A task-agnostic
hot-page daemon (MemoryOptimizer) pulls the globally hottest pages into
DRAM -- which all belong to the lucky, cache-friendly tasks -- so those
tasks race ahead and idle at the barrier while the stragglers crawl on PM.
Merchandiser's per-task quotas put the DRAM where the *barrier* needs it.

Run:  python examples/load_imbalance_anatomy.py
"""

import numpy as np

from repro import Engine, MachineModel, optane_hm_config
from repro.baselines import MemoryOptimizerPolicy, PMOnlyPolicy
from repro.common import AccessPattern
from repro.core import Merchandiser, lb_hm_config
from repro.core.patterns import Affine, ArrayRef, Indirect, Loop
from repro.core.runtime import ApplicationBinding
from repro.tasks import DataObject, Footprint, ObjectAccess, MPIProgram

MIB = 1 << 20
N_TASKS = 4
REGIONS = 5


def build() -> tuple:
    """Four tasks, same work volume; tasks 0-1 have concentrated (hot-page)
    locality, tasks 2-3 scatter uniformly: the sampler loves the former."""
    prog = MPIProgram("anatomy", N_TASKS)
    for t in range(N_TASKS):
        prog.declare_object(
            DataObject(
                f"data{t}",
                96 * MIB,
                owner=prog.task_id(t),
                hotness="zipf" if t < 2 else "uniform",
                zipf_s=0.9,
            )
        )
    fps = [
        Footprint(
            accesses=(
                ObjectAccess(f"data{t}", AccessPattern.RANDOM, reads=900_000),
            ),
            instructions=20_000_000,
        )
        for t in range(N_TASKS)
    ]
    for r in range(REGIONS):
        prog.parallel_region(f"iter{r}", fps, kind="iter",
                             input_vectors=[(96.0,)] * N_TASKS)
    wl = prog.build()

    descriptors = {}
    for t in range(N_TASKS):
        kernel = Loop(
            "i", (ArrayRef(f"data{t}", Indirect(f"data{t}", Affine("i"))),)
        )
        descriptors[prog.task_id(t)] = lb_hm_config(
            [wl.object(f"data{t}")], kernel
        )
    return wl, ApplicationBinding(descriptors=descriptors)


def report(name, res) -> None:
    busy = res.task_busy_times()
    vals = np.array(list(busy.values()))
    bars = {k: "#" * int(40 * v / vals.max()) for k, v in sorted(busy.items())}
    print(f"\n{name}: total {res.total_time_s:.1f}s, "
          f"A.C.V {vals.std() / vals.mean():.3f}")
    for task, bar in bars.items():
        print(f"  {task}: {bar}")


def main() -> None:
    wl, binding = build()
    engine = Engine(MachineModel(), optane_hm_config())
    system = Merchandiser.offline_setup(
        n_samples=80, placements_per_sample=8, select_events=False, seed=0
    )

    res_pm = engine.run(wl, PMOnlyPolicy(), seed=1)
    report("PM-only (no migration)", res_pm)

    res_mo = engine.run(wl, MemoryOptimizerPolicy(seed=7), seed=1)
    report("MemoryOptimizer (task-agnostic hot pages)", res_mo)
    waits = res_mo.task_wait_times()
    print(f"  barrier wait of the luckiest task: "
          f"{max(waits.values()):.1f}s of pure idle time")

    res_m = engine.run(wl, system.policy(binding, seed=5), seed=1)
    report("Merchandiser (per-task DRAM quotas)", res_m)

    print(
        f"\nMerchandiser vs MemoryOptimizer: "
        f"{res_mo.total_time_s / res_m.total_time_s:.2f}x faster, "
        "because DRAM went to the tasks the barrier was waiting on."
    )


if __name__ == "__main__":
    main()
