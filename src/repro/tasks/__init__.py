"""Task-parallel programming substrate (Section 2 of the paper).

A task-parallel HPC application is modelled as a :class:`Workload`: a list of
:class:`DataObject` declarations plus a sequence of barrier-separated
:class:`ParallelRegion` s, each containing one :class:`TaskInstanceSpec` per
task.  MPI-style (process-per-task) and OpenMP-style (thread-per-task)
front-ends build the same structures.
"""

from repro.tasks.task import (
    DataObject,
    Footprint,
    KernelProfile,
    ObjectAccess,
    ParallelRegion,
    TaskInstanceSpec,
    Workload,
)
from repro.tasks.frontends import MPIProgram, OpenMPProgram

__all__ = [
    "DataObject",
    "ObjectAccess",
    "KernelProfile",
    "Footprint",
    "TaskInstanceSpec",
    "ParallelRegion",
    "Workload",
    "MPIProgram",
    "OpenMPProgram",
]
