"""Unit tests for the write-ahead log and recovery replay."""

import numpy as np
import pytest

from repro.common import PAGE_SIZE
from repro.core.journal import (
    WalRecord,
    WriteAheadLog,
    _decode,
    _encode,
    _undo_moves,
    recover_journal,
    verify_placement,
)
from repro.sim.pages import PageTable
from repro.tasks import DataObject


def table(n_objects=2, pages_each=8, capacity_pages=12) -> PageTable:
    objects = [
        DataObject(f"o{i}", pages_each * PAGE_SIZE) for i in range(n_objects)
    ]
    return PageTable(objects, capacity_pages * PAGE_SIZE, rng=0)


def begin_payload(t: PageTable, **extra) -> dict:
    payload = {
        "region": 0,
        "time_s": 0.0,
        "binary": True,
        "dram_capacity_bytes": int(t.dram_capacity_bytes),
        "dram_pages": {o.name: float(o.residency.sum()) for o in t},
        "task_r_dram": {},
    }
    payload.update(extra)
    return payload


class TestRecordCodec:
    def test_roundtrip(self):
        entry = _encode(3, "move", 1, {"cause": "policy", "moves": []})
        record = _decode(entry)
        assert record == WalRecord(3, "move", 1, {"cause": "policy", "moves": []})

    def test_numpy_payload_is_converted(self):
        entry = _encode(
            0,
            "move",
            0,
            {"pages": np.arange(3, dtype=np.intp), "x": np.float64(1.5)},
        )
        record = _decode(entry)
        assert record.payload == {"pages": [0, 1, 2], "x": 1.5}

    def test_flipped_byte_detected(self):
        entry = _encode(0, "epoch_begin", 0, {"region": 0})
        corrupt = entry[:-4] + ("0" if entry[-4] != "0" else "1") + entry[-3:]
        assert _decode(corrupt) is None

    def test_truncated_entry_detected(self):
        entry = _encode(0, "epoch_begin", 0, {"region": 0})
        assert _decode(entry[: len(entry) // 2]) is None
        assert _decode("") is None


class TestWriteAheadLog:
    def test_lsns_are_monotonic(self):
        wal = WriteAheadLog()
        e = wal.begin_epoch({"region": 0, "time_s": 0.0})
        wal.log_moves(e, [], "policy")
        wal.commit_epoch(e, {"time_s": 1.0})
        assert [r.lsn for r in wal.records()] == [0, 1, 2]

    def test_epoch_ids_increase(self):
        wal = WriteAheadLog()
        assert wal.begin_epoch({"region": 0, "time_s": 0.0}) == 0
        assert wal.begin_epoch({"region": 0, "time_s": 0.0}) == 1

    def test_reopen_truncates_torn_tail(self):
        wal = WriteAheadLog()
        e = wal.begin_epoch({"region": 0, "time_s": 0.0})
        wal.append_torn("move", e, {"cause": "policy", "moves": []})
        records, torn = wal.reopen()
        assert torn is True
        assert [r.kind for r in records] == ["epoch_begin"]
        assert len(wal) == 1  # the torn entry is gone from the medium

    def test_reopen_resumes_counters(self):
        wal = WriteAheadLog()
        e = wal.begin_epoch({"region": 0, "time_s": 0.0})
        wal.commit_epoch(e, {"time_s": 1.0})
        wal.reopen()
        # a fresh epoch id and a fresh lsn, never a collision
        assert wal.begin_epoch({"region": 1, "time_s": 1.0}) == 1
        assert wal.records()[-1].lsn == 2


class TestRollback:
    def test_undo_restores_before_images(self):
        t = table()
        obj = t.object("o0")
        moves = [
            WalRecord(
                1,
                "move",
                0,
                {
                    "cause": "policy",
                    "moves": [
                        {
                            "obj": "o0",
                            "pages": [0, 1, 2],
                            "before": [0.0, 0.0, 0.0],
                            "promote": True,
                        }
                    ],
                },
            )
        ]
        obj.residency[[0, 1, 2]] = 1.0
        assert _undo_moves(t, moves) == 3
        assert obj.dram_pages() == 0.0

    def test_undo_is_exact_for_partial_application(self):
        # crash mid-batch: only page 0 was applied; restoring all
        # before-images is a no-op for the untouched pages
        t = table()
        obj = t.object("o0")
        record = WalRecord(
            1,
            "move",
            0,
            {
                "cause": "policy",
                "moves": [
                    {
                        "obj": "o0",
                        "pages": [0, 1],
                        "before": [0.0, 0.0],
                        "promote": True,
                    }
                ],
            },
        )
        obj.residency[0] = 1.0  # page 1 never copied
        _undo_moves(t, [record])
        assert obj.dram_pages() == 0.0

    def test_undo_reverses_batch_order(self):
        # two batches touch the same page: undo must restore the OLDEST
        # before-image last
        t = table()
        obj = t.object("o0")
        first = WalRecord(
            1,
            "move",
            0,
            {
                "cause": "policy",
                "moves": [
                    {"obj": "o0", "pages": [0], "before": [0.0], "promote": True}
                ],
            },
        )
        obj.residency[0] = 1.0
        second = WalRecord(
            2,
            "move",
            0,
            {
                "cause": "pressure",
                "moves": [
                    {"obj": "o0", "pages": [0], "before": [1.0], "promote": False}
                ],
            },
        )
        obj.residency[0] = 0.0
        _undo_moves(t, [first, second])
        assert obj.residency[0] == 0.0


class TestVerifyPlacement:
    def test_clean_placement_passes(self):
        t = table()
        t.object("o0").residency[:4] = 1.0
        assert verify_placement(t, begin_payload(t)) == []

    def test_fractional_residency_flagged_when_binary(self):
        t = table()
        t.object("o0").residency[0] = 0.5
        violations = verify_placement(t, {"binary": True})
        assert any("no/both tiers" in v for v in violations)

    def test_fractional_residency_allowed_for_memory_mode(self):
        t = table()
        t.object("o0").residency[:] = 0.5
        assert verify_placement(t, {"binary": False}) == []

    def test_capacity_violation_flagged(self):
        t = table(n_objects=2, pages_each=8, capacity_pages=12)
        for obj in t:
            obj.residency[:] = 1.0  # 16 pages in a 12-page DRAM
        violations = verify_placement(t, {"binary": True})
        assert any("over capacity" in v for v in violations)

    def test_restoration_mismatch_flagged(self):
        t = table()
        payload = begin_payload(t)
        t.object("o1").residency[0] = 1.0  # drifted from the epoch snapshot
        violations = verify_placement(t, payload)
        assert any("after rollback" in v for v in violations)


class TestRecoverJournal:
    def test_clean_journal_resumes_after_last_commit(self):
        t = table()
        wal = WriteAheadLog()
        e = wal.begin_epoch(begin_payload(t, region=0))
        wal.commit_epoch(e, {"region": 0, "time_s": 5.0})
        outcome = recover_journal(wal, t)
        assert outcome.resume_region == 1
        assert outcome.resume_time_s == 5.0
        assert outcome.open_epoch == -1
        assert outcome.violations == []

    def test_open_epoch_rolled_back_and_resumed(self):
        t = table()
        wal = WriteAheadLog()
        e0 = wal.begin_epoch(begin_payload(t, region=0))
        wal.commit_epoch(e0, {"region": 0, "time_s": 5.0})
        e1 = wal.begin_epoch(begin_payload(t, region=1, time_s=5.0))
        obj = t.object("o0")
        wal.log_moves(
            e1,
            [{"obj": "o0", "pages": [0, 1], "before": [0.0, 0.0], "promote": True}],
            "policy",
        )
        obj.residency[[0, 1]] = 1.0
        outcome = recover_journal(wal, t)
        assert outcome.open_epoch == e1
        assert outcome.resume_region == 1
        assert outcome.resume_time_s == 5.0
        assert outcome.rolled_back_pages == 2
        assert obj.dram_pages() == 0.0
        assert outcome.violations == []
        assert wal.log.count("journal.rollback") == 1

    def test_empty_journal_restarts_cold(self):
        outcome = recover_journal(WriteAheadLog(), table())
        assert outcome.resume_region == 0
        assert outcome.resume_time_s == 0.0
        assert outcome.last_committed_epoch == -1

    def test_torn_tail_is_truncated_and_safe(self):
        t = table()
        wal = WriteAheadLog()
        e = wal.begin_epoch(begin_payload(t))
        # write-ahead: the torn move's mutation never happened
        wal.append_torn(
            "move",
            e,
            {
                "cause": "policy",
                "moves": [
                    {"obj": "o0", "pages": [0], "before": [0.0], "promote": True}
                ],
            },
        )
        outcome = recover_journal(wal, t)
        assert outcome.torn_tail is True
        assert outcome.rolled_back_pages == 0
        assert outcome.violations == []
        assert wal.log.count("journal.torn_tail") == 1

    def test_newest_committed_checkpoint_wins(self):
        t = table()
        wal = WriteAheadLog()
        for region in range(2):
            e = wal.begin_epoch(begin_payload(t, region=region))
            wal.commit_epoch(e, {"region": region, "time_s": float(region + 1)})
            wal.checkpoint(e, {"marker": region})
        e_open = wal.begin_epoch(begin_payload(t, region=2, time_s=2.0))
        wal.checkpoint(e_open, {"marker": "uncommitted"})  # must be ignored
        outcome = recover_journal(wal, t)
        assert outcome.checkpoint_state == {"marker": 1}
        assert wal.log.count("journal.checkpoint_restored") == 1

    def test_no_usable_checkpoint_means_cold(self):
        t = table()
        wal = WriteAheadLog()
        wal.begin_epoch(begin_payload(t, region=0))
        outcome = recover_journal(wal, t)
        assert outcome.checkpoint_state is None

    def test_violation_logged_when_rollback_info_lost(self):
        # a committed-state drift shows up as a restoration mismatch
        t = table()
        wal = WriteAheadLog()
        wal.begin_epoch(begin_payload(t, region=0))
        t.object("o0").residency[0] = 1.0  # mutation with no move record
        outcome = recover_journal(wal, t)
        assert outcome.violations
        assert wal.log.count("journal.invariant_violation") >= 1


class TestReopenAdversarialTails:
    """Tails a *replicated* journal can accumulate: retransmitted
    duplicates, interleaved second writers, torn-then-appended entries."""

    def _journal(self, n_epochs=2):
        journal = WriteAheadLog()
        for k in range(n_epochs):
            epoch = journal.begin_epoch({"region": k, "time_s": float(k)})
            journal.commit_epoch(epoch, {"region": k, "time_s": float(k)})
        return journal

    def test_exact_duplicate_lsn_is_dropped(self):
        journal = self._journal()
        journal.entries.insert(2, journal.entries[1])  # retransmit slipped in
        records, torn = journal.reopen()
        assert not torn
        assert [r.lsn for r in records] == [0, 1, 2, 3]
        assert len(journal.entries) == 4
        assert journal.log.count("journal.duplicate_dropped") == 1
        # appending continues from the deduplicated sequence
        epoch = journal.begin_epoch({"region": 9, "time_s": 9.0})
        journal.commit_epoch(epoch, {"region": 9, "time_s": 9.0})
        assert [r.lsn for r in journal.records()] == [0, 1, 2, 3, 4, 5]

    def test_interleaved_second_writer_truncates_like_a_tear(self):
        # writer B's journal (same LSNs, different content) spliced into
        # writer A's: the regression point is indistinguishable from
        # corruption, so everything from it on is cut
        a = self._journal(3)  # LSNs 0..5
        b = WriteAheadLog()
        epoch = b.begin_epoch({"region": 77, "time_s": 7.0})
        b.commit_epoch(epoch, {"region": 77, "time_s": 7.0})  # LSNs 0..1
        a.entries[4:4] = b.entries  # interleave at LSN 4
        records, torn = a.reopen()
        assert torn
        assert [r.lsn for r in records] == [0, 1, 2, 3]
        assert all(r.payload.get("region") != 77 for r in records)
        assert a.log.count("journal.lsn_regression") == 1

    def test_duplicate_lsn_with_different_content_is_a_tear(self):
        journal = self._journal(2)
        rogue = _encode(1, "epoch_commit", 0, {"region": 99, "time_s": 9.0})
        journal.entries.insert(2, rogue)  # same LSN as entry 1, new content
        records, torn = journal.reopen()
        assert torn
        assert [r.lsn for r in records] == [0, 1]
        assert journal.log.count("journal.lsn_regression") == 1

    def test_torn_tail_then_append_from_a_confused_writer(self):
        # a crashed writer tore entry 3 mid-write; a later (buggy) writer
        # appended past the tear without validating -- reopen must cut at
        # the tear and ignore everything beyond it
        journal = self._journal(3)  # LSNs 0..5
        journal.entries[3] = journal.entries[3][: len(journal.entries[3]) // 2]
        records, torn = journal.reopen()
        assert torn
        assert [r.lsn for r in records] == [0, 1, 2]
        assert len(journal.entries) == 3
        # the reopened journal appends with the next dense LSN
        epoch = journal.begin_epoch({"region": 5, "time_s": 5.0})
        journal.commit_epoch(epoch, {"region": 5, "time_s": 5.0})
        assert [r.lsn for r in journal.records()] == [0, 1, 2, 3, 4]

    def test_duplicate_then_tear_reports_both(self):
        journal = self._journal(3)
        journal.entries.insert(1, journal.entries[0])  # duplicate LSN 0
        journal.entries[-1] = "garbage that cannot decode"
        records, torn = journal.reopen()
        assert torn
        assert [r.lsn for r in records] == [0, 1, 2, 3, 4]
        assert journal.log.count("journal.duplicate_dropped") == 1

    def test_recover_journal_survives_an_interleaved_tail(self):
        # end to end: recovery over an interleaved journal behaves exactly
        # like recovery over a torn one -- replay stops at the regression
        t = table()
        journal = WriteAheadLog()
        epoch = journal.begin_epoch(begin_payload(t))
        journal.commit_epoch(epoch, {"region": 0, "time_s": 0.0})
        rogue = WriteAheadLog()
        e2 = rogue.begin_epoch({"region": 50, "time_s": 5.0})
        rogue.commit_epoch(e2, {"region": 50, "time_s": 5.0})
        journal.entries.extend(rogue.entries)  # LSNs regress at the splice
        outcome = recover_journal(journal, t)
        assert outcome.torn_tail
        assert [r.lsn for r in journal.records()] == [0, 1]
