"""Tests for the synthetic performance-monitor counters."""

import pytest

from repro.common import AccessPattern, make_rng
from repro.sim.counters import PMC_EVENTS, TOP8_EVENTS, collect_pmcs, pmc_vector
from repro.sim.machine import MachineModel
from repro.sim.memspec import optane_hm_config
from repro.tasks import Footprint, KernelProfile, ObjectAccess

HM = optane_hm_config()
MODEL = MachineModel()


def footprint(pattern=AccessPattern.STREAM, reads=100_000, instr=10_000_000, **prof):
    return Footprint(
        accesses=(ObjectAccess("x", pattern, reads=reads),),
        instructions=instr,
        profile=KernelProfile(**prof),
    )


class TestEventSet:
    def test_twenty_events(self):
        assert len(PMC_EVENTS) == 20

    def test_top8_matches_paper(self):
        """Section 5.1's selected events, in importance order."""
        assert TOP8_EVENTS == (
            "LLC_MPKI",
            "IPC",
            "PRF_Miss",
            "MEM_WCY",
            "L2_LD_Miss",
            "BR_MSP",
            "VEC_INS",
            "L3_LD_Miss",
        )

    def test_top8_subset_of_all(self):
        assert set(TOP8_EVENTS) <= set(PMC_EVENTS)


class TestCollect:
    def test_all_events_present(self):
        pmcs = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(0))
        assert set(pmcs) == set(PMC_EVENTS)

    def test_non_negative(self):
        pmcs = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(0))
        assert all(v >= 0 for v in pmcs.values())

    def test_deterministic_with_seed(self):
        a = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(3))
        b = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(3))
        assert a == b

    def test_noisy_across_seeds(self):
        a = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(1))
        b = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(2))
        assert a["LLC_MPKI"] != b["LLC_MPKI"]

    def test_llc_mpki_tracks_memory_intensity(self):
        light = collect_pmcs(footprint(reads=1_000), MODEL, HM, rng=make_rng(0), noise=0)
        heavy = collect_pmcs(footprint(reads=1_000_000), MODEL, HM, rng=make_rng(0), noise=0)
        assert heavy["LLC_MPKI"] > light["LLC_MPKI"]

    def test_prf_miss_tracks_randomness(self):
        stream = collect_pmcs(footprint(AccessPattern.STREAM), MODEL, HM, rng=make_rng(0), noise=0)
        random = collect_pmcs(footprint(AccessPattern.RANDOM), MODEL, HM, rng=make_rng(0), noise=0)
        assert random["PRF_Miss"] > stream["PRF_Miss"]

    def test_vec_ins_tracks_profile(self):
        scalar = collect_pmcs(footprint(vector_fraction=0.0), MODEL, HM, rng=make_rng(0), noise=0)
        vector = collect_pmcs(footprint(vector_fraction=0.8), MODEL, HM, rng=make_rng(0), noise=0)
        assert vector["VEC_INS"] > scalar["VEC_INS"]

    def test_ipc_lower_when_memory_bound(self):
        compute = collect_pmcs(footprint(reads=100, instr=50_000_000), MODEL, HM, rng=make_rng(0), noise=0)
        memory = collect_pmcs(
            footprint(AccessPattern.RANDOM, reads=5_000_000, instr=5_000_000),
            MODEL, HM, rng=make_rng(0), noise=0,
        )
        assert memory["IPC"] < compute["IPC"]


class TestVector:
    def test_canonical_order(self):
        pmcs = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(0))
        vec = pmc_vector(pmcs)
        assert vec.shape == (20,)
        assert vec[0] == pmcs["LLC_MPKI"]

    def test_subset_order(self):
        pmcs = collect_pmcs(footprint(), MODEL, HM, rng=make_rng(0))
        vec = pmc_vector(pmcs, ("IPC", "VEC_INS"))
        assert vec[0] == pmcs["IPC"]
        assert vec[1] == pmcs["VEC_INS"]

    def test_missing_event_raises(self):
        with pytest.raises(KeyError):
            pmc_vector({"IPC": 1.0}, ("IPC", "LLC_MPKI"))
