"""Tests for the experiment harness (fast paths only).

The full paper-scale experiments run via ``python -m
repro.experiments.runner`` and the benchmark suite; here we check that the
harness machinery (context caching, metrics, the cheap experiments) works
and that the structural results (Table 1/2, Figure 3 shapes) hold.
"""

import numpy as np
import pytest

from repro.apps import NWChemTCApp, SpGEMMApp
from repro.experiments import ExperimentContext
from repro.experiments import fig3, table1, table2
from repro.experiments.common import acv, format_table


@pytest.fixture(scope="module")
def ctx():
    return ExperimentContext(seed=0, fast=True)


class TestHelpers:
    def test_acv_zero_for_equal(self):
        assert acv([3.0, 3.0, 3.0]) == 0.0

    def test_acv_scale_invariant(self):
        assert acv([1.0, 2.0, 3.0]) == pytest.approx(acv([10.0, 20.0, 30.0]))

    def test_acv_rejects_empty(self):
        with pytest.raises(ValueError):
            acv([])

    def test_format_table_aligns(self):
        out = format_table(["a", "bb"], [["x", 1.5], ["longer", 2.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.500" in out


class TestContextCaching:
    def test_workload_cached(self, ctx):
        assert ctx.workload(SpGEMMApp) is ctx.workload(SpGEMMApp)

    def test_app_cached(self, ctx):
        assert ctx.app(SpGEMMApp) is ctx.app(SpGEMMApp)

    def test_policies_include_app_specific(self, ctx):
        pols = ctx.policies(SpGEMMApp)
        assert "sparta" in pols
        assert "merchandiser" in pols
        assert "sparta" not in ctx.policies(NWChemTCApp)


class TestTable1(object):
    def test_all_patterns_match_paper(self, ctx):
        result = table1.run(ctx)
        for app, detected in result["detected"].items():
            assert detected == result["paper"][app], app


class TestTable2:
    def test_rows_scaled_from_paper(self, ctx):
        rows = table2.run(ctx)
        for name, row in rows.items():
            # simulated MB within 1% of paper GB (the 1/1024 scale)
            assert row["workload_mb"] == pytest.approx(
                row["paper_memory_gb"] * 1024 / 1024, rel=0.02
            )

    def test_task_configs_match_paper(self, ctx):
        rows = table2.run(ctx)
        assert rows["SpGEMM"]["openmp_threads"] == 12
        assert rows["WarpX"]["openmp_threads"] == 24
        assert rows["DMRG"]["mpi_processes"] == 6


class TestFig3:
    def test_shape(self, ctx):
        result = fig3.run(ctx)
        for phase, norm in result.items():
            assert norm[0.0] == pytest.approx(1.0)
            # more DRAM never hurts a phase
            assert norm[1.0] <= norm[0.5] <= norm[0.0] + 1e-9

    def test_phase_sensitivity_varies(self, ctx):
        """Figure 3's point: phases respond differently to the DRAM ratio."""
        result = fig3.run(ctx)
        at_half = [result[p][0.5] for p in result if p != "entire_task"]
        assert max(at_half) - min(at_half) > 0.05

    def test_writeback_most_sensitive(self, ctx):
        result = fig3.run(ctx)
        reductions = {
            p: 1.0 - result[p][0.5] for p in result if p != "entire_task"
        }
        top2 = sorted(reductions, key=reductions.__getitem__, reverse=True)[:2]
        assert "writeback" in top2
