"""Benchmarks for the Section 7.2 overhead study and the ablations."""

from conftest import run_once

from repro.experiments import ablation, overhead


def test_bench_overhead(benchmark, ctx):
    result = run_once(benchmark, overhead.run, ctx)
    # the prediction is lightweight relative to multi-second task times
    # (the paper reports 0.031 ms on its C implementation; our pure-Python
    # GBR costs milliseconds -- still ~1e-5 of a task's execution)
    assert result["prediction_latency_ms"] < 100.0
    assert result["profiling_overhead"] < 0.01  # paper: < 0.1%
    assert set(result["alphas"]) == {"SpGEMM", "WarpX", "BFS", "DMRG", "NWChem-TC"}


def test_bench_ablation(benchmark, ctx):
    result = run_once(benchmark, ablation.run, ctx)
    for app, stats in result["planner"].items():
        # Algorithm 1 lands close to the makespan optimum on real task sets
        assert stats["gap"] < 1.25, app
        # neither plan exceeds DRAM
        assert stats["greedy_pages"] <= ctx.engine.hm.dram.capacity_bytes // 4096
    # planning is what delivers SpGEMM's speedup (knocking it out hurts)
    sp = result["knockouts"]["SpGEMM"]
    assert sp["no-planning"] > sp["full"]
