"""Flight recorder: journal the placement service's envelope stream.

A :class:`FlightRecorder` is an opt-in tap handed to
:class:`~repro.service.server.PlacementServer` (and, for the wire-level
view, :class:`~repro.service.transport.netserver.PlacementTransportServer`).
It journals one record per event:

* ``request``  -- a request entering :meth:`PlacementServer.submit`
  (the full encoded envelope, before admission touches it);
* ``fire``     -- a batch-firing command (``pump`` / ``step`` / ``flush``)
  that found work to do, with the clock reading it ran at;
* ``decision`` -- every decision the server produced (planned, cached,
  deduplicated, or shed), as its full encoded envelope;
* observational events the transport contributes for divergence-report
  accounting -- ``wire_fault``, ``resubmission``, ``teardown``,
  ``frame_error`` -- which the replayer deliberately ignores.

``request`` + ``fire`` form a *command journal*: replaying them in order
against a fresh server under a virtual clock pinned to the recorded
timestamps reproduces the decision stream bit-for-bit (DESIGN §12).

Records are CRC-framed with the transport's own frame format
(:mod:`repro.service.transport.framing`), so a recording file is
tamper-evident and torn tails are detected, not silently truncated.

Two modes:

* **ring** (``path=None``) -- a bounded in-memory ring of the last
  ``capacity`` records (evictions are counted), for always-on incident
  capture;
* **streaming** (``path=...``) -- every record is framed straight to the
  file; :meth:`flush` is the durability contract: after it returns, all
  records recorded before the call survive a process kill
  (``flush()`` + ``fsync()``).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.service.protocol import (
    PlacementDecision,
    PlacementRequest,
    encode_decision,
    encode_request,
)
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME,
    FrameAssembler,
    FrameTruncated,
    encode_frame,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry

__all__ = ["FlightRecorder", "Recording", "RecordingError"]

#: bump on any incompatible change to the record schema
RECORDING_VERSION = 1
META_KIND = "replay_meta"
RECORD_KIND = "replay_record"

#: events that drive the replayer (everything else is observational)
COMMAND_EVENTS = ("request", "fire", "decision")


class RecordingError(ValueError):
    """A recording file is malformed (wrong kinds, versions, or order)."""


class FlightRecorder:
    """Bounded-ring or streaming journal of service envelopes.

    Thread-safe: the transport records from its event-loop thread while
    tests and operators read stats from others.
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        *,
        capacity: int = 4096,
        meta: Mapping[str, object] | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.meta: dict = {
            "v": RECORDING_VERSION,
            "kind": META_KIND,
            **(dict(meta) if meta else {}),
        }
        self.capacity = capacity
        self.telemetry = telemetry
        self._lock = threading.Lock()
        self._seq = 0
        self._records: list[dict] = []
        self._fh = None
        self.path = Path(path) if path is not None else None
        #: accounting (asserted on by tests)
        self.recorded = 0
        self.dropped = 0
        self.flushes = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "wb")
            self._fh.write(encode_frame(self.meta))

    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        return "stream" if self._fh is not None else "ring"

    def record(self, event: str, t: float, **payload: object) -> dict:
        """Journal one event at clock reading ``t``; returns the record."""
        with self._lock:
            rec = {
                "v": RECORDING_VERSION,
                "kind": RECORD_KIND,
                "seq": self._seq,
                "event": event,
                "t": float(t),
                **payload,
            }
            self._seq += 1
            self.recorded += 1
            if self._fh is not None:
                self._fh.write(encode_frame(rec))
            else:
                self._records.append(rec)
                if len(self._records) > self.capacity:
                    self._records.pop(0)
                    self.dropped += 1
                    if self.telemetry is not None:
                        self.telemetry.inc("merch_replay_dropped_records_total")
        if self.telemetry is not None:
            label = event if event in COMMAND_EVENTS else "observed"
            self.telemetry.inc("merch_replay_records_total", event=label)
        return rec

    # -- command-journal helpers (called by the server's tap) -----------
    def record_request(self, request: PlacementRequest, t: float) -> None:
        self.record("request", t, request=encode_request(request))

    def record_fire(self, op: str, t: float) -> None:
        self.record("fire", t, op=op)

    def record_decision(self, decision: PlacementDecision, t: float) -> None:
        self.record("decision", t, decision=encode_decision(decision))

    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Durability barrier: in streaming mode, every record journaled
        before this call is on disk (``flush`` + ``fsync``) when it
        returns.  In ring mode it only bumps the counter (the ring is
        memory; :meth:`dump` persists it)."""
        with self._lock:
            self.flushes += 1
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        if self.telemetry is not None:
            self.telemetry.inc("merch_replay_flushes_total")

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    def records(self) -> list[dict]:
        """A snapshot of the ring contents (streaming mode holds none)."""
        with self._lock:
            return list(self._records)

    def recording(self) -> "Recording":
        """The ring contents as an in-memory :class:`Recording`."""
        return Recording(meta=dict(self.meta), records=self.records())

    def dump(self, path: str | os.PathLike) -> Path:
        """Persist the ring (meta frame first) to ``path``; fsynced."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            with open(out, "wb") as fh:
                fh.write(encode_frame(self.meta))
                for rec in self._records:
                    fh.write(encode_frame(rec))
                fh.flush()
                os.fsync(fh.fileno())
        return out


@dataclass
class Recording:
    """One loaded recording: the meta frame plus its records, in order."""

    meta: dict
    records: list[dict] = field(default_factory=list)

    @classmethod
    def load(
        cls,
        path: str | os.PathLike,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        tolerate_torn_tail: bool = False,
    ) -> "Recording":
        """Parse a recording file.

        Strict by default: a torn tail (the recorder was killed mid-frame
        without reaching its own torn-write point) raises
        :class:`~repro.service.transport.framing.FrameTruncated`; pass
        ``tolerate_torn_tail=True`` to keep the complete prefix instead.
        CRC corruption anywhere raises regardless -- a recording that
        fails its checksums must never replay silently.
        """
        data = Path(path).read_bytes()
        assembler = FrameAssembler(max_frame)
        messages = assembler.feed(data)
        try:
            assembler.close()
        except FrameTruncated:
            if not tolerate_torn_tail:
                raise
        if not messages:
            raise RecordingError(f"{path}: no frames (empty or all torn)")
        meta, records = messages[0], messages[1:]
        if meta.get("kind") != META_KIND:
            raise RecordingError(
                f"{path}: first frame is {meta.get('kind')!r}, "
                f"expected {META_KIND!r}"
            )
        if meta.get("v") != RECORDING_VERSION:
            raise RecordingError(
                f"{path}: recording version {meta.get('v')!r} unsupported "
                f"(this reader speaks v{RECORDING_VERSION})"
            )
        for rec in records:
            if rec.get("kind") != RECORD_KIND:
                raise RecordingError(
                    f"{path}: unexpected frame kind {rec.get('kind')!r} "
                    f"at seq {rec.get('seq')!r}"
                )
        return cls(meta=meta, records=records)

    # -- convenience views ---------------------------------------------
    def events(self, event: str) -> list[dict]:
        return [r for r in self.records if r.get("event") == event]

    @property
    def request_ids(self) -> list[str]:
        return [r["request"]["request_id"] for r in self.events("request")]

    @property
    def n_requests(self) -> int:
        return len(self.events("request"))

    @property
    def n_decisions(self) -> int:
        return len(self.events("decision"))
