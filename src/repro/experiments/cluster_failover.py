"""Cluster failover chaos soak (our extension; see DESIGN.md Section 11).

The sharded control plane (:mod:`repro.service.cluster`) claims that a
placement shard can be killed at any protocol step -- mid-epoch,
post-commit, mid-lease-renewal -- while the router keeps every guarantee:

* **zero lost decisions** -- every submitted request id is answered
  exactly once, across kills, promotions and retries;
* **zero duplicated grants** -- no request id is ever delivered two
  decisions (let alone two *different* ones);
* **quota never over-committed** -- at every tick,
  ``sum(live shard leases) <= global quota``, partitions and expired
  leases included;
* **warm, bit-exact failover** -- every decision the promoted follower
  reconstructs from the replicated journal is byte-identical to the one
  the dead primary delivered.

The soak runs N seeded kill schedules over a 3-shard (``--full``:
5-shard) virtual-clock cluster.  Each schedule kills one or two shards at
a drawn crash point and, independently, may inject router/coordinator
partitions, replication-stream truncation and lease-renewal message loss
-- every cluster fault model in :mod:`repro.sim.faults`.  Any violated
invariant raises, so the runner exits non-zero and the CI smoke fails.
"""

from __future__ import annotations

import numpy as np

from repro.common import PAGE_SIZE
from repro.experiments.common import ExperimentContext, format_table
from repro.service import PlacementRequest, PlacementServer
from repro.service.cluster import ClusterRouter, PlacementShard, QuotaCoordinator
from repro.service.protocol import encode_decision
from repro.sim import FaultConfig, FaultInjector
from repro.experiments.service_load import TENANTS, _region_catalogue

#: shard kill points, biased toward the epoch protocol's windows
KILL_POINTS = ("shard_pump", "shard_mid_epoch", "shard_post_commit", "shard_lease_renew")
KILL_WEIGHTS = (0.25, 0.3, 0.3, 0.15)

#: every K-th schedule kills a second shard too
DOUBLE_KILL_EVERY = 5

#: virtual-clock shape of one schedule
TICK_S = 0.02
N_TICKS = 40
ARRIVALS_PER_TICK = 2
DRAIN_TICKS = 60

#: lease protocol constants (short TTL so expiry races actually happen
#: inside a <1s virtual run)
LEASE_TTL_S = 0.2
GLOBAL_QUOTA_PAGES = 1024
BASE_DEMAND_PAGES = 512  # 3+ shards x 512 > 1024: shards must contend


def _cluster_faults(rng: np.random.Generator) -> FaultConfig | None:
    """Draw this schedule's environment faults (router-level injector)."""
    partition = rng.random() < 0.4
    truncate = rng.random() < 0.4
    renewal_drop = rng.random() < 0.4
    if not (partition or truncate or renewal_drop):
        return None
    return FaultConfig(
        partition_rate=0.15 if partition else 0.0,
        partition_duration_s=0.25,  # > LEASE_TTL_S: forces expiry races
        replication_truncate_rate=0.3 if truncate else 0.0,
        replication_truncate_fraction=0.5,
        lease_renewal_drop_rate=0.5 if renewal_drop else 0.0,
    )


def run(ctx: ExperimentContext) -> dict[str, object]:
    n_schedules = 50 if ctx.fast else 200
    n_shards = 3 if ctx.fast else 5
    catalogue = _region_catalogue(ctx, n_shapes=4, tasks_per_shape=3)
    model = ctx.system.performance_model

    schedules: list[dict[str, object]] = []
    totals = {
        "kills": 0,
        "promotions": 0,
        "replayed_decisions": 0,
        "idempotent_replays": 0,
        "failover_retries": 0,
        "lease_expiries": 0,
        "lease_rejections": 0,
        "replication_lost": 0,
        "zero_capacity_pumps": 0,
        "bitexact_checked": 0,
    }
    kills_by_point: dict[str, int] = {}
    violations: list[str] = []

    for i in range(n_schedules):
        rng = np.random.default_rng([ctx.seed, 1000 + i])

        # -- this schedule's kill plan + environment faults ------------
        n_kills = 2 if (i + 1) % DOUBLE_KILL_EVERY == 0 else 1
        victims = rng.choice(n_shards, size=n_kills, replace=False)
        kill_injectors: dict[str, FaultInjector] = {}
        points: list[str] = []
        for v in victims:
            point = str(rng.choice(KILL_POINTS, p=KILL_WEIGHTS))
            points.append(point)
            kill_injectors[f"shard-{int(v)}"] = FaultInjector(
                FaultConfig(
                    crash_at=int(rng.integers(1, 6)), crash_point=point
                ),
                seed=int(rng.integers(0, 2**31)),
            )
        env_cfg = _cluster_faults(rng)
        env_faults = (
            FaultInjector(env_cfg, seed=int(rng.integers(0, 2**31)))
            if env_cfg is not None
            else None
        )

        # -- build the cluster -----------------------------------------
        coordinator = QuotaCoordinator(
            GLOBAL_QUOTA_PAGES, ttl_s=LEASE_TTL_S, telemetry=ctx.telemetry
        )

        def factory(shard_id, journal, _kills=kill_injectors):
            server = PlacementServer(
                model,
                dram_capacity_bytes=GLOBAL_QUOTA_PAGES * PAGE_SIZE,
                window_s=TICK_S,
                max_batch=16,
                telemetry=ctx.telemetry,
            )
            return PlacementShard(
                shard_id,
                server,
                coordinator,
                journal,
                # a promoted replacement never inherits its predecessor's
                # kill injector (pop): the kill models a process death
                faults=_kills.pop(shard_id, env_faults),
                telemetry=ctx.telemetry,
                checkpoint_every=4,
                base_demand_pages=BASE_DEMAND_PAGES,
            )

        router = ClusterRouter(
            coordinator,
            factory,
            heartbeat_interval_s=TICK_S,
            heartbeat_miss_threshold=2,
            faults=env_faults,
            telemetry=ctx.telemetry,
        )
        for s in range(n_shards):
            router.add_shard(f"shard-{s}", now=0.0)

        # -- drive the schedule ----------------------------------------
        submitted: dict[str, PlacementRequest] = {}
        delivered: dict[str, list[dict]] = {}
        max_granted = 0
        quota_breaches = 0

        def deliver(decisions):
            for d in decisions:
                delivered.setdefault(d.request_id, []).append(
                    encode_decision(d)
                )

        now, seq = 0.0, 0
        for tick in range(N_TICKS):
            now = tick * TICK_S
            for _ in range(ARRIVALS_PER_TICK):
                request = PlacementRequest(
                    request_id=f"s{i}-r{seq:04d}",
                    tenant=str(rng.choice(TENANTS)),
                    tasks=catalogue[int(rng.integers(len(catalogue)))],
                )
                seq += 1
                submitted[request.request_id] = request
                decision = router.submit(request, now)
                if decision is not None:
                    deliver([decision])
            deliver(router.tick(now))
            granted = coordinator.granted_pages(now)
            max_granted = max(max_granted, granted)
            if granted > GLOBAL_QUOTA_PAGES:
                quota_breaches += 1

        # -- drain: flush the queues, ride out pending promotions ------
        for extra in range(DRAIN_TICKS):
            now += TICK_S
            deliver(router.tick(now, flush=True))
            granted = coordinator.granted_pages(now)
            max_granted = max(max_granted, granted)
            if granted > GLOBAL_QUOTA_PAGES:
                quota_breaches += 1
            if router.inflight_count() == 0:
                break

        # -- bit-exact failover check ----------------------------------
        # every decision a promoted shard reconstructed from the journal
        # must match the one the dead primary delivered, byte for byte
        bitexact_checked = 0
        bitexact_mismatches = 0
        for shard in router.shards.values():
            for rid, decision in shard.decided_record().items():
                past = delivered.get(rid)
                if not past:
                    continue
                bitexact_checked += 1
                if encode_decision(decision) != past[-1]:
                    bitexact_mismatches += 1

        # -- invariants ------------------------------------------------
        unanswered = [rid for rid in submitted if rid not in delivered]
        duplicates = {
            rid: payloads
            for rid, payloads in delivered.items()
            if len(payloads) > 1
        }
        conflicts = {
            rid: payloads
            for rid, payloads in duplicates.items()
            if any(p != payloads[0] for p in payloads[1:])
        }
        # the dead instance is replaced at promotion, so the router's
        # crash log is the authoritative count of fired kills
        kills = router.log.count("cluster.shard_crashed")

        if unanswered:
            violations.append(
                f"schedule {i}: {len(unanswered)} lost decisions "
                f"(e.g. {unanswered[:3]})"
            )
        if duplicates:
            violations.append(
                f"schedule {i}: {len(duplicates)} request ids answered "
                f"more than once ({len(conflicts)} with conflicting grants)"
            )
        if quota_breaches:
            violations.append(
                f"schedule {i}: quota over-committed on {quota_breaches} ticks"
            )
        if bitexact_mismatches:
            violations.append(
                f"schedule {i}: {bitexact_mismatches} replayed decisions "
                f"differ from what the dead primary delivered"
            )
        if router.inflight_count():
            violations.append(
                f"schedule {i}: {router.inflight_count()} requests still "
                f"in flight after the drain"
            )

        fired_points = [
            e.detail.get("point", "?")
            for e in router.log.events
            if e.kind == "cluster.shard_crashed"
        ]
        for p in fired_points:
            kills_by_point[p] = kills_by_point.get(p, 0) + 1

        shard_stats = [s.stats for s in router.shards.values()]
        totals["kills"] += kills
        totals["promotions"] += router.stats["promotions"]
        totals["replayed_decisions"] += router.stats["replayed_decisions"]
        totals["failover_retries"] += router.stats["failover_retries"]
        totals["idempotent_replays"] += sum(
            s["idempotent_replays"] for s in shard_stats
        )
        totals["zero_capacity_pumps"] += sum(
            s["zero_capacity_pumps"] for s in shard_stats
        )
        totals["lease_expiries"] += coordinator.stats["expired"]
        totals["lease_rejections"] += coordinator.stats["rejected"]
        totals["replication_lost"] += sum(
            s.replication.stats["lost"] for s in router.shards.values()
        )
        totals["bitexact_checked"] += bitexact_checked

        schedules.append(
            {
                "schedule": i,
                "kill_points": fired_points,
                "env_faults": {
                    "partition": bool(env_cfg and env_cfg.partition_rate),
                    "replication_truncate": bool(
                        env_cfg and env_cfg.replication_truncate_rate
                    ),
                    "lease_renewal_drop": bool(
                        env_cfg and env_cfg.lease_renewal_drop_rate
                    ),
                },
                "requests": len(submitted),
                "answered": len(delivered),
                "kills": kills,
                "promotions": router.stats["promotions"],
                "replayed_decisions": router.stats["replayed_decisions"],
                "failover_retries": router.stats["failover_retries"],
                "bitexact_checked": bitexact_checked,
                "bitexact_mismatches": bitexact_mismatches,
                "max_granted_pages": max_granted,
                "quota_breaches": quota_breaches,
                "lease_expiries": coordinator.stats["expired"],
                "lease_rejections": coordinator.stats["rejected"],
                "unanswered": len(unanswered),
                "duplicate_answers": len(duplicates),
                "conflicting_answers": len(conflicts),
            }
        )

    # ------------------------------------------------------------------
    # report
    # ------------------------------------------------------------------
    crashed = sum(1 for s in schedules if s["kills"])
    print(
        f"soak: {n_schedules} schedules x {n_shards} shards, "
        f"{totals['kills']} kills fired across {crashed} schedules "
        f"({', '.join(f'{k}={v}' for k, v in sorted(kills_by_point.items()))})"
    )
    print(
        f"  promotions: {totals['promotions']}, decisions replayed warm: "
        f"{totals['replayed_decisions']}, failover retries: "
        f"{totals['failover_retries']} "
        f"(idempotent replays: {totals['idempotent_replays']})"
    )
    print(
        f"  leases: {totals['lease_expiries']} expiries, "
        f"{totals['lease_rejections']} stale renewals rejected; "
        f"replication entries lost+reshipped: {totals['replication_lost']}; "
        f"zero-capacity pumps: {totals['zero_capacity_pumps']}"
    )
    print(
        f"  bit-exact failover decisions checked: "
        f"{totals['bitexact_checked']} (0 mismatches required)"
    )
    print(f"  invariant violations: {len(violations)} (want 0)")
    sample = schedules[:: max(1, n_schedules // 10)]
    rows = [
        [
            s["schedule"],
            "+".join(s["kill_points"]) or "-",
            s["promotions"],
            s["replayed_decisions"],
            s["max_granted_pages"],
            s["unanswered"],
            s["duplicate_answers"],
        ]
        for s in sample
    ]
    print(
        format_table(
            [
                "schedule",
                "kill points",
                "promoted",
                "replayed",
                "max granted",
                "lost",
                "dupes",
            ],
            rows,
        )
    )

    if violations:
        raise RuntimeError(
            "cluster failover invariants violated:\n  " + "\n  ".join(violations)
        )

    return {
        "n_schedules": n_schedules,
        "n_shards": n_shards,
        "global_quota_pages": GLOBAL_QUOTA_PAGES,
        "lease_ttl_s": LEASE_TTL_S,
        "total_kills": totals["kills"],
        "kills_by_point": kills_by_point,
        "crashed_schedules": crashed,
        "promotions": totals["promotions"],
        "replayed_decisions": totals["replayed_decisions"],
        "failover_retries": totals["failover_retries"],
        "idempotent_replays": totals["idempotent_replays"],
        "lease_expiries": totals["lease_expiries"],
        "lease_rejections": totals["lease_rejections"],
        "replication_entries_lost": totals["replication_lost"],
        "zero_capacity_pumps": totals["zero_capacity_pumps"],
        "bitexact_checked": totals["bitexact_checked"],
        "lost_decisions": sum(s["unanswered"] for s in schedules),
        "duplicate_answers": sum(s["duplicate_answers"] for s in schedules),
        "conflicting_answers": sum(s["conflicting_answers"] for s in schedules),
        "quota_breaches": sum(s["quota_breaches"] for s in schedules),
        "bitexact_mismatches": sum(s["bitexact_mismatches"] for s in schedules),
        "invariant_violations": len(violations),
        "schedules": schedules,
    }
