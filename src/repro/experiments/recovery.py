"""Chaos-soak recovery study (our extension; see DESIGN.md Section 6b).

The crash-consistency layer (:mod:`repro.core.journal`) claims the control
plane can be killed at any tick and recover to a consistent, near-identical
run.  This experiment soaks that claim:

* **bit-identical check**: with journaling disabled, behaviour is exactly
  the current pipeline (same total time, migrations and bandwidth traces
  as a journaled crash-free run);
* **chaos soak**: N randomized seeded kill schedules (kill-at-tick,
  kill-mid-migration-batch, torn-tail WAL append; some schedules kill
  twice), each followed by journal recovery.  Every recovered run must
  (a) report zero placement-invariant violations and (b) finish within
  ``TOLERANCE`` of the crash-free run's total time.

A violated invariant or an out-of-tolerance run raises, so the runner
exits non-zero and records the traceback in ``results/recovery.json``.
"""

from __future__ import annotations

import numpy as np

from repro.apps import SpGEMMApp
from repro.core.journal import SimulatedCrash, WriteAheadLog
from repro.experiments.common import ExperimentContext, format_table
from repro.sim import Engine, FaultConfig, FaultInjector, MachineModel, optane_hm_config

#: recovered total time must be within this fraction of the crash-free run
TOLERANCE = 0.05

#: kill-point mix: mostly plain tick kills, with mid-batch and WAL-append
#: (half of the latter tearing the record being written)
POINTS = ("tick", "mid_batch", "wal_append")
POINT_WEIGHTS = (0.6, 0.2, 0.2)

#: every K-th schedule kills the recovered incarnation a second time
DOUBLE_KILL_EVERY = 5


def _engine(faults: FaultInjector | None, journal: WriteAheadLog | None) -> Engine:
    return Engine(MachineModel(), optane_hm_config(), faults=faults, journal=journal)


def _draw_schedule(rng: np.random.Generator, n_ticks: int, n_batches: int):
    """One (point, crash_at, torn) kill drawn from the schedule RNG."""
    point = str(rng.choice(POINTS, p=POINT_WEIGHTS))
    if point == "tick":
        crash_at = int(rng.integers(1, max(2, n_ticks)))
    else:
        crash_at = int(rng.integers(1, max(2, n_batches)))
    torn = bool(point == "wal_append" and rng.random() < 0.5)
    return point, crash_at, torn


def run(ctx: ExperimentContext) -> dict[str, object]:
    # the soak runs dozens of full engine executions, so it always uses the
    # small SpGEMM instance; --full raises the schedule count instead
    n_schedules = 50 if ctx.fast else 200
    app = SpGEMMApp.small(seed=ctx.seed)
    wl = app.build_workload(seed=ctx.seed)
    system = ctx.system
    engine_seed = ctx.seed + 1

    def policy():
        return system.policy(app.binding(wl), seed=ctx.seed + 5)

    # ------------------------------------------------------------------
    # crash-free baseline (journal on) + journaling-off bit-identity
    # ------------------------------------------------------------------
    base_journal = WriteAheadLog()
    baseline = _engine(None, base_journal).run(wl, policy(), seed=engine_seed)
    plain = _engine(None, None).run(wl, policy(), seed=engine_seed)
    bit_identical = (
        plain.total_time_s == baseline.total_time_s
        and plain.pages_migrated == baseline.pages_migrated
        and np.array_equal(plain.trace_time, baseline.trace_time)
        and np.array_equal(plain.trace_dram_bw, baseline.trace_dram_bw)
        and np.array_equal(plain.trace_pm_bw, baseline.trace_pm_bw)
        and np.array_equal(plain.trace_migration_bw, baseline.trace_migration_bw)
    )
    print(
        f"crash-free baseline: {baseline.total_time_s:.3f}s, "
        f"{baseline.pages_migrated} pages migrated, "
        f"journal of {len(base_journal)} records"
    )
    print(f"journaling off is bit-identical: {bit_identical}")
    if not bit_identical:
        raise RuntimeError("journaling changed the crash-free pipeline")

    n_ticks = len(baseline.trace_time)
    n_batches = sum(
        1
        for r in base_journal.records()
        if r.kind == "move" and r.payload.get("cause") == "policy"
    )

    # ------------------------------------------------------------------
    # the soak: seeded kill schedules -> crash -> recover -> verify
    # ------------------------------------------------------------------
    schedules: list[dict[str, object]] = []
    total_violations = 0
    total_crashes = 0
    warm_recoveries = 0
    worst = (0.0, -1)  # (|ratio-1|, schedule index)
    for i in range(n_schedules):
        rng = np.random.default_rng([ctx.seed, 1000 + i])
        kills_wanted = 2 if (i + 1) % DOUBLE_KILL_EVERY == 0 else 1
        point, crash_at, torn = _draw_schedule(rng, n_ticks, n_batches)
        journal = WriteAheadLog()
        faults = FaultInjector(
            FaultConfig(crash_at=crash_at, crash_point=point, crash_torn_tail=torn),
            seed=int(rng.integers(0, 2**31)),
        )
        points_fired: list[str] = []
        rolled_back = 0
        crashes = 0
        result = None
        image = None
        while True:
            eng = _engine(faults, journal if image is None else image.journal)
            try:
                if image is None:
                    result = eng.run(wl, policy(), seed=engine_seed)
                else:
                    result, outcome = eng.recover(
                        wl, policy(), image, seed=engine_seed
                    )
                    rolled_back += outcome.rolled_back_pages
                    if outcome.checkpoint_state is not None:
                        warm_recoveries += 1
                break
            except SimulatedCrash as exc:
                crashes += 1
                points_fired.append(point)
                image = exc.image
                if crashes < kills_wanted:
                    point, crash_at, torn = _draw_schedule(rng, n_ticks, n_batches)
                    faults = FaultInjector(
                        FaultConfig(
                            crash_at=crash_at,
                            crash_point=point,
                            crash_torn_tail=torn,
                        ),
                        seed=int(rng.integers(0, 2**31)),
                    )
                else:
                    faults = None

        assert result is not None
        violations = result.robustness.count("journal.invariant_violation")
        total_violations += violations
        total_crashes += crashes
        ratio = result.total_time_s / baseline.total_time_s
        if abs(ratio - 1.0) > worst[0]:
            worst = (abs(ratio - 1.0), i)
        schedules.append(
            {
                "schedule": i,
                "points": points_fired,
                "crashes": crashes,
                "rolled_back_pages": rolled_back,
                "total_time_s": result.total_time_s,
                "time_ratio": ratio,
                "invariant_violations": violations,
                "recovered_events": result.robustness.count("journal.recovered"),
                "torn_tail_events": result.robustness.count("journal.torn_tail"),
            }
        )

    crashed_schedules = sum(1 for s in schedules if s["crashes"] > 0)
    by_point: dict[str, int] = {}
    for s in schedules:
        for p in s["points"]:
            by_point[p] = by_point.get(p, 0) + 1

    print(
        f"\nsoak: {n_schedules} schedules, {total_crashes} kills fired "
        f"({crashed_schedules} schedules crashed; "
        f"{', '.join(f'{k}={v}' for k, v in sorted(by_point.items()))})"
    )
    print(
        f"  warm recoveries (checkpoint restored): "
        f"{warm_recoveries}/{total_crashes}"
    )
    print(f"  invariant violations: {total_violations} (want 0)")
    print(
        f"  worst total-time deviation: {worst[0] * 100:.3f}% "
        f"(schedule {worst[1]}, tolerance {TOLERANCE * 100:.0f}%)"
    )
    sample = schedules[:: max(1, n_schedules // 10)]
    rows = [
        [
            s["schedule"],
            "+".join(s["points"]) or "-",
            s["crashes"],
            s["rolled_back_pages"],
            float(s["time_ratio"]),
            s["invariant_violations"],
        ]
        for s in sample
    ]
    print(
        format_table(
            ["schedule", "kill points", "kills", "rolled back", "time ratio", "violations"],
            rows,
        )
    )

    if total_violations:
        raise RuntimeError(
            f"{total_violations} placement-invariant violations across the soak"
        )
    out_of_tolerance = [
        s["schedule"] for s in schedules if abs(s["time_ratio"] - 1.0) > TOLERANCE
    ]
    if out_of_tolerance:
        raise RuntimeError(
            f"recovered runs out of tolerance ({TOLERANCE:.0%}): {out_of_tolerance}"
        )

    return {
        "baseline_total_time_s": baseline.total_time_s,
        "bit_identical_with_journal_off": bit_identical,
        "n_schedules": n_schedules,
        "crashed_schedules": crashed_schedules,
        "total_kills": total_crashes,
        "kills_by_point": by_point,
        "warm_recoveries": warm_recoveries,
        "total_invariant_violations": total_violations,
        "worst_time_deviation": worst[0],
        "tolerance": TOLERANCE,
        "schedules": schedules,
    }
