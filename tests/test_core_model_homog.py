"""Tests for the homogeneous-memory predictor and the Equation-2 model."""

import numpy as np
import pytest

from repro.common import AccessPattern, make_rng
from repro.core.correlation import (
    CorrelationFunction,
    compare_models,
    generate_training_data,
    solve_f_target,
)
from repro.core.homogeneous import (
    BasicBlock,
    HomogeneousPredictor,
    input_similarity_scale,
)
from repro.core.model import PerformanceModel, TaskModelInputs
from repro.apps.codesamples import generate_corpus
from repro.sim.counters import collect_pmcs
from repro.sim.machine import MachineModel
from repro.sim.memspec import optane_hm_config
from repro.tasks import Footprint, ObjectAccess

HM = optane_hm_config()
MODEL = MachineModel()


class TestSimilarityScale:
    def test_identical_inputs(self):
        assert input_similarity_scale((2.0, 3.0), (2.0, 3.0)) == pytest.approx(1.0)

    def test_proportional_inputs(self):
        assert input_similarity_scale((1.0, 2.0), (2.0, 4.0)) == pytest.approx(2.0)

    def test_orthogonal_inputs(self):
        assert input_similarity_scale((1.0, 0.0), (0.0, 5.0)) == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            input_similarity_scale((1.0,), (1.0, 2.0))
        with pytest.raises(ValueError):
            input_similarity_scale((0.0,), (1.0,))


def block(name="b", reads=100_000, instr=5_000_000):
    return BasicBlock(
        name=name,
        unit_footprint=Footprint(
            accesses=(ObjectAccess("x", AccessPattern.STREAM, reads=reads),),
            instructions=instr,
        ),
    )


class TestHomogeneousPredictor:
    def test_measure_and_predict(self):
        pred = HomogeneousPredictor(MODEL, HM)
        pred.measure_blocks([block()])
        pred.record_base("t", {"b": 3.0}, (10.0,))
        t_dram, t_pm = pred.predict("t", (10.0,))
        assert 0 < t_dram < t_pm

    def test_scaling_with_input(self):
        pred = HomogeneousPredictor(MODEL, HM)
        pred.measure_blocks([block()])
        pred.record_base("t", {"b": 1.0}, (10.0,))
        base = pred.predict("t", (10.0,))
        double = pred.predict("t", (20.0,))
        assert double[1] == pytest.approx(2 * base[1])

    def test_input_dependent_blocks_skipped(self):
        pred = HomogeneousPredictor(MODEL, HM)
        dyn = BasicBlock("dyn", block().unit_footprint, input_independent=False)
        pred.measure_blocks([dyn])
        assert not pred.has_block("dyn")

    def test_unknown_block_rejected(self):
        pred = HomogeneousPredictor(MODEL, HM)
        with pytest.raises(KeyError):
            pred.record_base("t", {"ghost": 1.0}, (1.0,))

    def test_unknown_task_rejected(self):
        pred = HomogeneousPredictor(MODEL, HM)
        with pytest.raises(KeyError):
            pred.predict("ghost", (1.0,))


class TestSolveF:
    def test_roundtrip(self):
        """Plugging the solved f back into Equation 2 returns t_hybrid."""
        t_pm, t_dram, r, t_hyb = 10.0, 4.0, 0.3, 7.0
        f = solve_f_target(t_hyb, t_pm, t_dram, r)
        reconstructed = t_pm * (1 - r) * f + t_dram * r
        assert reconstructed == pytest.approx(t_hyb)

    def test_endpoint_r0(self):
        assert solve_f_target(10.0, 10.0, 4.0, 0.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            solve_f_target(1.0, 1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            solve_f_target(1.0, 0.0, 1.0, 0.5)


@pytest.fixture(scope="module")
def small_training_data():
    samples = generate_corpus(25, seed=0)
    return generate_training_data(MODEL, HM, samples, placements_per_sample=6, seed=0)


class TestTrainingData:
    def test_shapes(self, small_training_data):
        data = small_training_data
        assert data.X.shape == (25 * 6, 21)
        assert data.y.shape == (150,)

    def test_r_column_in_range(self, small_training_data):
        r = small_training_data.X[:, -1]
        assert (r >= 0).all() and (r <= 1).all()

    def test_targets_positive(self, small_training_data):
        assert (small_training_data.y > 0).all()

    def test_restrict_events(self, small_training_data):
        sub = small_training_data.restrict_events(("IPC", "LLC_MPKI"))
        assert sub.X.shape[1] == 3  # two events + r_dram
        assert sub.feature_names == ("IPC", "LLC_MPKI", "r_dram")


class TestCorrelationFunction:
    def test_train_and_predict(self, small_training_data):
        corr = CorrelationFunction.train(small_training_data, seed=0)
        fp = generate_corpus(3, seed=5)[0].footprint()
        pmcs = collect_pmcs(fp, MODEL, HM, rng=make_rng(0))
        val = corr.predict(pmcs, 0.5)
        assert 0.05 <= val <= 5.0

    def test_predict_batch_matches_scalar(self, small_training_data):
        corr = CorrelationFunction.train(small_training_data, seed=0)
        fp = generate_corpus(3, seed=5)[0].footprint()
        pmcs = collect_pmcs(fp, MODEL, HM, rng=make_rng(0))
        ratios = np.array([0.0, 0.3, 0.9])
        batch = corr.predict_batch(pmcs, ratios)
        scalar = [corr.predict(pmcs, float(r)) for r in ratios]
        np.testing.assert_allclose(batch, scalar)

    def test_predict_validates_r(self, small_training_data):
        corr = CorrelationFunction.train(small_training_data, seed=0)
        with pytest.raises(ValueError):
            corr.predict({e: 0.0 for e in corr.events}, 1.5)

    def test_model_zoo_runs(self, small_training_data):
        reports = compare_models(small_training_data, seed=0)
        names = {r.name for r in reports}
        assert names == {"DTR", "SVR", "KNR", "RFR", "GBR", "ANN"}
        best = max(reports, key=lambda r: r.r2)
        assert best.r2 > 0.5


@pytest.fixture(scope="module")
def perf_model(small_training_data):
    return PerformanceModel(CorrelationFunction.train(small_training_data, seed=0))


def task_inputs(seed=3):
    fp = generate_corpus(5, seed=seed)[2].footprint()
    t_dram, t_pm = MODEL.endpoint_times(fp, HM)
    return fp, TaskModelInputs(
        task_id="t",
        t_pm_only=t_pm,
        t_dram_only=t_dram,
        total_accesses=fp.total_accesses,
        pmcs=collect_pmcs(fp, MODEL, HM, rng=make_rng(1)),
    )


class TestPerformanceModel:
    def test_r1_is_dram_endpoint(self, perf_model):
        _, ti = task_inputs()
        assert perf_model.predict_ratio(ti, 1.0) == ti.t_dram_only

    def test_r0_close_to_pm(self, perf_model):
        _, ti = task_inputs()
        assert perf_model.predict_ratio(ti, 0.0) == pytest.approx(ti.t_pm_only, rel=0.35)

    def test_tracks_ground_truth(self, perf_model):
        fp, ti = task_inputs()
        for r in (0.2, 0.5, 0.8):
            truth = MODEL.uniform_ratio_time(fp, HM, r)
            pred = perf_model.predict_ratio(ti, r)
            assert pred == pytest.approx(truth, rel=0.35)

    def test_accesses_form(self, perf_model):
        _, ti = task_inputs()
        t_half = perf_model.predict(ti, ti.total_accesses * 0.5)
        assert t_half == pytest.approx(perf_model.predict_ratio(ti, 0.5))

    def test_ratio_grid_matches_scalar(self, perf_model):
        _, ti = task_inputs()
        levels = np.array([0.0, 0.25, 0.5, 1.0])
        grid = perf_model.ratio_grid(ti, levels)
        scalar = [perf_model.predict_ratio(ti, float(r)) for r in levels]
        np.testing.assert_allclose(grid, scalar)

    def test_validation(self, perf_model):
        _, ti = task_inputs()
        with pytest.raises(ValueError):
            perf_model.predict_ratio(ti, -0.1)
        with pytest.raises(ValueError):
            perf_model.predict(ti, -5)
        with pytest.raises(ValueError):
            TaskModelInputs("t", 0.0, 1.0, 1.0, {})
