"""Hot-page detection over sampled profiling output."""

from __future__ import annotations

import numpy as np

from repro.profiling.pte import PageSampleEstimate

__all__ = ["top_k_hot_pages"]


def top_k_hot_pages(
    estimate: PageSampleEstimate, k: int, min_count: float = 1.0
) -> list[tuple[str, np.ndarray]]:
    """Pick the ``k`` hottest sampled pages across all objects.

    Returns per-object arrays of page indices, hottest-first overall.  Pages
    whose sampled count is below ``min_count`` are never considered hot --
    the accessed-bit scan cannot distinguish them from noise.

    This is the task-agnostic selection MemoryOptimizer performs: hotness is
    global, so a single task with skewed pages can monopolise the result.
    """
    if k < 1:
        return []
    names: list[str] = []
    pages: list[np.ndarray] = []
    counts: list[np.ndarray] = []
    for name, (idx, cnt) in estimate.samples.items():
        mask = cnt >= min_count
        if mask.any():
            names.extend([name] * int(mask.sum()))
            pages.append(idx[mask])
            counts.append(cnt[mask])
    if not pages:
        return []
    all_pages = np.concatenate(pages)
    all_counts = np.concatenate(counts)
    order = np.argsort(all_counts, kind="stable")[::-1][:k]
    name_arr = np.array(names)
    picked_names = name_arr[order]
    picked_pages = all_pages[order]
    out: list[tuple[str, np.ndarray]] = []
    for name in dict.fromkeys(picked_names.tolist()):
        sel = picked_names == name
        # deduplicate pages sampled more than once
        out.append((name, np.unique(picked_pages[sel])))
    return out
