"""Worker pool driving parallel plan computation.

A thin, mode-switchable executor used in two places:

* the placement server computes independent request batches concurrently
  (``mode="thread"`` -- planning is numpy-heavy, so threads overlap well
  enough and share the trained model for free);
* ``python -m repro.experiments.runner all --jobs N`` fans independent
  experiments out to processes (``mode="process"`` -- full isolation, one
  :class:`~repro.experiments.common.ExperimentContext` per worker).

Seeding: stochastic work dispatched to workers must not share one RNG
stream.  The pool pre-spawns one `SeedSequence`-derived child seed per
worker via the library's :func:`~repro.common.spawn_rng` discipline, and
hands it to the ``initializer`` -- the same mechanism the correlation
trainer uses for its child models, so parallel results stay reproducible
and statistically independent.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from repro.common import make_rng, spawn_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry

__all__ = ["WorkerPool", "JobResult"]

_MODES = ("serial", "thread", "process")


@dataclass(frozen=True)
class JobResult:
    """Outcome of one pooled job: the value, or the captured failure.

    Failure isolation is the pool's contract with the runner: one broken
    job never takes down its siblings, and the traceback survives the
    process boundary as text.
    """

    index: int
    ok: bool
    value: object = None
    error_type: str = ""
    error: str = ""
    traceback: str = ""

    def failure_payload(self) -> dict:
        """The failure in the runner's canonical shape
        (``{"failed", "error_type", "error", "traceback"}``), so pool
        deaths and in-experiment exceptions serialize identically."""
        if self.ok:
            raise ValueError("failure_payload() on a successful JobResult")
        return {
            "failed": True,
            "error_type": self.error_type,
            "error": self.error,
            "traceback": self.traceback,
        }


def _guarded(fn: Callable, index: int, args: tuple) -> JobResult:
    import traceback as _traceback

    try:
        return JobResult(index=index, ok=True, value=fn(*args))
    except Exception as exc:
        return JobResult(
            index=index,
            ok=False,
            error_type=type(exc).__name__,
            error=str(exc),
            traceback=_traceback.format_exc(),
        )


class WorkerPool:
    """Order-preserving map over an executor, with per-job failure capture.

    ``mode="serial"`` runs inline (no executor at all): it is the
    deterministic baseline the parallel modes are tested against, and the
    automatic fallback for ``workers <= 1``.
    """

    def __init__(
        self,
        workers: int = 4,
        mode: str = "thread",
        seed=None,
        initializer: Callable | None = None,
        initargs: tuple = (),
        seed_workers: bool = False,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers == 1:
            mode = "serial"
        self.workers = workers
        self.mode = mode
        self.telemetry = telemetry
        self._initializer = initializer
        self._initargs = initargs
        if seed_workers:
            # one independent child stream per worker, spawned from a single
            # parent so the set of streams is a pure function of `seed`
            parent = make_rng(seed)
            seeds = tuple(
                int(spawn_rng(parent).integers(0, 2**63 - 1))
                for _ in range(workers)
            )
            self.worker_seeds: tuple[int, ...] = seeds
        else:
            self.worker_seeds = ()
        self._executor: concurrent.futures.Executor | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "WorkerPool":
        if self.mode == "thread":
            self._executor = concurrent.futures.ThreadPoolExecutor(
                max_workers=self.workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        elif self.mode == "process":
            self._executor = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=self._initializer,
                initargs=self._initargs,
            )
        elif self._initializer is not None:
            self._initializer(*self._initargs)
        return self

    def __exit__(self, *exc_info) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Iterable[tuple] | Iterable[object]) -> list[JobResult]:
        """Run ``fn(*item)`` for every item; results in submission order.

        Non-tuple items are treated as single arguments.  Each job's
        exception (if any) is captured in its :class:`JobResult` rather
        than raised, so a batch always yields one result per item.
        """
        jobs: list[tuple] = [
            item if isinstance(item, tuple) else (item,) for item in items
        ]
        if self.telemetry is not None and jobs:
            self.telemetry.inc(
                "merch_service_pool_jobs_total", len(jobs), mode=self.mode
            )
        if self.mode == "serial" or self._executor is None:
            return [_guarded(fn, i, args) for i, args in enumerate(jobs)]
        futures = [
            self._executor.submit(_guarded, fn, i, args)
            for i, args in enumerate(jobs)
        ]
        results = [f.result() for f in futures]
        return sorted(results, key=lambda r: r.index)

    def map_values(self, fn: Callable, items: Iterable) -> list[object]:
        """Like :meth:`map` but re-raises the first failure (ordered)."""
        results = self.map(fn, items)
        for res in results:
            if not res.ok:
                raise RuntimeError(
                    f"pooled job {res.index} failed: {res.error_type}: "
                    f"{res.error}\n{res.traceback}"
                )
        return [res.value for res in results]
