"""Fox's algorithm (blocked y = A x) on the DAG runtime.

The Parla example this ports (SNIPPETS.md, ``examples/fox.py``) computes a
blocked matrix-vector product on an ``n x n`` grid with three task waves --
broadcast ``x`` along columns, block-wise multiply, reduce along rows --
plus a join task, with ``placement=loc(i, j)`` annotations pinning every
block by hand.  Here the placement annotations disappear: the program only
declares tasks, dependencies, and data, and the Merchandiser planner infers
where blocks live.

Three layers, as for the barrier apps:

* :func:`fox_matvec` -- a runnable numpy reference implementing the exact
  bcast/mult/reduce task structure (validated against the monolithic
  ``A @ x`` in the tests);
* :class:`FoxApp` -- the simulated-scale task DAG: block nonzero counts
  from a real R-MAT instance drive per-block footprints, so the power-law
  block skew is the intrinsic load imbalance;
* the kernel IR -- sparse blocks are index-chased (CSR traversal) and the
  ``x`` copies are gathered through column indices: Stream + Random.

The multiply tasks iterate as a power iteration: each outer iteration
re-multiplies with drifted inputs (new vector, same structure), which is
what lets the first iteration base-profile and later iterations plan.
"""

from __future__ import annotations

import numpy as np

from repro.apps.base import AppConfig
from repro.apps.dag_base import DAGApplication
from repro.apps.synth import rmat_matrix
from repro.common import AccessPattern, MIB, make_rng
from repro.core.patterns import Affine, ArrayRef, Indirect, Loop
from repro.runtime.api import DAGBuilder
from repro.runtime.dag import TaskDAG
from repro.tasks.task import DataObject, Footprint, KernelProfile, ObjectAccess

__all__ = ["fox_matvec", "FoxApp"]


# ---------------------------------------------------------------------------
# reference kernel
# ---------------------------------------------------------------------------
def fox_matvec(
    A_blocks: list[list[np.ndarray]], x_blocks: list[np.ndarray]
) -> list[np.ndarray]:
    """Fox's algorithm for ``y = A x`` over pre-blocked operands.

    Follows the Parla example's task structure literally: broadcast copies
    of ``x[j]`` to every grid cell of column ``j``, multiply block-wise
    into partials, reduce partials along each row.
    """
    n = len(A_blocks)
    if any(len(row) != len(x_blocks) for row in A_blocks):
        raise ValueError("A block grid and x blocking disagree")
    # broadcast along columns: xp[i][j] is cell (i, j)'s private copy
    xp = [[x_blocks[j].copy() for j in range(len(x_blocks))] for _ in range(n)]
    # block-wise multiplication into partials
    yp = [
        [A_blocks[i][j] @ xp[i][j] for j in range(len(x_blocks))]
        for i in range(n)
    ]
    # reduce along rows
    return [sum(yp[i][1:], yp[i][0].copy()) for i in range(n)]


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------
class FoxApp(DAGApplication):
    """Fox's algorithm at simulated scale on the DAG runtime."""

    name = "Fox"

    @classmethod
    def small_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=2,  # 2x2 block grid
            footprint_bytes=96 * MIB,
            iterations=3,
            mpi_processes=1,
            openmp_threads=4,
            reference_scale=9,
        )

    @classmethod
    def paper_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=3,  # 3x3 block grid
            footprint_bytes=430 * MIB,
            iterations=8,  # power iteration: profile early, plan the rest
            mpi_processes=1,
            openmp_threads=9,
            reference_scale=11,
        )

    @property
    def grid(self) -> int:
        return self.config.n_tasks

    # -- structure calibration ---------------------------------------------
    def _block_shares(self, seed) -> np.ndarray:
        """Nonzero share per (i, j) block of a real R-MAT instance."""
        n = self.grid
        A = rmat_matrix(self.config.reference_scale, seed=seed).tocsr()
        size = A.shape[0]
        bounds = np.linspace(0, size, n + 1).astype(np.int64)
        nnz = np.zeros((n, n), dtype=np.float64)
        coo = A.tocoo()
        ri = np.searchsorted(bounds, coo.row, side="right") - 1
        ci = np.searchsorted(bounds, coo.col, side="right") - 1
        np.add.at(nnz, (ri, ci), 1.0)
        nnz = np.maximum(nnz, 1.0)
        share = nnz / nnz.sum()
        # temper the raw R-MAT corner blowup: real block partitioners
        # rebalance somewhat, and a single dominant block would collapse
        # the placement problem to one task
        uniform = np.full((n, n), 1.0 / (n * n))
        share = 0.6 * uniform + 0.4 * share
        return share / share.sum()

    # -- DAG builder --------------------------------------------------------
    def build_dags(self, seed=None) -> list[TaskDAG]:
        seed = self.seed if seed is None else seed
        rng = make_rng(seed)
        n = self.grid
        cfg = self.config
        budget = cfg.footprint_bytes
        share = self._block_shares(seed)

        a_bytes = np.maximum((0.78 * budget * share).astype(np.int64), MIB)
        vec_budget = max(int(0.22 * budget), 4 * MIB)
        # x (n) + xp (n^2) + yp (n^2) + y (n) equal-size blocks
        vec_bytes = max(vec_budget // (2 * n * n + 2 * n), MIB // 4)

        objects: list[DataObject] = []
        for i in range(n):
            for j in range(n):
                objects.append(
                    DataObject(
                        f"A_{i}_{j}",
                        size_bytes=int(a_bytes[i, j]),
                        owner=f"mult_{i}_{j}",
                        hotness="zipf",
                        zipf_s=float(rng.uniform(0.3, 0.9)),
                    )
                )
        for j in range(n):
            objects.append(DataObject(f"x_{j}", size_bytes=vec_bytes, owner=None))
        for i in range(n):
            for j in range(n):
                objects.append(
                    DataObject(
                        f"xp_{i}_{j}", size_bytes=vec_bytes, owner=f"bcast_{i}_{j}"
                    )
                )
                objects.append(
                    DataObject(
                        f"yp_{i}_{j}", size_bytes=vec_bytes, owner=f"mult_{i}_{j}"
                    )
                )
        for i in range(n):
            objects.append(DataObject(f"y_{i}", size_bytes=vec_bytes, owner=None))

        total_accesses = int(0.9 * budget / 64)
        mult_profile = KernelProfile(
            branch_rate=0.10, branch_misp_rate=0.04, vector_fraction=0.15, ilp=1.9
        )
        vec_profile = KernelProfile(
            branch_rate=0.03, branch_misp_rate=0.01, vector_fraction=0.6, ilp=3.0
        )

        dags: list[TaskDAG] = []
        self._node_sizes = {}
        for it in range(cfg.iterations):
            scale = float(rng.uniform(0.85, 1.2)) if it > 0 else 1.0
            density = float(rng.uniform(0.8, 1.3)) if it > 0 else 1.0
            # per-block effective-nnz drift: each iteration's input vector
            # reaches a different subset of every block (the sparse matvec
            # only touches rows matching x's nonzeros), so the hot blocks
            # move between iterations -- the input-dependent behaviour that
            # defeats one-shot hand placement
            work = (
                rng.uniform(0.6, 1.55, size=(n, n)) if it > 0 else np.ones((n, n))
            )
            b = DAGBuilder(self.name)
            for obj in objects:
                b.declare_object(obj)

            vec_acc = self.mem_accesses(
                AccessPattern.STREAM, max(vec_bytes // 8, 64), 8, vec_bytes
            )
            # broadcast along columns
            for i in range(n):
                for j in range(n):
                    tid = f"bcast_{i}_{j}"
                    fp = Footprint(
                        accesses=(
                            ObjectAccess(f"x_{j}", AccessPattern.STREAM, reads=vec_acc),
                            ObjectAccess(
                                f"xp_{i}_{j}", AccessPattern.STREAM,
                                reads=1, writes=vec_acc,
                            ),
                        ),
                        instructions=max(vec_acc * 4, 1000),
                        profile=vec_profile,
                    )
                    sizes = {
                        f"x_{j}": max(int(vec_bytes * scale), MIB // 4),
                        f"xp_{i}_{j}": max(int(vec_bytes * scale), MIB // 4),
                    }
                    self._node_sizes[(tid, it)] = sizes
                    b.add_task(
                        tid, fp,
                        reads=[f"x_{j}"], writes=[f"xp_{i}_{j}"],
                        input_vector=tuple(float(v) for v in sizes.values()),
                    )
            # block-wise multiplication (sparse blocks: CSR index chase on
            # A, gather of the x copy through A's column indices)
            for i in range(n):
                for j in range(n):
                    tid = f"mult_{i}_{j}"
                    nnz_acc = share[i, j] * total_accesses * scale * work[i, j]
                    a_stream = self.mem_accesses(
                        AccessPattern.STREAM,
                        max(int(nnz_acc * 0.45), 64), 8, int(a_bytes[i, j]),
                    )
                    a_rand = self.mem_accesses(
                        AccessPattern.RANDOM,
                        max(int(nnz_acc * 0.55 * density), 64),
                        8,
                        int(a_bytes[i, j]),
                    )
                    x_gather = self.mem_accesses(
                        AccessPattern.RANDOM,
                        max(int(nnz_acc * 0.25 * density), 64), 8, vec_bytes,
                    )
                    y_writes = self.mem_accesses(
                        AccessPattern.STREAM, max(vec_bytes // 8, 64), 8, vec_bytes
                    )
                    fp = Footprint(
                        accesses=(
                            ObjectAccess(
                                f"A_{i}_{j}", AccessPattern.STREAM, reads=a_stream
                            ),
                            ObjectAccess(
                                f"A_{i}_{j}", AccessPattern.RANDOM, reads=a_rand
                            ),
                            ObjectAccess(
                                f"xp_{i}_{j}", AccessPattern.RANDOM, reads=x_gather
                            ),
                            ObjectAccess(
                                f"yp_{i}_{j}", AccessPattern.STREAM,
                                reads=1, writes=y_writes,
                            ),
                        ),
                        instructions=max(int(nnz_acc * 60), 1000),
                        profile=mult_profile,
                    )
                    sizes = {
                        # bytes of the block actually touched this input
                        f"A_{i}_{j}": max(
                            int(a_bytes[i, j] * scale * work[i, j]), MIB
                        ),
                        f"xp_{i}_{j}": max(int(vec_bytes * scale), MIB // 4),
                        f"yp_{i}_{j}": max(int(vec_bytes * scale), MIB // 4),
                    }
                    self._node_sizes[(tid, it)] = sizes
                    b.add_task(
                        tid, fp,
                        reads=[f"A_{i}_{j}", f"xp_{i}_{j}"],
                        writes=[f"yp_{i}_{j}"],
                        input_vector=tuple(float(v) for v in sizes.values()),
                    )
            # reduce along rows
            for i in range(n):
                tid = f"reduce_{i}"
                accesses = tuple(
                    ObjectAccess(f"yp_{i}_{j}", AccessPattern.STREAM, reads=vec_acc)
                    for j in range(n)
                ) + (
                    ObjectAccess(
                        f"y_{i}", AccessPattern.STREAM, reads=1, writes=vec_acc
                    ),
                )
                fp = Footprint(
                    accesses=accesses,
                    instructions=max(vec_acc * n * 3, 1000),
                    profile=vec_profile,
                )
                sizes = {f"yp_{i}_{j}": max(int(vec_bytes * scale), MIB // 4) for j in range(n)}
                sizes[f"y_{i}"] = max(int(vec_bytes * scale), MIB // 4)
                self._node_sizes[(tid, it)] = sizes
                b.add_task(
                    tid, fp,
                    reads=[f"yp_{i}_{j}" for j in range(n)],
                    writes=[f"y_{i}"],
                    input_vector=tuple(float(v) for v in sizes.values()),
                )
            # power-iteration join: normalise y into the next x
            accesses = tuple(
                ObjectAccess(f"y_{i}", AccessPattern.STREAM, reads=vec_acc)
                for i in range(n)
            ) + tuple(
                ObjectAccess(f"x_{j}", AccessPattern.STREAM, reads=1, writes=vec_acc)
                for j in range(n)
            )
            sizes = {f"y_{i}": max(int(vec_bytes * scale), MIB // 4) for i in range(n)}
            for j in range(n):
                sizes[f"x_{j}"] = max(int(vec_bytes * scale), MIB // 4)
            self._node_sizes[("norm", it)] = sizes
            b.add_task(
                "norm",
                Footprint(
                    accesses=accesses,
                    instructions=max(vec_acc * n * 4, 1000),
                    profile=vec_profile,
                ),
                reads=[f"y_{i}" for i in range(n)],
                writes=[f"x_{j}" for j in range(n)],
                input_vector=tuple(float(v) for v in sizes.values()),
            )
            dags.append(b.build())
        return dags

    # -- Merchandiser registration ------------------------------------------
    def task_kernels(self) -> dict[str, list[Loop]]:
        n = self.grid
        kernels: dict[str, list[Loop]] = {}
        for i in range(n):
            for j in range(n):
                kernels[f"bcast_{i}_{j}"] = [
                    Loop(
                        "k",
                        (
                            ArrayRef(f"x_{j}", Affine("k")),
                            ArrayRef(f"xp_{i}_{j}", Affine("k"), is_write=True),
                        ),
                    )
                ]
                a = f"A_{i}_{j}"
                kernels[f"mult_{i}_{j}"] = [
                    Loop(
                        "k",
                        (
                            # CSR traversal: stream the row pointers, chase
                            # the index structure, gather the x copy
                            ArrayRef(a, Affine("k")),
                            ArrayRef(a, Indirect(a, Affine("k"))),
                            ArrayRef(f"xp_{i}_{j}", Indirect(a, Affine("k"))),
                            ArrayRef(f"yp_{i}_{j}", Affine("k"), is_write=True),
                        ),
                    )
                ]
        for i in range(n):
            kernels[f"reduce_{i}"] = [
                Loop(
                    "k",
                    tuple(ArrayRef(f"yp_{i}_{j}", Affine("k")) for j in range(n))
                    + (ArrayRef(f"y_{i}", Affine("k"), is_write=True),),
                )
            ]
        kernels["norm"] = [
            Loop(
                "k",
                tuple(ArrayRef(f"y_{i}", Affine("k")) for i in range(n))
                + tuple(
                    ArrayRef(f"x_{j}", Affine("k"), is_write=True) for j in range(n)
                ),
            )
        ]
        return kernels

    def managed_objects(self, dag: TaskDAG) -> dict[str, list[DataObject]]:
        by_name = {o.name: o for o in dag.objects}
        out: dict[str, list[DataObject]] = {}
        for node in dag.nodes:
            out[node.task_id] = [by_name[name] for name in node.footprint.objects]
        return out

    def input_dependent_objects(self) -> dict[str, tuple[str, ...]]:
        n = self.grid
        return {
            f"mult_{i}_{j}": (f"A_{i}_{j}", f"xp_{i}_{j}")
            for i in range(n)
            for j in range(n)
        }

    def hand_priority(self) -> list[str]:
        """The developer's static ranking: biggest matrix blocks first (the
        natural reading of the Parla example's hand placement), vectors
        last."""
        n = self.grid
        share = self._block_shares(self.seed)
        blocks = sorted(
            ((float(share[i, j]), f"A_{i}_{j}") for i in range(n) for j in range(n)),
            reverse=True,
        )
        priority = [name for _, name in blocks]
        priority += [f"x_{j}" for j in range(n)]
        priority += [f"xp_{i}_{j}" for i in range(n) for j in range(n)]
        priority += [f"yp_{i}_{j}" for i in range(n) for j in range(n)]
        priority += [f"y_{i}" for i in range(n)]
        return priority
