"""Fault-injection robustness study (our extension).

The paper's workflow trusts three information channels -- sampling
profilers, performance counters and the migration syscall path -- plus a
quiet machine.  This experiment injects faults into all of them (see
:mod:`repro.sim.faults`) and measures how gracefully each policy degrades:

* **severity sweep**: a mixed fault cocktail (failed/rejected migration
  batches, corrupted/stale PMC reads, dropped/duplicated PEBS and PTE
  windows, misreported ``LB_HM_config`` sizes) is scaled from 0 (healthy)
  upward; we report each variant's slowdown over its own fault-free run.
  Compared variants: Merchandiser with runtime guardrails
  (:mod:`repro.core.guardrails`), Merchandiser without them, and the
  task-agnostic MemoryOptimizer baseline;
* **watchdog demo**: a harsh transient disturbance (DRAM capacity pressure
  + PM bandwidth collapse + migration rejects) hits mid-run, trips the
  misprediction watchdog into hot-page-daemon mode, and the run shows it
  re-arming after the disturbance passes -- the degrade/re-arm timestamps
  come straight out of ``RunResult.robustness``.
"""

from __future__ import annotations

from repro.apps import SpGEMMApp
from repro.baselines import MemoryOptimizerPolicy
from repro.core.guardrails import GuardrailConfig
from repro.sim import (
    Engine,
    FaultConfig,
    FaultInjector,
    MachineModel,
    optane_hm_config,
)
from repro.experiments.common import ExperimentContext, format_table

#: the mixed fault cocktail at severity 1.0: 10% failed migration batches
#: + 5% corrupted PMC reads (the reference point), plus sampling/API noise
#: and occasional environment disturbances at comparable rates
BASE_FAULTS = FaultConfig(
    migration_fail_rate=0.10,
    migration_reject_rate=0.05,
    pmc_corrupt_rate=0.05,
    pmc_stale_rate=0.05,
    pebs_drop_rate=0.05,
    pebs_duplicate_rate=0.10,
    pte_drop_rate=0.05,
    pte_duplicate_rate=0.05,
    object_size_error_rate=0.05,
    dram_pressure_rate=0.003,
    dram_pressure_fraction=0.7,
    dram_pressure_duration_s=40.0,
    pm_bw_degradation_rate=0.003,
    pm_bw_degradation_factor=0.1,
    pm_bw_degradation_duration_s=40.0,
)

SEVERITIES = (0.0, 1.0, 2.0)

#: transient disturbance used for the watchdog demonstration: an external
#: co-runner steals most DRAM and PM bandwidth for a mid-run window
WATCHDOG_FAULTS = FaultConfig(
    dram_pressure_rate=1.0,
    dram_pressure_fraction=0.9,
    dram_pressure_duration_s=30.0,
    pm_bw_degradation_rate=1.0,
    pm_bw_degradation_factor=0.05,
    pm_bw_degradation_duration_s=30.0,
    migration_reject_rate=0.5,
    start_s=100.0,
    end_s=700.0,
)


def _engine(ctx: ExperimentContext, faults: FaultInjector | None) -> Engine:
    return Engine(MachineModel(), optane_hm_config(), faults=faults)


def _policy(ctx: ExperimentContext, app, wl, guarded: bool):
    extra = {"guardrails": GuardrailConfig()} if guarded else {}
    return ctx.system.policy(app.binding(wl), seed=ctx.seed + 5, **extra)


def run(ctx: ExperimentContext) -> dict[str, object]:
    app = ctx.app(SpGEMMApp)
    wl = ctx.workload(SpGEMMApp)

    # ------------------------------------------------------------------
    # severity sweep
    # ------------------------------------------------------------------
    variants = ("merch-guarded", "merch-unguarded", "memory-optimizer")
    sweep: dict[str, dict[str, object]] = {v: {} for v in variants}
    for severity in SEVERITIES:
        cfg = BASE_FAULTS.scaled(severity)
        for variant in variants:
            faults = (
                FaultInjector(cfg, seed=ctx.seed + 11) if cfg.any_enabled else None
            )
            engine = _engine(ctx, faults)
            if variant == "memory-optimizer":
                policy = MemoryOptimizerPolicy(seed=ctx.seed + 7)
            else:
                policy = _policy(ctx, app, wl, guarded=variant == "merch-guarded")
            result = engine.run(wl, policy, seed=ctx.seed + 1)
            sweep[variant][severity] = {
                "total_time_s": result.total_time_s,
                "fault_events": len(result.robustness.fault_events()),
                "guardrail_counters": result.robustness.guardrail_counters(),
            }
    for variant in variants:
        base = sweep[variant][0.0]["total_time_s"]
        for severity in SEVERITIES:
            point = sweep[variant][severity]
            point["slowdown_vs_fault_free"] = point["total_time_s"] / base

    rows = []
    for severity in SEVERITIES:
        row = [f"{severity:.1f}x"]
        for variant in variants:
            row.append(float(sweep[variant][severity]["slowdown_vs_fault_free"]))
        rows.append(row)
    print("Slowdown vs each variant's own fault-free run (SpGEMM)")
    print(format_table(["severity"] + list(variants), rows))
    g1 = sweep["merch-guarded"][1.0]["slowdown_vs_fault_free"]
    u1 = sweep["merch-unguarded"][1.0]["slowdown_vs_fault_free"]
    verb = "cut" if g1 < u1 else "did not cut"
    print(
        f"  at 1.0x (10% failed migrations + 5% corrupt PMCs): guardrails "
        f"{verb} the slowdown: {u1:.3f}x unguarded vs {g1:.3f}x guarded"
    )

    # a fault-free guarded run must be guardrail-silent
    clean = sweep["merch-guarded"][0.0]["guardrail_counters"]
    print(f"  fault-free guardrail events: {sum(clean.values())} (want 0)")

    # ------------------------------------------------------------------
    # watchdog degrade / re-arm demonstration
    # ------------------------------------------------------------------
    faults = FaultInjector(WATCHDOG_FAULTS, seed=ctx.seed + 11)
    engine = _engine(ctx, faults)
    policy = _policy(ctx, app, wl, guarded=True)
    result = engine.run(wl, policy, seed=ctx.seed + 1)
    wd_events = [
        {"kind": ev.kind, "time_s": ev.time_s, **ev.detail}
        for ev in result.robustness.guardrail_events()
        if "watchdog" in ev.kind
    ]
    print("Watchdog under a transient disturbance (100s-700s):")
    for ev in wd_events:
        print(f"  {ev['kind']} at t={ev['time_s']:.0f}s (error={ev['error']:.2f})")
    if not wd_events:
        print("  (watchdog never tripped)")

    return {
        "sweep": {v: {str(s): sweep[v][s] for s in SEVERITIES} for v in variants},
        "watchdog_demo": {
            "fault_window_s": [WATCHDOG_FAULTS.start_s, WATCHDOG_FAULTS.end_s],
            "total_time_s": result.total_time_s,
            "events": wd_events,
            "guardrail_counters": result.robustness.guardrail_counters(),
        },
    }
