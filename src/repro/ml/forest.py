"""Random Forest regressor (Table 3's RFR: n_estimators=20, max_depth=10)."""

from __future__ import annotations

import numpy as np

from repro.common import make_rng
from repro.ml.tree import DecisionTreeRegressor

__all__ = ["RandomForestRegressor"]


class RandomForestRegressor:
    """Bagged CART trees with per-split feature subsampling."""

    def __init__(
        self,
        n_estimators: int = 20,
        max_depth: int = 10,
        min_samples_leaf: int = 1,
        max_features: int | float | None = 0.6,
        rng=None,
    ) -> None:
        if n_estimators < 1:
            raise ValueError("n_estimators must be >= 1")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = make_rng(rng)
        self.trees_: list[DecisionTreeRegressor] = []
        self.feature_importances_: np.ndarray | None = None

    def fit(self, X, y) -> "RandomForestRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        n = X.shape[0]
        self.trees_ = []
        importances = np.zeros(X.shape[1])
        for _ in range(self.n_estimators):
            boot = self._rng.integers(0, n, size=n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                rng=self._rng,
            )
            tree.fit(X[boot], y[boot])
            self.trees_.append(tree)
            importances += tree.feature_importances_
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    def predict(self, X) -> np.ndarray:
        if not self.trees_:
            raise RuntimeError("forest not fitted")
        preds = np.stack([t.predict(X) for t in self.trees_])
        return preds.mean(axis=0)
