"""Tests for the Merchandiser runtime policy (end-to-end on small apps)."""

import numpy as np
import pytest

from repro.apps import SpGEMMApp
from repro.baselines import PMOnlyPolicy
from repro.core import default_system, lb_hm_config
from repro.core.patterns import Affine, ArrayRef, Indirect, Loop
from repro.sim import Engine, MachineModel, optane_hm_config
from repro.tasks import DataObject

HM = optane_hm_config()


@pytest.fixture(scope="module")
def system():
    return default_system(seed=0, fast=True)


@pytest.fixture(scope="module")
def spgemm_setup(system):
    app = SpGEMMApp.small(seed=0)
    wl = app.build_workload(seed=0)
    binding = app.binding(wl)
    return app, wl, binding


class TestLbHmConfig:
    def test_registers_patterns(self):
        kernel = Loop(
            "i",
            (
                ArrayRef("A", Affine("i")),
                ArrayRef("B", Indirect("A", Affine("i"))),
            ),
        )
        objs = [DataObject("A", 1 << 20), DataObject("B", 1 << 20)]
        desc = lb_hm_config(objs, kernel)
        assert desc["A"].pattern.value == "stream"
        assert desc["B"].pattern.value == "random"

    def test_random_needs_refinement(self):
        kernel = Loop("i", (ArrayRef("B", Indirect("C", Affine("i"))),))
        desc = lb_hm_config([DataObject("B", 1 << 20)], kernel)
        assert desc["B"].needs_refinement

    def test_unreferenced_object_rejected(self):
        kernel = Loop("i", (ArrayRef("A", Affine("i")),))
        with pytest.raises(ValueError):
            lb_hm_config([DataObject("ghost", 1 << 20)], kernel)


class TestMerchandiserPolicy:
    def test_runs_end_to_end(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3)
        res = Engine(MachineModel(), HM).run(wl, policy, seed=1)
        assert res.total_time_s > 0
        assert res.pages_migrated > 0

    def test_plans_created_after_base_profiling(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3)
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        # first iteration (both kinds) is base profiling; later regions plan
        assert len(policy.plans) >= 1
        for plan in policy.plans:
            assert 0 < plan.predicted_makespan_s
            for q in plan.quotas:
                assert 0.0 <= q.r_dram <= 1.0

    def test_improves_over_pm_only(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        eng = Engine(MachineModel(), HM)
        t_pm = eng.run(wl, PMOnlyPolicy(), seed=1).total_time_s
        t_m = eng.run(wl, system.policy(binding, seed=3), seed=1).total_time_s
        assert t_m < t_pm

    def test_deterministic_given_seeds(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        eng = Engine(MachineModel(), HM)
        a = eng.run(wl, system.policy(binding, seed=3), seed=1).total_time_s
        b = eng.run(wl, system.policy(binding, seed=3), seed=1).total_time_s
        assert a == b

    def test_planning_overhead_tracked(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3)
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        assert policy.planning_overhead_s > 0

    def test_no_planning_ablation(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3, enable_planning=False)
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        assert policy.plans == []

    def test_no_refinement_ablation(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3, enable_refinement=False)
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        for est in policy._estimators.values():
            assert est.alphas.mean_alpha() == 1.0

    def test_refinement_updates_alpha(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3)
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        alphas = [est.alphas.mean_alpha() for est in policy._estimators.values()]
        assert any(a != 1.0 for a in alphas)

    def test_capacity_never_exceeded(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3)
        peak = {"used": 0.0}
        orig = policy.on_tick

        def spy(ctx, dt):
            peak["used"] = max(peak["used"], ctx.page_table.dram_used_bytes())
            return orig(ctx, dt)

        policy.on_tick = spy
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        assert peak["used"] <= HM.dram.capacity_bytes + 4096

    def test_profile_key_includes_kind(self, system, spgemm_setup):
        _, wl, binding = spgemm_setup
        policy = system.policy(binding, seed=3)
        Engine(MachineModel(), HM).run(wl, policy, seed=1)
        # SpGEMM has symbolic and numeric kinds: both profiled separately
        kinds = {key.split("|")[1] for key in policy._estimators if "|" in key}
        assert kinds == {"symbolic", "numeric"}
