"""MemoryOptimizer-style PTE sampling profiler.

The real mechanism repeatedly clears and re-checks the accessed bit of a
*bounded random sample* of page-table entries -- bounding the sample keeps
overhead low on TB-scale PM, at the price of noise and, crucially, no notion
of which task the accesses belong to.  The paper identifies exactly this
in-discriminate sampling as a source of load imbalance (Section 2).

The simulated profiler draws the same bounded uniform page sample and
observes each sampled page's true access rate through a Poisson-sampled
count, then scales up by the inverse sampling fraction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import make_rng
from repro.sim.pages import PageTable

__all__ = ["PTESampleProfiler", "PageSampleEstimate"]


@dataclass(frozen=True)
class PageSampleEstimate:
    """Result of one profiling interval."""

    #: per-object: (sampled page indices, estimated accesses in the interval)
    samples: dict[str, tuple[np.ndarray, np.ndarray]]
    #: scale factor applied (total pages / sampled pages)
    scale: float

    def estimated_object_accesses(self) -> dict[str, float]:
        """Scaled per-object access estimates for the interval."""
        return {
            name: float(counts.sum()) * self.scale
            for name, (_, counts) in self.samples.items()
        }


class PTESampleProfiler:
    """Bounded random page sampling with accessed-bit semantics."""

    def __init__(self, max_pages: int = 4096, seed=None, faults=None) -> None:
        if max_pages < 1:
            raise ValueError("max_pages must be >= 1")
        self.max_pages = max_pages
        self._rng = make_rng(seed)
        #: optional :class:`~repro.sim.faults.FaultInjector` consulted per
        #: scan (dropped/double-counted accessed-bit samples)
        self.faults = faults

    def sample(
        self,
        page_table: PageTable,
        access_rates: dict[str, np.ndarray],
        interval_s: float,
        now: float = 0.0,
    ) -> PageSampleEstimate:
        """Profile one interval of length ``interval_s`` seconds.

        ``access_rates`` maps object name to per-page accesses/second (the
        engine's ground truth); the profiler sees a Poisson draw of each
        sampled page's expected count -- the accessed-bit scan is lossy, so
        counts are additionally clipped by the scan frequency.
        """
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        total_pages = page_table.total_pages
        n = min(self.max_pages, total_pages)
        picked = page_table.sample_pages(n, rng=self._rng)
        samples: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        for name, idx in picked:
            rates = access_rates.get(name)
            if rates is None:
                counts = np.zeros(len(idx))
            else:
                expected = rates[idx] * interval_s
                counts = self._rng.poisson(np.maximum(expected, 0.0)).astype(np.float64)
            samples[name] = (idx, counts)
        if self.faults is not None:
            samples = self.faults.corrupt_pte_scan(samples, now)
        scale = total_pages / max(n, 1)
        return PageSampleEstimate(samples=samples, scale=scale)
