"""Data-placement baselines the paper compares against (Section 7).

* :class:`PMOnlyPolicy` / :class:`DRAMOnlyPolicy` -- static single-tier
  placements (the normalisation baseline and the performance upper bound);
* :class:`MemoryModePolicy` -- Optane's hardware Memory Mode: DRAM as a
  direct-mapped, task-agnostic page cache;
* :class:`MemoryOptimizerPolicy` -- Intel MemoryOptimizer: periodic random
  page sampling, hot-page promotion, cold-page demotion;
* :class:`SpartaPolicy` / :class:`WarpXPMPolicy` -- the two
  application-specific comparators of Section 7.1;
* :class:`DRAMGreedyPolicy` / :class:`HandPlacedPolicy` -- the DAG-runtime
  comparators (first-fit DRAM allocation and the developer's hand-written
  static ranking).
"""

from repro.baselines.static import DRAMGreedyPolicy, DRAMOnlyPolicy, PMOnlyPolicy
from repro.baselines.memorymode import MemoryModePolicy
from repro.baselines.memoptimizer import MemoryOptimizerPolicy
from repro.baselines.appspecific import HandPlacedPolicy, SpartaPolicy, WarpXPMPolicy

__all__ = [
    "PMOnlyPolicy",
    "DRAMOnlyPolicy",
    "DRAMGreedyPolicy",
    "MemoryModePolicy",
    "MemoryOptimizerPolicy",
    "SpartaPolicy",
    "WarpXPMPolicy",
    "HandPlacedPolicy",
]
