"""Tests for the memory-profiling substrate."""

import numpy as np
import pytest

from repro.common import PAGE_SIZE, AccessPattern, make_rng
from repro.profiling import (
    PEBSProfiler,
    PTESampleProfiler,
    ThermostatProfiler,
    top_k_hot_pages,
)
from repro.profiling.thermostat import PAGES_PER_REGION
from repro.sim.pages import PageTable
from repro.tasks import DataObject, Footprint, ObjectAccess


def make_table(pages_a=1000, pages_b=2000, dram_pages=500, seed=0):
    table = PageTable(
        [DataObject("a", pages_a * PAGE_SIZE), DataObject("b", pages_b * PAGE_SIZE)],
        dram_pages * PAGE_SIZE,
        rng=make_rng(seed),
    )
    rates = {
        "a": np.full(pages_a, 100.0),
        "b": np.full(pages_b, 1.0),
    }
    return table, rates


class TestPTEProfiler:
    def test_sample_bounded(self):
        table, rates = make_table()
        prof = PTESampleProfiler(max_pages=256, seed=0)
        est = prof.sample(table, rates, 1.0)
        assert sum(len(idx) for idx, _ in est.samples.values()) == 256

    def test_scaling_factor(self):
        table, rates = make_table()
        prof = PTESampleProfiler(max_pages=300, seed=0)
        est = prof.sample(table, rates, 1.0)
        assert est.scale == pytest.approx(3000 / 300)

    def test_estimate_roughly_unbiased(self):
        """Scaled per-object estimates track the true totals."""
        table, rates = make_table()
        prof = PTESampleProfiler(max_pages=2048, seed=1)
        totals = {"a": 0.0, "b": 0.0}
        n_trials = 20
        for _ in range(n_trials):
            est = prof.sample(table, rates, 1.0)
            for name, v in est.estimated_object_accesses().items():
                totals[name] += v / n_trials
        assert totals["a"] == pytest.approx(1000 * 100.0, rel=0.15)
        assert totals["b"] == pytest.approx(2000 * 1.0, rel=0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            PTESampleProfiler(max_pages=0)
        table, rates = make_table()
        with pytest.raises(ValueError):
            PTESampleProfiler().sample(table, rates, 0.0)


class TestThermostat:
    def test_one_probe_per_region(self):
        table, rates = make_table(pages_a=PAGES_PER_REGION * 3)
        prof = ThermostatProfiler(seed=0)
        ests = prof.sample(table, rates, 1.0)
        est_a = next(e for e in ests if e.obj == "a")
        assert len(est_a.region_starts) == 3

    def test_estimate_scaled_by_region_size(self):
        table, rates = make_table(pages_a=PAGES_PER_REGION)
        prof = ThermostatProfiler(seed=0)
        ests = prof.sample(table, rates, 1.0)
        est_a = next(e for e in ests if e.obj == "a")
        # one region of 512 pages at rate 100/page over 1s -> ~51200
        assert est_a.estimated_accesses[0] == pytest.approx(51200, rel=0.5)

    def test_coldest_regions_order(self):
        table, _ = make_table(pages_a=PAGES_PER_REGION * 4)
        rates = {"a": np.zeros(PAGES_PER_REGION * 4), "b": np.zeros(2000)}
        rates["a"][: PAGES_PER_REGION] = 1000.0  # region 0 is hot
        prof = ThermostatProfiler(seed=0)
        ests = prof.sample(table, rates, 1.0)
        est_a = next(e for e in ests if e.obj == "a")
        cold = est_a.coldest_regions()
        assert cold[-1] == 0  # hottest region ranked last


class TestPEBS:
    def test_unbiased_estimates(self):
        fp = Footprint(
            accesses=(ObjectAccess("x", AccessPattern.RANDOM, reads=1_000_000),),
            instructions=1,
        )
        prof = PEBSProfiler(period=256, seed=0)
        vals = [prof.measure(fp)["x"] for _ in range(20)]
        assert np.mean(vals) == pytest.approx(1_000_000, rel=0.05)

    def test_small_counts_may_vanish(self):
        fp = Footprint(
            accesses=(ObjectAccess("x", AccessPattern.RANDOM, reads=3),),
            instructions=1,
        )
        prof = PEBSProfiler(period=4096, seed=0)
        assert prof.measure(fp)["x"] in (0.0, 4096.0, 8192.0, 12288.0)

    def test_overhead_small(self):
        assert PEBSProfiler(period=512).overhead_fraction() < 0.01

    def test_validation(self):
        with pytest.raises(ValueError):
            PEBSProfiler(period=0)


class TestHotPages:
    def test_top_k_selects_hottest(self):
        table, _ = make_table()
        rates = {"a": np.zeros(1000), "b": np.zeros(2000)}
        rates["a"][7] = 1e6
        prof = PTESampleProfiler(max_pages=3000, seed=0)
        est = prof.sample(table, rates, 1.0)
        hot = top_k_hot_pages(est, 1)
        assert hot and hot[0][0] == "a"
        assert 7 in hot[0][1]

    def test_respects_k(self):
        table, rates = make_table()
        est = PTESampleProfiler(max_pages=2048, seed=0).sample(table, rates, 1.0)
        hot = top_k_hot_pages(est, 10)
        assert sum(len(idx) for _, idx in hot) <= 10

    def test_min_count_filters_cold(self):
        table, _ = make_table()
        rates = {"a": np.zeros(1000), "b": np.zeros(2000)}
        est = PTESampleProfiler(max_pages=512, seed=0).sample(table, rates, 1.0)
        assert top_k_hot_pages(est, 100) == []

    def test_k_zero(self):
        table, rates = make_table()
        est = PTESampleProfiler(max_pages=128, seed=0).sample(table, rates, 1.0)
        assert top_k_hot_pages(est, 0) == []
