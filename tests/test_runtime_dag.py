"""Tests for the task-runtime frontend (``repro.runtime``).

Graph validation edge cases, builder dependency inference, the
critical-path planner (including its bit-identical barrier fallback and
realization-aware pricing), DAG lowering, and the end-to-end fallback
contract against a hand-written barrier program.
"""

import random

import numpy as np
import pytest

from repro.common import PAGE_SIZE, AccessPattern
from repro.core.model import PerformanceModel, TaskModelInputs
from repro.core.planner import greedy_plan
from repro.runtime import (
    DAGBuilder,
    DAGExecutor,
    DAGMerchandiserPolicy,
    TaskDAG,
    TaskNode,
    critical_path_plan,
)
from repro.tasks.task import DataObject, Footprint, ObjectAccess

MB = 1 << 20


def fp(*names: str, n: int = 1_000_000) -> Footprint:
    return Footprint(
        accesses=tuple(
            ObjectAccess(name, AccessPattern.STREAM, reads=n) for name in names
        ),
        instructions=n,
    )


def obj(name: str, size: int = 8 * MB) -> DataObject:
    return DataObject(name, size)


def node(tid: str, deps=(), objects=("x",)) -> TaskNode:
    return TaskNode(task_id=tid, footprint=fp(*objects), explicit_deps=tuple(deps))


def dag(nodes, objects=("x",)) -> TaskDAG:
    return TaskDAG(
        name="t", objects=tuple(obj(o) for o in objects), nodes=tuple(nodes)
    )


class TestTaskDAGValidation:
    def test_empty_dag_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            dag([])

    def test_single_node(self):
        d = dag([node("a")])
        assert d.levels() == ((d.node("a"),),)
        assert d.is_level_sequence()
        assert d.edges() == ()

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(ValueError, match="duplicate task ids"):
            dag([node("a"), node("a")])

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            dag([node("a", deps=("ghost",))])

    def test_self_dependency_rejected(self):
        with pytest.raises(ValueError, match="depends on itself"):
            dag([node("a", deps=("a",))])

    def test_undeclared_object_rejected(self):
        with pytest.raises(ValueError, match="undeclared object"):
            dag([node("a", objects=("ghost",))])

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            dag([node("a", deps=("b",)), node("b", deps=("a",))])

    def test_three_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            dag(
                [
                    node("a", deps=("c",)),
                    node("b", deps=("a",)),
                    node("c", deps=("b",)),
                ]
            )


class TestLevelling:
    def diamond(self, order):
        nodes = {
            "a": node("a"),
            "b": node("b", deps=("a",)),
            "c": node("c", deps=("a",)),
            "d": node("d", deps=("b", "c")),
        }
        return dag([nodes[t] for t in order])

    def test_diamond_levels(self):
        d = self.diamond("abcd")
        assert [[n.task_id for n in lvl] for lvl in d.levels()] == [
            ["a"], ["b", "c"], ["d"],
        ]
        # b and c don't depend on each other, yet share a level: the graph
        # is NOT a barrier program (d waits on both, but b doesn't wait on
        # the whole previous level... it does -- a alone -- so check edges)
        assert d.is_level_sequence()

    def test_non_level_sequence(self):
        # c skips the middle level: level(c)=1 but d's level-2 peers don't
        # all wait on it
        d = dag(
            [
                node("a"),
                node("b", deps=("a",)),
                node("c"),
                node("d", deps=("b",)),
            ]
        )
        assert not d.is_level_sequence()

    def test_levelling_deterministic_under_shuffled_insertion(self):
        baseline = self.diamond("abcd").levels()
        expected = [[n.task_id for n in lvl] for lvl in baseline]
        rng = random.Random(7)
        for _ in range(10):
            order = list("abcd")
            rng.shuffle(order)
            got = self.diamond(order).levels()
            assert [[n.task_id for n in lvl] for lvl in got] == expected

    def test_level_is_longest_chain(self):
        d = dag(
            [
                node("a"),
                node("b", deps=("a",)),
                node("c", deps=("b",)),
                node("d", deps=("a", "c")),
            ]
        )
        levels = {n.task_id: i for i, lvl in enumerate(d.levels()) for n in lvl}
        assert levels == {"a": 0, "b": 1, "c": 2, "d": 3}

    def test_tails_and_critical_path(self):
        d = dag(
            [
                node("a"),
                node("b", deps=("a",)),
                node("c", deps=("b",)),
                node("d", deps=("a",)),
            ]
        )
        w = {"a": 1.0, "b": 2.0, "c": 4.0, "d": 3.0}
        tails = d.tails(w)
        assert tails["c"] == 0.0
        assert tails["b"] == 4.0
        assert tails["a"] == 6.0
        length, path = d.critical_path(w)
        assert length == 7.0
        assert path == ("a", "b", "c")


class TestDAGBuilder:
    def test_spawn_decorator_and_handles(self):
        b = DAGBuilder("p")
        b.declare_object(obj("x"))

        @b.spawn("first", writes=["x"])
        def first():
            return fp("x")

        @b.spawn("second", deps=[first])
        def second():
            return fp("x")

        d = b.build()
        assert d.node("second").explicit_deps == ("first",)

    def test_dependency_must_be_spawned_first(self):
        b = DAGBuilder("p")
        b.declare_object(obj("x"))
        with pytest.raises(ValueError, match="spawned first"):
            b.add_task("a", fp("x"), deps=["later"])

    def test_duplicate_task_id_rejected(self):
        b = DAGBuilder("p")
        b.declare_object(obj("x"))
        b.add_task("a", fp("x"))
        with pytest.raises(ValueError, match="duplicate task id"):
            b.add_task("a", fp("x"))

    def test_duplicate_deps_deduplicated(self):
        b = DAGBuilder("p")
        b.declare_object(obj("x"))
        b.add_task("a", fp("x"))
        h = b.add_task("b", fp("x"), deps=["a", "a", "a"])
        assert h.task_id == "b"
        assert b.build().node("b").deps == ("a",)

    def test_undeclared_object_rejected(self):
        b = DAGBuilder("p")
        with pytest.raises(ValueError, match="undeclared object"):
            b.add_task("a", fp("x"), reads=["x"])

    def test_empty_build_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            DAGBuilder("p").build()

    def test_spawn_body_must_return_footprint(self):
        b = DAGBuilder("p")
        with pytest.raises(TypeError, match="must return a Footprint"):

            @b.spawn("a")
            def bad():
                return 42

    def test_raw_waw_war_inference(self):
        b = DAGBuilder("p")
        b.declare_object(obj("x"))
        b.declare_object(obj("y"))
        b.add_task("w1", fp("x"), writes=["x"])
        b.add_task("r1", fp("x"), reads=["x"])
        b.add_task("r2", fp("x"), reads=["x"])
        b.add_task("w2", fp("x", "y"), reads=["y"], writes=["x"])
        d = b.build()
        # read-after-write
        assert d.node("r1").inferred_deps == ("w1",)
        assert d.node("r2").inferred_deps == ("w1",)
        # write-after-write + write-after-read, deduplicated
        assert set(d.node("w2").inferred_deps) == {"w1", "r1", "r2"}
        assert d.edge_sources() == {"explicit": 0, "inferred": 5}

    def test_inferred_edges_reset_after_write(self):
        b = DAGBuilder("p")
        b.declare_object(obj("x"))
        b.add_task("w1", fp("x"), writes=["x"])
        b.add_task("w2", fp("x"), writes=["x"])
        b.add_task("r", fp("x"), reads=["x"])
        assert b.build().node("r").inferred_deps == ("w2",)


# ---------------------------------------------------------------------------
class _LinearCorrelation:
    events = ("E",)

    def predict(self, pmcs, r):
        return 1.0

    def predict_batch(self, pmcs, ratios):
        return np.ones(len(np.asarray(ratios)))


MODEL = PerformanceModel(_LinearCorrelation())


def tmi(tid, t_pm, t_dram=None, accesses=1_000_000):
    return TaskModelInputs(
        task_id=tid,
        t_pm_only=t_pm,
        t_dram_only=t_dram if t_dram is not None else t_pm / 3,
        total_accesses=accesses,
        pmcs={"E": 0.0},
    )


class TestCriticalPathPlan:
    def test_edge_free_falls_back_to_greedy_bit_exact(self):
        tasks = [tmi("a", 30.0), tmi("b", 29.0), tmi("c", 11.0)]
        task_bytes = {"a": 40 * MB, "b": 30 * MB, "c": 20 * MB}
        cp = critical_path_plan(tasks, MODEL, 48 * MB, task_bytes, deps={})
        ref = greedy_plan(tasks, MODEL, 48 * MB, task_bytes)
        assert not cp.shifted
        assert cp.plan == ref
        assert cp.predicted_critical_path_s == ref.predicted_makespan_s

    def test_unknown_dependency_rejected(self):
        with pytest.raises(ValueError, match="unplanned"):
            critical_path_plan(
                [tmi("a", 1.0)], MODEL, MB, {"a": MB}, deps={"a": ("ghost",)}
            )

    def test_steers_dram_to_the_chain(self):
        """Two equal-time tasks; only one sits on a 2-deep chain.  The
        barrier objective cannot tell them apart -- the DAG objective must
        favour the chained one."""
        tasks = [tmi("head", 30.0), tmi("tail", 30.0), tmi("solo", 30.0)]
        task_bytes = {t.task_id: 60 * MB for t in tasks}
        cp = critical_path_plan(
            tasks, MODEL, 60 * MB, task_bytes, deps={"tail": ("head",)}
        )
        assert cp.shifted
        r = cp.plan.r_by_task()
        assert r["head"] + r["tail"] > 2 * r["solo"]
        assert cp.predicted_critical_path_s >= cp.predicted_wave_s

    def test_capacity_respected(self):
        tasks = [tmi(f"t{i}", 50.0 + i) for i in range(5)]
        task_bytes = {t.task_id: 80 * MB for t in tasks}
        cp = critical_path_plan(
            tasks, MODEL, 64 * MB, task_bytes, deps={"t1": ("t0",)}
        )
        assert cp.plan.dram_pages_used <= 64 * MB // PAGE_SIZE

    def test_footprint_pricing_shares_objects(self):
        """With realization-aware pricing, a shared object is bought once:
        granting one sharer upgrades the other for free, and the combined
        plan never exceeds what the objects physically occupy."""
        pages = (16 * MB) // PAGE_SIZE
        shared = [
            ("big", 1.0, pages),
        ]
        tasks = [tmi("a", 30.0), tmi("b", 28.0)]
        task_bytes = {"a": 8 * MB, "b": 8 * MB}  # sharer-divided (the lie)
        cp = critical_path_plan(
            tasks,
            MODEL,
            16 * MB,
            task_bytes,
            deps={"b": ("a",)},
            footprints={"a": shared, "b": shared},
        )
        r = cp.plan.r_by_task()
        # both tasks read only the shared object: their quotas must agree,
        # and the plan's page bill is the object's size, not 2x
        assert r["a"] == r["b"] == 1.0
        assert cp.plan.dram_pages_used <= pages

    def test_footprint_pricing_respects_capacity(self):
        pages = (32 * MB) // PAGE_SIZE
        tasks = [tmi("a", 30.0), tmi("b", 28.0)]
        fps = {
            "a": [("oa", 1.0, pages)],
            "b": [("ob", 1.0, pages)],
        }
        cp = critical_path_plan(
            tasks,
            MODEL,
            16 * MB,  # half of one object
            {"a": 32 * MB, "b": 32 * MB},
            deps={"b": ("a",)},
            footprints=fps,
        )
        assert cp.plan.dram_pages_used <= 16 * MB // PAGE_SIZE


class TestExecutorLowering:
    def chain_dag(self, name="c"):
        b = DAGBuilder(name)
        b.declare_object(obj("x"))
        b.add_task("a", fp("x"))
        b.add_task("b", fp("x"), deps=["a"])
        return b.build()

    def test_level_sequence_lowers_to_wavefront(self):
        d = self.chain_dag()
        workload, waves, mode = DAGExecutor.lower_static([d, d])
        assert mode == "wavefront"
        assert [r.name for r in workload.regions] == [
            "it0.wave0", "it0.wave1", "it1.wave0", "it1.wave1",
        ]
        assert all(not r.gates for r in workload.regions)

    def test_general_dag_lowers_to_gated(self):
        b = DAGBuilder("g")
        b.declare_object(obj("x"))
        b.add_task("a", fp("x"))
        b.add_task("b", fp("x"), deps=["a"])
        b.add_task("c", fp("x"))
        b.add_task("d", fp("x"), deps=["b"])
        d = b.build()
        workload, waves, mode = DAGExecutor.lower_static([d])
        assert mode == "gated"
        (region,) = workload.regions
        assert region.name == "it0.dag"
        assert dict(region.gates) == {"b": ("a",), "d": ("b",)}

    def test_empty_iteration_list_rejected(self):
        with pytest.raises(ValueError, match="no DAGs"):
            DAGExecutor.lower_static([])

    def test_topology_drift_across_iterations_rejected(self):
        d1 = self.chain_dag()
        b = DAGBuilder("c")
        b.declare_object(obj("x"))
        b.add_task("a", fp("x"))
        b.add_task("b", fp("x"))  # edge dropped
        with pytest.raises(ValueError, match="topology"):
            DAGExecutor.lower_static([d1, b.build()])

    def test_object_drift_across_iterations_rejected(self):
        d1 = self.chain_dag()
        b = DAGBuilder("c")
        b.declare_object(obj("x"))
        b.declare_object(obj("y"))
        b.add_task("a", fp("x"))
        b.add_task("b", fp("x"), deps=["a"])
        with pytest.raises(ValueError, match="objects"):
            DAGExecutor.lower_static([d1, b.build()])

    def test_gated_run_orders_dependencies(self):
        """In a gated region a chain cannot overlap: the region lasts about
        the sum of the chain's task times, not their max."""
        from repro import Engine, MachineModel, optane_hm_config
        from repro.baselines import PMOnlyPolicy

        b = DAGBuilder("chain")
        b.declare_object(obj("x", 32 * MB))
        b.add_task("a", fp("x", n=4_000_000))
        b.add_task("b", fp("x", n=4_000_000), deps=["a"])
        b.add_task("c", fp("x", n=4_000_000), deps=["b"])
        # 'solo' keeps the graph from being a level sequence, forcing gated
        b.add_task("solo", fp("x", n=1_000_000))
        d = b.build()
        engine = Engine(MachineModel(), optane_hm_config())
        res = DAGExecutor(engine).run([d], PMOnlyPolicy(), seed=1)
        assert res.mode == "gated"
        (region,) = res.run.regions
        busy = region.busy_s
        # the a->b->c chain must serialize within the single gated region
        assert region.duration_s > busy["a"] + busy["b"]
        assert region.duration_s >= busy["a"] + busy["b"] + busy["c"] - 1e-6


class TestBarrierFallbackBitExact:
    def test_level_sequence_reproduces_barrier_planner(self):
        """The experiment's fallback contract on a real app at small scale:
        a barrierified DAG through the runtime == the hand-built barrier
        pipeline, plan for plan and second for second."""
        from repro.apps import FoxApp
        from repro.experiments.common import ExperimentContext
        from repro.experiments.dag_apps import check_barrier_bitexact

        ctx = ExperimentContext(seed=0, fast=True)
        out = check_barrier_bitexact(ctx, FoxApp.small(seed=0))
        assert out["mode"] == "wavefront"
        assert out["plans"] > 0
        assert out["plans_bitexact"]
        assert out["makespan_bitexact"]
