"""Application-specific placement baselines (Section 7.1).

* **Sparta** (Liu et al., PPoPP'21) places the hottest structures of a
  *single* sparse tensor/matrix contraction in fast memory.  Its weakness,
  per the paper, is ignoring load balance across the multiple concurrent
  multiplications of a task-parallel run -- reproduced here by ranking
  objects purely by per-byte access density within the region.

* **WarpX-PM** (Ren et al., ICS'21) uses manual lifetime analysis of WarpX's
  data objects to stage exactly the objects live in each phase into DRAM.
  With perfect application knowledge it slightly beats Merchandiser on WarpX
  (by ~4.6 % in the paper); reproduced as an oracle-priority policy fed by
  the application's own per-region object ranking.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.sim.engine import EngineContext, PlacementPolicy
from repro.sim.pages import MigrationBatch

__all__ = [
    "SpartaPolicy",
    "WarpXPMPolicy",
    "HandPlacedPolicy",
    "fill_dram_by_priority",
]


def fill_dram_by_priority(
    ctx: EngineContext, priority: Sequence[str]
) -> None:
    """Pack DRAM with the hottest pages of objects in priority order.

    Used by both application-specific policies: they differ only in how the
    priority list is derived.  Placement happens at region start (these
    systems stage data between phases, not during them).
    """
    table = ctx.page_table
    for obj in table:
        obj.set_residency(0.0)
    for name in priority:
        free = table.dram_free_pages()
        if free <= 0:
            break
        obj = table.object(name)
        idx = obj.hottest_pm_pages(limit=free)
        obj.residency[idx] = 1.0


def _density_priority(ctx: EngineContext) -> list[str]:
    """Objects of the current region ranked by accesses per byte."""
    assert ctx.region is not None
    totals: dict[str, float] = {}
    for inst in ctx.region.instances:
        for acc in inst.footprint.accesses:
            totals[acc.obj] = totals.get(acc.obj, 0.0) + acc.total
    density = {
        name: count / ctx.page_table.object(name).spec.size_bytes
        for name, count in totals.items()
    }
    return sorted(density, key=density.__getitem__, reverse=True)


class SpartaPolicy(PlacementPolicy):
    """Sparse-contraction-aware placement, blind to cross-task balance.

    Sparta reasons about whole tensors/matrices: it stages the structures of
    the *current* contraction into fast memory in access-density order, an
    object at a time, and skips objects that do not fit entirely.  It has no
    page-hotness oracle and no view across the concurrent tasks -- per the
    paper, "Sparta ignores the load balancing caused by multiple matrix
    multiplications", which is exactly the behaviour whole-object density
    ranking produces.
    """

    name = "sparta"

    def __init__(self, input_objects: Sequence[str] | None = None) -> None:
        #: objects Sparta can stage: the contraction's *inputs*.  Outputs
        #: are allocated dynamically during the contraction, so an
        #: allocation-time stager never places them.  ``None`` = stage any.
        self.input_objects = set(input_objects) if input_objects is not None else None

    def on_region_start(self, ctx: EngineContext) -> None:
        assert ctx.region is not None
        table = ctx.page_table
        for obj in table:
            obj.set_residency(0.0)
        # Sparta optimises one contraction at a time: shared inputs first,
        # then each task's contraction inputs in task order, whole objects
        # only.  There is no coordination across the concurrent
        # multiplications -- "Sparta ignores the load balancing caused by
        # multiple matrix multiplications" -- so whichever contractions are
        # processed first monopolise DRAM.
        shared = [
            name
            for name in _density_priority(ctx)
            if table.object(name).owner is None
            and (self.input_objects is None or name in self.input_objects)
        ]
        for name in shared:
            obj = table.object(name)
            if obj.n_pages <= table.dram_free_pages():
                obj.set_residency(1.0)
        for inst in ctx.region.instances:
            for acc in inst.footprint.accesses:
                obj = table.object(acc.obj)
                if obj.owner != inst.task_id:
                    continue
                if self.input_objects is not None and acc.obj not in self.input_objects:
                    continue
                if obj.n_pages <= table.dram_free_pages():
                    obj.set_residency(1.0)


class WarpXPMPolicy(PlacementPolicy):
    """Manual lifetime-based placement driven by application knowledge.

    ``region_priorities`` maps region name to the ordered object list the
    authors' lifetime analysis stages first (for WarpX: the field arrays,
    revisited by every solver sweep).  After the priority objects are
    staged, the remaining DRAM is distributed by the developers' knowledge
    of each slab's behaviour: the slowest slab's data is staged until it is
    no longer slowest (oracle water-filling).  This gives the baseline the
    quality the paper measures -- manual analysis "provides better guidance
    on data placement" and narrowly beats Merchandiser, which must pay for
    profiling noise and migration traffic instead.
    """

    name = "warpx-pm"

    #: pages staged per water-filling step (placement granularity)
    CHUNK_PAGES = 512

    def __init__(self, region_priorities: Mapping[str, Sequence[str]] | None = None):
        self.region_priorities = dict(region_priorities or {})

    def on_region_start(self, ctx: EngineContext) -> None:
        assert ctx.region is not None
        table = ctx.page_table
        for obj in table:
            obj.set_residency(0.0)
        priority = self.region_priorities.get(ctx.region.name)
        if priority is None:
            priority = _density_priority(ctx)
        rank = {name: i for i, name in enumerate(priority)}
        # oracle water-filling: repeatedly stage data of the slab that is
        # currently slowest, choosing among its objects by the lifetime
        # priority the manual analysis produced.  Slabs that cannot improve
        # further drop out; staging continues (DRAM left idle would waste
        # bandwidth relief for everyone else).
        instances = list(ctx.region.instances)
        exhausted: set[str] = set()
        while table.dram_free_pages() > 0 and len(exhausted) < len(instances):
            fractions = table.access_fractions()
            times = {
                inst.task_id: ctx.machine.instance_time(
                    inst.footprint, ctx.hm, fractions
                )
                for inst in instances
                if inst.task_id not in exhausted
            }
            if not times:
                break
            slowest = max(times, key=times.__getitem__)
            inst = next(i for i in instances if i.task_id == slowest)
            # stage the chunk that most reduces the slowest task's time;
            # lifetime rank breaks ties (that is what the manual analysis
            # knows that a profiler does not)
            best: tuple[float, int, str, np.ndarray] | None = None
            for acc in inst.footprint.accesses:
                obj = table.object(acc.obj)
                idx = obj.hottest_pm_pages(
                    limit=min(self.CHUNK_PAGES, table.dram_free_pages())
                )
                if not len(idx):
                    continue
                trial = dict(fractions)
                trial[acc.obj] = fractions.get(acc.obj, 0.0) + float(
                    obj.weight[idx].sum()
                )
                gain = times[slowest] - ctx.machine.instance_time(
                    inst.footprint, ctx.hm, trial
                )
                key = (gain, -rank.get(acc.obj, len(rank)))
                if best is None or key > (best[0], best[1]):
                    best = (gain, -rank.get(acc.obj, len(rank)), acc.obj, idx)
            if best is None or best[0] <= 0:
                exhausted.add(slowest)
                continue
            table.object(best[2]).residency[best[3]] = 1.0


class HandPlacedPolicy(PlacementPolicy):
    """Hand-written static placement for DAG applications.

    What a careful developer writes without a planner: rank the
    application's data objects once, ahead of time, by their expected
    importance (Parla's ``placement=`` annotations play this role), stage
    them into DRAM at startup in that order, and leave the placement alone.
    No per-input adaptation, no cross-task load balancing -- the gap to
    Merchandiser's inferred placement is exactly what the ``dag_apps``
    experiment measures.
    """

    name = "hand-static"

    def __init__(self, priority: Sequence[str]) -> None:
        self.priority = list(priority)

    def on_workload_start(self, ctx: EngineContext) -> None:
        fill_dram_by_priority(ctx, self.priority)
