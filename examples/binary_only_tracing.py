#!/usr/bin/env python
"""The binary-only workflow (Section 5.3, "Limitation").

When application source is unavailable, Merchandiser's recipe replaces the
API + Spindle path with dynamic binary instrumentation: intercept the
allocations, record address traces, and classify each object's pattern from
the trace.  This example runs that pipeline end to end:

1. a "binary" emits address traces for its objects (we synthesise the
   traces the instrumentation tool would capture);
2. :class:`~repro.core.tracing.TraceClassifier` recovers each object's
   pattern and stride from the addresses alone;
3. the recovered descriptors drive Equation 1's estimator exactly like the
   source-based descriptors would -- including online alpha refinement for
   the patterns the classifier cannot prove input-independent.

Run:  python examples/binary_only_tracing.py
"""

import numpy as np

from repro.common import AccessPattern, make_rng
from repro.core.estimator import AccessEstimator
from repro.core.tracing import TraceClassifier, synthesize_trace

MIB = 1 << 20


def main() -> None:
    rng = make_rng(0)
    # --- 1. what the instrumentation tool hands us: name -> address trace
    traces = {
        "grid": synthesize_trace(AccessPattern.STENCIL, 30_000, 64 * MIB),
        "particles": synthesize_trace(AccessPattern.STRIDED, 30_000, 128 * MIB, stride=6),
        "indices": synthesize_trace(AccessPattern.STREAM, 30_000, 16 * MIB),
        "table": synthesize_trace(AccessPattern.RANDOM, 30_000, 256 * MIB, rng=rng),
    }

    # --- 2. trace-driven classification (no source, no IR)
    clf = TraceClassifier()
    print(f"{'object':10s} {'pattern':8s} {'stride':>6s} {'confidence':>11s} {'refine?':>8s}")
    verdicts = clf.classify_objects(traces)
    for name, v in verdicts.items():
        d = v.to_descriptor(name)
        print(
            f"{name:10s} {v.pattern.value:8s} {v.stride:6d} "
            f"{v.confidence:10.1%} {'yes' if d.needs_refinement else 'no':>8s}"
        )

    # --- 3. descriptors drive the input-aware estimator unchanged
    est = AccessEstimator(clf.descriptors(traces))
    base_sizes = {"grid": 64 * MIB, "particles": 128 * MIB,
                  "indices": 16 * MIB, "table": 256 * MIB}
    base_counts = {"grid": 400_000, "particles": 900_000,
                   "indices": 120_000, "table": 1_500_000}
    est.record_base_profile(base_sizes, base_counts)

    new_sizes = {k: int(v * 1.5) for k, v in base_sizes.items()}
    first = est.estimate(new_sizes)
    print("\nnew input at 1.5x size -- estimated accesses (before refinement):")
    for name, v in first.items():
        print(f"  {name:10s} {v:12,.0f}")

    # the random table's true accesses grow sublinearly; PEBS-style
    # measurements refine alpha across instances
    for _ in range(10):
        est.refine(new_sizes, {"table": 1_800_000})
    refined = est.estimate(new_sizes)
    print(f"\nafter alpha refinement: table -> {refined['table']:,.0f} "
          "(measured truth: 1,800,000)")


if __name__ == "__main__":
    main()
