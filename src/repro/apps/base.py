"""Application abstraction shared by the five evaluation workloads.

Every application provides three honest layers:

1. a **reference kernel** -- a small, runnable numpy implementation of the
   actual computation (SpGEMM, BFS, PIC step, ...) used by tests and
   examples, and whose *structure* (nonzero distributions, frontier sizes,
   particle densities) calibrates the workload;
2. a **workload** -- the task-parallel structure at simulated scale
   (objects, footprints, barrier-separated regions), built by extrapolating
   the reference structure to the paper's (scaled-down) memory footprints;
3. a **binding** -- the ``lb_hm_config`` registration + kernel IR that
   Merchandiser's static analysis consumes (Table 1's input).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.common import AccessPattern, MIB, make_rng
from repro.core.api import lb_hm_config
from repro.core.patterns import KernelPatterns, Loop, classify_kernel
from repro.core.runtime import ApplicationBinding
from repro.sim.cache import OnChipCacheModel
from repro.tasks.task import DataObject, Workload

__all__ = ["AppConfig", "Application"]


@dataclass(frozen=True)
class AppConfig:
    """Table 2 row: problem scale and task configuration."""

    n_tasks: int
    #: target total memory consumption at simulated scale, bytes
    footprint_bytes: int
    #: outer-loop iterations (task instances per task)
    iterations: int
    mpi_processes: int
    openmp_threads: int
    #: reference-kernel problem size (small; structure calibration only)
    reference_scale: int


class Application(abc.ABC):
    """Base class for the five evaluation applications."""

    #: paper's Table 2 name
    name: str = "app"
    #: paper memory consumption (GB), for Table 2 output
    paper_memory_gb: float = 0.0
    #: paper problem description, for Table 2 output
    paper_problem: str = ""

    def __init__(self, config: AppConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._cache_model = OnChipCacheModel()
        #: per (task, region) effective object sizes, recorded while the
        #: workload is built; what the LB_HM_config size pointers carry
        self._instance_sizes: dict[tuple[str, str], dict[str, int]] = {}

    # -- required per app ------------------------------------------------
    @abc.abstractmethod
    def build_workload(self, seed=None) -> Workload:
        """The task-parallel workload at simulated scale."""

    @abc.abstractmethod
    def task_kernels(self) -> dict[str, list[Loop]]:
        """Loop-nest IR of each task's program (for static analysis)."""

    @abc.abstractmethod
    def managed_objects(self, workload: Workload) -> dict[str, list[DataObject]]:
        """Per task, the data objects passed to ``LB_HM_config``."""

    def input_dependent_objects(self) -> dict[str, tuple[str, ...]]:
        """Per task, objects whose pattern shape is input-dependent."""
        return {}

    def sparta_input_objects(self) -> list[str] | None:
        """Objects the Sparta baseline may stage (contraction inputs).

        ``None`` means Sparta may stage anything; apps with dynamically
        allocated outputs restrict this to the inputs.
        """
        return None

    # -- provided ----------------------------------------------------------
    @classmethod
    def small(cls, seed: int = 0) -> "Application":
        """Test-sized instance (seconds to simulate)."""
        return cls(cls.small_config(), seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "Application":
        """The experiment instance (paper footprint / 1024)."""
        return cls(cls.paper_config(), seed=seed)

    @classmethod
    @abc.abstractmethod
    def small_config(cls) -> AppConfig: ...

    @classmethod
    @abc.abstractmethod
    def paper_config(cls) -> AppConfig: ...

    @property
    def n_tasks(self) -> int:
        return self.config.n_tasks

    def classify(self) -> KernelPatterns:
        """Run the Spindle-substitute over all task kernels (Table 1)."""
        all_loops: list[Loop] = []
        for loops in self.task_kernels().values():
            all_loops.extend(loops)
        return classify_kernel(all_loops)

    def binding(self, workload: Workload) -> ApplicationBinding:
        """Build the Merchandiser registration for this application."""
        kernels = self.task_kernels()
        input_dep = self.input_dependent_objects()
        descriptors = {}
        for task_id, objects in self.managed_objects(workload).items():
            descriptors[task_id] = lb_hm_config(
                objects,
                kernels[task_id],
                input_dependent=input_dep.get(task_id, ()),
            )
        return ApplicationBinding(
            descriptors=descriptors,
            instance_object_sizes=dict(self._instance_sizes),
        )

    # -- footprint helpers -------------------------------------------------
    def mem_accesses(
        self,
        pattern: AccessPattern,
        logical_accesses: int,
        element_size: int,
        working_set_bytes: int,
        stride: int = 1,
    ) -> int:
        """Main-memory accesses after on-chip cache filtering."""
        return self._cache_model.mem_accesses(
            pattern, logical_accesses, element_size, working_set_bytes, stride
        )

    def table2_row(self) -> dict[str, object]:
        cfg = self.config
        return {
            "application": self.name,
            "problem": self.paper_problem,
            "paper_memory_gb": self.paper_memory_gb,
            "simulated_memory_mb": cfg.footprint_bytes / MIB,
            "mpi_processes": cfg.mpi_processes,
            "openmp_threads": cfg.openmp_threads,
            "tasks": cfg.n_tasks,
            "iterations": cfg.iterations,
        }
