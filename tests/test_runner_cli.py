"""Tests for the experiment runner CLI and the cheap end of its registry."""

import json

import pytest

from repro.experiments import runner


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(runner.DEFAULT_ORDER) == set(runner.EXPERIMENTS)

    def test_expected_names(self):
        for name in ("table1", "table2", "fig3", "fig4", "fig5", "fig6",
                     "fig7", "table3", "table4", "overhead", "ablation",
                     "extensibility", "sensitivity", "robustness",
                     "recovery", "observability", "service_load",
                     "transport_load", "cluster_failover", "replay_gate"):
            assert name in runner.EXPERIMENTS


class TestCli:
    def test_runs_single_experiment(self, capsys):
        assert runner.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "SpGEMM" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main(["figure99"])
        assert excinfo.value.code != 0

    def test_unknown_experiment_error_lists_choices(self, capsys):
        """The error names the offender AND every valid choice."""
        with pytest.raises(SystemExit):
            runner.main(["figure99"])
        err = capsys.readouterr().err
        assert "figure99" in err
        assert "valid choices" in err
        for name in runner.DEFAULT_ORDER:
            assert name in err

    def test_list_prints_registry_and_exits_zero(self, capsys):
        assert runner.main(["--list"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines == list(runner.DEFAULT_ORDER)
        assert "replay_gate" in lines

    def test_no_experiments_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            runner.main([])
        assert excinfo.value.code != 0
        assert "--list" in capsys.readouterr().err

    def test_metrics_and_trace_out(self, tmp_path, capsys):
        from repro.core.telemetry import parse_exposition

        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        assert runner.main(
            ["table1", "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        parsed = parse_exposition(metrics.read_text())
        assert len(parsed["types"]) >= 29
        data = json.loads(trace.read_text())
        assert "traceEvents" in data

    def test_json_export(self, tmp_path, capsys):
        assert runner.main(["table1", "--json", str(tmp_path)]) == 0
        data = json.loads((tmp_path / "table1.json").read_text())
        assert "detected" in data

    def test_multiple_experiments(self, capsys):
        assert runner.main(["table1", "fig3"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 3" in out

    def test_seed_flag(self, capsys):
        assert runner.main(["table1", "--seed", "3"]) == 0


class TestPerExperimentOutputs:
    def test_suffixed_path(self):
        assert runner.suffixed_path("out/metrics.prom", "fig4") == "out/metrics-fig4.prom"
        assert runner.suffixed_path("trace.json", "table1") == "trace-table1.json"
        assert runner.suffixed_path("bare", "fig3") == "bare-fig3"

    def test_single_experiment_honors_exact_paths(self, tmp_path, capsys):
        """One experiment, one file: ``--metrics-out``/``--trace-out`` are
        used verbatim, never suffixed."""
        from repro.core.telemetry import parse_exposition

        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        assert runner.main(
            ["table1", "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        assert metrics.exists() and trace.exists()
        assert not (tmp_path / "metrics-table1.prom").exists()
        assert not (tmp_path / "trace-table1.json").exists()
        parse_exposition(metrics.read_text())
        assert "traceEvents" in json.loads(trace.read_text())

    def test_single_experiment_honors_exact_paths_parallel(
        self, tmp_path, capsys
    ):
        """The ``--jobs`` path must pin the same exact-filename contract."""
        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        assert runner.main(
            ["table1", "--jobs", "2",
             "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        assert metrics.exists() and trace.exists()
        assert not (tmp_path / "metrics-table1.prom").exists()
        assert not (tmp_path / "trace-table1.json").exists()

    def test_multi_experiment_suffixes_in_parallel_runs(
        self, tmp_path, capsys
    ):
        metrics = tmp_path / "metrics.prom"
        assert runner.main(
            ["table1", "fig3", "--jobs", "2", "--metrics-out", str(metrics)]
        ) == 0
        assert not metrics.exists()
        assert (tmp_path / "metrics-table1.prom").exists()
        assert (tmp_path / "metrics-fig3.prom").exists()

    def test_multi_experiment_outputs_one_file_each(self, tmp_path, capsys):
        """Several experiments must not overwrite one shared metrics/trace
        file: each gets its own suffixed pair."""
        from repro.core.telemetry import parse_exposition

        metrics = tmp_path / "metrics.prom"
        trace = tmp_path / "trace.json"
        assert runner.main(
            ["table1", "fig3",
             "--metrics-out", str(metrics), "--trace-out", str(trace)]
        ) == 0
        assert not metrics.exists() and not trace.exists()
        for name in ("table1", "fig3"):
            m = tmp_path / f"metrics-{name}.prom"
            t = tmp_path / f"trace-{name}.json"
            assert m.exists() and t.exists()
            parse_exposition(m.read_text())  # raises on malformed output
            assert "traceEvents" in json.loads(t.read_text())


class TestParallelJobs:
    def test_jobs_json_byte_identical_to_sequential(self, tmp_path, capsys):
        """--jobs N must not change any result: same bytes on disk."""
        seq, par = tmp_path / "seq", tmp_path / "par"
        assert runner.main(["table1", "fig3", "--json", str(seq)]) == 0
        assert runner.main(
            ["table1", "fig3", "--jobs", "2", "--json", str(par)]
        ) == 0
        for name in ("table1", "fig3"):
            assert (seq / f"{name}.json").read_bytes() == (
                par / f"{name}.json"
            ).read_bytes()

    def test_jobs_replays_experiment_output_in_order(self, capsys):
        assert runner.main(["table1", "fig3", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 3" in out
        assert out.index("Table 1") < out.index("Figure 3")  # cheap-first

    def test_jobs_failure_isolation_and_payload(
        self, monkeypatch, tmp_path, capsys
    ):
        # relies on the fork start method propagating the monkeypatch into
        # pool workers (the default on Linux, where CI runs)
        def boom(ctx):
            raise RuntimeError("parallel boom")

        def ok(ctx):
            return {"fine": True}

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", boom)
        monkeypatch.setitem(runner.EXPERIMENTS, "fig3", ok)
        assert runner.main(
            ["table1", "fig3", "--jobs", "2", "--json", str(tmp_path)]
        ) == 1
        captured = capsys.readouterr()
        assert "table1 FAILED" in captured.out
        assert "FAILED experiments: table1" in captured.out
        assert "parallel boom" in captured.err  # traceback crossed the pool
        broken = json.loads((tmp_path / "table1.json").read_text())
        healthy = json.loads((tmp_path / "fig3.json").read_text())
        assert broken["failed"] is True
        assert broken["error_type"] == "RuntimeError"
        assert "parallel boom" in broken["traceback"]
        assert healthy == {"fine": True}

    def test_jobs_must_be_positive(self):
        with pytest.raises(SystemExit):
            runner.main(["table1", "--jobs", "0"])


class TestFailureIsolation:
    def test_one_broken_experiment_does_not_stop_the_rest(
        self, monkeypatch, capsys
    ):
        def boom(ctx):
            raise RuntimeError("synthetic experiment failure")

        ran = []

        def ok(ctx):
            ran.append("ok")
            return {"fine": True}

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", boom)
        monkeypatch.setitem(runner.EXPERIMENTS, "fig3", ok)
        assert runner.main(["table1", "fig3"]) == 1
        captured = capsys.readouterr()
        assert "synthetic experiment failure" in captured.err  # traceback
        assert "table1 FAILED" in captured.out
        assert "FAILED experiments: table1" in captured.out
        assert ran == ["ok"]  # the healthy experiment still ran

    def test_failed_experiment_writes_failure_payload(self, monkeypatch, tmp_path):
        def boom(ctx):
            raise RuntimeError("nope")

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", boom)
        assert runner.main(["table1", "--json", str(tmp_path)]) == 1
        data = json.loads((tmp_path / "table1.json").read_text())
        assert data["failed"] is True
        assert data["error_type"] == "RuntimeError"
        assert data["error"] == "nope"
        # the captured traceback is part of the payload, not just printed
        assert "RuntimeError: nope" in data["traceback"]
        assert "boom" in data["traceback"]

    def test_failure_payload_does_not_shadow_healthy_results(
        self, monkeypatch, tmp_path
    ):
        def boom(ctx):
            raise ValueError("broken")

        def ok(ctx):
            return {"fine": True}

        monkeypatch.setitem(runner.EXPERIMENTS, "table1", boom)
        monkeypatch.setitem(runner.EXPERIMENTS, "fig3", ok)
        assert runner.main(["table1", "fig3", "--json", str(tmp_path)]) == 1
        broken = json.loads((tmp_path / "table1.json").read_text())
        healthy = json.loads((tmp_path / "fig3.json").read_text())
        assert broken["failed"] is True and broken["error_type"] == "ValueError"
        assert healthy == {"fine": True}
