"""Table 3: statistical models for the correlation function.

Trains the six model families of the paper's Table 3 on the code-sample
corpus (70/30 split) and reports R-squared.  Paper values: DTR 78.1%, SVR
83.6%, KNR 72.9%, RFR 89.2%, GBR 94.1%, ANN 93.2% -- GBR wins, ANN close,
KNR worst.
"""

from __future__ import annotations

from repro.core.correlation import compare_models, generate_training_data
from repro.experiments.common import ExperimentContext, format_table

PAPER_R2 = {
    "DTR": 0.781,
    "SVR": 0.836,
    "KNR": 0.729,
    "RFR": 0.892,
    "GBR": 0.941,
    "ANN": 0.932,
}


def training_data(ctx: ExperimentContext):
    """Training data for f(.), cached on the context."""
    if not hasattr(ctx, "_table3_data"):
        from repro.apps.codesamples import generate_corpus

        n = 120 if ctx.fast else 281
        samples = generate_corpus(n, seed=ctx.seed)
        ctx._table3_data = generate_training_data(
            ctx.engine.machine,
            ctx.engine.hm,
            samples,
            placements_per_sample=10,
            seed=ctx.seed,
        )
    return ctx._table3_data


def run(ctx: ExperimentContext) -> dict[str, object]:
    data = training_data(ctx)
    reports = compare_models(data, test_fraction=0.3, seed=ctx.seed)
    reports.sort(key=lambda r: r.r2, reverse=True)
    rows = [
        [r.name, r.params, r.r2, PAPER_R2[r.name], f"{r.fit_seconds:.1f}s"]
        for r in reports
    ]
    print(f"Table 3: statistical models for f(.) ({len(data.y)} samples, 70/30 split)")
    print(format_table(["model", "parameters", "R2 (ours)", "R2 (paper)", "fit"], rows))
    best = reports[0].name
    print(f"  best model: {best} (paper selects GBR)")
    return {"reports": {r.name: r.r2 for r in reports}, "best": best}
