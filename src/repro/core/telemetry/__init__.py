"""Telemetry: metrics + span tracing across the placement pipeline.

The control plane (planner, estimators, guardrails, journal) and the data
plane (the virtual-time engine) both emit into one :class:`Telemetry`
object, which owns

* a :class:`~repro.core.telemetry.registry.MetricRegistry` pre-loaded with
  the full instrument catalogue (:mod:`repro.core.telemetry.instruments`;
  documented exhaustively in ``OBSERVABILITY.md``), and
* a :class:`~repro.core.telemetry.spans.SpanTracer` recording nested spans
  over the profile -> estimate -> predict -> plan -> migrate -> barrier
  pipeline, on a virtual-time track and a wall-clock track.

Telemetry is strictly opt-in: every instrumented component takes
``telemetry=None`` and is **bit-identical** to the uninstrumented pipeline
when it stays ``None`` (the ``observability`` experiment and
``tests/test_telemetry_integration.py`` enforce this).  With telemetry on,
simulation results are still unchanged -- recording never touches the
engine's RNG or state -- only wall-clock cost is added, budgeted at < 5%
(measured by ``python -m repro.experiments.runner observability``).

Typical use::

    from repro.core.telemetry import Telemetry, render_exposition, write_trace

    tel = Telemetry()
    engine = Engine(machine, hm, telemetry=tel)
    engine.run(workload, policy, seed=1)
    print(render_exposition(tel.registry))       # Prometheus text format
    write_trace("trace.json", tel.tracer)        # open in Perfetto

or, via the experiment runner::

    python -m repro.experiments.runner fig4 --metrics-out metrics.prom \
        --trace-out trace.json
"""

from __future__ import annotations

from repro.core.telemetry.exporters import (
    chrome_trace,
    parse_exposition,
    render_exposition,
    write_metrics,
    write_trace,
)
from repro.core.telemetry.instruments import METRIC_SPECS, MetricSpec, register_all, spec_names
from repro.core.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricRegistry,
)
from repro.core.telemetry.spans import Span, SpanTracer

__all__ = [
    "Telemetry",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "Span",
    "SpanTracer",
    "MetricSpec",
    "METRIC_SPECS",
    "register_all",
    "spec_names",
    "render_exposition",
    "parse_exposition",
    "chrome_trace",
    "write_metrics",
    "write_trace",
]


class Telemetry:
    """One run's (or one process's) metrics registry + span tracer.

    Thin convenience wrappers (:meth:`inc`, :meth:`set`, :meth:`observe`)
    keep instrumentation call sites to one line; the full catalogue is
    pre-registered, so a typo'd metric name raises immediately instead of
    creating a shadow series.
    """

    def __init__(self, max_label_sets: int = 64) -> None:
        self.registry = MetricRegistry(max_label_sets=max_label_sets)
        register_all(self.registry)
        self.tracer = SpanTracer()
        #: number of metric updates recorded, for overhead accounting
        #: (the ``observability`` experiment multiplies this by a measured
        #: per-operation cost)
        self.op_count = 0

    # -- one-line instrumentation helpers -------------------------------
    def inc(self, name: str, amount: float = 1.0, **labels: str) -> None:
        self.op_count += 1
        self.registry.get(name).inc(amount, **labels)

    def set(self, name: str, value: float, **labels: str) -> None:
        self.op_count += 1
        self.registry.get(name).set(value, **labels)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.op_count += 1
        self.registry.get(name).observe(value, **labels)

    # -- export ----------------------------------------------------------
    def exposition(self) -> str:
        return render_exposition(self.registry)

    def trace(self) -> dict[str, object]:
        return chrome_trace(self.tracer)
