"""Tests for event selection in the correlation-function pipeline."""

import numpy as np
import pytest

from repro.apps.codesamples import generate_corpus
from repro.core.correlation import CorrelationFunction, generate_training_data
from repro.sim.counters import PMC_EVENTS
from repro.sim.machine import MachineModel
from repro.sim.memspec import optane_hm_config

HM = optane_hm_config()
MODEL = MachineModel()


@pytest.fixture(scope="module")
def data():
    samples = generate_corpus(30, seed=2)
    return generate_training_data(MODEL, HM, samples, placements_per_sample=6, seed=2)


class TestSelectEvents:
    def test_selects_requested_count(self, data):
        events, steps = CorrelationFunction.select_events(data, n_events=8, seed=0)
        assert len(events) == 8
        assert set(events) <= set(PMC_EVENTS)

    def test_r_dram_never_selected_out(self, data):
        _, steps = CorrelationFunction.select_events(data, n_events=4, seed=0)
        assert all("r_dram" in s.features for s in steps)

    def test_trace_is_monotone_in_feature_count(self, data):
        _, steps = CorrelationFunction.select_events(data, n_events=4, seed=0)
        counts = [len(s.features) for s in steps]
        assert counts == sorted(counts, reverse=True)

    def test_selected_model_trains(self, data):
        events, _ = CorrelationFunction.select_events(data, n_events=6, seed=0)
        corr = CorrelationFunction.train(data, events=events, seed=0)
        assert corr.events == tuple(events)
        pmcs = {e: 1.0 for e in events}
        assert 0.05 <= corr.predict(pmcs, 0.4) <= 5.0

    def test_predict_batch_validates(self, data):
        corr = CorrelationFunction.train(data, seed=0)
        pmcs = {e: 1.0 for e in corr.events}
        with pytest.raises(ValueError):
            corr.predict_batch(pmcs, np.array([[0.1, 0.2]]))
        with pytest.raises(ValueError):
            corr.predict_batch(pmcs, np.array([0.5, 1.4]))


class TestCorpus:
    def test_corpus_size(self):
        assert len(generate_corpus(281, seed=0)) == 281

    def test_samples_cover_pattern_space(self):
        from repro.common import AccessPattern

        seen = set()
        for sample in generate_corpus(100, seed=0):
            for pattern, _, _ in sample.objects:
                seen.add(pattern)
        assert seen == set(AccessPattern)

    def test_footprint_scales(self):
        sample = generate_corpus(3, seed=1)[0]
        small = sample.footprint(0.5).total_accesses
        large = sample.footprint(2.0).total_accesses
        assert large == pytest.approx(4 * small, rel=0.01)

    def test_scale_validation(self):
        sample = generate_corpus(1, seed=0)[0]
        with pytest.raises(ValueError):
            sample.footprint(0)

    def test_object_names_unique_per_sample(self):
        corpus = generate_corpus(10, seed=0)
        names = [n for s in corpus for n in s.object_names]
        assert len(names) == len(set(names))
