"""Figure 3: NWChem-TC phase sensitivity to the DRAM-access ratio.

The paper runs the five NWChem-TC execution phases with 0%, 50% and 100%
of memory accesses served from DRAM and reports execution time normalised
to the PM-only case.  Key observations to reproduce: moving half the
accesses to DRAM cuts Writeback by ~47.5% and Input Processing by ~26.2%,
while Index Search barely moves -- i.e. the response is phase-dependent and
*nonlinear*, which is why Equation 2 needs the learned f(.).
"""

from __future__ import annotations

from repro.apps import NWChemTCApp, TC_PHASES
from repro.experiments.common import ExperimentContext, format_table

RATIOS = (0.0, 0.5, 1.0)

#: paper-reported time reduction at ratio 0.5 for the headline phases
PAPER_REDUCTION_AT_HALF = {"writeback": 0.475, "input_processing": 0.262}


def run(ctx: ExperimentContext) -> dict[str, object]:
    app = ctx.app(NWChemTCApp)
    machine = ctx.engine.machine
    hm = ctx.engine.hm
    shares = app.tile_shares()
    budget = app.config.footprint_bytes
    index_bytes = int(0.15 * budget)
    # a representative (median-volume) task
    order = sorted(range(app.n_tasks), key=lambda t: shares[t])
    t = order[len(order) // 2]
    tile_bytes = max(int(0.85 * budget * shares[t]), 1 << 20)

    results: dict[str, dict[float, float]] = {}
    rows = []
    entire = {r: 0.0 for r in RATIOS}
    for phase in TC_PHASES:
        fp = app.phase_footprint(phase, t, tile_bytes, index_bytes)
        times = {r: machine.uniform_ratio_time(fp, hm, r) for r in RATIOS}
        for r in RATIOS:
            entire[r] += times[r]
        norm = {r: times[r] / times[0.0] for r in RATIOS}
        results[phase] = norm
        rows.append([phase, norm[0.0], norm[0.5], norm[1.0]])
    norm_entire = {r: entire[r] / entire[0.0] for r in RATIOS}
    results["entire_task"] = norm_entire
    rows.append(["entire task", norm_entire[0.0], norm_entire[0.5], norm_entire[1.0]])

    print("Figure 3: NWChem-TC phase time vs DRAM-access ratio (normalised to PM-only)")
    print(format_table(["phase", "ratio=0%", "ratio=50%", "ratio=100%"], rows))
    for phase, paper in PAPER_REDUCTION_AT_HALF.items():
        ours = 1.0 - results[phase][0.5]
        print(
            f"  {phase}: reduction at 50% DRAM = {ours:.1%} (paper: {paper:.1%})"
        )
    return results
