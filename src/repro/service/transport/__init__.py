"""Network transport for the placement service.

* :mod:`repro.service.transport.framing`   -- length-prefixed JSON frames
  with a CRC32 trailer and a max-frame guard;
* :mod:`repro.service.transport.netserver` -- asyncio TCP server feeding
  :class:`~repro.service.server.PlacementServer` (backpressure, idle
  timeouts, idempotent resubmission, wire fault injection);
* :mod:`repro.service.transport.client`    -- blocking client with
  timeouts, capped-exponential-backoff retries, and degrade-to-daemon
  fallback.

``python -m repro.experiments.runner transport_load`` soaks the whole
stack over loopback with wire faults enabled.
"""

from repro.service.transport.client import (
    PlacementClient,
    RetryPolicy,
    TransportError,
)
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME,
    FRAME_VERSION,
    FrameAssembler,
    FrameCorrupt,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    decode_frame,
    encode_frame,
)
from repro.service.transport.netserver import PlacementTransportServer

__all__ = [
    "FRAME_VERSION",
    "DEFAULT_MAX_FRAME",
    "FrameError",
    "FrameCorrupt",
    "FrameTruncated",
    "FrameTooLarge",
    "encode_frame",
    "decode_frame",
    "FrameAssembler",
    "PlacementTransportServer",
    "PlacementClient",
    "RetryPolicy",
    "TransportError",
]
