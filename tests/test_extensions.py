"""Tests for the extension modules: CXL config, throughput planner, export."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.common import PAGE_SIZE
from repro.core.model import PerformanceModel, TaskModelInputs
from repro.core.planner import greedy_plan, optimal_quotas, throughput_plan
from repro.experiments.export import to_jsonable, write_result
from repro.sim.memspec import cxl_hm_config, optane_hm_config


class TestCxlConfig:
    def test_no_random_asymmetry(self):
        """CXL.mem adds the same hop to sequential and random access."""
        hm = cxl_hm_config()
        assert hm.pm.seq_read_latency_ns / hm.dram.seq_read_latency_ns == pytest.approx(2.2)
        assert hm.pm.rand_read_latency_ns / hm.dram.rand_read_latency_ns == pytest.approx(2.2)

    def test_symmetric_bandwidth_ratio(self):
        hm = cxl_hm_config()
        assert hm.dram.read_bandwidth / hm.pm.read_bandwidth == pytest.approx(2.0)
        assert hm.dram.write_bandwidth / hm.pm.write_bandwidth == pytest.approx(2.0)

    def test_milder_than_optane(self):
        cxl, opt = cxl_hm_config(), optane_hm_config()
        assert cxl.pm.rand_read_latency_ns < opt.pm.rand_read_latency_ns
        assert cxl.pm.read_bandwidth > opt.pm.read_bandwidth

    def test_slow_tier_keeps_canonical_name(self):
        # policies address tiers by name; the slow tier must stay "pm"
        hm = cxl_hm_config()
        assert hm.tier("pm") is hm.pm

    def test_validation(self):
        with pytest.raises(ValueError):
            cxl_hm_config(scale=-1)


class _LinearCorrelation:
    events = ("E",)

    def predict(self, pmcs, r):
        return 1.0

    def predict_batch(self, pmcs, ratios):
        return np.ones(len(np.asarray(ratios)))


MODEL = PerformanceModel(_LinearCorrelation())
MB = 1 << 20


def task(tid, t_pm, t_dram, accesses=1_000_000):
    return TaskModelInputs(tid, t_pm, t_dram, accesses, {"E": 0.0})


class TestThroughputPlanner:
    def test_capacity_respected(self):
        tasks = [task(f"t{i}", 50.0 + i, 10.0) for i in range(5)]
        bytes_ = {t.task_id: 80 * MB for t in tasks}
        plan = throughput_plan(tasks, MODEL, 64 * MB, bytes_)
        assert plan.dram_pages_used <= 64 * MB // PAGE_SIZE

    def test_prefers_value_dense_tasks(self):
        """A short task with a huge per-page gain wins DRAM even though it
        is nowhere near the critical path -- the failure mode the
        load-balance objective exists to avoid."""
        sensitive_short = task("short", 20.0, 2.0)   # saves 18s
        insensitive_long = task("long", 50.0, 45.0)  # saves 5s
        bytes_ = {"short": 40 * MB, "long": 40 * MB}
        plan = throughput_plan(
            [sensitive_short, insensitive_long], MODEL, 40 * MB, bytes_
        )
        assert plan.quota("short").r_dram > plan.quota("long").r_dram
        # and its makespan is therefore worse than Algorithm 1's
        alg1 = greedy_plan(
            [sensitive_short, insensitive_long], MODEL, 40 * MB, bytes_
        )
        assert plan.predicted_makespan_s >= alg1.predicted_makespan_s - 1e-9

    def test_never_beats_optimal(self):
        tasks = [task(f"t{i}", 30.0 + 6 * i, 5.0 + i) for i in range(4)]
        bytes_ = {t.task_id: 50 * MB for t in tasks}
        tp = throughput_plan(tasks, MODEL, 70 * MB, bytes_)
        opt = optimal_quotas(tasks, MODEL, 70 * MB, bytes_)
        assert tp.predicted_makespan_s >= opt.predicted_makespan_s - 1e-9

    def test_abundant_capacity_floors_everyone(self):
        tasks = [task("a", 30.0, 10.0), task("b", 60.0, 12.0)]
        bytes_ = {"a": 10 * MB, "b": 10 * MB}
        plan = throughput_plan(tasks, MODEL, 1000 * MB, bytes_)
        assert plan.predicted_makespan_s == pytest.approx(12.0, rel=0.06)

    def test_validation(self):
        with pytest.raises(ValueError):
            throughput_plan([], MODEL, MB, {})


class TestExport:
    def test_numpy_conversion(self):
        data = {
            "arr": np.arange(3),
            "scalar": np.float64(1.5),
            ("a", "b"): {"nested": np.int64(7)},
            "tuple": (1, np.float32(2.0)),
        }
        out = to_jsonable(data)
        assert out["arr"] == [0, 1, 2]
        assert out["scalar"] == 1.5
        assert out["a|b"]["nested"] == 7
        json.dumps(out)  # round-trips

    def test_write_result(self, tmp_path):
        path = write_result(tmp_path, "demo", {"x": np.float64(3.0)})
        assert path == Path(tmp_path) / "demo.json"
        assert json.loads(path.read_text()) == {"x": 3.0}

    def test_write_creates_directory(self, tmp_path):
        path = write_result(tmp_path / "sub" / "dir", "demo", [1, 2])
        assert path.exists()
