"""Application abstraction for DAG-runtime workloads.

Parallel to :class:`repro.apps.base.Application`, but the workload is a
sequence of :class:`~repro.runtime.dag.TaskDAG`\\ s (one per outer
iteration) built through the ``@spawn`` frontend instead of a sequence of
barrier regions.  The same three honest layers apply: a runnable numpy
reference kernel, a simulated-scale task graph calibrated by the
reference's structure, and the ``lb_hm_config`` binding Merchandiser's
static analysis consumes.

Node ids are stable across iterations -- the first iteration's instances
become the base profiles and later iterations are planner-driven, the same
per-(task, kind) lifecycle the barrier pipeline uses.
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.apps.base import AppConfig
from repro.common import AccessPattern
from repro.core.api import lb_hm_config
from repro.core.patterns import Loop
from repro.core.runtime import ApplicationBinding
from repro.runtime.dag import TaskDAG
from repro.runtime.executor import DAGExecutor
from repro.sim.cache import OnChipCacheModel
from repro.tasks.task import DataObject

__all__ = ["DAGApplication"]


class DAGApplication(abc.ABC):
    """Base class for applications expressed as task DAGs."""

    name: str = "dag-app"

    def __init__(self, config: AppConfig, seed: int = 0) -> None:
        self.config = config
        self.seed = seed
        self._cache_model = OnChipCacheModel()
        #: per (node id, iteration): object name -> effective size, recorded
        #: while the DAGs are built (the LB_HM_config size pointers)
        self._node_sizes: dict[tuple[str, int], dict[str, int]] = {}

    # -- required per app ------------------------------------------------
    @abc.abstractmethod
    def build_dags(self, seed=None) -> list[TaskDAG]:
        """One task DAG per outer iteration (same topology, drifting
        inputs)."""

    @abc.abstractmethod
    def task_kernels(self) -> dict[str, list[Loop]]:
        """Loop-nest IR per node id (for static pattern analysis)."""

    @abc.abstractmethod
    def managed_objects(self, dag: TaskDAG) -> dict[str, list[DataObject]]:
        """Per node id, the data objects passed to ``LB_HM_config``."""

    @abc.abstractmethod
    def hand_priority(self) -> list[str]:
        """The developer's static object ranking -- what a hand-written
        ``placement=`` annotation stages into DRAM, most important first."""

    def input_dependent_objects(self) -> dict[str, tuple[str, ...]]:
        return {}

    @classmethod
    @abc.abstractmethod
    def small_config(cls) -> AppConfig: ...

    @classmethod
    @abc.abstractmethod
    def paper_config(cls) -> AppConfig: ...

    @classmethod
    def small(cls, seed: int = 0) -> "DAGApplication":
        return cls(cls.small_config(), seed=seed)

    @classmethod
    def paper_scale(cls, seed: int = 0) -> "DAGApplication":
        return cls(cls.paper_config(), seed=seed)

    # -- provided ----------------------------------------------------------
    def binding(self, dags: Sequence[TaskDAG]) -> ApplicationBinding:
        """Merchandiser registration for the lowered program.

        Lowering decides region names (``it{i}.wave{k}`` vs ``it{i}.dag``),
        so per-instance sizes recorded per (node, iteration) are re-keyed
        here through the same lowering the executor performs.
        """
        kernels = self.task_kernels()
        input_dep = self.input_dependent_objects()
        descriptors = {}
        for node_id, objects in self.managed_objects(dags[0]).items():
            descriptors[node_id] = lb_hm_config(
                objects,
                kernels[node_id],
                input_dependent=input_dep.get(node_id, ()),
            )
        _, waves, _ = DAGExecutor.lower_static(dags)
        instance_sizes: dict[tuple[str, str], dict[str, int]] = {}
        for wave in waves:
            for node_id in wave.node_ids:
                sizes = self._node_sizes.get((node_id, wave.iteration))
                if sizes is not None:
                    instance_sizes[(node_id, wave.region_name)] = sizes
        return ApplicationBinding(
            descriptors=descriptors,
            instance_object_sizes=instance_sizes,
        )

    def mem_accesses(
        self,
        pattern: AccessPattern,
        logical_accesses: int,
        element_size: int,
        working_set_bytes: int,
        stride: int = 1,
    ) -> int:
        """Main-memory accesses after on-chip cache filtering."""
        return self._cache_model.mem_accesses(
            pattern, logical_accesses, element_size, working_set_bytes, stride
        )
