"""Feature selection by recursive Gini-importance elimination (Section 5.1).

The paper trains the model on all collectable hardware events, repeatedly
removes the least Gini-important event, re-trains, and stops when accuracy
drops below the second-best model's.  We implement the full procedure and
also record the accuracy-vs-feature-count curve, which is Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.ml.metrics import r2_score

__all__ = ["EliminationStep", "recursive_importance_elimination"]


@dataclass(frozen=True)
class EliminationStep:
    """One step of the elimination: which features remained and how well the
    re-trained model scored with exactly those features."""

    features: tuple[str, ...]
    score: float
    importances: tuple[float, ...]


def recursive_importance_elimination(
    model_factory: Callable[[], object],
    X_train: np.ndarray,
    y_train: np.ndarray,
    X_test: np.ndarray,
    y_test: np.ndarray,
    feature_names: Sequence[str],
    min_features: int = 1,
    score_fn: Callable[[np.ndarray, np.ndarray], float] = r2_score,
    protected: Sequence[str] = (),
) -> list[EliminationStep]:
    """Run the paper's elimination loop down to ``min_features``.

    ``model_factory`` must build models exposing ``fit``, ``predict`` and
    ``feature_importances_``.  Returns one step per feature count, from all
    features down to ``min_features`` (Figure 7's x-axis, reversed).

    ``protected`` names features that are structural model inputs (e.g. the
    ``r_dram`` placement ratio) and must never be eliminated.
    """
    X_train = np.asarray(X_train, dtype=np.float64)
    X_test = np.asarray(X_test, dtype=np.float64)
    names = list(feature_names)
    if X_train.shape[1] != len(names):
        raise ValueError("feature_names length must match X columns")
    if min_features < 1:
        raise ValueError("min_features must be >= 1")
    active = list(range(len(names)))
    steps: list[EliminationStep] = []
    while len(active) >= min_features:
        model = model_factory()
        model.fit(X_train[:, active], y_train)
        pred = model.predict(X_test[:, active])
        importances = np.asarray(model.feature_importances_, dtype=np.float64)
        steps.append(
            EliminationStep(
                features=tuple(names[i] for i in active),
                score=float(score_fn(y_test, pred)),
                importances=tuple(importances),
            )
        )
        if len(active) == min_features:
            break
        protected_set = set(protected)
        order = np.argsort(importances, kind="stable")
        weakest = None
        for pos in order:
            if names[active[int(pos)]] not in protected_set:
                weakest = int(pos)
                break
        if weakest is None:  # everything left is protected
            break
        del active[weakest]
    return steps
