"""The cluster router: consistent-hash routing, liveness, failover.

:class:`ClusterRouter` is the thin layer that turns N independent
:class:`~repro.service.cluster.shard.PlacementShard` instances into one
control plane:

* **routing** -- tenants map to shards through a
  :class:`~repro.service.cluster.hashring.ConsistentHashRing`, so adding
  or losing a shard re-routes only that shard's tenants;
* **liveness** -- every tick the router heartbeats each shard; a shard
  that misses ``heartbeat_miss_threshold`` consecutive probes is declared
  dead *by the probe schedule*, not by the first request that happens to
  time out against it;
* **failover** -- a dead shard's replication follower is promoted: its
  replicated WAL is replayed through the existing PR-2
  :func:`~repro.core.journal.recover_journal` path (checkpoint restore +
  committed-epoch replay, open epoch rolled back), a fresh shard adopts
  the reconstructed decided-id record warm, re-acquires a quota lease,
  and every still-unanswered in-flight request is retried against it --
  answered from the replayed record when its decision committed before
  the kill, re-planned when it did not.  Either way each request id is
  answered exactly once;
* **quota** -- the router paces lease renewals against the
  :class:`~repro.service.cluster.lease.QuotaCoordinator`; an injected
  router/coordinator partition (``FaultConfig.partition_rate``) silences
  renewals, leases expire, and the affected shards degrade to zero
  capacity instead of spending quota the coordinator may re-grant.

The router is synchronous and clock-free like everything beneath it: the
chaos soak drives :meth:`submit` / :meth:`tick` on a virtual clock.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.core.journal import recover_journal
from repro.service.cluster.hashring import ConsistentHashRing
from repro.service.cluster.lease import QuotaCoordinator
from repro.service.cluster.replication import FollowerJournal
from repro.service.cluster.shard import PlacementShard, ShardCrashed
from repro.service.protocol import (
    PlacementDecision,
    PlacementRequest,
    decode_decision,
)
from repro.sim.faults import RobustnessLog
from repro.sim.pages import PageTable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.journal import WriteAheadLog
    from repro.core.telemetry import Telemetry
    from repro.sim.faults import FaultInjector

__all__ = ["ClusterRouter"]

#: shard_factory(shard_id, replicated_journal_or_None) -> PlacementShard
ShardFactory = Callable[[str, "WriteAheadLog | None"], PlacementShard]


class ClusterRouter:
    """Consistent-hash router with heartbeat liveness and warm failover."""

    def __init__(
        self,
        coordinator: QuotaCoordinator,
        shard_factory: ShardFactory,
        *,
        vnodes: int = 32,
        heartbeat_interval_s: float = 0.05,
        heartbeat_miss_threshold: int = 3,
        lease_renew_interval_s: float | None = None,
        faults: "FaultInjector | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        if heartbeat_miss_threshold < 1:
            raise ValueError("heartbeat_miss_threshold must be >= 1")
        self.coordinator = coordinator
        self.shard_factory = shard_factory
        self.ring = ConsistentHashRing(vnodes=vnodes)
        self.heartbeat_interval_s = heartbeat_interval_s
        self.heartbeat_miss_threshold = heartbeat_miss_threshold
        #: renew well inside the TTL so one lost renewal is survivable
        self.lease_renew_interval_s = (
            coordinator.ttl_s / 3.0
            if lease_renew_interval_s is None
            else lease_renew_interval_s
        )
        self.faults = faults
        self.telemetry = telemetry
        self.log = RobustnessLog()
        self.shards: dict[str, PlacementShard] = {}
        self.followers: dict[str, FollowerJournal] = {}
        self._last_heartbeat_ok: dict[str, float] = {}
        self._missed_heartbeats: dict[str, int] = {}
        self._last_renew: dict[str, float] = {}
        #: unanswered requests per shard, by request id (the retry set)
        self._inflight: dict[str, dict[str, PlacementRequest]] = {}
        self.stats: dict[str, int] = {
            "routed": 0,
            "answered": 0,
            "promotions": 0,
            "failover_retries": 0,
            "replayed_decisions": 0,
            "heartbeat_misses": 0,
            "partition_ticks": 0,
        }

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_shard(self, shard_id: str, now: float) -> PlacementShard:
        if shard_id in self.shards:
            raise ValueError(f"shard {shard_id!r} already exists")
        shard = self.shard_factory(shard_id, None)
        self.ring.add(shard_id)
        self.shards[shard_id] = shard
        self.followers[shard_id] = FollowerJournal(
            shard_id, telemetry=self.telemetry
        )
        self._inflight[shard_id] = {}
        self._last_heartbeat_ok[shard_id] = now
        self._missed_heartbeats[shard_id] = 0
        if self._coordinator_reachable(now):
            shard.acquire_lease(now)
            self._last_renew[shard_id] = now
        else:
            self._last_renew[shard_id] = -float("inf")
        self._gauge_shards()
        return shard

    def shard_for(self, tenant: str) -> str:
        return self.ring.route(tenant)

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, request: PlacementRequest, now: float
    ) -> PlacementDecision | None:
        """Route one request; returns its decision when answered at once
        (idempotent replay or admission shed), else ``None`` until a later
        :meth:`tick` delivers it.

        A request routed to a dead shard is *parked*: it stays in the
        in-flight set and is submitted to the promoted follower as part of
        failover.  Nothing is ever dropped on the floor.
        """
        shard_id = self.ring.route(request.tenant)
        shard = self.shards[shard_id]
        self.stats["routed"] += 1
        self._inflight[shard_id][request.request_id] = request
        if not shard.alive:
            return None
        try:
            decision = shard.submit(request, now)
        except ShardCrashed:  # pragma: no cover - submit has no kill point
            decision = None
        if decision is not None:
            self._inflight[shard_id].pop(request.request_id, None)
            self.stats["answered"] += 1
        return decision

    # ------------------------------------------------------------------
    # the control loop
    # ------------------------------------------------------------------
    def tick(self, now: float, flush: bool = False) -> list[PlacementDecision]:
        """One control-loop turn: renew leases, pump + replicate every
        live shard, heartbeat everyone, promote the dead.  Returns the
        decisions delivered this tick."""
        delivered: list[PlacementDecision] = []
        partitioned = self._partitioned(now)
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            if not shard.alive:
                continue
            try:
                if (
                    not partitioned
                    and now - self._last_renew[shard_id]
                    >= self.lease_renew_interval_s
                ):
                    if shard.renew_lease(now) is not None:
                        self._last_renew[shard_id] = now
                decisions = shard.flush(now) if flush else shard.pump(now)
                delivered.extend(self._resolve(shard_id, decisions))
                shard.replicate(self.followers[shard_id], now)
            except ShardCrashed as exc:
                self.log.record(
                    "cluster.shard_crashed",
                    now,
                    shard=shard_id,
                    point=exc.point,
                )
                continue
            # a full pass through the shard counts as a heartbeat answer
            self._heartbeat_ok(shard_id, now)
        self.coordinator.expire(now)
        delivered.extend(self._check_liveness(now))
        return delivered

    def drain(self, now: float) -> list[PlacementDecision]:
        """Flush every shard (end-of-run: decide everything pending)."""
        return self.tick(now, flush=True)

    def inflight_count(self) -> int:
        return sum(len(v) for v in self._inflight.values())

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------
    def _heartbeat_ok(self, shard_id: str, now: float) -> None:
        self._last_heartbeat_ok[shard_id] = now
        self._missed_heartbeats[shard_id] = 0

    def _check_liveness(self, now: float) -> list[PlacementDecision]:
        """Declare shards dead by missed heartbeats; promote their
        followers.  Returns decisions answered during failover retry."""
        delivered: list[PlacementDecision] = []
        for shard_id in sorted(self.shards):
            shard = self.shards[shard_id]
            if shard.heartbeat(now):
                continue
            missed = 1 + int(
                (now - self._last_heartbeat_ok[shard_id])
                // self.heartbeat_interval_s
            )
            self._missed_heartbeats[shard_id] = missed
            self.stats["heartbeat_misses"] += 1
            if self.telemetry is not None:
                self.telemetry.inc("merch_cluster_heartbeat_misses_total")
            if missed >= self.heartbeat_miss_threshold:
                self.log.record(
                    "cluster.shard_declared_dead",
                    now,
                    shard=shard_id,
                    missed_heartbeats=missed,
                )
                delivered.extend(self.promote(shard_id, now))
        return delivered

    # ------------------------------------------------------------------
    # failover
    # ------------------------------------------------------------------
    def promote(self, shard_id: str, now: float) -> list[PlacementDecision]:
        """Promote ``shard_id``'s follower to primary and retry in-flight.

        The follower's replicated WAL goes through
        :func:`~repro.core.journal.recover_journal` exactly like a local
        crash recovery: torn tail truncated, the open epoch rolled back,
        the newest committed checkpoint restored.  The decided-id record
        is rebuilt from the checkpoint plus every committed epoch's
        decisions (idempotent overwrites), so retried requests whose
        decisions committed before the kill are answered bit-exactly from
        the record instead of being re-planned.
        """
        follower = self.followers[shard_id]
        outcome = recover_journal(follower.journal, PageTable([], 0))
        state = outcome.checkpoint_state or {}
        decided: dict[str, PlacementDecision] = {
            rid: decode_decision(payload)
            for rid, payload in state.get("decided", {}).items()
        }
        epoch_seq = int(state.get("epoch_seq", 0))
        for record in follower.journal.records():
            if record.kind != "epoch_commit":
                continue
            for payload in record.payload.get("decisions", []):
                decision = decode_decision(payload)
                decided[decision.request_id] = decision
            epoch_seq = max(epoch_seq, int(record.payload.get("region", -1)) + 1)
        shard = self.shard_factory(shard_id, follower.journal)
        shard.adopt(decided, epoch_seq, int(state.get("lease_pages", 0)))
        self.shards[shard_id] = shard
        self.followers[shard_id] = FollowerJournal(
            shard_id, telemetry=self.telemetry
        )
        self._heartbeat_ok(shard_id, now)
        self.stats["promotions"] += 1
        self.stats["replayed_decisions"] += len(decided)
        self.log.record(
            "cluster.promoted",
            now,
            shard=shard_id,
            replayed_decisions=len(decided),
            epoch_seq=epoch_seq,
            torn_tail=outcome.torn_tail,
            warm=outcome.checkpoint_state is not None,
        )
        if self.telemetry is not None:
            self.telemetry.inc("merch_cluster_promotions_total")
            self.telemetry.observe(
                "merch_cluster_failover_replayed_decisions", float(len(decided))
            )
        if self._coordinator_reachable(now):
            # the dead incarnation's lease is NOT force-released -- it runs
            # out its TTL; the promoted shard acquires what is free now
            shard.acquire_lease(now)
            self._last_renew[shard_id] = now
        else:
            self._last_renew[shard_id] = -float("inf")
        self._gauge_shards()
        return self._retry_inflight(shard_id, now)

    def _retry_inflight(
        self, shard_id: str, now: float
    ) -> list[PlacementDecision]:
        """Resubmit every unanswered request of a promoted shard."""
        shard = self.shards[shard_id]
        delivered: list[PlacementDecision] = []
        for rid, request in list(self._inflight[shard_id].items()):
            self.stats["failover_retries"] += 1
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_cluster_requests_total", path="failover_retry"
                )
            decision = shard.submit(request, now)
            if decision is not None:
                self._inflight[shard_id].pop(rid, None)
                self.stats["answered"] += 1
                delivered.append(decision)
        return delivered

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _resolve(
        self, shard_id: str, decisions: list[PlacementDecision]
    ) -> list[PlacementDecision]:
        inflight = self._inflight[shard_id]
        for decision in decisions:
            inflight.pop(decision.request_id, None)
        self.stats["answered"] += len(decisions)
        return decisions

    def _partitioned(self, now: float) -> bool:
        if self.faults is not None and self.faults.coordinator_partition(now):
            self.stats["partition_ticks"] += 1
            return True
        return False

    def _coordinator_reachable(self, now: float) -> bool:
        return not self._partitioned(now)

    def _gauge_shards(self) -> None:
        if self.telemetry is not None:
            self.telemetry.set(
                "merch_cluster_shards",
                float(sum(1 for s in self.shards.values() if s.alive)),
            )
