"""Micro-benchmarks of the performance-critical library components.

Unlike the figure/table benchmarks (single-shot experiment regenerations),
these run multiple rounds and track the hot paths a downstream user would
care about: the engine's simulation throughput, Algorithm 1's planning
latency, one Equation-2 prediction, and model training.
"""

import numpy as np
import pytest

from repro.apps import SpGEMMApp
from repro.apps.codesamples import generate_corpus
from repro.baselines import MemoryOptimizerPolicy, PMOnlyPolicy
from repro.common import make_rng
from repro.core.correlation import generate_training_data
from repro.core.model import TaskModelInputs
from repro.core.planner import greedy_plan, optimal_quotas
from repro.ml import GradientBoostedRegressor
from repro.sim import Engine, MachineModel, optane_hm_config
from repro.sim.counters import collect_pmcs

HM = optane_hm_config()
MODEL = MachineModel()


@pytest.fixture(scope="module")
def small_app():
    app = SpGEMMApp.small(seed=0)
    return app, app.build_workload(seed=0)


@pytest.fixture(scope="module")
def planner_inputs(ctx):
    machine, hm = MODEL, HM
    rng = make_rng(0)
    tasks = []
    task_bytes = {}
    for i, sample in enumerate(generate_corpus(12, seed=3)):
        fp = sample.footprint()
        t_dram, t_pm = machine.endpoint_times(fp, hm)
        tasks.append(
            TaskModelInputs(
                task_id=f"t{i}",
                t_pm_only=t_pm,
                t_dram_only=t_dram,
                total_accesses=fp.total_accesses,
                pmcs=collect_pmcs(fp, machine, hm, rng=rng),
            )
        )
        task_bytes[f"t{i}"] = 32 << 20
    return ctx.system.performance_model, tasks, task_bytes


def test_bench_engine_pm_only(benchmark, small_app):
    """Simulation throughput: one small SpGEMM run, no migration."""
    app, wl = small_app
    eng = Engine(MODEL, HM)
    result = benchmark(lambda: eng.run(wl, PMOnlyPolicy(), seed=1))
    assert result.total_time_s > 0


def test_bench_engine_with_daemon(benchmark, small_app):
    """Simulation throughput with the sampling/migration daemon active."""
    app, wl = small_app
    eng = Engine(MODEL, HM)
    result = benchmark(lambda: eng.run(wl, MemoryOptimizerPolicy(seed=7), seed=1))
    assert result.pages_migrated > 0


def test_bench_greedy_plan(benchmark, planner_inputs):
    """Algorithm 1 planning latency for a 12-task region."""
    model, tasks, task_bytes = planner_inputs
    plan = benchmark(
        lambda: greedy_plan(tasks, model, HM.dram.capacity_bytes, task_bytes)
    )
    assert plan.dram_pages_used <= HM.dram.capacity_bytes // 4096


def test_bench_optimal_plan(benchmark, planner_inputs):
    """The makespan-optimal oracle (bisection) for the same region."""
    model, tasks, task_bytes = planner_inputs
    plan = benchmark(
        lambda: optimal_quotas(tasks, model, HM.dram.capacity_bytes, task_bytes)
    )
    assert plan.predicted_makespan_s > 0


def test_bench_single_prediction(benchmark, planner_inputs):
    """One Equation-2 prediction (the paper reports 0.031 ms)."""
    model, tasks, _ = planner_inputs
    value = benchmark(lambda: model.predict_ratio(tasks[0], 0.45))
    assert value > 0


def test_bench_prediction_grid(benchmark, planner_inputs):
    """A vectorised 21-point ratio grid (what the planner actually calls)."""
    model, tasks, _ = planner_inputs
    levels = np.linspace(0, 1, 21)
    grid = benchmark(lambda: model.ratio_grid(tasks[0], levels))
    assert len(grid) == 21


def test_bench_training_data_generation(benchmark):
    """Offline step 1: training-data generation for 20 code regions."""
    samples = generate_corpus(20, seed=1)
    data = benchmark.pedantic(
        lambda: generate_training_data(MODEL, HM, samples, placements_per_sample=6, seed=1),
        rounds=1,
        iterations=1,
    )
    assert data.X.shape[0] == 120


def test_bench_gbr_fit(benchmark):
    """Offline step 3: fitting the selected GBR correlation model."""
    rng = np.random.default_rng(0)
    X = rng.normal(size=(600, 21))
    y = np.sin(X[:, 0]) + X[:, -1]
    model = benchmark.pedantic(
        lambda: GradientBoostedRegressor(n_estimators=100, rng=1).fit(X, y),
        rounds=1,
        iterations=1,
    )
    assert model.trees_
