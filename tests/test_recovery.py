"""Engine-level crash + recovery tests for the journaled control plane."""

import json

import numpy as np
import pytest

from repro.apps import SpGEMMApp
from repro.core import default_system
from repro.core.journal import SimulatedCrash, WriteAheadLog
from repro.sim import (
    Engine,
    EngineConfig,
    FaultConfig,
    FaultInjector,
    MachineModel,
    optane_hm_config,
)


@pytest.fixture(scope="module")
def system():
    return default_system(seed=0, fast=True)


@pytest.fixture(scope="module")
def app():
    return SpGEMMApp.small(seed=0)


@pytest.fixture(scope="module")
def workload(app):
    return app.build_workload(seed=0)


@pytest.fixture(scope="module")
def baseline(system, app, workload):
    """Crash-free journaled run everything else is compared against."""
    journal = WriteAheadLog()
    policy = system.policy(app.binding(workload), seed=5)
    result = _engine(journal=journal).run(workload, policy, seed=1)
    return result, journal


def _engine(faults=None, journal=None, config=None):
    return Engine(
        MachineModel(), optane_hm_config(), config=config,
        faults=faults, journal=journal,
    )


def _policy(system, app, workload):
    return system.policy(app.binding(workload), seed=5)


def _crash_faults(point, crash_at=2, torn=False):
    return FaultInjector(
        FaultConfig(crash_at=crash_at, crash_point=point, crash_torn_tail=torn),
        seed=7,
    )


def _crash_and_recover(system, app, workload, point, crash_at=2, torn=False):
    journal = WriteAheadLog()
    faults = _crash_faults(point, crash_at, torn)
    with pytest.raises(SimulatedCrash) as exc_info:
        _engine(faults=faults, journal=journal).run(
            workload, _policy(system, app, workload), seed=1
        )
    image = exc_info.value.image
    result, outcome = _engine(journal=image.journal).recover(
        workload, _policy(system, app, workload), image, seed=1
    )
    return result, outcome


class TestBitIdentity:
    def test_journal_off_matches_journal_on(self, system, app, workload, baseline):
        journaled, _ = baseline
        plain = _engine().run(workload, _policy(system, app, workload), seed=1)
        assert plain.total_time_s == journaled.total_time_s
        assert plain.pages_migrated == journaled.pages_migrated
        np.testing.assert_array_equal(plain.trace_time, journaled.trace_time)
        np.testing.assert_array_equal(plain.trace_dram_bw, journaled.trace_dram_bw)
        np.testing.assert_array_equal(plain.trace_pm_bw, journaled.trace_pm_bw)
        np.testing.assert_array_equal(
            plain.trace_migration_bw, journaled.trace_migration_bw
        )

    def test_journal_records_shape(self, workload, baseline):
        result, journal = baseline
        records = journal.records()
        assert records[0].kind == "epoch_begin"
        begins = sum(1 for r in records if r.kind == "epoch_begin")
        commits = sum(1 for r in records if r.kind == "epoch_commit")
        assert begins == commits == len(result.regions)


class TestCrash:
    def test_crash_raises_with_usable_image(self, system, app, workload):
        journal = WriteAheadLog()
        faults = _crash_faults("tick", crash_at=3)
        with pytest.raises(SimulatedCrash) as exc_info:
            _engine(faults=faults, journal=journal).run(
                workload, _policy(system, app, workload), seed=1
            )
        image = exc_info.value.image
        assert image.journal is journal
        assert image.time_s > 0.0
        assert len(image.page_table) > 0
        assert faults.crash_fired

    def test_recover_without_journal_raises(self, system, app, workload):
        journal = WriteAheadLog()
        faults = _crash_faults("tick", crash_at=2)
        with pytest.raises(SimulatedCrash) as exc_info:
            _engine(faults=faults, journal=journal).run(
                workload, _policy(system, app, workload), seed=1
            )
        image = exc_info.value.image
        object.__setattr__(image, "journal", None)
        with pytest.raises(ValueError):
            _engine().recover(
                workload, _policy(system, app, workload), image, seed=1
            )


class TestRecovery:
    @pytest.mark.parametrize(
        "point,torn",
        [("tick", False), ("mid_batch", False),
         ("wal_append", False), ("wal_append", True)],
    )
    def test_recovered_run_is_consistent_and_exact(
        self, system, app, workload, baseline, point, torn
    ):
        base_result, _ = baseline
        result, outcome = _crash_and_recover(
            system, app, workload, point, crash_at=2, torn=torn
        )
        assert outcome.violations == []
        assert result.robustness.count("journal.invariant_violation") == 0
        assert result.robustness.count("journal.recovered") == 1
        # warm replay from the checkpoint is bit-exact
        assert result.total_time_s == pytest.approx(
            base_result.total_time_s, rel=1e-6
        )

    def test_torn_tail_detected_and_truncated(self, system, app, workload):
        result, outcome = _crash_and_recover(
            system, app, workload, "wal_append", crash_at=1, torn=True
        )
        assert outcome.torn_tail is True
        assert result.robustness.count("journal.torn_tail") == 1
        assert outcome.violations == []

    def test_mid_batch_crash_rolls_back_partial_moves(
        self, system, app, workload, baseline
    ):
        base_result, _ = baseline
        result, outcome = _crash_and_recover(
            system, app, workload, "mid_batch", crash_at=1
        )
        # the half-applied batch was undone page-by-page
        assert outcome.open_epoch >= 0
        assert outcome.rolled_back_pages > 0
        assert outcome.violations == []
        assert result.total_time_s == pytest.approx(
            base_result.total_time_s, rel=1e-6
        )

    def test_cold_recovery_before_first_commit(
        self, system, app, workload, baseline
    ):
        # crash on the very first tick: no commit, no checkpoint -> the
        # journal only says "epoch 0 open"; recovery restarts region 0 cold
        base_result, _ = baseline
        result, outcome = _crash_and_recover(
            system, app, workload, "tick", crash_at=1
        )
        assert outcome.checkpoint_state is None
        assert outcome.resume_region == 0
        assert outcome.violations == []
        # the cold re-run is a deterministic replay, so still exact
        assert result.total_time_s == pytest.approx(
            base_result.total_time_s, rel=1e-6
        )

    def test_double_crash_recovers_twice(
        self, system, app, workload, baseline
    ):
        base_result, _ = baseline
        journal = WriteAheadLog()
        faults = _crash_faults("tick", crash_at=2)
        with pytest.raises(SimulatedCrash) as exc_info:
            _engine(faults=faults, journal=journal).run(
                workload, _policy(system, app, workload), seed=1
            )
        image = exc_info.value.image
        # the recovered incarnation is killed again, later on
        faults2 = _crash_faults("tick", crash_at=4)
        with pytest.raises(SimulatedCrash) as exc_info2:
            _engine(faults=faults2, journal=image.journal).recover(
                workload, _policy(system, app, workload), image, seed=1
            )
        image2 = exc_info2.value.image
        result, outcome = _engine(journal=image2.journal).recover(
            workload, _policy(system, app, workload), image2, seed=1
        )
        assert outcome.violations == []
        # the shared log saw both recoveries
        assert result.robustness.count("journal.recovered") == 2
        assert result.total_time_s == pytest.approx(
            base_result.total_time_s, rel=1e-6
        )


class TestCheckpoints:
    def test_checkpoint_interval_thins_checkpoints(self, system, app, workload):
        journal = WriteAheadLog()
        config = EngineConfig(checkpoint_interval=2)
        result = _engine(journal=journal, config=config).run(
            workload, _policy(system, app, workload), seed=1
        )
        checkpoints = sum(1 for r in journal.records() if r.kind == "checkpoint")
        assert checkpoints == len(result.regions) // 2

    def test_policy_snapshot_is_jsonable_and_roundtrips(
        self, system, app, workload, baseline
    ):
        # run one policy to completion, snapshot it, restore into a fresh
        # instance: the re-snapshot must be identical (same estimators,
        # alpha tables, guardrail state and RNG position)
        policy = _policy(system, app, workload)
        _engine().run(workload, policy, seed=1)
        state = policy.snapshot_state()
        json.dumps(state)  # WAL checkpoints serialize this verbatim
        fresh = _policy(system, app, workload)
        fresh.restore_state(state)
        assert fresh.snapshot_state() == state
