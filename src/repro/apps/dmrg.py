"""DMRG: density-matrix renormalization group (ITensor stand-in).

Table 2: Hubbard 2D model at 320x320, 1.271 TB, 6 MPI processes x 2
OpenMP threads.  Figure 1.a gives the task structure: the Hamiltonian is
partitioned into blocks, one per MPI rank; each sweep iteration runs
construct -> Davidson solve -> SVD update on the rank's block (H) and
matrix-product state (PSI), then globally synchronises.  Task instances
reuse H but receive a different PSI each sweep (the new input).

Layers:

* :func:`davidson_sweep` -- a real simplified sweep: power-iteration
  Davidson on a dense SPD block plus an SVD-based PSI truncation,
  validated against numpy eigendecomposition in the tests;
* :class:`DMRGApp` -- workload: equal-size blocks (the paper notes DMRG
  has no intrinsic imbalance), PSI bond dimension drifting across sweeps;
* kernel IR: matvec streams over H rows and PSI, SVD/transpose touches
  PSI at a constant row stride -- Table 1's "Stream + Strided".
"""

from __future__ import annotations

import numpy as np

from repro.common import AccessPattern, MIB, make_rng
from repro.apps.base import AppConfig, Application
from repro.core.patterns import Affine, ArrayRef, Loop
from repro.tasks.task import (
    DataObject,
    Footprint,
    KernelProfile,
    ObjectAccess,
    Workload,
)
from repro.tasks.frontends import MPIProgram

__all__ = ["davidson_sweep", "DMRGApp"]


def davidson_sweep(
    h_block: np.ndarray, psi: np.ndarray, iters: int = 30, rank_keep: int | None = None
) -> tuple[float, np.ndarray]:
    """One simplified DMRG sweep step on a dense SPD Hamiltonian block.

    Runs power-iteration (the workhorse of a Davidson solve) to approximate
    the dominant eigenpair, then truncates the updated PSI through an SVD
    (the bond-dimension truncation of S3 in Figure 1.a).

    Returns (eigenvalue estimate, updated PSI matrix).
    """
    n = h_block.shape[0]
    if h_block.shape != (n, n):
        raise ValueError("h_block must be square")
    if psi.shape[0] != n:
        raise ValueError("psi rows must match h_block")
    v = psi[:, 0].astype(np.float64).copy()
    norm = np.linalg.norm(v)
    if norm == 0:
        raise ValueError("psi must not start at zero")
    v /= norm
    for _ in range(iters):
        w = h_block @ v
        nw = np.linalg.norm(w)
        if nw == 0:
            break
        v = w / nw
    eig = float(v @ h_block @ v)
    # S3: update + truncate PSI via SVD
    updated = psi + np.outer(v, v @ psi)
    u, s, vt = np.linalg.svd(updated, full_matrices=False)
    k = rank_keep or min(updated.shape)
    truncated = (u[:, :k] * s[:k]) @ vt[:k]
    return eig, truncated


class DMRGApp(Application):
    """Task-parallel DMRG at simulated scale."""

    name = "DMRG"
    paper_memory_gb = 1271.0
    paper_problem = "Hubbard 2D model with Nx = 320 and Ny = 320"

    @classmethod
    def small_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=3,
            footprint_bytes=128 * MIB,
            iterations=3,
            mpi_processes=3,
            openmp_threads=2,
            reference_scale=64,  # reference dense-block dimension
        )

    @classmethod
    def paper_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=6,
            footprint_bytes=int(1271 * MIB),
            iterations=6,
            mpi_processes=6,
            openmp_threads=2,
            reference_scale=128,
        )

    # ------------------------------------------------------------------
    def build_workload(self, seed=None) -> Workload:
        seed = self.seed if seed is None else seed
        rng = make_rng(seed)
        cfg = self.config

        prog = MPIProgram(self.name, cfg.n_tasks)
        budget = cfg.footprint_bytes
        # blocks are nominally equal, but the partitioned Hamiltonian's
        # structure gives ranks mildly different densities (+-20%): enough
        # heterogeneity that task-agnostic placement can misallocate
        density = 1.0 + 0.2 * np.sin(np.linspace(0.5, 2.8, cfg.n_tasks))
        density /= density.mean()
        h_bytes = (0.45 * budget / cfg.n_tasks * density).astype(np.int64)
        psi_bytes = (0.55 * budget / cfg.n_tasks * density[::-1]).astype(np.int64)
        for r in range(cfg.n_tasks):
            prog.declare_object(
                DataObject(f"H{r}", size_bytes=max(int(h_bytes[r]), MIB), owner=prog.task_id(r))
            )
            prog.declare_object(
                DataObject(f"PSI{r}", size_bytes=max(int(psi_bytes[r]), MIB), owner=prog.task_id(r))
            )

        profile = KernelProfile(
            branch_rate=0.02, branch_misp_rate=0.01, vector_fraction=0.85, ilp=3.2
        )
        # Davidson iterations stream H several times per sweep; the SVD
        # update walks PSI with a large row stride (transpose-like)
        for it in range(cfg.iterations):
            # bond dimension drifts as the sweep converges: PSI grows then
            # settles (the "new input" of each task instance)
            psi_scale = 1.0 if it == 0 else float(np.clip(rng.normal(1.0 + 0.08 * min(it, 3), 0.04), 0.8, 1.4))
            fps = []
            vecs = []
            region_name = f"sweep{it}"
            for r in range(cfg.n_tasks):
                hb = int(h_bytes[r])
                h_stream = self.mem_accesses(
                    AccessPattern.STREAM, int(4.0 * hb / 8), 8, hb
                )
                psi_sz = int(psi_bytes[r] * psi_scale)
                psi_stream = self.mem_accesses(
                    AccessPattern.STREAM, int(2.0 * psi_sz / 8), 8, psi_sz
                )
                psi_strided = self.mem_accesses(
                    AccessPattern.STRIDED, int(1.0 * psi_sz / 8), 8, psi_sz, stride=64
                )
                total = h_stream + psi_stream + psi_strided
                fp = Footprint(
                    accesses=(
                        ObjectAccess(f"H{r}", AccessPattern.STREAM, reads=h_stream),
                        ObjectAccess(
                            f"PSI{r}",
                            AccessPattern.STREAM,
                            reads=psi_stream * 2 // 3,
                            writes=psi_stream // 3,
                        ),
                        ObjectAccess(
                            f"PSI{r}", AccessPattern.STRIDED, reads=psi_strided
                        ),
                    ),
                    instructions=max(int(total * 45), 1000),
                    profile=profile,
                )
                fps.append(fp)
                self._instance_sizes[(prog.task_id(r), region_name)] = {
                    f"H{r}": max(hb, MIB),
                    f"PSI{r}": max(psi_sz, MIB),
                }
                vecs.append((hb, psi_sz))
            prog.parallel_region(region_name, fps, input_vectors=vecs, kind="sweep")
        return prog.build()

    # ------------------------------------------------------------------
    def task_kernels(self) -> dict[str, list[Loop]]:
        kernels = {}
        for r in range(self.n_tasks):
            tid = f"rank{r}"
            matvec = Loop(
                "i",
                (
                    Loop(
                        "j",
                        (
                            ArrayRef(f"H{r}", Affine("j")),
                            ArrayRef(f"PSI{r}", Affine("j")),
                        ),
                    ),
                ),
            )
            svd_update = Loop(
                "i",
                (
                    Loop(
                        "j",
                        (
                            # column-major walk of the row-major PSI matrix
                            ArrayRef(f"PSI{r}", Affine("j", stride=64), is_write=True),
                        ),
                    ),
                ),
            )
            kernels[tid] = [matvec, svd_update]
        return kernels

    def managed_objects(self, workload: Workload) -> dict[str, list[DataObject]]:
        return {
            f"rank{r}": [workload.object(f"H{r}"), workload.object(f"PSI{r}")]
            for r in range(self.n_tasks)
        }
