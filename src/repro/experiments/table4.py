"""Table 4: accuracy of the whole performance-modeling pipeline.

For every application, the base input of each (task, phase) is profiled
(PEBS-sampled access counts, PMCs, basic-block timing), then the pipeline
predicts the execution time of *later* instances (new inputs) under several
data placements; accuracy is ``1 - MAPE`` against the ground-truth machine
model.  The comparison baseline is the profiling-based regression of
Barnes et al. [8], which simply scales the base input's measured time by
the data-size ratio.

Paper values (ours / profiling-based regression): SpGEMM 74.2/37.4, WarpX
87.4/75.1, BFS 71.3/38.6, DMRG 89.2/83.9, NWChem-TC 83.0/62.5 (%).
"""

from __future__ import annotations

import numpy as np

from repro.apps import ALL_APPS
from repro.core.estimator import AccessEstimator
from repro.core.homogeneous import BasicBlock, HomogeneousPredictor, input_similarity_scale
from repro.core.model import PerformanceModel, TaskModelInputs
from repro.ml import prediction_accuracy
from repro.profiling.pebs import PEBSProfiler
from repro.sim.counters import collect_pmcs
from repro.common import make_rng
from repro.experiments.common import ExperimentContext, format_table

PAPER = {
    "SpGEMM": (0.742, 0.374),
    "WarpX": (0.874, 0.751),
    "BFS": (0.713, 0.386),
    "DMRG": (0.892, 0.839),
    "NWChem-TC": (0.830, 0.625),
}

PLACEMENT_RATIOS = (0.0, 0.3, 0.6)


def run(ctx: ExperimentContext) -> dict[str, object]:
    machine, hm = ctx.engine.machine, ctx.engine.hm
    model = PerformanceModel(ctx.system.correlation)
    rng = make_rng(ctx.seed + 23)
    pebs = PEBSProfiler(period=512, seed=rng)
    rows = []
    out: dict[str, dict[str, float]] = {}
    for app_cls in ALL_APPS:
        app = ctx.app(app_cls)
        wl = ctx.workload(app_cls)
        binding = app.binding(wl)
        homog = HomogeneousPredictor(machine, hm)
        # group instances by (task, kind) in region order
        series: dict[tuple[str, str], list] = {}
        for region in wl.regions:
            for inst in region.instances:
                series.setdefault((inst.task_id, region.kind), []).append(
                    (region, inst)
                )
        truths: list[float] = []
        preds: list[float] = []
        base_preds: list[float] = []
        for (tid, kind), items in series.items():
            if len(items) < 2 or tid not in binding.descriptors:
                continue
            base_region, base = items[0]
            desc = binding.descriptors[tid]
            est = AccessEstimator(desc)
            base_sizes = binding.object_sizes(wl, base, base_region.name)
            counts = {
                k: v
                for k, v in pebs.measure(base.footprint).items()
                if k in desc
            }
            est.record_base_profile(base_sizes, counts)
            pmcs = collect_pmcs(base.footprint, machine, hm, rng=rng)
            block = BasicBlock(name=f"{tid}|{kind}", unit_footprint=base.footprint)
            homog.measure_blocks([block])
            homog.record_base(block.name, {block.name: 1.0}, base.input_vector or (1.0,))
            for region, inst in items[1:]:
                sizes = binding.object_sizes(wl, inst, region.name)
                total_est = est.estimate_total(sizes)
                if total_est <= 0:
                    continue
                new_vec = inst.input_vector or base.input_vector or (1.0,)
                t_dram, t_pm = homog.predict(block.name, new_vec)
                inputs = TaskModelInputs(
                    task_id=tid,
                    t_pm_only=t_pm,
                    t_dram_only=t_dram,
                    total_accesses=total_est,
                    pmcs=pmcs,
                )
                scale = input_similarity_scale(
                    base.input_vector or (1.0,), new_vec
                )
                # the regression baseline [8] scales the base input's one
                # profiled execution time (PM-only, where profiling runs) by
                # the data-size ratio; it has no notion of data placement,
                # which is exactly why the paper's model outperforms it
                base_t_pm = machine.uniform_ratio_time(base.footprint, hm, 0.0)
                for r in PLACEMENT_RATIOS:
                    truth = machine.uniform_ratio_time(inst.footprint, hm, r)
                    truths.append(truth)
                    preds.append(model.predict_ratio(inputs, r))
                    base_preds.append(base_t_pm * scale)
                # online alpha refinement from this instance's PEBS
                # measurements (Section 4), improving later predictions
                est.refine(sizes, pebs.measure(inst.footprint))
        ours = prediction_accuracy(truths, preds)
        baseline = prediction_accuracy(truths, base_preds)
        out[app.name] = {"ours": ours, "baseline": baseline}
        paper_ours, paper_base = PAPER[app.name]
        rows.append([app.name, baseline, paper_base, ours, paper_ours])
    print("Table 4: whole-pipeline prediction accuracy (1 - MAPE)")
    print(
        format_table(
            ["application", "regression [8]", "paper [8]", "performance model", "paper model"],
            rows,
        )
    )
    return out
