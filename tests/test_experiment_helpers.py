"""Tests for experiment-module helper functions (no engine runs needed)."""

import numpy as np
import pytest

from repro.experiments.fig5 import box_stats
from repro.experiments.fig6 import downsample
from repro.experiments.sensitivity import resized_hm
from repro.experiments.table1 import PAPER_PATTERNS
from repro.experiments.table3 import PAPER_R2
from repro.experiments.table4 import PAPER


class TestBoxStats:
    def test_normalised_to_slowest(self):
        stats = box_stats([1.0, 2.0, 4.0])
        assert stats["max"] == 1.0
        assert stats["min"] == pytest.approx(0.25)

    def test_quartile_ordering(self):
        stats = box_stats(list(np.linspace(1, 10, 20)))
        assert stats["min"] <= stats["q1"] <= stats["median"] <= stats["q3"] <= stats["max"]

    def test_acv_of_equal_tasks_zero(self):
        assert box_stats([5.0, 5.0, 5.0])["acv"] == 0.0


class TestDownsample:
    def test_bucket_count(self):
        t = np.linspace(0, 100, 1000)
        v = np.ones(1000)
        ot, ov = downsample(t, v, n_bins=10)
        assert len(ot) == 10 and len(ov) == 10
        np.testing.assert_allclose(ov, 1.0)

    def test_preserves_mean_roughly(self):
        rng = np.random.default_rng(0)
        t = np.sort(rng.uniform(0, 50, 500))
        v = rng.uniform(0, 2, 500)
        _, ov = downsample(t, v, 25)
        assert ov[ov > 0].mean() == pytest.approx(v.mean(), rel=0.2)

    def test_empty_trace(self):
        ot, ov = downsample(np.array([]), np.array([]))
        assert len(ot) == 0 and len(ov) == 0


class TestSensitivityHelpers:
    def test_resized_hm_changes_only_capacity(self):
        hm = resized_hm(96)
        base = resized_hm(192)
        assert hm.dram.capacity_bytes == base.dram.capacity_bytes // 2
        assert hm.dram.read_bandwidth == base.dram.read_bandwidth
        assert hm.pm.capacity_bytes == base.pm.capacity_bytes


class TestPaperConstants:
    def test_table1_covers_all_apps(self):
        assert set(PAPER_PATTERNS) == {"SpGEMM", "WarpX", "BFS", "DMRG", "NWChem-TC"}

    def test_table3_covers_all_models(self):
        assert set(PAPER_R2) == {"DTR", "SVR", "KNR", "RFR", "GBR", "ANN"}
        assert max(PAPER_R2, key=PAPER_R2.__getitem__) == "GBR"

    def test_table4_ours_beats_baseline_in_paper_too(self):
        for app, (ours, baseline) in PAPER.items():
            assert ours > baseline, app
