"""The assembled performance model (Section 5, Equation 2).

Predicts the execution time of a task instance with a new input when a
chosen number of its memory accesses is served from DRAM::

    T_hybrid = T_pm_only * (1 - r_dram) * f(PMCs, r_dram)
             + T_dram_only * r_dram

where ``r_dram = dram_acc / esti_mem_acc``.  The three ingredients come from
the other core modules: ``esti_mem_acc`` from the input-aware estimator
(Equation 1), the homogeneous endpoints from the basic-block predictor
(Section 5.2), and f(.) from the trained correlation function (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.core.correlation import CorrelationFunction

__all__ = [
    "TaskModelInputs",
    "PerformanceModel",
    "TieredTaskInputs",
    "TieredPerformanceModel",
]


@dataclass(frozen=True)
class TaskModelInputs:
    """Everything Algorithm 1 needs to know about one task.

    Matches the algorithm's input list: PM-only execution time ``D_i``,
    measured hardware events ``PCs_i``, and total (estimated) accesses
    ``Total_Acc_i``; plus the DRAM-only endpoint the model interpolates
    toward.
    """

    task_id: str
    t_pm_only: float
    t_dram_only: float
    total_accesses: float
    pmcs: Mapping[str, float]

    def __post_init__(self) -> None:
        if self.t_pm_only <= 0 or self.t_dram_only <= 0:
            raise ValueError("endpoint times must be positive")
        if self.total_accesses <= 0:
            raise ValueError("total_accesses must be positive")


class PerformanceModel:
    """Equation 2, bound to a trained correlation function."""

    def __init__(self, correlation: CorrelationFunction) -> None:
        self.correlation = correlation

    def predict_ratio(self, task: TaskModelInputs, r_dram: float) -> float:
        """T_hybrid when fraction ``r_dram`` of accesses hits DRAM."""
        if not 0.0 <= r_dram <= 1.0:
            raise ValueError("r_dram must be in [0, 1]")
        if r_dram >= 1.0:
            return task.t_dram_only
        f_val = self.correlation.predict(task.pmcs, r_dram)
        return (
            task.t_pm_only * (1.0 - r_dram) * f_val
            + task.t_dram_only * r_dram
        )

    def predict(self, task: TaskModelInputs, dram_accesses: float) -> float:
        """Algorithm 1's ``Model(D_i, PCs_i, DRAM_Acc)`` callable form."""
        if dram_accesses < 0:
            raise ValueError("dram_accesses must be non-negative")
        r = min(1.0, dram_accesses / task.total_accesses)
        return self.predict_ratio(task, r)

    def ratio_grid(self, task: TaskModelInputs, ratios) -> "np.ndarray":
        """Vectorised Equation 2 over a grid of DRAM ratios.

        One stacked f(.) evaluation; the r = 1 entries collapse to the
        DRAM-only endpoint exactly, as in :meth:`predict_ratio`.
        """
        import numpy as np

        ratios = np.asarray(ratios, dtype=np.float64)
        f_vals = self.correlation.predict_batch(task.pmcs, ratios)
        times = (
            task.t_pm_only * (1.0 - ratios) * f_vals
            + task.t_dram_only * ratios
        )
        return np.where(ratios >= 1.0, task.t_dram_only, times)

    def ratio_grids(self, tasks, ratios) -> "dict[str, np.ndarray]":
        """Equation 2 grids for *many* tasks with one stacked f(.) call.

        Numerically identical to calling :meth:`ratio_grid` per task, but
        the underlying model walks its estimator list once for the whole
        batch instead of once per task -- the amortisation the placement
        service's batched planning relies on.  Falls back to per-task
        calls when the correlation object lacks ``predict_stacked`` (any
        drop-in f(.) only has to provide ``predict_batch``).
        """
        import numpy as np

        tasks = list(tasks)
        stacked = getattr(self.correlation, "predict_stacked", None)
        if stacked is None:
            return {t.task_id: self.ratio_grid(t, ratios) for t in tasks}
        ratios = np.asarray(ratios, dtype=np.float64)
        f_rows = stacked([t.pmcs for t in tasks], ratios)
        out: dict[str, np.ndarray] = {}
        for t, f_vals in zip(tasks, f_rows):
            times = (
                t.t_pm_only * (1.0 - ratios) * f_vals
                + t.t_dram_only * ratios
            )
            out[t.task_id] = np.where(ratios >= 1.0, t.t_dram_only, times)
        return out

# ----------------------------------------------------------------------
# N-tier generalisation (effective-ratio reduction)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class TieredTaskInputs:
    """A task's model inputs on an N-tier topology.

    ``tier_times[k]`` is the homogeneous endpoint: execution time with all
    accesses served by tier ``k`` (fastest first).  The 2-tier case is
    ``(t_dram_only, t_pm_only)``.
    """

    task_id: str
    tier_times: tuple[float, ...]
    total_accesses: float
    pmcs: Mapping[str, float]

    def __post_init__(self) -> None:
        if len(self.tier_times) < 2:
            raise ValueError("need endpoints for at least two tiers")
        for t in self.tier_times:
            if t <= 0:
                raise ValueError("endpoint times must be positive")
        if self.total_accesses <= 0:
            raise ValueError("total_accesses must be positive")

    @property
    def n_tiers(self) -> int:
        return len(self.tier_times)

    def slowdown_weights(self) -> tuple[float, ...]:
        """Per-tier speed weight ``s_k`` in [0, 1]: 1 for the fastest tier,
        0 for the slowest, interpolated by where the tier's homogeneous
        endpoint sits between the two extremes.  An access to tier ``k``
        counts as ``s_k`` of a fastest-tier access in the effective ratio.
        """
        t_fast = self.tier_times[0]
        t_slow = self.tier_times[-1]
        span = t_slow - t_fast
        if span <= 0.0:
            # degenerate machine: every tier equally fast; any placement
            # behaves like r = 1 on the fastest tier
            return (1.0,) + (0.0,) * (self.n_tiers - 1)
        weights = [1.0]
        for t in self.tier_times[1:-1]:
            w = (t_slow - t) / span
            weights.append(min(1.0, max(0.0, w)))
        weights.append(0.0)
        return tuple(weights)

    def as_two_tier(self) -> TaskModelInputs:
        """The Equation-2 view: fastest tier as DRAM, slowest as PM."""
        return TaskModelInputs(
            task_id=self.task_id,
            t_pm_only=self.tier_times[-1],
            t_dram_only=self.tier_times[0],
            total_accesses=self.total_accesses,
            pmcs=self.pmcs,
        )

    @classmethod
    def from_two_tier(cls, task: TaskModelInputs) -> "TieredTaskInputs":
        return cls(
            task_id=task.task_id,
            tier_times=(task.t_dram_only, task.t_pm_only),
            total_accesses=task.total_accesses,
            pmcs=task.pmcs,
        )


class TieredPerformanceModel:
    """Equation 2 lifted to N tiers by the effective-ratio reduction.

    A placement vector ``r`` (fraction of accesses per tier, summing to 1)
    is collapsed to one scalar ``r_eff = sum(r_k * s_k)`` using the
    slowdown weights above, then priced with the trained 2-tier model
    between the fastest and slowest endpoints.  With ``n = 2`` the weights
    are exactly ``(1, 0)``, so ``r_eff == r_dram`` and every prediction is
    bit-identical to :class:`PerformanceModel` -- the degenerate case the
    conformance harness pins down.
    """

    def __init__(self, model: PerformanceModel) -> None:
        self.model = model

    @property
    def correlation(self):
        return self.model.correlation

    def effective_ratio(self, task: TieredTaskInputs, fractions) -> float:
        if len(fractions) != task.n_tiers:
            raise ValueError(
                f"{task.task_id}: fraction vector has {len(fractions)} "
                f"entries for {task.n_tiers} tiers"
            )
        weights = task.slowdown_weights()
        r_eff = 0.0
        for r, s in zip(fractions, weights):
            r_eff += min(1.0, max(0.0, float(r))) * s
        return min(1.0, r_eff)

    def predict_fractions(self, task: TieredTaskInputs, fractions) -> float:
        """T_hybrid for a per-tier access-fraction vector."""
        r_eff = self.effective_ratio(task, fractions)
        return self.model.predict_ratio(task.as_two_tier(), r_eff)

    def ratio_grid(self, task: TieredTaskInputs, ratios) -> "np.ndarray":
        """Grid over the *effective* ratio (fastest-tier equivalents)."""
        return self.model.ratio_grid(task.as_two_tier(), ratios)
