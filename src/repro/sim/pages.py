"""Page tables with per-page popularity and fractional DRAM residency.

Each managed :class:`~repro.tasks.task.DataObject` becomes a
:class:`PagedObject`: a vector of per-page access weights (how the object's
main-memory accesses distribute over its pages) plus a vector of DRAM
residency in ``[0, 1]`` per page.

Residency is *fractional* so that both software placement (pages are fully in
one tier: residency 0 or 1) and Memory Mode's hardware cache (a page is
resident for whatever fraction of its accesses hit the direct-mapped DRAM
cache) flow through the same accounting.  The task-level quantity everything
downstream consumes is the access-weighted DRAM fraction
(:meth:`PagedObject.dram_access_fraction`), the paper's ``r_dram_acc``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.common import PAGE_SIZE, make_rng, zipf_weights
from repro.tasks.task import DataObject

__all__ = [
    "PagedObject",
    "PageTable",
    "MigrationBatch",
    "TieredPagedObject",
    "TieredPageTable",
    "TieredMigrationBatch",
]


class PagedObject:
    """Pages of one data object.

    Attributes
    ----------
    weight:
        Per-page fraction of the object's main-memory accesses (sums to 1).
    residency:
        Per-page DRAM residency in ``[0, 1]``.
    """

    __slots__ = ("spec", "n_pages", "weight", "residency")

    #: cache lines per page: element-level popularity is averaged over this
    #: many draws per page, because a 4 KiB page mixes hot and cold lines
    LINES_PER_PAGE = 64

    def __init__(self, spec: DataObject, rng=None) -> None:
        self.spec = spec
        self.n_pages = spec.n_pages
        if spec.hotness == "zipf":
            # Zipf popularity lives at cache-line granularity; page-level
            # hotness is the sum of the page's line weights.  Drawing Zipf
            # directly per page would overstate page skew by ~64x and make
            # hardware caching look far better than it is.
            lines = zipf_weights(
                self.n_pages * self.LINES_PER_PAGE, spec.zipf_s, rng=make_rng(rng)
            )
            self.weight = lines.reshape(self.n_pages, self.LINES_PER_PAGE).sum(axis=1)
            self.weight /= self.weight.sum()
        else:
            self.weight = np.full(self.n_pages, 1.0 / self.n_pages)
        self.residency = np.zeros(self.n_pages, dtype=np.float64)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def owner(self) -> str | None:
        return self.spec.owner

    def dram_pages(self) -> float:
        """Equivalent number of pages resident in DRAM."""
        return float(self.residency.sum())

    def dram_bytes(self) -> float:
        return self.dram_pages() * PAGE_SIZE

    def dram_access_fraction(self) -> float:
        """Access-weighted fraction of this object served from DRAM."""
        return float(self.weight @ self.residency)

    def set_residency(self, value: float | np.ndarray) -> None:
        """Set residency for every page (scalar broadcast or full vector)."""
        arr = np.asarray(value, dtype=np.float64)
        if arr.ndim == 0:
            self.residency[:] = float(arr)
        else:
            if arr.shape != (self.n_pages,):
                raise ValueError("residency vector has wrong length")
            self.residency[:] = arr
        if (self.residency < -1e-12).any() or (self.residency > 1 + 1e-12).any():
            raise ValueError("residency must be within [0, 1]")
        np.clip(self.residency, 0.0, 1.0, out=self.residency)

    def hottest_pm_pages(self, limit: int | None = None) -> np.ndarray:
        """Indices of pages not yet (fully) in DRAM, hottest first.

        Ties are broken by page id (stable sort), so the ordering is a
        deterministic function of (rate, id) regardless of how candidates
        happen to be laid out.
        """
        candidates = np.flatnonzero(self.residency < 1.0 - 1e-12)
        order = np.argsort(-self.weight[candidates], kind="stable")
        idx = candidates[order]
        return idx if limit is None else idx[:limit]

    def coldest_dram_pages(self, limit: int | None = None) -> np.ndarray:
        """Indices of pages (partially) in DRAM, coldest first; ties broken
        by page id (stable sort)."""
        candidates = np.flatnonzero(self.residency > 1e-12)
        order = np.argsort(self.weight[candidates], kind="stable")
        idx = candidates[order]
        return idx if limit is None else idx[:limit]


@dataclass(frozen=True)
class MigrationBatch:
    """A set of page moves requested by a placement policy for one tick."""

    #: (object name, page indices, promote?) triples.  ``promote=True`` moves
    #: pages PM->DRAM; ``False`` demotes them DRAM->PM.
    moves: tuple[tuple[str, np.ndarray, bool], ...]

    @property
    def n_pages(self) -> int:
        return int(sum(len(idx) for _, idx, _ in self.moves))

    @property
    def bytes_moved(self) -> int:
        return self.n_pages * PAGE_SIZE


class PageTable:
    """All paged objects of a workload plus DRAM capacity accounting.

    Page state is stored struct-of-arrays (PERFORMANCE.md): one contiguous
    weight arena and one residency arena cover every object, and each
    :class:`PagedObject`'s ``weight``/``residency`` are views into them.
    There is exactly one copy of the data, so per-object methods and bulk
    arena consumers (the sim's batched kernels, sampling profilers) read
    the same bits by construction.  Object segments are padded to
    :data:`_ARENA_ALIGN` float64 lanes (one cache line) so per-object views
    keep the alignment fresh allocations would have; padding lanes are
    never written and stay zero.
    """

    #: float64 lanes per arena segment boundary (8 * 8 B = one cache line)
    _ARENA_ALIGN = 8

    def __init__(
        self,
        objects: Iterable[DataObject],
        dram_capacity_bytes: int,
        rng=None,
    ) -> None:
        rng = make_rng(rng)
        self._objects: dict[str, PagedObject] = {}
        for spec in objects:
            if spec.name in self._objects:
                raise ValueError(f"duplicate object {spec.name!r}")
            self._objects[spec.name] = PagedObject(spec, rng=rng)
        if dram_capacity_bytes < 0:
            raise ValueError("DRAM capacity must be non-negative")
        self.dram_capacity_bytes = dram_capacity_bytes
        self._build_arena()

    def _build_arena(self) -> None:
        """Adopt every object's page vectors into the shared arenas."""
        objs = list(self._objects.values())
        starts: list[int] = []
        pos = 0
        align = self._ARENA_ALIGN
        for o in objs:
            starts.append(pos)
            pos += -(-o.n_pages // align) * align
        self._weight_arena = np.zeros(pos, dtype=np.float64)
        self._residency_arena = np.zeros(pos, dtype=np.float64)
        self._slices: dict[str, slice] = {}
        for o, start in zip(objs, starts):
            sl = slice(start, start + o.n_pages)
            self._slices[o.name] = sl
            self._weight_arena[sl] = o.weight
            self._residency_arena[sl] = o.residency
            o.weight = self._weight_arena[sl]
            o.residency = self._residency_arena[sl]

    # -- pickling: numpy views detach from their base under pickle, so the
    # arena is dropped and rebuilt from the objects' (copied) vectors
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_weight_arena", None)
        state.pop("_residency_arena", None)
        state.pop("_slices", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_arena()

    @property
    def weight_arena(self) -> np.ndarray:
        """The shared per-page access-weight arena (read-only by convention).

        Object segments are located by :meth:`object_slice`; lanes between
        segments are alignment padding and always zero.
        """
        return self._weight_arena

    @property
    def residency_arena(self) -> np.ndarray:
        """The shared per-page DRAM-residency arena.

        Mutations through an object's ``residency`` view and through this
        arena are the same memory; batched consumers may read it wholesale
        instead of walking objects.
        """
        return self._residency_arena

    def object_slice(self, name: str) -> slice:
        """Arena slice holding ``name``'s pages (exclusive of padding)."""
        return self._slices[name]

    def __iter__(self) -> Iterator[PagedObject]:
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def object(self, name: str) -> PagedObject:
        return self._objects[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._objects)

    @property
    def total_pages(self) -> int:
        return sum(o.n_pages for o in self)

    @property
    def total_bytes(self) -> int:
        return sum(o.spec.size_bytes for o in self)

    def dram_used_bytes(self) -> float:
        return sum(o.dram_bytes() for o in self)

    def dram_free_bytes(self) -> float:
        return self.dram_capacity_bytes - self.dram_used_bytes()

    def dram_free_pages(self) -> int:
        return int(self.dram_free_bytes() // PAGE_SIZE)

    def place_all(self, residency: float) -> None:
        """Blanket placement: residency for every page of every object.

        Raises if the result would not fit in DRAM (used by the DRAM-only
        baseline, which requires the footprint to fit).
        """
        need = residency * self.total_bytes
        if need > self.dram_capacity_bytes + PAGE_SIZE:
            raise ValueError(
                f"placement needs {need:.0f} B of DRAM, "
                f"capacity is {self.dram_capacity_bytes} B"
            )
        for obj in self:
            obj.set_residency(residency)

    def apply_batch(self, batch: MigrationBatch) -> int:
        """Apply a migration batch, clamping promotions to free DRAM.

        Returns the number of pages actually moved.  Demotions are applied
        first so a batch can express swap traffic (demote cold, promote hot)
        without transiently exceeding capacity.
        """
        moved = 0
        for name, idx, promote in batch.moves:
            if promote:
                continue
            obj = self.object(name)
            sel = idx[obj.residency[idx] > 1e-12]
            obj.residency[sel] = 0.0
            moved += len(sel)
        for name, idx, promote in batch.moves:
            if not promote:
                continue
            obj = self.object(name)
            sel = idx[obj.residency[idx] < 1.0 - 1e-12]
            free = self.dram_free_pages()
            if free <= 0:
                continue
            sel = sel[:free]
            obj.residency[sel] = 1.0
            moved += len(sel)
        return moved

    def access_fractions(self) -> dict[str, float]:
        """Per-object access-weighted DRAM fractions (``r_dram`` inputs)."""
        return {o.name: o.dram_access_fraction() for o in self}

    def sample_pages(
        self, n: int, rng=None, weights: Mapping[str, np.ndarray] | None = None
    ) -> list[tuple[str, np.ndarray]]:
        """Uniformly sample ``n`` pages across the whole space.

        This is the application-agnostic random page sampling that the paper
        identifies as a root cause of load imbalance: it knows nothing about
        tasks, only addresses.  Returns per-object arrays of sampled page
        indices (with multiplicity).
        """
        rng = make_rng(rng)
        names = self.names
        sizes = np.array([self.object(nm).n_pages for nm in names])
        total = sizes.sum()
        if total == 0 or n <= 0:
            return []
        picks = rng.integers(0, total, size=n)
        bounds = np.cumsum(sizes)
        which = np.searchsorted(bounds, picks, side="right")
        out: list[tuple[str, np.ndarray]] = []
        for i, nm in enumerate(names):
            mask = which == i
            if mask.any():
                start = bounds[i] - sizes[i]
                out.append((nm, picks[mask] - start))
        return out

# ----------------------------------------------------------------------
# N-tier residency (TopologySpec-backed)
# ----------------------------------------------------------------------

class TieredPagedObject:
    """Pages of one data object across N tiers.

    ``tier_residency`` is an ``(n_tiers, n_pages)`` matrix whose columns
    sum to 1: column ``p`` says what fraction of page ``p`` lives on each
    tier (fastest first).  Software placement keeps pages fully in one
    tier (a single 1 per column); the fractional form exists for the same
    reason :class:`PagedObject`'s residency does -- hardware-cache-style
    policies account partial hits through the same vectors.
    """

    __slots__ = ("spec", "n_pages", "n_tiers", "weight", "tier_residency")

    def __init__(self, spec: DataObject, n_tiers: int, rng=None) -> None:
        if n_tiers < 2:
            raise ValueError("need at least two tiers")
        self.spec = spec
        self.n_pages = spec.n_pages
        self.n_tiers = n_tiers
        if spec.hotness == "zipf":
            lines = zipf_weights(
                self.n_pages * PagedObject.LINES_PER_PAGE,
                spec.zipf_s,
                rng=make_rng(rng),
            )
            self.weight = lines.reshape(
                self.n_pages, PagedObject.LINES_PER_PAGE
            ).sum(axis=1)
            self.weight /= self.weight.sum()
        else:
            self.weight = np.full(self.n_pages, 1.0 / self.n_pages)
        self.tier_residency = np.zeros((n_tiers, self.n_pages), dtype=np.float64)
        self.tier_residency[-1, :] = 1.0  # born in the slowest tier

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def owner(self) -> str | None:
        return self.spec.owner

    def tier_pages(self, k: int) -> float:
        """Equivalent number of this object's pages resident on tier ``k``."""
        return float(self.tier_residency[k].sum())

    def tier_access_fractions(self) -> np.ndarray:
        """Access-weighted per-tier fraction vector (sums to 1)."""
        return self.tier_residency @ self.weight

    def hottest_pages_slower_than(
        self, k: int, limit: int | None = None
    ) -> np.ndarray:
        """Pages with residency on a tier slower than ``k``, hottest first
        (ties broken by page id via stable sort)."""
        slower = self.tier_residency[k + 1 :].sum(axis=0)
        candidates = np.flatnonzero(slower > 1e-12)
        order = np.argsort(-self.weight[candidates], kind="stable")
        idx = candidates[order]
        return idx if limit is None else idx[:limit]

    def coldest_pages_in(self, k: int, limit: int | None = None) -> np.ndarray:
        """Pages with residency on tier ``k``, coldest first."""
        candidates = np.flatnonzero(self.tier_residency[k] > 1e-12)
        order = np.argsort(self.weight[candidates], kind="stable")
        idx = candidates[order]
        return idx if limit is None else idx[:limit]


@dataclass(frozen=True)
class TieredMigrationBatch:
    """Page moves across an N-tier topology for one tick."""

    #: (object name, page indices, destination tier index) triples
    moves: tuple[tuple[str, np.ndarray, int], ...]

    @property
    def n_pages(self) -> int:
        return int(sum(len(idx) for _, idx, _ in self.moves))

    @property
    def bytes_moved(self) -> int:
        return self.n_pages * PAGE_SIZE


class TieredPageTable:
    """All paged objects of a workload plus per-tier capacity accounting.

    Mirrors :class:`PageTable`'s struct-of-arrays layout: one weight arena
    and one ``(n_tiers, lanes)`` residency arena cover every object, with
    each object's vectors as views.  *Every* tier is capacity-checked --
    including the slowest, which the 2-tier table treats as an unbounded
    backing store -- so the conformance harness's over-commit invariant is
    enforceable uniformly.
    """

    _ARENA_ALIGN = PageTable._ARENA_ALIGN

    def __init__(
        self,
        objects: Iterable[DataObject],
        capacities_bytes: Sequence[int],
        rng=None,
    ) -> None:
        caps = tuple(int(c) for c in capacities_bytes)
        if len(caps) < 2:
            raise ValueError("need capacities for at least two tiers")
        if any(c < 0 for c in caps):
            raise ValueError("tier capacities must be non-negative")
        self.capacities_bytes = caps
        self.n_tiers = len(caps)
        rng = make_rng(rng)
        self._objects: dict[str, TieredPagedObject] = {}
        for spec in objects:
            if spec.name in self._objects:
                raise ValueError(f"duplicate object {spec.name!r}")
            self._objects[spec.name] = TieredPagedObject(
                spec, self.n_tiers, rng=rng
            )
        if self.total_pages > sum(self.tier_capacity_pages):
            raise ValueError("workload does not fit in the topology")
        self._build_arena()
        self.place_waterfall()

    # -- arena ---------------------------------------------------------
    def _build_arena(self) -> None:
        objs = list(self._objects.values())
        starts: list[int] = []
        pos = 0
        align = self._ARENA_ALIGN
        for o in objs:
            starts.append(pos)
            pos += -(-o.n_pages // align) * align
        self._weight_arena = np.zeros(pos, dtype=np.float64)
        self._residency_arena = np.zeros((self.n_tiers, pos), dtype=np.float64)
        self._slices: dict[str, slice] = {}
        for o, start in zip(objs, starts):
            sl = slice(start, start + o.n_pages)
            self._slices[o.name] = sl
            self._weight_arena[sl] = o.weight
            self._residency_arena[:, sl] = o.tier_residency
            o.weight = self._weight_arena[sl]
            o.tier_residency = self._residency_arena[:, sl]

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state.pop("_weight_arena", None)
        state.pop("_residency_arena", None)
        state.pop("_slices", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._build_arena()

    @property
    def weight_arena(self) -> np.ndarray:
        return self._weight_arena

    @property
    def residency_arena(self) -> np.ndarray:
        """The shared ``(n_tiers, lanes)`` residency arena."""
        return self._residency_arena

    def object_slice(self, name: str) -> slice:
        return self._slices[name]

    # -- mapping -------------------------------------------------------
    def __iter__(self) -> Iterator[TieredPagedObject]:
        return iter(self._objects.values())

    def __len__(self) -> int:
        return len(self._objects)

    def __contains__(self, name: str) -> bool:
        return name in self._objects

    def object(self, name: str) -> TieredPagedObject:
        return self._objects[name]

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._objects)

    @property
    def total_pages(self) -> int:
        return sum(o.n_pages for o in self._objects.values())

    @property
    def total_bytes(self) -> int:
        return sum(o.spec.size_bytes for o in self._objects.values())

    # -- capacity ------------------------------------------------------
    @property
    def tier_capacity_pages(self) -> tuple[int, ...]:
        return tuple(c // PAGE_SIZE for c in self.capacities_bytes)

    def tier_used_pages(self, k: int) -> float:
        return float(self._residency_arena[k].sum())

    def tier_used_bytes(self, k: int) -> float:
        return self.tier_used_pages(k) * PAGE_SIZE

    def tier_free_pages(self, k: int) -> int:
        return int(self.tier_capacity_pages[k] - self.tier_used_pages(k))

    def used_pages_vector(self) -> tuple[float, ...]:
        return tuple(self.tier_used_pages(k) for k in range(self.n_tiers))

    # -- placement -----------------------------------------------------
    def place_waterfall(self) -> None:
        """Deterministic initial placement: fill the slowest tier first,
        overflowing page-by-page into faster tiers (object insertion
        order, ascending page ids) -- what first-touch in far memory
        leaves you with, and the state every policy starts from."""
        free = list(self.tier_capacity_pages)
        for obj in self:
            obj.tier_residency[:, :] = 0.0
            placed = 0
            for k in range(self.n_tiers - 1, -1, -1):
                take = min(obj.n_pages - placed, free[k])
                if take <= 0:
                    continue
                obj.tier_residency[k, placed : placed + take] = 1.0
                free[k] -= take
                placed += take
                if placed == obj.n_pages:
                    break

    def apply_batch(self, batch: TieredMigrationBatch) -> int:
        """Apply a migration batch, clamping every move to the destination
        tier's free pages.

        Moves toward slower tiers are applied first (mirroring the 2-tier
        table's demotions-first rule) so swap traffic never transiently
        over-commits a fast tier.  Returns pages actually moved.
        """
        moved = 0
        order = sorted(
            range(len(batch.moves)),
            key=lambda i: -batch.moves[i][2],
        )
        for i in order:
            name, idx, dst = batch.moves[i]
            if not 0 <= dst < self.n_tiers:
                raise ValueError(f"destination tier {dst} out of range")
            obj = self.object(name)
            sel = idx[obj.tier_residency[dst, idx] < 1.0 - 1e-12]
            free = self.tier_free_pages(dst)
            if free <= 0:
                continue
            sel = sel[:free]
            obj.tier_residency[:, sel] = 0.0
            obj.tier_residency[dst, sel] = 1.0
            moved += len(sel)
        return moved

    # -- queries -------------------------------------------------------
    def access_fraction_vectors(self) -> dict[str, np.ndarray]:
        """Per-object per-tier access-weighted fraction vectors."""
        return {o.name: o.tier_access_fractions() for o in self}

    def sample_pages(
        self, n: int, rng=None
    ) -> list[tuple[str, np.ndarray]]:
        """Uniform page sampling across the space (see PageTable)."""
        rng = make_rng(rng)
        names = self.names
        sizes = np.array([self.object(nm).n_pages for nm in names])
        total = sizes.sum()
        if total == 0 or n <= 0:
            return []
        picks = rng.integers(0, total, size=n)
        bounds = np.cumsum(sizes)
        which = np.searchsorted(bounds, picks, side="right")
        out: list[tuple[str, np.ndarray]] = []
        for i, nm in enumerate(names):
            mask = which == i
            if mask.any():
                start = bounds[i] - sizes[i]
                out.append((nm, picks[mask] - start))
        return out
