"""The ``@spawn`` frontend: Parla-style task graphs with inferred placement.

Parla programs (SNIPPETS.md) write::

    @spawn(B[i, j], placement=loc(i, j))
    def bcast(): ...

    @spawn(M[i, j], [B[i, j]], placement=loc(i, j))
    def mult(): ...

Here the ``placement=`` argument disappears -- placement is what the
Merchandiser planner *infers* -- and the decorated function returns the
task's :class:`~repro.tasks.task.Footprint` (this repo's analogue of the
task body).  Dependencies come from two sources:

* **explicit**: ``deps=[...]`` of task ids or :class:`TaskHandle`\\ s;
* **inferred**: declared ``reads=``/``writes=`` object sets.  The builder
  sequentially tracks each object's last writer and the readers since, and
  derives read-after-write, write-after-write, and write-after-read edges
  -- the dataflow ordering a task-parallel runtime must respect.

:meth:`DAGBuilder.add_task` is the explicit, decorator-free spelling used
by tests and generated programs.  ``build()`` returns a validated
:class:`~repro.runtime.dag.TaskDAG`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.runtime.dag import TaskDAG, TaskNode
from repro.tasks.task import DataObject, Footprint

__all__ = ["TaskHandle", "DAGBuilder", "spawn_program"]


@dataclass(frozen=True)
class TaskHandle:
    """Opaque reference returned by ``spawn``; usable in later ``deps``."""

    task_id: str


def _dep_id(dep: "str | TaskHandle") -> str:
    return dep.task_id if isinstance(dep, TaskHandle) else str(dep)


class DAGBuilder:
    """Records data objects and task nodes, then builds a :class:`TaskDAG`.

    Dependencies may only name tasks spawned *earlier* -- the program order
    of a task-parallel frontend -- which keeps builder-produced graphs
    acyclic by construction (directly constructed :class:`TaskDAG`\\ s are
    still cycle-checked).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._objects: dict[str, DataObject] = {}
        self._nodes: list[TaskNode] = []
        self._ids: set[str] = set()
        #: per object: the task that last wrote it
        self._last_writer: dict[str, str] = {}
        #: per object: tasks that read it since the last write
        self._readers: dict[str, list[str]] = {}

    # ------------------------------------------------------------------
    def declare_object(self, obj: DataObject) -> DataObject:
        if obj.name in self._objects:
            raise ValueError(f"object {obj.name!r} already declared")
        self._objects[obj.name] = obj
        return obj

    # ------------------------------------------------------------------
    def add_task(
        self,
        task_id: str,
        footprint: Footprint,
        deps: Sequence["str | TaskHandle"] = (),
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
        input_vector: Sequence[float] = (),
    ) -> TaskHandle:
        """Record one task node (the explicit builder used by tests)."""
        if task_id in self._ids:
            raise ValueError(f"duplicate task id {task_id!r}")
        explicit = tuple(dict.fromkeys(_dep_id(d) for d in deps))
        for dep in explicit:
            if dep == task_id:
                raise ValueError(f"task {task_id!r} depends on itself")
            if dep not in self._ids:
                raise ValueError(
                    f"task {task_id!r} depends on unknown task {dep!r} "
                    "(dependencies must be spawned first)"
                )
        reads = tuple(dict.fromkeys(reads))
        writes = tuple(dict.fromkeys(writes))
        for obj in reads + writes:
            if obj not in self._objects:
                raise ValueError(
                    f"task {task_id!r} declares undeclared object {obj!r}"
                )
        inferred = self._infer_deps(task_id, reads, writes)
        node = TaskNode(
            task_id=task_id,
            footprint=footprint,
            explicit_deps=explicit,
            inferred_deps=tuple(d for d in inferred if d not in explicit),
            reads=reads,
            writes=writes,
            input_vector=tuple(input_vector),
        )
        self._nodes.append(node)
        self._ids.add(task_id)
        self._track_accesses(task_id, reads, writes)
        return TaskHandle(task_id)

    def _infer_deps(
        self, task_id: str, reads: tuple[str, ...], writes: tuple[str, ...]
    ) -> tuple[str, ...]:
        out: list[str] = []
        for obj in reads:
            # read-after-write: wait for the object's producer
            writer = self._last_writer.get(obj)
            if writer is not None and writer != task_id:
                out.append(writer)
        for obj in writes:
            # write-after-write: writes to one object are ordered
            writer = self._last_writer.get(obj)
            if writer is not None and writer != task_id:
                out.append(writer)
            # write-after-read: readers of the old value must finish first
            for reader in self._readers.get(obj, ()):
                if reader != task_id:
                    out.append(reader)
        return tuple(dict.fromkeys(out))

    def _track_accesses(
        self, task_id: str, reads: tuple[str, ...], writes: tuple[str, ...]
    ) -> None:
        for obj in reads:
            self._readers.setdefault(obj, []).append(task_id)
        for obj in writes:
            self._last_writer[obj] = task_id
            self._readers[obj] = []

    # ------------------------------------------------------------------
    def spawn(
        self,
        task_id: str,
        deps: Sequence["str | TaskHandle"] = (),
        reads: Iterable[str] = (),
        writes: Iterable[str] = (),
        input_vector: Sequence[float] = (),
    ) -> Callable[[Callable[[], Footprint]], TaskHandle]:
        """Decorator form: the function body produces the task's footprint
        and is invoked immediately (spawn-time), mirroring Parla's eager
        task creation."""

        def decorate(fn: Callable[[], Footprint]) -> TaskHandle:
            footprint = fn()
            if not isinstance(footprint, Footprint):
                raise TypeError(
                    f"@spawn({task_id!r}) body must return a Footprint, "
                    f"got {type(footprint).__name__}"
                )
            return self.add_task(
                task_id,
                footprint,
                deps=deps,
                reads=reads,
                writes=writes,
                input_vector=input_vector,
            )

        return decorate

    # ------------------------------------------------------------------
    def build(self) -> TaskDAG:
        if not self._nodes:
            raise ValueError(f"DAG {self.name!r} is empty: spawn at least one task")
        return TaskDAG(
            name=self.name,
            objects=tuple(self._objects.values()),
            nodes=tuple(self._nodes),
        )


def spawn_program(
    name: str, body: Callable[[DAGBuilder], None]
) -> TaskDAG:
    """Run ``body`` against a fresh builder and return the built DAG."""
    builder = DAGBuilder(name)
    body(builder)
    return builder.build()
