"""Property-based tests for N-tier topology validation and planning.

Three hard properties, each over >= 100 generated cases:

* **validate-or-raise** -- any randomly generated tier stack either
  constructs a valid :class:`TopologySpec` or raises the typed
  :class:`TopologyError`, exactly when an ordering/uniqueness rule is
  violated -- never a silent misconstruction, never another exception;
* **degenerate round-trip** -- every valid 2-tier topology converts to
  an :class:`HMConfig` and back without changing a single float;
* **no over-commit** -- :func:`tiered_greedy_plan` over random task
  sets and capacity vectors never grants more pages on any tier than
  the tier holds, and every task's fractions sum to 1.

Cases are generated from a seeded RNG; when ``hypothesis`` is installed
it drives (and shrinks) the seed space, otherwise a plain 100-seed
parametrization keeps the properties exercised with no extra dependency.
"""

import numpy as np
import pytest

from repro.common import PAGE_SIZE, make_rng
from repro.core.model import PerformanceModel, TieredTaskInputs
from repro.core.planner import tiered_greedy_plan
from repro.sim.memspec import TierSpec, TopologyError, TopologySpec

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    def each_seed(test):
        """>= 100 hypothesis-driven seeds (shrinkable on failure)."""
        return settings(max_examples=100, deadline=None)(
            given(seed=st.integers(min_value=0, max_value=2**32 - 1))(test)
        )

except ImportError:  # pragma: no cover - exercised only without hypothesis

    def each_seed(test):
        """Fallback: a fixed 100-seed sweep, no dependency needed."""
        return pytest.mark.parametrize("seed", range(100))(test)


MB = 1 << 20


# ----------------------------------------------------------------------
# seeded generators (shared by both drivers)
# ----------------------------------------------------------------------
def gen_tiers(rng):
    """A random tier stack: sometimes ordered, sometimes deliberately not."""
    n = int(rng.integers(2, 6))
    shuffle_latency = rng.random() < 0.4
    shuffle_bandwidth = rng.random() < 0.4
    duplicate_name = rng.random() < 0.15
    rand_lat = np.sort(rng.uniform(20.0, 400.0, n))
    if shuffle_latency:
        rng.shuffle(rand_lat)
    bw = np.sort(rng.uniform(1e9, 1e11, n))[::-1]
    if shuffle_bandwidth:
        rng.shuffle(bw)
    tiers = []
    for k in range(n):
        name = "t0" if duplicate_name and k == n - 1 else f"t{k}"
        tiers.append(
            TierSpec(
                name=name,
                capacity_bytes=int(rng.integers(1, 1 << 12)) * PAGE_SIZE,
                seq_read_latency_ns=float(rng.uniform(5.0, 500.0)),
                rand_read_latency_ns=float(rand_lat[k]),
                read_bandwidth=float(bw[k]),
                write_bandwidth=float(rng.uniform(1e8, 1e11)),
            )
        )
    return tuple(tiers)


def orderings_hold(tiers) -> bool:
    names = [t.name for t in tiers]
    if len(set(names)) != len(names):
        return False
    for fast, slow in zip(tiers, tiers[1:]):
        if slow.rand_read_latency_ns < fast.rand_read_latency_ns:
            return False
        if slow.read_bandwidth > fast.read_bandwidth:
            return False
    return True


class _LinearCorrelation:
    """f == 1: Equation 2 reduces to straight-line interpolation."""

    events = ("E",)

    def predict(self, pmcs, r):
        return 1.0

    def predict_batch(self, pmcs, ratios):
        return np.ones(len(np.asarray(ratios)))


MODEL = PerformanceModel(_LinearCorrelation())


def gen_plan_case(rng):
    """Random (tasks, capacities, task_bytes) for the tiered planner."""
    n_tiers = int(rng.integers(2, 5))
    n_tasks = int(rng.integers(1, 6))
    tasks, task_bytes = [], {}
    for i in range(n_tasks):
        t_fast = float(rng.uniform(0.5, 2.0))
        # slower tiers are strictly slower: cumulative positive increments
        times = t_fast + np.cumsum(
            np.concatenate([[0.0], rng.uniform(0.1, 2.0, n_tiers - 1)])
        )
        tasks.append(
            TieredTaskInputs(
                task_id=f"task{i}",
                tier_times=tuple(float(t) for t in times),
                total_accesses=float(rng.uniform(1e5, 1e7)),
                pmcs={"E": 0.0},
            )
        )
        task_bytes[f"task{i}"] = int(rng.integers(1, 64)) * MB
    total = sum(task_bytes.values())
    caps = [int(rng.integers(1, 33)) * MB for _ in range(n_tiers - 1)]
    caps.append(2 * total)  # the slowest tier always fits everything
    return tasks, tuple(caps), task_bytes


# ----------------------------------------------------------------------
# property 1: construct or raise the typed error, nothing else
# ----------------------------------------------------------------------
class TestValidateOrRaise:
    @each_seed
    def test_construction_matches_the_ordering_rules(self, seed):
        tiers = gen_tiers(make_rng(seed))
        if orderings_hold(tiers):
            topo = TopologySpec(tiers=tiers)
            assert topo.n_tiers == len(tiers)
            assert topo.fastest is tiers[0]
            assert topo.slowest is tiers[-1]
            assert topo.capacity_vector() == tuple(
                t.capacity_bytes for t in tiers
            )
        else:
            with pytest.raises(TopologyError):
                TopologySpec(tiers=tiers)

    @each_seed
    def test_negative_migration_overhead_rejected(self, seed):
        rng = make_rng(seed)
        tiers = gen_tiers(rng)
        if not orderings_hold(tiers):
            return
        with pytest.raises(TopologyError):
            TopologySpec(
                tiers=tiers,
                page_migration_overhead_s=-float(rng.uniform(1e-9, 1e-3)),
            )


# ----------------------------------------------------------------------
# property 2: 2-tier topologies round-trip through HMConfig exactly
# ----------------------------------------------------------------------
class TestDegenerateRoundTrip:
    @each_seed
    def test_two_tier_hm_round_trip_is_exact(self, seed):
        rng = make_rng(seed)
        while True:
            tiers = gen_tiers(rng)[:2]
            if orderings_hold(tiers):
                break
        topo = TopologySpec(
            tiers=tiers,
            page_migration_overhead_s=float(rng.uniform(1e-7, 1e-5)),
        )
        back = TopologySpec.from_hm(topo.to_hm())
        assert back == topo


# ----------------------------------------------------------------------
# property 3: plans never exceed any tier
# ----------------------------------------------------------------------
class TestPlanNeverOvercommits:
    @each_seed
    def test_per_tier_grants_within_capacity(self, seed):
        tasks, caps, task_bytes = gen_plan_case(make_rng(seed))
        plan = tiered_greedy_plan(tasks, MODEL, caps, task_bytes, step=0.1)
        for k, cap in enumerate(caps):
            granted = sum(q.pages[k] for q in plan.quotas)
            assert granted <= cap // PAGE_SIZE
            assert plan.pages_used[k] <= cap // PAGE_SIZE

    @each_seed
    def test_fractions_are_a_distribution(self, seed):
        tasks, caps, task_bytes = gen_plan_case(make_rng(seed))
        plan = tiered_greedy_plan(tasks, MODEL, caps, task_bytes, step=0.1)
        assert len(plan.quotas) == len(tasks)
        for q in plan.quotas:
            assert len(q.fractions) == len(caps)
            assert all(-1e-9 <= f <= 1.0 + 1e-9 for f in q.fractions)
            assert sum(q.fractions) == pytest.approx(1.0, abs=1e-6)
