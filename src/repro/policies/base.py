"""Tier-generic helpers shared by the competing placement backends.

The 2-tier engine moves pages with :class:`MigrationBatch` (promote flags)
over a :class:`PageTable`; the N-tier engine uses
:class:`TieredMigrationBatch` (destination tier indices) over a
:class:`TieredPageTable`.  These helpers give policies one vocabulary --
tier indices, fastest first -- and translate to whichever table the engine
handed them, so a single policy implementation runs on every topology.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.common import PAGE_SIZE
from repro.sim.pages import (
    MigrationBatch,
    PageTable,
    TieredMigrationBatch,
    TieredPageTable,
)

__all__ = [
    "table_n_tiers",
    "tier_free_pages",
    "page_tiers",
    "make_batch",
    "drain_queue",
]


def table_n_tiers(table: "PageTable | TieredPageTable") -> int:
    return table.n_tiers if isinstance(table, TieredPageTable) else 2


def tier_free_pages(table: "PageTable | TieredPageTable", k: int) -> int:
    """Free pages on tier ``k`` (fastest first).

    The 2-tier table treats PM as an unbounded backing store; that is
    surfaced as a huge-but-finite count so fill loops terminate.
    """
    if isinstance(table, TieredPageTable):
        return table.tier_free_pages(k)
    if k == 0:
        return table.dram_free_pages()
    return max(0, 2**62 // PAGE_SIZE)


def page_tiers(table: "PageTable | TieredPageTable", name: str) -> np.ndarray:
    """Current tier index of every page of object ``name``.

    Fractionally resident pages report the tier holding the largest share
    (ties to the faster tier), which is exact for software placement.
    """
    obj = table.object(name)
    if isinstance(table, TieredPageTable):
        return np.asarray(np.argmax(obj.tier_residency, axis=0), dtype=np.intp)
    return np.where(obj.residency > 0.5, 0, 1).astype(np.intp)


def make_batch(
    table: "PageTable | TieredPageTable",
    moves: Sequence[tuple[str, np.ndarray, int]],
) -> "MigrationBatch | TieredMigrationBatch | None":
    """Build the batch type the engine expects from tier-indexed moves."""
    moves = [(name, idx, dst) for name, idx, dst in moves if len(idx)]
    if not moves:
        return None
    if isinstance(table, TieredPageTable):
        return TieredMigrationBatch(
            moves=tuple((name, idx, int(dst)) for name, idx, dst in moves)
        )
    return MigrationBatch(
        moves=tuple((name, idx, dst == 0) for name, idx, dst in moves)
    )


def drain_queue(
    queue: list[tuple[str, np.ndarray, int]], budget: int
) -> list[tuple[str, np.ndarray, int]]:
    """Pop up to ``budget`` pages off a move queue (mutates the queue)."""
    out: list[tuple[str, np.ndarray, int]] = []
    while queue and budget > 0:
        name, idx, dst = queue[0]
        take = idx[:budget]
        rest = idx[budget:]
        out.append((name, take, dst))
        budget -= len(take)
        if len(rest):
            queue[0] = (name, rest, dst)
        else:
            queue.pop(0)
    return out
