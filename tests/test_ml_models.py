"""Tests for the from-scratch statistical-learning substrate (repro.ml)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostedRegressor,
    KernelRidgeRegressor,
    KNeighborsRegressor,
    MLPRegressor,
    RandomForestRegressor,
    r2_score,
)


def regression_problem(n=400, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.uniform(-2, 2, size=(n, 5))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2 + X[:, 2] + noise * rng.normal(size=n)
    return X, y


ALL_MODELS = [
    ("DTR", lambda: DecisionTreeRegressor(max_depth=10)),
    ("RFR", lambda: RandomForestRegressor(n_estimators=10, rng=1)),
    ("GBR", lambda: GradientBoostedRegressor(n_estimators=80, rng=1)),
    ("KNR", lambda: KNeighborsRegressor(8)),
    ("SVR", lambda: KernelRidgeRegressor(alpha=0.5)),
    ("ANN", lambda: MLPRegressor(hidden_layers=(32, 8), epochs=60, rng=1)),
]


@pytest.mark.parametrize("name,factory", ALL_MODELS)
class TestAllModels:
    def test_learns_smooth_function(self, name, factory):
        X, y = regression_problem()
        model = factory()
        model.fit(X[:300], y[:300])
        score = r2_score(y[300:], model.predict(X[300:]))
        assert score > 0.5, f"{name} scored {score}"

    def test_predict_shape(self, name, factory):
        X, y = regression_problem(n=100)
        model = factory()
        model.fit(X, y)
        assert model.predict(X[:7]).shape == (7,)

    def test_single_row_predict(self, name, factory):
        X, y = regression_problem(n=100)
        model = factory()
        model.fit(X, y)
        out = model.predict(X[0])
        assert out.shape == (1,)

    def test_predict_before_fit_raises(self, name, factory):
        with pytest.raises(RuntimeError):
            factory().predict(np.zeros((1, 5)))

    def test_mismatched_xy_raises(self, name, factory):
        with pytest.raises(ValueError):
            factory().fit(np.zeros((10, 3)), np.zeros(7))


class TestDecisionTree:
    def test_fits_constant(self):
        X = np.zeros((20, 2))
        y = np.full(20, 3.5)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(X) == pytest.approx(3.5)
        assert tree.n_nodes == 1  # no split possible on constant features

    def test_exact_on_separable_data(self):
        X = np.array([[0.0], [1.0], [2.0], [3.0]])
        y = np.array([1.0, 1.0, 5.0, 5.0])
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        np.testing.assert_allclose(tree.predict(X), y)

    def test_max_depth_limits_tree(self):
        X, y = regression_problem(n=300)
        shallow = DecisionTreeRegressor(max_depth=2).fit(X, y)
        deep = DecisionTreeRegressor(max_depth=10).fit(X, y)
        assert shallow.depth <= 2
        assert deep.n_nodes > shallow.n_nodes

    def test_min_samples_leaf(self):
        X, y = regression_problem(n=100)
        tree = DecisionTreeRegressor(min_samples_leaf=30).fit(X, y)
        leaves = [n for n in tree._nodes if n.feature < 0]
        assert all(leaf.n_samples >= 30 for leaf in leaves)

    def test_importances_normalised(self):
        X, y = regression_problem()
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.feature_importances_.sum() == pytest.approx(1.0)
        assert (tree.feature_importances_ >= 0).all()

    def test_irrelevant_features_low_importance(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(500, 4))
        y = 3 * X[:, 0]  # only feature 0 matters
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.feature_importances_[0] > 0.9

    def test_validation(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValueError):
            DecisionTreeRegressor(min_samples_leaf=0)

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_predictions_within_target_range(self, seed):
        """Mean-leaf trees can never extrapolate beyond the target range."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(50, 3))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor().fit(X, y)
        pred = tree.predict(rng.normal(size=(20, 3)))
        assert pred.min() >= y.min() - 1e-9
        assert pred.max() <= y.max() + 1e-9


class TestForest:
    def test_averages_trees(self):
        X, y = regression_problem(n=200)
        forest = RandomForestRegressor(n_estimators=5, rng=0).fit(X, y)
        stacked = np.stack([t.predict(X[:10]) for t in forest.trees_])
        np.testing.assert_allclose(forest.predict(X[:10]), stacked.mean(axis=0))

    def test_importances_normalised(self):
        X, y = regression_problem()
        forest = RandomForestRegressor(n_estimators=5, rng=0).fit(X, y)
        assert forest.feature_importances_.sum() == pytest.approx(1.0)

    def test_seed_reproducible(self):
        X, y = regression_problem()
        a = RandomForestRegressor(n_estimators=5, rng=7).fit(X, y).predict(X[:5])
        b = RandomForestRegressor(n_estimators=5, rng=7).fit(X, y).predict(X[:5])
        np.testing.assert_allclose(a, b)


class TestGBR:
    def test_loss_decreases(self):
        X, y = regression_problem()
        gbr = GradientBoostedRegressor(n_estimators=50, rng=0).fit(X, y)
        assert gbr.train_losses_[-1] < gbr.train_losses_[0]

    def test_more_stages_fit_better(self):
        X, y = regression_problem()
        few = GradientBoostedRegressor(n_estimators=5, rng=0).fit(X, y)
        many = GradientBoostedRegressor(n_estimators=100, rng=0).fit(X, y)
        assert r2_score(y, many.predict(X)) > r2_score(y, few.predict(X))

    def test_staged_r2_monotone_tail(self):
        X, y = regression_problem()
        gbr = GradientBoostedRegressor(n_estimators=60, rng=0).fit(X, y)
        scores = gbr.staged_r2(X, y)
        assert scores[-1] >= scores[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            GradientBoostedRegressor(learning_rate=0)
        with pytest.raises(ValueError):
            GradientBoostedRegressor(subsample=1.5)


class TestKNN:
    def test_exact_on_training_point_distance_weighted(self):
        X = np.array([[0.0, 0], [10, 0], [0, 10], [10, 10]])
        y = np.array([1.0, 2.0, 3.0, 4.0])
        knn = KNeighborsRegressor(n_neighbors=2).fit(X, y)
        assert knn.predict(np.array([[0.0, 0]]))[0] == pytest.approx(1.0, abs=1e-6)

    def test_k_capped_at_sample_count(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 2.0])
        knn = KNeighborsRegressor(n_neighbors=50, weights="uniform").fit(X, y)
        assert knn.predict(np.array([[0.5]]))[0] == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            KNeighborsRegressor(0)
        with pytest.raises(ValueError):
            KNeighborsRegressor(3, weights="cosine")


class TestKernelRidge:
    def test_interpolates_smooth_data(self):
        X = np.linspace(0, 6, 40)[:, None]
        y = np.sin(X).ravel()
        model = KernelRidgeRegressor(alpha=1e-4).fit(X, y)
        assert r2_score(y, model.predict(X)) > 0.99

    def test_alpha_regularises(self):
        X, y = regression_problem(n=150, noise=0.5)
        tight = KernelRidgeRegressor(alpha=1e-6).fit(X, y)
        loose = KernelRidgeRegressor(alpha=100.0).fit(X, y)
        # heavy regularisation shrinks predictions toward the mean
        assert np.std(loose.predict(X)) < np.std(tight.predict(X))

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelRidgeRegressor(alpha=0)


class TestMLP:
    def test_loss_curve_decreases(self):
        X, y = regression_problem(n=200)
        mlp = MLPRegressor(hidden_layers=(16,), epochs=40, rng=0).fit(X, y)
        assert mlp.loss_curve_[-1] < mlp.loss_curve_[0]

    def test_paper_architecture_accepted(self):
        MLPRegressor(hidden_layers=(200, 20), alpha=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            MLPRegressor(hidden_layers=(0,))
        with pytest.raises(ValueError):
            MLPRegressor(epochs=0)


class TestPairwiseRanker:
    """The learning-to-rank kernel behind the ltr placement backend."""

    def _ranked_data(self, seed=0, n=40):
        from repro.common import make_rng

        rng = make_rng(seed)
        X = rng.normal(size=(n, 4))
        # relevance is a noisy linear function: learnable pairwise order
        rel = X @ np.array([2.0, -1.0, 0.5, 0.0]) + 0.05 * rng.normal(size=n)
        return X, rel

    def test_recovers_a_linear_order(self):
        from repro.ml.ranking import PairwiseRanker

        X, rel = self._ranked_data()
        r = PairwiseRanker(4, seed=3)
        r.fit_ordered(X, rel)
        order = r.rank(X)
        # top-ranked items should be high-relevance: rank correlation > 0.8
        ranks = np.empty(len(X))
        ranks[order] = np.arange(len(X))
        corr = np.corrcoef(-ranks, rel)[0, 1]
        assert corr > 0.8

    def test_deterministic_per_seed(self):
        from repro.ml.ranking import PairwiseRanker

        X, rel = self._ranked_data(seed=5)
        a = PairwiseRanker(4, seed=7)
        b = PairwiseRanker(4, seed=7)
        a.fit_ordered(X, rel)
        b.fit_ordered(X, rel)
        assert a.score(X).tobytes() == b.score(X).tobytes()

    def test_serialisation_roundtrip(self):
        import json

        from repro.ml.ranking import PairwiseRanker

        X, rel = self._ranked_data(seed=2)
        r = PairwiseRanker(4, seed=1)
        r.fit_ordered(X, rel)
        back = PairwiseRanker.from_jsonable(
            json.loads(json.dumps(r.to_jsonable()))
        )
        assert back.score(X).tobytes() == r.score(X).tobytes()
        assert list(back.rank(X)) == list(r.rank(X))

    def test_no_discriminative_pairs_raises(self):
        from repro.ml.ranking import PairwiseRanker

        X = np.ones((3, 4))
        with pytest.raises(ValueError):
            PairwiseRanker(4).fit_ordered(X, np.ones(3))

    def test_default_object_features_shape_and_clamp(self):
        from repro.ml.ranking import default_object_features

        f = default_object_features(1 << 20, 1e6, 1.7)
        assert len(f) == 4
        assert f[2] == 1.0  # hot fraction clamped into [0, 1]
        assert all(np.isfinite(f))
