"""Task-DAG graph layer for the Parla-style runtime frontend.

A :class:`TaskDAG` records a general dependency graph of task instances over
the existing :mod:`repro.tasks` data-object vocabulary.  Where the paper's
:class:`~repro.tasks.task.ParallelRegion` expresses "everything between two
barriers runs concurrently", a DAG node carries its own
:class:`~repro.tasks.task.Footprint` plus the edges that must finish before
it may start -- Fox's algorithm and blocked Cholesky (the Parla examples)
are the canonical shapes.

Construction validates everything up front so the executor and planner can
trust the graph: unique node ids, known dependency ids, declared data
objects, and acyclicity (Kahn's algorithm).  Topological *levelling* is the
deterministic backbone of both lowering modes: ``level(n) = 1 + max(level of
deps)``, with nodes inside a level ordered by task id so the result is
independent of insertion order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.tasks.task import DataObject, Footprint

__all__ = ["TaskNode", "TaskDAG"]


@dataclass(frozen=True)
class TaskNode:
    """One task instance in a DAG.

    ``explicit_deps`` were named by the programmer (the ``deps=[...]``
    argument of ``@spawn``); ``inferred_deps`` were derived from declared
    ``reads``/``writes`` object sets (RAW/WAW/WAR ordering).  The executor
    honours the union, deduplicated with explicit edges first.
    """

    task_id: str
    footprint: Footprint
    explicit_deps: tuple[str, ...] = ()
    inferred_deps: tuple[str, ...] = ()
    reads: tuple[str, ...] = ()
    writes: tuple[str, ...] = ()
    input_vector: tuple[float, ...] = ()

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        object.__setattr__(self, "explicit_deps", tuple(self.explicit_deps))
        object.__setattr__(self, "inferred_deps", tuple(self.inferred_deps))
        object.__setattr__(self, "reads", tuple(self.reads))
        object.__setattr__(self, "writes", tuple(self.writes))
        object.__setattr__(self, "input_vector", tuple(self.input_vector))

    @property
    def deps(self) -> tuple[str, ...]:
        """All dependencies, explicit first, deduplicated."""
        return tuple(dict.fromkeys(self.explicit_deps + self.inferred_deps))


@dataclass(frozen=True)
class TaskDAG:
    """A validated task dependency graph plus its data objects."""

    name: str
    objects: tuple[DataObject, ...]
    nodes: tuple[TaskNode, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "objects", tuple(self.objects))
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if not self.nodes:
            raise ValueError(f"DAG {self.name!r} is empty: it has no task nodes")
        ids = [n.task_id for n in self.nodes]
        if len(set(ids)) != len(ids):
            dupes = sorted({t for t in ids if ids.count(t) > 1})
            raise ValueError(f"DAG {self.name!r} has duplicate task ids: {dupes}")
        known = set(ids)
        declared = {o.name for o in self.objects}
        if len(declared) != len(self.objects):
            raise ValueError(f"DAG {self.name!r} declares duplicate objects")
        for node in self.nodes:
            for dep in node.deps:
                if dep == node.task_id:
                    raise ValueError(
                        f"DAG {self.name!r}: task {node.task_id!r} depends on itself"
                    )
                if dep not in known:
                    raise ValueError(
                        f"DAG {self.name!r}: task {node.task_id!r} depends on "
                        f"unknown task {dep!r}"
                    )
            for obj in node.footprint.objects + node.reads + node.writes:
                if obj not in declared:
                    raise ValueError(
                        f"DAG {self.name!r}: task {node.task_id!r} touches "
                        f"undeclared object {obj!r}"
                    )
        # levels() runs Kahn-style longest-path labelling; it raises on
        # cycles, so computing it here completes validation
        object.__setattr__(self, "_levels", self._compute_levels())

    # ------------------------------------------------------------------
    def node(self, task_id: str) -> TaskNode:
        for n in self.nodes:
            if n.task_id == task_id:
                return n
        raise KeyError(task_id)

    @property
    def task_ids(self) -> tuple[str, ...]:
        return tuple(n.task_id for n in self.nodes)

    def successors(self) -> dict[str, tuple[str, ...]]:
        """Forward adjacency, successor lists sorted for determinism."""
        succ: dict[str, list[str]] = {n.task_id: [] for n in self.nodes}
        for node in self.nodes:
            for dep in node.deps:
                succ[dep].append(node.task_id)
        return {tid: tuple(sorted(out)) for tid, out in succ.items()}

    def edges(self) -> tuple[tuple[str, str], ...]:
        """All ``(dep, task)`` edges in deterministic order."""
        out: list[tuple[str, str]] = []
        for node in sorted(self.nodes, key=lambda n: n.task_id):
            for dep in sorted(node.deps):
                out.append((dep, node.task_id))
        return tuple(out)

    def edge_sources(self) -> dict[str, int]:
        """Edge counts by origin; an edge both named and inferred counts
        as explicit."""
        explicit = 0
        inferred = 0
        for node in self.nodes:
            explicit += len(set(node.explicit_deps))
            inferred += len(set(node.inferred_deps) - set(node.explicit_deps))
        return {"explicit": explicit, "inferred": inferred}

    # ------------------------------------------------------------------
    def _compute_levels(self) -> tuple[tuple[TaskNode, ...], ...]:
        by_id = {n.task_id: n for n in self.nodes}
        level: dict[str, int] = {}
        indeg = {n.task_id: len(n.deps) for n in self.nodes}
        succ: dict[str, list[str]] = {n.task_id: [] for n in self.nodes}
        for node in self.nodes:
            for dep in node.deps:
                succ[dep].append(node.task_id)
        frontier = sorted(tid for tid, d in indeg.items() if d == 0)
        for tid in frontier:
            level[tid] = 0
        queue = list(frontier)
        while queue:
            tid = queue.pop()
            for nxt in succ[tid]:
                level[nxt] = max(level.get(nxt, 0), level[tid] + 1)
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    queue.append(nxt)
        if len(level) != len(self.nodes):
            stuck = sorted(set(by_id) - set(level))
            raise ValueError(
                f"DAG {self.name!r} contains a dependency cycle through {stuck}"
            )
        depth = max(level.values()) + 1
        out: list[list[TaskNode]] = [[] for _ in range(depth)]
        for tid, lvl in level.items():
            out[lvl].append(by_id[tid])
        return tuple(
            tuple(sorted(lvl, key=lambda n: n.task_id)) for lvl in out
        )

    def levels(self) -> tuple[tuple[TaskNode, ...], ...]:
        """Deterministic topological levelling.

        A node's level is the length of its longest dependency chain from
        any root; nodes within a level are sorted by task id, so the result
        does not depend on insertion order.
        """
        return self._levels  # type: ignore[attr-defined]

    def is_level_sequence(self) -> bool:
        """True when the DAG is semantically a barrier program: every node
        of level ``k`` depends on *every* node of level ``k-1``.  The
        executor then lowers to classic barrier regions and the planner's
        decisions reproduce the barrier objective bit-exactly."""
        levels = self.levels()
        for k in range(1, len(levels)):
            prev = {n.task_id for n in levels[k - 1]}
            for node in levels[k]:
                if not prev <= set(node.deps):
                    return False
        return True

    # ------------------------------------------------------------------
    def tails(
        self,
        weights: Mapping[str, float],
        within: set[str] | None = None,
    ) -> dict[str, float]:
        """Downstream critical-path length per node, *excluding* the node's
        own weight: ``tail(n) = max over successors s of (w(s) + tail(s))``,
        zero for sinks.  ``within`` restricts the graph to a node subset
        (edges leaving the subset are ignored) -- the planner uses it to
        scope tails to the tasks actually being planned."""
        succ = self.successors()
        order = [n.task_id for lvl in self.levels() for n in lvl]
        if within is not None:
            order = [tid for tid in order if tid in within]
        tails: dict[str, float] = {}
        for tid in reversed(order):
            best = 0.0
            for s in succ[tid]:
                if within is not None and s not in within:
                    continue
                cand = float(weights.get(s, 0.0)) + tails.get(s, 0.0)
                if cand > best:
                    best = cand
            tails[tid] = best
        return tails

    def critical_path(
        self, weights: Mapping[str, float]
    ) -> tuple[float, tuple[str, ...]]:
        """Longest weighted dependency chain: ``(length, node ids)``.

        Ties break toward the lexicographically smallest task id so the
        reported path is deterministic.
        """
        tails = self.tails(weights)
        preds = {n.task_id: n.deps for n in self.nodes}
        through = {
            tid: float(weights.get(tid, 0.0)) + tails[tid] for tid in tails
        }
        roots = sorted(tid for tid, deps in preds.items() if not deps)
        best = max(through[t] for t in roots)
        cur = min(t for t in roots if through[t] == best)
        path = [cur]
        succ = self.successors()
        while tails[cur] > 0.0:
            cand = [
                s
                for s in succ[cur]
                if float(weights.get(s, 0.0)) + tails[s] == tails[cur]
            ]
            if not cand:  # pragma: no cover - float-exactness fallback
                break
            cur = min(cand)
            path.append(cur)
        return best, tuple(path)
