"""Tests for the placement-service network transport.

Framing units (strict one-shot decode, incremental assembler), the
asyncio server + blocking client over real loopback sockets (round-trip,
idempotent resubmission, shed-at-admission, protocol errors, idle
timeout, backpressure accounting), chaos cases per wire fault model
(each request must end in exactly one decision), client fallback with no
server at all, and the multi-client soak asserting the never-lost /
never-duplicated invariants end to end.
"""

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.model import PerformanceModel
from repro.core.telemetry import Telemetry
from repro.service import (
    PlacementClient,
    PlacementRequest,
    PlacementServer,
    PlacementTransportServer,
    ProtocolError,
    RetryPolicy,
    TaskSpec,
    TransportError,
)
from repro.service.protocol import encode_request
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME,
    HEADER_SIZE,
    TRAILER_SIZE,
    FrameAssembler,
    FrameCorrupt,
    FrameError,
    FrameTooLarge,
    FrameTruncated,
    decode_frame,
    encode_frame,
)
from repro.sim.faults import FaultConfig, FaultInjector

MB = 1 << 20

#: retry schedule tuned for loopback chaos tests: short timeouts, many
#: attempts, tiny backoff -- the suite stays fast while still exercising
#: every retry transition
FAST_RETRY = RetryPolicy(
    connect_timeout_s=2.0,
    request_timeout_s=0.5,
    max_attempts=6,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
)


class _CountingCorrelation:
    """Deterministic f(.) == 1 stand-in (planning costs microseconds)."""

    events = ("E",)
    model = None

    def __init__(self):
        self.calls = 0

    def predict(self, pmcs, r):
        self.calls += 1
        return 1.0

    def predict_batch(self, pmcs, ratios):
        self.calls += 1
        return np.ones(len(np.asarray(ratios)))

    def predict_stacked(self, pmcs_seq, ratios):
        self.calls += 1
        return np.ones((len(pmcs_seq), len(np.asarray(ratios))))


def spec(tid, t_pm=30.0, t_dram=10.0, size=8 * MB):
    return TaskSpec(
        task_id=tid,
        t_pm_only=t_pm,
        t_dram_only=t_dram,
        total_accesses=1_000_000,
        pmcs={"E": 1.0},
        size_bytes=size,
    )


def make_request(rid, tenant="acme", shape=0, n_tasks=3):
    tasks = tuple(
        spec(f"s{shape}:t{i}", t_pm=20.0 + 5.0 * shape + i, size=(4 + shape) * MB)
        for i in range(n_tasks)
    )
    return PlacementRequest(request_id=rid, tenant=tenant, tasks=tasks)


def make_server(capacity=64 * MB, **kw):
    """A real-clock PlacementServer over the stub model (fast planning)."""
    return PlacementServer(
        PerformanceModel(_CountingCorrelation()),
        dram_capacity_bytes=capacity,
        window_s=kw.pop("window_s", 0.0),
        max_batch=kw.pop("max_batch", 8),
        **kw,
    )


def wire_injector(seed=42, **rates) -> FaultInjector:
    return FaultInjector(FaultConfig(**rates), seed=seed)


# ======================================================================
# framing: one-shot decode
# ======================================================================
class TestFraming:
    MSG = {"v": 1, "kind": "demo", "payload": [1, 2.5, "x", None, True]}

    def test_round_trip(self):
        assert decode_frame(encode_frame(self.MSG)) == self.MSG

    def test_frame_layout(self):
        frame = encode_frame(self.MSG)
        assert frame[:2] == b"MF"
        declared = int.from_bytes(frame[3:7], "big")
        assert len(frame) == HEADER_SIZE + declared + TRAILER_SIZE

    def test_bad_magic(self):
        frame = bytearray(encode_frame(self.MSG))
        frame[0] ^= 0xFF
        with pytest.raises(FrameCorrupt, match="magic"):
            decode_frame(bytes(frame))

    def test_bad_version(self):
        frame = bytearray(encode_frame(self.MSG))
        frame[2] = 99
        with pytest.raises(FrameCorrupt, match="version"):
            decode_frame(bytes(frame))

    def test_corrupt_payload_fails_crc(self):
        frame = bytearray(encode_frame(self.MSG))
        frame[HEADER_SIZE + 2] ^= 0x01
        with pytest.raises(FrameCorrupt, match="CRC"):
            decode_frame(bytes(frame))

    def test_corrupt_trailer_fails_crc(self):
        frame = bytearray(encode_frame(self.MSG))
        frame[-1] ^= 0xFF
        with pytest.raises(FrameCorrupt, match="CRC"):
            decode_frame(bytes(frame))

    def test_truncated(self):
        frame = encode_frame(self.MSG)
        with pytest.raises(FrameTruncated):
            decode_frame(frame[: len(frame) - 3])
        with pytest.raises(FrameTruncated):
            decode_frame(frame[:3])

    def test_oversize_guard(self):
        with pytest.raises(FrameTooLarge):
            decode_frame(encode_frame(self.MSG), max_frame=4)

    def test_trailing_bytes_rejected(self):
        with pytest.raises(FrameError, match="trailing"):
            decode_frame(encode_frame(self.MSG) + b"x")

    def test_errors_are_typed(self):
        # every subclass is a FrameError is a ValueError
        for exc in (FrameCorrupt, FrameTruncated, FrameTooLarge):
            assert issubclass(exc, FrameError)
        assert issubclass(FrameError, ValueError)


# ======================================================================
# framing: incremental assembler
# ======================================================================
class TestFrameAssembler:
    def test_byte_at_a_time(self):
        msgs = [{"v": 1, "i": i} for i in range(3)]
        stream = b"".join(encode_frame(m) for m in msgs)
        asm = FrameAssembler()
        out = []
        for b in stream:
            out.extend(asm.feed(bytes([b])))
        assert out == msgs
        assert asm.pending_bytes == 0
        asm.close()  # clean boundary: no complaint

    def test_two_frames_in_one_chunk(self):
        a, b = {"v": 1, "x": "a"}, {"v": 1, "x": "b"}
        out = FrameAssembler().feed(encode_frame(a) + encode_frame(b))
        assert out == [a, b]

    def test_poisoned_after_error(self):
        asm = FrameAssembler()
        with pytest.raises(FrameCorrupt):
            asm.feed(b"XX" + b"\x00" * 16)
        with pytest.raises(FrameCorrupt, match="poisoned"):
            asm.feed(encode_frame({"v": 1}))

    def test_close_mid_frame_raises(self):
        asm = FrameAssembler()
        asm.feed(encode_frame({"v": 1, "pad": "y" * 64})[:10])
        assert asm.pending_bytes == 10
        with pytest.raises(FrameTruncated):
            asm.close()

    def test_oversize_rejected_from_header(self):
        asm = FrameAssembler(max_frame=8)
        with pytest.raises(FrameTooLarge):
            asm.feed(encode_frame({"v": 1, "pad": "y" * 64}))


# ======================================================================
# server + client over loopback
# ======================================================================
class TestLoopback:
    def test_round_trip_and_idempotent_resubmission(self):
        server = make_server()
        with PlacementTransportServer(server) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                first = c.request(make_request("t1"))
                assert first.status == "planned"
                assert first.request_id == "t1"
                # same id again: answered from the record, not re-planned
                again = c.request(make_request("t1"))
                assert again == first
        assert transport.stats["resubmissions"] == 1
        assert server.submitted == 1 and server.decided == 1

    def test_many_requests_one_connection(self):
        server = make_server()
        with PlacementTransportServer(server) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                decisions = [
                    c.request(make_request(f"m{i}", shape=i % 3))
                    for i in range(20)
                ]
        assert [d.request_id for d in decisions] == [f"m{i}" for i in range(20)]
        assert transport.stats["connections"] == 1
        assert server.submitted == server.decided == 20

    def test_shed_at_admission_still_answered(self):
        from repro.service import AdmissionConfig

        # a long window keeps request 1 queued, so pipelined requests 2-3
        # hit a saturated intake (max_queue=1) and are shed immediately
        server = make_server(
            window_s=0.2,
            admission=AdmissionConfig(max_queue=1, resume_below=0),
        )
        with PlacementTransportServer(server) as transport:
            host, port = transport.address
            sock = socket.create_connection((host, port), timeout=2.0)
            for i in range(3):
                sock.sendall(
                    encode_frame(encode_request(make_request(f"sh{i}")))
                )
            asm, got = FrameAssembler(), []
            sock.settimeout(2.0)
            while len(got) < 3:
                got.extend(asm.feed(sock.recv(1 << 16)))
            sock.close()
        by_rid = {m["request_id"]: m for m in got}
        assert set(by_rid) == {"sh0", "sh1", "sh2"}
        shed = [m for m in got if m["status"] == "shed"]
        assert shed and all(m["policy"] == "daemon" for m in shed)

    def test_malformed_request_keeps_connection(self):
        server = make_server()
        with PlacementTransportServer(server) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                bad = encode_request(make_request("bad-1"))
                bad["v"] = 99  # protocol (not framing) violation
                c._ensure_connected()
                c._sock.sendall(encode_frame(bad))
                with pytest.raises(ProtocolError, match="rejected"):
                    c.request(make_request("bad-1"))
                # the connection survived the protocol error (a distinct
                # shape, so in-flight dedup cannot blur the status)
                ok = c.request(make_request("ok-1", shape=2))
                assert ok.status == "planned"
        assert transport.stats["protocol_errors"] == 1

    def test_framing_garbage_drops_connection(self):
        server = make_server()
        with PlacementTransportServer(server) as transport:
            host, port = transport.address
            sock = socket.create_connection((host, port), timeout=2.0)
            sock.sendall(b"GARBAGE-NOT-A-FRAME" + b"\x00" * 32)
            deadline = time.monotonic() + 2.0
            while (
                transport.stats["frame_errors"] == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.01)
            sock.close()
        assert transport.stats["frame_errors"] == 1

    def test_idle_timeout_closes_connection(self):
        server = make_server()
        with PlacementTransportServer(server, idle_timeout_s=0.1) as transport:
            host, port = transport.address
            sock = socket.create_connection((host, port), timeout=2.0)
            # send nothing; the server must hang up on us
            sock.settimeout(2.0)
            assert sock.recv(1024) == b""
            sock.close()
        assert transport.stats["idle_timeouts"] == 1

    def test_backpressure_parks_past_window(self):
        # a window of 1 with a batching delay: the second pipelined
        # request must park the reader until the first decision lands
        server = make_server(window_s=0.05, max_batch=8)
        with PlacementTransportServer(server, max_inflight=1) as transport:
            host, port = transport.address
            sock = socket.create_connection((host, port), timeout=2.0)
            for i in range(3):
                sock.sendall(encode_frame(encode_request(make_request(f"bp{i}"))))
            asm, got = FrameAssembler(), []
            sock.settimeout(2.0)
            while len(got) < 3:
                got.extend(asm.feed(sock.recv(1 << 16)))
            sock.close()
        assert {m["request_id"] for m in got} == {"bp0", "bp1", "bp2"}
        assert transport.stats["backpressure_pauses"] >= 1

    def test_telemetry_instruments_fire(self):
        telemetry = Telemetry()
        server = make_server(telemetry=telemetry)
        with PlacementTransportServer(server, telemetry=telemetry) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                c.request(make_request("tm1"))
        reg = telemetry.registry
        assert reg.get("merch_transport_connections_total").value() == 1.0
        frames = reg.get("merch_transport_frames_total")
        assert frames.value(direction="rx") == 1.0
        assert frames.value(direction="tx") == 1.0
        assert reg.get("merch_transport_bytes_total").value(direction="rx") > 0
        assert reg.get("merch_transport_active_connections").value() == 0.0

    def test_start_twice_rejected(self):
        server = make_server()
        with PlacementTransportServer(server) as transport:
            with pytest.raises(RuntimeError, match="already started"):
                transport.start()

    def test_address_requires_start(self):
        with pytest.raises(RuntimeError, match="not started"):
            PlacementTransportServer(make_server()).address

    def test_constructor_validation(self):
        server = make_server()
        with pytest.raises(ValueError):
            PlacementTransportServer(server, max_inflight=0)
        with pytest.raises(ValueError):
            PlacementTransportServer(server, idle_timeout_s=0.0)
        with pytest.raises(ValueError):
            PlacementTransportServer(server, completed_window=0)


# ======================================================================
# client resilience without a server
# ======================================================================
class TestClientFallback:
    def _dead_port(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nobody listens here any more
        return port

    def test_falls_back_to_daemon(self):
        retry = RetryPolicy(
            connect_timeout_s=0.2,
            request_timeout_s=0.2,
            max_attempts=2,
            backoff_base_s=0.0,
            backoff_cap_s=0.0,
            jitter=0.0,
        )
        with PlacementClient("127.0.0.1", self._dead_port(), retry=retry) as c:
            req = make_request("off-1")
            decision = c.request(req)
        assert decision.status == "shed" and decision.policy == "daemon"
        assert decision.request_id == "off-1"
        # daemon makespan: every task runs PM-only
        assert decision.predicted_makespan_s == pytest.approx(
            max(t.t_pm_only for t in req.tasks)
        )
        assert c.fallbacks == 1 and c.retries == 1

    def test_raises_when_fallback_disabled(self):
        retry = RetryPolicy(
            connect_timeout_s=0.2, request_timeout_s=0.2, max_attempts=2
        )
        with PlacementClient(
            "127.0.0.1", self._dead_port(), retry=retry, fallback_to_daemon=False
        ) as c:
            with pytest.raises(TransportError, match="unreachable"):
                c.request(make_request("off-2"))

    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(request_timeout_s=0.0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=0.5, backoff_cap_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_is_capped_and_jittered(self):
        from repro.common import make_rng

        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_cap_s=0.3, jitter=0.25
        )
        rng = make_rng(0)
        for attempt, base in ((1, 0.1), (2, 0.2), (3, 0.3), (9, 0.3)):
            got = policy.backoff_s(attempt, rng)
            assert base * 0.75 <= got <= base * 1.25


# ======================================================================
# chaos: every wire fault model, one at a time
# ======================================================================
class TestWireChaos:
    """Under each fault model every request gets exactly one decision
    (the socket-layer mirror of test_service's worker-crash cases)."""

    RATES = {
        "torn_frame": dict(wire_torn_frame_rate=0.3),
        "corrupt_crc": dict(wire_corrupt_rate=0.3),
        "stall": dict(wire_stall_rate=0.3, wire_stall_s=0.02),
        "disconnect": dict(wire_disconnect_rate=0.3),
    }

    @pytest.mark.parametrize("fault", sorted(RATES))
    def test_exactly_one_decision_per_request(self, fault):
        injector = wire_injector(seed=42, **self.RATES[fault])
        server = make_server()
        with PlacementTransportServer(server, faults=injector) as transport:
            with PlacementClient(
                *transport.address, retry=FAST_RETRY, seed=7
            ) as c:
                decisions = {}
                for i in range(25):
                    req = make_request(f"{fault}-{i}", shape=i % 3)
                    decisions.setdefault(req.request_id, []).append(
                        c.request(req)
                    )
                retries = c.retries
        # never lost, never duplicated -- at the client...
        assert all(len(ds) == 1 for ds in decisions.values())
        assert len(decisions) == 25
        # ...and at the server (no request id decided twice)
        assert transport.stats["duplicates"] == 0
        assert server.submitted == server.decided
        # the fault model actually fired and forced the retry path
        assert injector.log.count(f"fault.wire_{fault}") >= 1
        if fault != "stall":  # stalls delay but rarely breach the timeout
            assert retries >= 1


# ======================================================================
# the soak: concurrent clients, all wire faults at once
# ======================================================================
class TestSoak:
    N_CLIENTS = 4
    PER_CLIENT = 50

    def test_multi_client_soak_zero_lost_zero_duplicated(self):
        injector = wire_injector(
            seed=11,
            wire_torn_frame_rate=0.08,
            wire_corrupt_rate=0.08,
            wire_stall_rate=0.05,
            wire_stall_s=0.02,
            wire_disconnect_rate=0.05,
        )
        server = make_server(window_s=0.002, max_batch=16)
        results: dict[int, dict] = {}

        def worker(idx: int) -> None:
            got: dict[str, list] = {}
            with PlacementClient(
                host, port, retry=FAST_RETRY, seed=100 + idx
            ) as c:
                for i in range(self.PER_CLIENT):
                    req = make_request(f"soak-c{idx}-{i:03d}", shape=i % 4)
                    got.setdefault(req.request_id, []).append(c.request(req))
                results[idx] = {
                    "decisions": got,
                    "retries": c.retries,
                    "fallbacks": c.fallbacks,
                }

        with PlacementTransportServer(server, faults=injector) as transport:
            host, port = transport.address
            threads = [
                threading.Thread(target=worker, args=(k,), name=f"soak-{k}")
                for k in range(self.N_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = dict(transport.stats)

        total = self.N_CLIENTS * self.PER_CLIENT
        all_rids = {
            rid for out in results.values() for rid in out["decisions"]
        }
        # never lost: every request answered at its own client
        assert len(all_rids) == total
        assert all(
            len(ds) == 1
            for out in results.values()
            for ds in out["decisions"].values()
        )
        # never duplicated: the server decided each id at most once
        assert stats["duplicates"] == 0
        assert server.submitted == server.decided
        # the chaos was real: faults fired and clients retried
        assert sum(
            injector.log.count(f"fault.wire_{k}")
            for k in ("torn_frame", "corrupt_crc", "stall", "disconnect")
        ) >= 5
        assert sum(out["retries"] for out in results.values()) >= 1


# ======================================================================
# health/heartbeat frames + client liveness probing
# ======================================================================
class TestHealthProbes:
    def test_health_frame_round_trip(self):
        from repro.service.transport.framing import (
            decode_health,
            encode_health,
            is_health,
        )

        probe = encode_health(7)
        assert is_health(probe)
        assert decode_health(probe) == (7, False, "ok")
        reply = encode_health(7, reply=True, status="ok")
        assert decode_health(reply) == (7, True, "ok")
        frame = encode_frame(reply)  # rides the standard CRC framing
        assert decode_health(decode_frame(frame)) == (7, True, "ok")
        assert not is_health({"v": 1, "kind": "request"})

    def test_malformed_health_rejected(self):
        from repro.service.transport.framing import decode_health

        with pytest.raises(ProtocolError):
            decode_health({"v": 999, "kind": "health", "nonce": 1})
        with pytest.raises(ProtocolError):
            decode_health({"v": 1, "kind": "request", "nonce": 1})
        with pytest.raises(ProtocolError):
            decode_health({"v": 1, "kind": "health", "nonce": "not-an-int"})

    def test_probe_against_live_server(self):
        telemetry = Telemetry()
        server = make_server()
        with PlacementTransportServer(server) as transport:
            with PlacementClient(
                *transport.address, retry=FAST_RETRY, telemetry=telemetry
            ) as c:
                assert c.probe()
                assert c.probe()
                # probing and requesting share the connection cleanly
                assert c.request(make_request("hp-1")).request_id == "hp-1"
                assert c.probe()
            assert c.probes_ok == 3 and c.probe_failures == 0
            assert transport.stats["health_probes"] == 3
        assert (
            telemetry.registry.get(
                "merch_transport_health_probes_total"
            ).value(result="ok")
            == 3
        )

    def test_probe_fails_with_nobody_listening(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        with PlacementClient("127.0.0.1", port, retry=FAST_RETRY) as c:
            assert not c.probe(timeout_s=0.2)
        assert c.probe_failures == 1 and c.probes_ok == 0

    def test_probe_fails_under_wire_disconnects(self):
        # the reply rides the faulted send path: a disconnect fault on the
        # wire reads as a missed heartbeat at the prober
        injector = wire_injector(seed=3, wire_disconnect_rate=1.0)
        server = make_server()
        with PlacementTransportServer(server, faults=injector) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                assert not c.probe(timeout_s=0.3)
        assert c.probe_failures == 1
        assert injector.log.count("fault.wire_disconnect") >= 1


# ======================================================================
# bounded decided-id record: eviction is detected and loud
# ======================================================================
class TestDecidedEviction:
    def test_eviction_boundary_replans_loudly(self):
        telemetry = Telemetry()
        server = make_server()
        with PlacementTransportServer(
            server, completed_window=1, telemetry=telemetry
        ) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                first = c.request(make_request("ev-1"))
                c.request(make_request("ev-2"))  # evicts ev-1's record
                again = c.request(make_request("ev-1"))  # retried after eviction
            stats = dict(transport.stats)
            events = list(transport.log.events)
        # the retry was re-planned (exactly-once can no longer be promised
        # for an evicted id) -- but it was *detected*, not silent
        assert server.decided == 3
        assert stats["decided_evictions"] >= 1
        assert stats["evicted_replans"] == 1
        warned = [
            e for e in events if e.kind == "transport.evicted_id_replanned"
        ]
        assert len(warned) == 1
        assert warned[0].detail["request_id"] == "ev-1"
        assert warned[0].detail["level"] == "warning"
        assert (
            telemetry.registry.get(
                "merch_transport_decided_evictions_total"
            ).value()
            >= 1
        )
        assert (
            telemetry.registry.get(
                "merch_transport_decided_evicted_replans_total"
            ).value()
            == 1
        )
        # the answers themselves are still well-formed decisions
        assert first.request_id == again.request_id == "ev-1"

    def test_unevicted_ids_still_answered_from_the_record(self):
        server = make_server()
        with PlacementTransportServer(
            server, completed_window=8
        ) as transport:
            with PlacementClient(*transport.address, retry=FAST_RETRY) as c:
                first = c.request(make_request("ev-3"))
                again = c.request(make_request("ev-3"))
        assert again == first
        assert server.decided == 1
        assert transport.stats["evicted_replans"] == 0

    def test_evicted_window_validation(self):
        server = make_server()
        with pytest.raises(ValueError):
            PlacementTransportServer(server, evicted_window=0)


# ======================================================================
# reproducible reconnect jitter (SeedSequence-per-connection)
# ======================================================================
class TestBackoffDeterminism:
    def _sleep_recorder(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", lambda s: sleeps.append(s))
        return sleeps

    def _dead_port(self):
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        return port

    def test_same_seed_same_backoff_schedule(self, monkeypatch):
        sleeps = self._sleep_recorder(monkeypatch)
        port = self._dead_port()
        retry = RetryPolicy(
            connect_timeout_s=0.05,
            request_timeout_s=0.05,
            max_attempts=5,
            backoff_base_s=0.01,
            backoff_cap_s=0.5,
            jitter=0.25,
        )
        schedules = []
        for _ in range(2):
            sleeps.clear()
            with PlacementClient(
                "127.0.0.1", port, retry=retry, seed=11
            ) as c:
                c.request(make_request("bk-1"))  # exhausts every attempt
            schedules.append(list(sleeps))
        assert len(schedules[0]) == retry.max_attempts - 1
        assert schedules[0] == schedules[1]  # identical jitter, same seed
        assert schedules[0] != sorted(set(schedules[0]))[:1]  # jitter real

    def test_reconnect_respawns_an_aligned_stream(self):
        # two same-seed clients whose RNGs drift apart mid-connection must
        # come back into lockstep at the next reconnect: the jitter stream
        # is a pure function of (seed, connection index, draw index)
        server = make_server()
        policy = RetryPolicy(backoff_base_s=0.01, backoff_cap_s=0.5, jitter=0.25)
        with PlacementTransportServer(server) as transport:
            a = PlacementClient(*transport.address, retry=FAST_RETRY, seed=11)
            b = PlacementClient(*transport.address, retry=FAST_RETRY, seed=11)
            with a, b:
                assert a.probe() and b.probe()  # connection 1 for both
                # a's stream drifts: it burns three extra jitter draws
                for k in (1, 2, 3):
                    policy.backoff_s(k, a._rng)
                assert policy.backoff_s(1, a._rng) != policy.backoff_s(
                    1, b._rng
                )
                a.close()
                b.close()
                assert a.probe() and b.probe()  # connection 2: respawned
                assert a.connections == b.connections == 2
                schedule_a = [policy.backoff_s(k, a._rng) for k in (1, 2, 3)]
                schedule_b = [policy.backoff_s(k, b._rng) for k in (1, 2, 3)]
        assert schedule_a == schedule_b  # drift erased by the reconnect

    def test_generator_seed_keeps_legacy_single_stream(self):
        from repro.common import make_rng

        # a Generator seed opts out of per-connection respawning: the
        # stream is shared and never reset (old behaviour, still useful
        # when a caller wants to drive the jitter source directly)
        c = PlacementClient("127.0.0.1", 1, seed=make_rng(5))
        assert c._seed_seq is None
        reference = make_rng(5)
        assert float(c._rng.uniform()) == float(reference.uniform())
