"""Tests for alpha (Equation 1's caching parameter) and the estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import AccessPattern
from repro.core.alpha import (
    AlphaRefiner,
    AlphaTable,
    alpha_stencil_offline,
    alpha_stream_strided,
    line_accesses,
    round_to_line,
)
from repro.core.estimator import AccessEstimator, ObjectDescriptor
from repro.tasks import Footprint, ObjectAccess


class TestRounding:
    def test_round_to_line(self):
        assert round_to_line(1) == 64
        assert round_to_line(64) == 64
        assert round_to_line(65) == 128

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            round_to_line(0)


class TestLineAccesses:
    def test_unit_stride(self):
        # 128 bytes of 4-byte ints at stride 1 -> 2 lines
        assert line_accesses(128, 4, 1) == 2

    def test_paper_example(self):
        """Section 4's worked example: S_base=128 B, S_new=192 B, ints."""
        assert line_accesses(128, 4, 1) == 2
        assert line_accesses(192, 4, 1) == 3

    def test_wide_stride_one_access_per_element(self):
        # stride 16 ints = 64 bytes: every touched element is its own line
        assert line_accesses(64 * 100, 4, 16) == 100


class TestAlphaStreamStrided:
    def test_paper_example_gives_one(self):
        """esti = 192/(128*alpha) * 2 must equal 3 -> alpha = 1."""
        assert alpha_stream_strided(128, 192, 4, 1) == pytest.approx(1.0)

    def test_equation1_roundtrip(self):
        """Using alpha in Equation 1 reproduces the exact line count."""
        s_base, s_new, esize, stride = 4096, 10240, 8, 4
        prof = line_accesses(s_base, esize, stride)
        a = alpha_stream_strided(s_base, s_new, esize, stride)
        esti = round_to_line(s_new) / (round_to_line(s_base) * a) * prof
        assert esti == pytest.approx(line_accesses(s_new, esize, stride))

    @given(
        s_base=st.integers(64, 1 << 20),
        s_new=st.integers(64, 1 << 20),
        esize=st.sampled_from([2, 4, 8]),
        stride=st.integers(1, 32),
    )
    @settings(max_examples=50, deadline=None)
    def test_alpha_positive_and_bounded(self, s_base, s_new, esize, stride):
        a = alpha_stream_strided(s_base, s_new, esize, stride)
        assert 0 < a < 100


class TestStencilAlpha:
    def test_program_over_counter_ratio(self):
        """A 3-point stencil touches each element 3 times at program level
        but the cache coalesces them to one pass: alpha ~ 3 * elements/line."""
        a = alpha_stencil_offline(taps=3, element_size=8)
        assert a == pytest.approx(3 * 8, rel=0.01)  # 8 doubles per line

    def test_more_taps_bigger_alpha(self):
        a3 = alpha_stencil_offline(3, 8)
        a7 = alpha_stencil_offline(7, 8)
        assert a7 > a3

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_stencil_offline(taps=1, element_size=8)


class TestRefiner:
    def test_starts_at_one(self):
        assert AlphaRefiner().alpha == 1.0

    def test_converges_to_implied(self):
        """Repeated identical measurements drive alpha to the implied value."""
        ref = AlphaRefiner(eta=0.5)
        # measured = half of the naive estimate -> implied alpha = 2
        for _ in range(20):
            ref.update(s_base=100, s_new=100, prof_acc=1000, measured_acc=500)
        assert ref.alpha == pytest.approx(2.0, rel=0.01)

    def test_empty_measurement_ignored(self):
        ref = AlphaRefiner()
        ref.update(100, 100, 1000, 0)
        assert ref.alpha == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AlphaRefiner(eta=0)
        with pytest.raises(ValueError):
            AlphaRefiner().implied_alpha(0, 10, 1, 1)


class TestAlphaTable:
    def test_dispatch_stream(self):
        table = AlphaTable()
        a = table.alpha("x", AccessPattern.STREAM, 128, 192, element_size=4)
        assert a == pytest.approx(1.0)

    def test_dispatch_random_uses_refiner(self):
        table = AlphaTable()
        assert table.alpha("x", AccessPattern.RANDOM, 100, 200) == 1.0
        table.refine("x", 100, 200, prof_acc=1000, measured_acc=4000)
        assert table.alpha("x", AccessPattern.RANDOM, 100, 200) != 1.0

    def test_refiners_are_per_object(self):
        table = AlphaTable()
        table.refine("x", 100, 200, 1000, 4000)
        assert table.alpha("y", AccessPattern.RANDOM, 100, 200) == 1.0

    def test_mean_alpha(self):
        table = AlphaTable()
        assert table.mean_alpha() == 1.0
        table.refine("x", 100, 100, 1000, 500)
        assert table.mean_alpha() > 1.0

    def test_stencil_microbench_cached(self):
        table = AlphaTable()
        a1 = table.stencil_microbench_alpha(5, 8)
        a2 = table.stencil_microbench_alpha(5, 8)
        assert a1 == a2


def make_estimator():
    desc = {
        "s": ObjectDescriptor("s", AccessPattern.STREAM, element_size=8),
        "r": ObjectDescriptor("r", AccessPattern.RANDOM),
    }
    est = AccessEstimator(desc)
    est.record_base_profile(
        sizes={"s": 1 << 20, "r": 1 << 20},
        counts={"s": 10_000, "r": 50_000},
    )
    return est


class TestAccessEstimator:
    def test_same_size_same_estimate(self):
        est = make_estimator()
        out = est.estimate({"s": 1 << 20, "r": 1 << 20})
        assert out["s"] == pytest.approx(10_000, rel=1e-6)
        assert out["r"] == pytest.approx(50_000, rel=1e-6)

    def test_stream_scales_with_size(self):
        est = make_estimator()
        out = est.estimate({"s": 2 << 20, "r": 1 << 20})
        assert out["s"] == pytest.approx(20_000, rel=1e-3)

    def test_total(self):
        est = make_estimator()
        assert est.estimate_total({"s": 1 << 20, "r": 1 << 20}) == pytest.approx(60_000, rel=1e-6)

    def test_requires_base_profile(self):
        est = AccessEstimator({"x": ObjectDescriptor("x", AccessPattern.STREAM)})
        with pytest.raises(RuntimeError):
            est.estimate({"x": 100})

    def test_unknown_profiled_object_rejected(self):
        est = AccessEstimator({"x": ObjectDescriptor("x", AccessPattern.STREAM)})
        with pytest.raises(KeyError):
            est.record_base_profile({"y": 10}, {"y": 5})

    def test_refinement_improves_random_estimate(self):
        est = make_estimator()
        # truth: random accesses do NOT grow with size (alpha should learn 2x)
        for _ in range(12):
            est.refine({"s": 2 << 20, "r": 2 << 20}, {"r": 50_000})
        out = est.estimate({"s": 2 << 20, "r": 2 << 20})
        assert out["r"] == pytest.approx(50_000, rel=0.1)

    def test_refine_ignores_stream_objects(self):
        est = make_estimator()
        est.refine({"s": 2 << 20}, {"s": 123.0})
        out = est.estimate({"s": 2 << 20, "r": 1 << 20})
        assert out["s"] == pytest.approx(20_000, rel=1e-3)

    def test_estimated_footprint_scales_counts(self):
        est = make_estimator()
        fp = Footprint(
            accesses=(
                ObjectAccess("s", AccessPattern.STREAM, reads=10_000),
                ObjectAccess("r", AccessPattern.RANDOM, reads=50_000),
            ),
            instructions=1_000_000,
        )
        new = est.estimated_footprint(fp, {"s": 2 << 20, "r": 1 << 20})
        by = new.accesses_by_object()
        assert by["s"] == pytest.approx(20_000, rel=0.01)
        assert by["r"] == pytest.approx(50_000, rel=0.01)
        assert new.instructions > fp.instructions  # mean factor > 1
