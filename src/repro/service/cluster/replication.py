"""Journal replication: a shard's WAL streamed to a warm follower.

Each placement shard appends its decisions to a PR-2
:class:`~repro.core.journal.WriteAheadLog`; this module ships those
entries, in LSN order, to a standby :class:`FollowerJournal` so failover
can replay them with the existing :func:`~repro.core.journal.recover_journal`
path and resume **warm**.

Wire discipline (the replication stream rides the PR-5 framing):

* every shipment unit is one WAL entry wrapped in a ``repl_append``
  message and encoded as a CRC-framed byte string
  (:func:`~repro.service.transport.framing.encode_frame`), so a corrupt
  or torn entry is detected at the frame layer before it can poison the
  follower's journal;
* messages carry the entry's **LSN**; the follower applies them strictly
  in order, acknowledges the highest contiguous LSN it holds (the
  *acknowledged-LSN floor*), ignores re-shipped entries at or below the
  floor (idempotent retransmission) and refuses gaps;
* the sender trusts nothing but the returned floor: entries lost to a
  truncated shipment (``FaultConfig.replication_truncate_rate``) simply
  stay pending and are re-shipped next time.  Truncation costs *lag*,
  never correctness.

The WAL entry itself is CRC-guarded too (PR-2), so a primary that died
mid-append ships its torn entry as-is; the follower stores it faithfully
and ``reopen()`` truncates it at promotion, exactly as local recovery
would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.core.journal import WriteAheadLog
from repro.service.protocol import PROTOCOL_VERSION, ProtocolError
from repro.service.transport.framing import (
    DEFAULT_MAX_FRAME,
    FrameError,
    decode_frame,
    encode_frame,
)
from repro.sim.faults import RobustnessLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry
    from repro.sim.faults import FaultInjector

__all__ = [
    "ReplicationError",
    "encode_repl_append",
    "decode_repl_append",
    "FollowerJournal",
    "ReplicationSender",
]


class ReplicationError(RuntimeError):
    """A replication message violated the stream discipline (gap, refit)."""


def encode_repl_append(shard_id: str, lsn: int, entry: str) -> dict:
    """One WAL entry as a protocol message (framed by the caller)."""
    return {
        "v": PROTOCOL_VERSION,
        "kind": "repl_append",
        "shard": shard_id,
        "lsn": int(lsn),
        "entry": entry,
    }


def decode_repl_append(payload: Mapping) -> tuple[str, int, str]:
    """(shard_id, lsn, entry) of a ``repl_append`` message."""
    if payload.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {payload.get('v')!r} in a "
            f"replication message"
        )
    if payload.get("kind") != "repl_append":
        raise ProtocolError(
            f"expected a 'repl_append' message, got {payload.get('kind')!r}"
        )
    try:
        return str(payload["shard"]), int(payload["lsn"]), str(payload["entry"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed repl_append: {exc!r}") from exc


class FollowerJournal:
    """A shard's warm standby: replicated WAL + acknowledged-LSN floor."""

    def __init__(
        self,
        shard_id: str,
        max_frame: int = DEFAULT_MAX_FRAME,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.shard_id = shard_id
        self.max_frame = max_frame
        self.telemetry = telemetry
        self.journal = WriteAheadLog()
        self.log = RobustnessLog()
        #: highest contiguous LSN applied; -1 = nothing replicated yet
        self.acked_lsn = -1
        self.stats: dict[str, int] = {"applied": 0, "retransmits": 0, "gaps": 0}

    def receive(self, frame: bytes) -> int:
        """Apply one framed ``repl_append``; returns the new acked floor.

        Raises :class:`~repro.service.transport.framing.FrameError` on a
        corrupt/torn frame and :class:`ReplicationError` on an LSN gap --
        in both cases nothing is applied and the floor is unchanged, so
        the sender will retransmit from the floor.
        """
        message = decode_frame(frame, self.max_frame)
        shard_id, lsn, entry = decode_repl_append(message)
        if shard_id != self.shard_id:
            raise ReplicationError(
                f"follower of {self.shard_id!r} received a stream for "
                f"{shard_id!r}"
            )
        if lsn <= self.acked_lsn:
            # idempotent retransmission: already applied, ack again
            self.stats["retransmits"] += 1
            return self.acked_lsn
        if lsn != self.acked_lsn + 1:
            self.stats["gaps"] += 1
            self.log.record(
                "cluster.replication_gap",
                0.0,
                shard=self.shard_id,
                expected=self.acked_lsn + 1,
                got=lsn,
            )
            raise ReplicationError(
                f"replication gap on {self.shard_id!r}: expected LSN "
                f"{self.acked_lsn + 1}, got {lsn}"
            )
        self.journal.entries.append(entry)
        self.acked_lsn = lsn
        self.stats["applied"] += 1
        if self.telemetry is not None:
            self.telemetry.inc(
                "merch_cluster_replication_entries_total", outcome="applied"
            )
        return self.acked_lsn


class ReplicationSender:
    """The primary's side: ship WAL entries from the acknowledged floor.

    The sender never advances its own bookkeeping -- the follower's
    returned floor *is* the bookkeeping.  A shipment that loses its tail
    (injected via ``replication_truncate_rate``) or hits a corrupt frame
    leaves the floor short, and the next :meth:`ship` re-sends the
    remainder.
    """

    def __init__(
        self,
        shard_id: str,
        journal: WriteAheadLog,
        faults: "FaultInjector | None" = None,
        telemetry: "Telemetry | None" = None,
    ) -> None:
        self.shard_id = shard_id
        self.journal = journal
        self.faults = faults
        self.telemetry = telemetry
        self.stats: dict[str, int] = {"shipped": 0, "lost": 0, "rejected": 0}

    def lag(self, follower: FollowerJournal) -> int:
        """Entries the follower is behind the primary's journal."""
        return len(self.journal.entries) - (follower.acked_lsn + 1)

    def ship(self, follower: FollowerJournal, now: float) -> int:
        """Ship everything past the follower's floor; returns the floor.

        WAL entry *i* of this journal carries LSN *i* (LSNs are assigned
        densely by :class:`~repro.core.journal.WriteAheadLog`), so the
        floor indexes directly into ``journal.entries``.
        """
        start = follower.acked_lsn + 1
        pending = self.journal.entries[start:]
        if not pending:
            return follower.acked_lsn
        n_deliver = len(pending)
        if self.faults is not None:
            lost = self.faults.replication_truncation(n_deliver, now)
            if lost:
                self.stats["lost"] += lost
                if self.telemetry is not None:
                    self.telemetry.inc(
                        "merch_cluster_replication_entries_total",
                        lost,
                        outcome="lost",
                    )
                n_deliver -= lost
        for offset in range(n_deliver):
            frame = encode_frame(
                encode_repl_append(self.shard_id, start + offset, pending[offset])
            )
            try:
                follower.receive(frame)
            except (FrameError, ReplicationError):
                # poisoned frame or gap: stop; the floor stays short and
                # the next ship retransmits from it
                self.stats["rejected"] += 1
                break
            self.stats["shipped"] += 1
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_cluster_replication_entries_total", outcome="shipped"
                )
        if self.telemetry is not None:
            self.telemetry.set(
                "merch_cluster_replication_lag_entries",
                float(self.lag(follower)),
            )
        return follower.acked_lsn
