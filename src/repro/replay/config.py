"""Serializable service configuration for record/replay and backtesting.

A :class:`ServiceConfig` is the frozen, JSON-round-trippable snapshot of
every knob that shapes a placement decision: DRAM capacity, the batching
window and step grid, cache geometry, admission watermarks, the batch
retry budget, and the fault schedule with its seed.  A flight recording
embeds the config it was captured under (``meta["config"]``), so a replay
can rebuild an equivalent server, and the A/B backtester derives
candidate configs from the incumbent with :meth:`ServiceConfig.with_overrides`.

The deliberate omission is the *model*: trained correlation models are
large and already reproducible from ``(seed, fast)`` via
:class:`~repro.experiments.common.ExperimentContext`, so recordings store
``model_seed``/``fast`` in their meta instead of weights.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping

from repro.service.admission import AdmissionConfig
from repro.service.cache import PredictionCache
from repro.service.server import PlacementServer
from repro.sim.faults import FaultConfig, FaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel
    from repro.core.telemetry import Telemetry
    from repro.replay.recorder import FlightRecorder

__all__ = ["ServiceConfig", "VirtualClock", "build_injector", "build_server"]


class VirtualClock:
    """Mutable virtual time source; replayers pin it to recorded stamps."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance_to(self, t: float) -> float:
        """Move forward to ``t`` (never backwards); returns the new time."""
        self.now = max(self.now, float(t))
        return self.now


@dataclass(frozen=True)
class ServiceConfig:
    """Everything that shapes a placement decision, minus the model."""

    dram_capacity_bytes: int
    window_s: float = 0.005
    max_batch: int = 32
    step: float = 0.05
    #: prediction-cache entry capacity; 0 disables the cache entirely
    cache_capacity: int = 0
    #: entry TTL on the injected clock (``math.inf`` disables expiry)
    cache_ttl_s: float = math.inf
    #: admission watermarks (trip / resume)
    max_queue: int = 64
    resume_below: int = 16
    #: planner-crash retries before a batch is shed
    max_batch_retries: int = 1
    #: seed of the server-side fault injector (unused when faults is None)
    fault_seed: int = 0
    #: :class:`~repro.sim.faults.FaultConfig` keyword overrides; ``None``
    #: runs fault-free.  Recorded so a replay reproduces e.g. the same
    #: ``service_batch`` kill schedule.
    faults: Mapping[str, object] | None = None

    def to_dict(self) -> dict:
        out = dataclasses.asdict(self)
        out["faults"] = dict(self.faults) if self.faults is not None else None
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ServiceConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        faults = kwargs.get("faults")
        if faults is not None:
            kwargs["faults"] = {str(k): v for k, v in faults.items()}
        return cls(**kwargs)

    def with_overrides(self, **overrides: object) -> "ServiceConfig":
        """A candidate config: this one with ``overrides`` applied."""
        unknown = set(overrides) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ValueError(f"unknown ServiceConfig fields: {sorted(unknown)}")
        return dataclasses.replace(self, **overrides)


def build_injector(config: ServiceConfig) -> FaultInjector | None:
    """The server-side fault injector recorded in ``config`` (or None)."""
    if config.faults is None:
        return None
    return FaultInjector(FaultConfig(**config.faults), seed=config.fault_seed)


def build_server(
    config: ServiceConfig,
    model: "PerformanceModel",
    *,
    clock: Callable[[], float],
    telemetry: "Telemetry | None" = None,
    recorder: "FlightRecorder | None" = None,
) -> PlacementServer:
    """One :class:`PlacementServer` exactly as ``config`` describes it.

    Shared by the recording side, the replayer, and the backtester, so
    "the server the recording saw" and "the server the replay drives" can
    never drift apart structurally.  The cache (when enabled) reads the
    same injected ``clock`` as the server, which is what makes TTL expiry
    replayable.
    """
    cache = None
    if config.cache_capacity > 0:
        cache = PredictionCache(
            capacity=config.cache_capacity,
            ttl_s=config.cache_ttl_s,
            clock=clock,
            telemetry=telemetry,
        )
    return PlacementServer(
        model,
        dram_capacity_bytes=config.dram_capacity_bytes,
        window_s=config.window_s,
        max_batch=config.max_batch,
        step=config.step,
        cache=cache,
        admission=AdmissionConfig(
            max_queue=config.max_queue, resume_below=config.resume_below
        ),
        telemetry=telemetry,
        clock=clock,
        faults=build_injector(config),
        max_batch_retries=config.max_batch_retries,
        recorder=recorder,
    )
