"""Microbenchmarks for the transport framing codec.

The frame codec sits on every request and every reply, so its cost is
pure overhead on top of planning.  Three numbers bound it:

* **encode** -- message dict -> canonical JSON -> framed bytes;
* **decode** -- framed bytes -> validated dict (header checks + CRC32 +
  JSON parse);
* **assembler throughput** -- the incremental decoder consuming a
   64-message stream in socket-sized chunks, the server reader's shape.
"""

import pytest

from repro.service import PlacementRequest, TaskSpec, encode_request
from repro.service.transport import FrameAssembler, decode_frame, encode_frame

MB = 1 << 20


@pytest.fixture(scope="module")
def message():
    tasks = tuple(
        TaskSpec(
            task_id=f"t{i}",
            t_pm_only=30.0 + i,
            t_dram_only=10.0 + i,
            total_accesses=1_000_000.0,
            pmcs={f"e{j}": float(j + 1) for j in range(6)},
            size_bytes=(4 + i) * MB,
        )
        for i in range(8)
    )
    return encode_request(
        PlacementRequest(request_id="bench-0", tenant="bench", tasks=tasks)
    )


@pytest.fixture(scope="module")
def frame(message):
    return encode_frame(message)


def test_bench_encode_frame(benchmark, message):
    out = benchmark(encode_frame, message)
    assert out[:2] == b"MF"


def test_bench_decode_frame(benchmark, frame):
    out = benchmark(decode_frame, frame)
    assert out["kind"] == "placement_request"


def test_bench_assembler_stream(benchmark, frame):
    stream = frame * 64
    chunk = 1 << 16

    def consume():
        asm, n = FrameAssembler(), 0
        for i in range(0, len(stream), chunk):
            n += len(asm.feed(stream[i : i + chunk]))
        return n

    assert benchmark(consume) == 64
