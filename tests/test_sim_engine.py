"""Tests for the virtual-time execution engine."""

import numpy as np
import pytest

from repro.common import PAGE_SIZE, AccessPattern
from repro.sim import Engine, EngineConfig, MachineModel, PlacementPolicy, optane_hm_config
from repro.sim.engine import _clamp_batch, _evict_for_pressure, _plan_pressure_evictions
from repro.sim.pages import MigrationBatch, PageTable
from repro.tasks import DataObject, Footprint, MPIProgram, ObjectAccess

HM = optane_hm_config()


def toy_workload(n_tasks=3, regions=2, skew=1.0):
    prog = MPIProgram("toy", n_tasks)
    fps = []
    for i in range(n_tasks):
        prog.declare_object(
            DataObject(f"obj{i}", 16 * (1 << 20), owner=prog.task_id(i))
        )
        reads = int(200_000 * (1 + skew * i))
        fps.append(
            Footprint(
                accesses=(ObjectAccess(f"obj{i}", AccessPattern.RANDOM, reads=reads),),
                instructions=1_000_000,
            )
        )
    for r in range(regions):
        prog.parallel_region(f"iter{r}", fps, kind="iter")
    return prog.build()


class TestBasicRun:
    def test_total_time_positive(self):
        res = Engine(hm=HM).run(toy_workload(), PlacementPolicy(), seed=0)
        assert res.total_time_s > 0

    def test_region_count(self):
        res = Engine(hm=HM).run(toy_workload(regions=3), PlacementPolicy(), seed=0)
        assert len(res.regions) == 3

    def test_deterministic(self):
        wl = toy_workload()
        a = Engine(hm=HM).run(wl, PlacementPolicy(), seed=5)
        b = Engine(hm=HM).run(wl, PlacementPolicy(), seed=5)
        assert a.total_time_s == b.total_time_s

    def test_total_is_sum_of_region_durations(self):
        res = Engine(hm=HM).run(toy_workload(), PlacementPolicy(), seed=0)
        total = sum(r.duration_s for r in res.regions)
        assert res.total_time_s == pytest.approx(total, rel=1e-6)


class TestBarrierSemantics:
    def test_busy_plus_wait_equals_region(self):
        res = Engine(hm=HM).run(toy_workload(), PlacementPolicy(), seed=0)
        for region in res.regions:
            for task in region.busy_s:
                assert region.busy_s[task] + region.wait_s[task] == pytest.approx(
                    region.duration_s, rel=1e-9
                )

    def test_slowest_task_never_waits(self):
        res = Engine(hm=HM).run(toy_workload(skew=2.0), PlacementPolicy(), seed=0)
        for region in res.regions:
            slowest = max(region.busy_s, key=region.busy_s.__getitem__)
            assert region.wait_s[slowest] == pytest.approx(0.0, abs=1e-9)

    def test_skewed_tasks_wait(self):
        res = Engine(hm=HM).run(toy_workload(skew=3.0), PlacementPolicy(), seed=0)
        waits = res.task_wait_times()
        assert waits["rank0"] > 0  # the light task idles at the barrier

    def test_busy_reflects_skew(self):
        res = Engine(hm=HM).run(toy_workload(skew=3.0), PlacementPolicy(), seed=0)
        busy = res.task_busy_times()
        assert busy["rank2"] > busy["rank0"]


class TestBandwidthAccounting:
    def test_trace_recorded(self):
        res = Engine(hm=HM).run(toy_workload(), PlacementPolicy(), seed=0)
        assert len(res.trace_time) > 0
        assert len(res.trace_time) == len(res.trace_pm_bw)

    def test_pm_bandwidth_capped(self):
        res = Engine(hm=HM).run(toy_workload(n_tasks=6, skew=0.1), PlacementPolicy(), seed=0)
        # instance traffic respects the tier cap; migration adds on top but
        # is itself bounded by the migration fraction
        cap = HM.pm.read_bandwidth * 1.3
        assert res.trace_pm_bw.max() <= cap * 1.05

    def test_all_pm_when_unplaced(self):
        res = Engine(hm=HM).run(toy_workload(), PlacementPolicy(), seed=0)
        assert res.mean_dram_bandwidth() == pytest.approx(0.0)
        assert res.mean_pm_bandwidth() > 0

    def test_bandwidth_disabled(self):
        cfg = EngineConfig(record_bandwidth=False)
        res = Engine(hm=HM, config=cfg).run(toy_workload(), PlacementPolicy(), seed=0)
        assert len(res.trace_time) == 0


class _PromoteAll(PlacementPolicy):
    name = "promote-all"

    def on_tick(self, ctx, dt):
        moves = []
        for obj in ctx.page_table:
            idx = obj.hottest_pm_pages(limit=ctx.migration_budget_pages)
            if len(idx):
                moves.append((obj.name, idx, True))
                break
        return MigrationBatch(moves=tuple(moves)) if moves else None


class _InstantDram(PlacementPolicy):
    name = "instant-dram"

    def on_workload_start(self, ctx):
        ctx.page_table.place_all(1.0)


class TestMigration:
    def test_migration_throttled_by_budget(self):
        eng = Engine(hm=HM, config=EngineConfig(migration_bandwidth_fraction=0.01))
        res = eng.run(toy_workload(), _PromoteAll(), seed=0)
        slow = res.pages_migrated
        eng2 = Engine(hm=HM, config=EngineConfig(migration_bandwidth_fraction=0.5))
        res2 = eng2.run(toy_workload(), _PromoteAll(), seed=0)
        assert res2.pages_migrated >= slow

    def test_migration_counted(self):
        res = Engine(hm=HM).run(toy_workload(), _PromoteAll(), seed=0)
        assert res.pages_migrated > 0
        assert res.trace_migration_bw.max() > 0

    def test_dram_placement_speeds_up(self):
        wl = toy_workload()
        t_pm = Engine(hm=HM).run(wl, PlacementPolicy(), seed=0).total_time_s
        t_dram = Engine(hm=HM).run(wl, _InstantDram(), seed=0).total_time_s
        assert t_dram < t_pm

    def test_capacity_never_exceeded(self):
        class Check(_PromoteAll):
            max_used = 0.0

            def on_tick(self, ctx, dt):
                Check.max_used = max(Check.max_used, ctx.page_table.dram_used_bytes())
                return super().on_tick(ctx, dt)

        Engine(hm=HM).run(toy_workload(), Check(), seed=0)
        assert Check.max_used <= HM.dram.capacity_bytes + PAGE_SIZE


class TestPolicyHooks:
    def test_hook_order_and_counts(self):
        calls = []

        class Spy(PlacementPolicy):
            def on_workload_start(self, ctx):
                calls.append("workload")

            def on_region_start(self, ctx):
                calls.append(f"start:{ctx.region.name}")

            def on_region_end(self, ctx):
                calls.append(f"end:{ctx.region.name}")

        Engine(hm=HM).run(toy_workload(regions=2), Spy(), seed=0)
        assert calls == [
            "workload",
            "start:iter0",
            "end:iter0",
            "start:iter1",
            "end:iter1",
        ]

    def test_context_exposes_region_kind(self):
        seen = []

        class Spy(PlacementPolicy):
            def on_region_start(self, ctx):
                seen.append(ctx.region.kind)

        Engine(hm=HM).run(toy_workload(), Spy(), seed=0)
        assert seen == ["iter", "iter"]

    def test_page_access_rates_cover_active_objects(self):
        captured = {}

        class Spy(PlacementPolicy):
            def on_tick(self, ctx, dt):
                if not captured:
                    captured.update(ctx.page_access_rates())
                return None

        Engine(hm=HM).run(toy_workload(n_tasks=2), Spy(), seed=0)
        assert set(captured) == {"obj0", "obj1"}
        for rates in captured.values():
            assert (rates >= 0).all()
            assert rates.sum() > 0

    def test_runaway_guard(self):
        cfg = EngineConfig(max_ticks_per_region=3)
        with pytest.raises(RuntimeError):
            Engine(hm=HM, config=cfg).run(toy_workload(), PlacementPolicy(), seed=0)


def _uniform_table(n_objects=3, pages_each=8, capacity_pages=64, order=None):
    """A page table of uniform-hotness objects, optionally built in a
    shuffled insertion order (to probe dict-order sensitivity)."""
    names = [f"obj{i}" for i in range(n_objects)]
    if order is not None:
        names = [names[i] for i in order]
    objects = [DataObject(nm, pages_each * PAGE_SIZE) for nm in names]
    table = PageTable(objects, capacity_pages * PAGE_SIZE, rng=0)
    for obj in table:
        obj.set_residency(1.0)
    return table


class TestPressureEviction:
    def test_zero_and_negative_pressure_are_noops(self):
        table = _uniform_table()
        assert _plan_pressure_evictions(table, 0) == []
        assert _plan_pressure_evictions(table, -PAGE_SIZE) == []
        assert _evict_for_pressure(table, 0) == 0
        for obj in table:
            assert obj.dram_pages() == obj.n_pages

    def test_pressure_within_slack_evicts_nothing(self):
        # 24 pages used of 64: stealing 24 pages still leaves room
        table = _uniform_table()
        assert _plan_pressure_evictions(table, 24 * PAGE_SIZE) == []

    def test_evicts_exactly_the_deficit(self):
        table = _uniform_table(n_objects=2, pages_each=8, capacity_pages=16)
        # 16 used, capacity drops to 10 -> 6 pages must go
        evicted = _evict_for_pressure(table, 6 * PAGE_SIZE)
        assert evicted == 6
        used = sum(o.dram_pages() for o in table)
        assert used == 10

    def test_victim_order_independent_of_insertion_order(self):
        # all objects tie on dram_access_fraction, so only the (fraction,
        # name) tie-break pins the victim choice
        plans = []
        for order in ([0, 1, 2], [2, 0, 1], [1, 2, 0]):
            table = _uniform_table(order=order)
            plan = _plan_pressure_evictions(table, 60 * PAGE_SIZE)
            plans.append(
                sorted((name, tuple(int(i) for i in idx)) for name, idx in plan)
            )
        assert plans[0] == plans[1] == plans[2]

    def test_page_order_breaks_weight_ties_by_id(self):
        table = _uniform_table(n_objects=1, pages_each=8, capacity_pages=8)
        (name, idx), = _plan_pressure_evictions(table, 3 * PAGE_SIZE)
        # uniform weights: coldest-first degenerates to ascending page id
        assert list(idx) == [0, 1, 2]


class TestClampBatch:
    def _batch(self):
        return MigrationBatch(
            moves=(
                ("a", np.arange(4), True),
                ("b", np.arange(3), False),
            )
        )

    def test_under_budget_returned_unchanged(self):
        batch = self._batch()
        assert _clamp_batch(batch, 10) is batch

    def test_clamps_across_moves_preserving_order(self):
        clamped = _clamp_batch(self._batch(), 5)
        assert clamped.n_pages == 5
        assert [m[0] for m in clamped.moves] == ["a", "b"]
        assert list(clamped.moves[1][1]) == [0]

    def test_zero_and_negative_budget_yield_empty_batch(self):
        for budget in (0, -3):
            clamped = _clamp_batch(self._batch(), budget)
            assert clamped.n_pages == 0
            assert clamped.moves == ()

    def test_empty_batch_stays_empty(self):
        empty = MigrationBatch(moves=())
        assert _clamp_batch(empty, 7).n_pages == 0

    def test_no_zero_length_moves_in_output(self):
        batch = MigrationBatch(
            moves=(
                ("a", np.arange(2), True),
                ("b", np.arange(0), True),
                ("c", np.arange(2), True),
            )
        )
        clamped = _clamp_batch(batch, 3)
        assert all(len(idx) for _, idx, _ in clamped.moves)
        assert clamped.n_pages == 3
