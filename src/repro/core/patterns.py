"""Object-level access-pattern classification (the Spindle substitute).

The paper compiles applications with Spindle, an LLVM static-analysis tool
that extracts the structural information of memory-access instructions and
classifies each data object's accesses as stream / strided / stencil /
random (Section 4).  Without LLVM, applications here declare their kernels
in a small loop-nest IR -- loops over induction variables containing array
references with symbolic index expressions -- and this module performs the
same structural classification over that IR:

* an affine index in the innermost induction variable with |stride| == 1
  (or a reduction/delta/transpose form) -> STREAM;
* an affine index with constant |stride| > 1 -> STRIDED;
* several references to the *same* array at unit stride with distinct
  constant offsets (``A[i-1]``, ``A[i+1]``, ...) -> STENCIL;
* an index that goes through another array (``B[C[i]]``, ``A[B[i]]``) ->
  RANDOM (gather/scatter/pointer chase);
* anything unrecognised -> RANDOM (Section 4, "Handling unknown patterns").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from repro.common import AccessPattern

__all__ = [
    "IndexExpr",
    "Affine",
    "Indirect",
    "ArrayRef",
    "Loop",
    "classify_kernel",
    "classify_object",
    "KernelPatterns",
]


@dataclass(frozen=True)
class Affine:
    """Index expression ``stride * var + offset``."""

    var: str
    stride: int = 1
    offset: int = 0

    def __post_init__(self) -> None:
        if not self.var:
            raise ValueError("induction variable name required")


@dataclass(frozen=True)
class Indirect:
    """Index expression ``index_array[inner]`` -- indirect addressing."""

    index_array: str
    inner: "IndexExpr"


IndexExpr = Union[Affine, Indirect]


@dataclass(frozen=True)
class ArrayRef:
    """One array reference inside a loop body."""

    array: str
    index: IndexExpr
    is_write: bool = False


@dataclass(frozen=True)
class Loop:
    """A (possibly nested) counted loop over induction variable ``var``."""

    var: str
    body: tuple[Union["Loop", ArrayRef], ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "body", tuple(self.body))

    def refs(self) -> Iterable[tuple[ArrayRef, str]]:
        """Yield (reference, innermost loop variable governing it)."""
        for item in self.body:
            if isinstance(item, Loop):
                yield from item.refs()
            else:
                yield item, self.var


@dataclass(frozen=True)
class KernelPatterns:
    """Classification result for one kernel."""

    #: per-array dominant pattern
    per_object: dict[str, AccessPattern]
    #: per-array stride for STRIDED objects (1 otherwise)
    strides: dict[str, int]

    def patterns_present(self) -> tuple[AccessPattern, ...]:
        """Distinct patterns, most common first (Table 1's rows)."""
        counts: dict[AccessPattern, int] = {}
        for p in self.per_object.values():
            counts[p] = counts.get(p, 0) + 1
        return tuple(sorted(counts, key=counts.__getitem__, reverse=True))


def _innermost_vars(loop: Loop) -> dict[str, bool]:
    """Map each loop variable to whether it is innermost on some path."""
    out: dict[str, bool] = {}

    def walk(lp: Loop) -> None:
        has_inner = any(isinstance(i, Loop) for i in lp.body)
        out[lp.var] = out.get(lp.var, False) or not has_inner
        for item in lp.body:
            if isinstance(item, Loop):
                walk(item)

    walk(loop)
    return out


def classify_kernel(kernel: Loop | Iterable[Loop]) -> KernelPatterns:
    """Classify every array referenced by a kernel (one or more loop nests)."""
    loops = [kernel] if isinstance(kernel, Loop) else list(kernel)
    refs_by_array: dict[str, list[tuple[ArrayRef, str]]] = {}
    index_arrays: set[str] = set()
    for loop in loops:
        for ref, var in loop.refs():
            refs_by_array.setdefault(ref.array, []).append((ref, var))
            idx = ref.index
            while isinstance(idx, Indirect):
                index_arrays.add(idx.index_array)
                idx = idx.inner

    per_object: dict[str, AccessPattern] = {}
    strides: dict[str, int] = {}
    for array, refs in refs_by_array.items():
        per_object[array], strides[array] = _classify_refs(refs)
    # arrays used purely as index sources are themselves streamed through
    for array in index_arrays:
        if array not in per_object:
            per_object[array] = AccessPattern.STREAM
            strides[array] = 1
    return KernelPatterns(per_object=per_object, strides=strides)


def _classify_refs(refs: list[tuple[ArrayRef, str]]) -> tuple[AccessPattern, int]:
    """Classify one array given all its references."""
    # any indirect reference makes the object random (gather/scatter)
    if any(isinstance(ref.index, Indirect) for ref, _ in refs):
        return AccessPattern.RANDOM, 1

    affine = [(ref, var) for ref, var in refs if isinstance(ref.index, Affine)]
    if not affine:  # pragma: no cover - IndexExpr union is exhaustive
        return AccessPattern.RANDOM, 1

    # stencil: >= 2 unit-stride references on the same variable with
    # distinct offsets (A[i-1] + A[i+1] -> A[i])
    by_var: dict[str, set[int]] = {}
    for ref, _ in affine:
        idx = ref.index
        assert isinstance(idx, Affine)
        if abs(idx.stride) == 1:
            by_var.setdefault(idx.var, set()).add(idx.offset)
    if any(len(offsets) >= 2 for offsets in by_var.values()):
        return AccessPattern.STENCIL, 1

    strides_seen = {abs(ref.index.stride) for ref, _ in affine}  # type: ignore[union-attr]
    if strides_seen == {1}:
        return AccessPattern.STREAM, 1
    if 0 in strides_seen:
        # loop-invariant index: scalar-like reuse, counts as stream (delta)
        strides_seen.discard(0)
        if not strides_seen:
            return AccessPattern.STREAM, 1
    stride = max(strides_seen)
    return AccessPattern.STRIDED, stride


def classify_object(kernel: Loop | Iterable[Loop], array: str) -> AccessPattern:
    """Pattern of a single array (treats unknown arrays as RANDOM)."""
    result = classify_kernel(kernel)
    return result.per_object.get(array, AccessPattern.RANDOM)
