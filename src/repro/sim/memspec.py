"""Memory-tier specifications.

The performance asymmetries come straight from Section 2 of the paper
(Optane PM 100 series vs DDR4 DRAM):

* PM sequential-read latency is 2.08x DRAM's; random-read latency 3.77x;
* PM read bandwidth is 3.87x lower than DRAM's, write bandwidth 4.74x lower;
* the evaluation platform has 192 GB DRAM and 1.5 TB PM;
* Figure 6 shows peak bandwidths of ~180 GB/s (DRAM) and ~52 GB/s (PM).

Capacities and bandwidths are scaled by a common ``scale`` factor (default
1/1024: MiB instead of GiB) so simulated footprints stay laptop-sized while
execution times keep the paper's magnitudes.  Scaling consistency: a
bandwidth-bound phase takes ``traffic*s / (bw*s)`` -- unchanged -- while a
latency-bound phase takes ``accesses*s * latency``, so per-access latencies
are scaled *up* by ``1/s`` (and the machine model scales CPU frequency down
by ``s``).  With all three applied, every simulated time equals what the
unscaled system would produce, and the latency-vs-bandwidth balance of real
Optane (random access latency-bound at a few % of bandwidth, streams
bandwidth-bound) is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import GIB, PAGE_SIZE

__all__ = [
    "TierSpec",
    "HMConfig",
    "TopologyError",
    "TopologySpec",
    "optane_hm_config",
    "cxl_hm_config",
    "dram_tier",
    "pm_tier",
    "cxl_tier",
    "hbm_tier",
    "topology_preset",
    "TOPOLOGY_PRESETS",
    "DEFAULT_SCALE",
]

#: Default footprint scale relative to the paper's platform (1/1024).
DEFAULT_SCALE: float = 1.0 / 1024.0


@dataclass(frozen=True)
class TierSpec:
    """One memory tier (DRAM or PM).

    Latencies are nanoseconds per cache-line access; bandwidths are bytes per
    (virtual) second.
    """

    name: str
    capacity_bytes: int
    seq_read_latency_ns: float
    rand_read_latency_ns: float
    read_bandwidth: float
    write_bandwidth: float

    def __post_init__(self) -> None:
        if self.capacity_bytes < PAGE_SIZE:
            raise ValueError(f"tier {self.name!r} smaller than one page")
        for attr in (
            "seq_read_latency_ns",
            "rand_read_latency_ns",
            "read_bandwidth",
            "write_bandwidth",
        ):
            if getattr(self, attr) <= 0:
                raise ValueError(f"tier {self.name!r}: {attr} must be positive")

    @property
    def n_pages(self) -> int:
        return self.capacity_bytes // PAGE_SIZE

    def latency_ns(self, random: bool) -> float:
        return self.rand_read_latency_ns if random else self.seq_read_latency_ns


@dataclass(frozen=True)
class HMConfig:
    """A two-tier heterogeneous memory system (fast DRAM + slow PM)."""

    dram: TierSpec
    pm: TierSpec
    #: Fixed software cost of migrating one page, seconds (syscall + PTE
    #: update + TLB shootdown); the data copy itself is charged to bandwidth.
    page_migration_overhead_s: float = 2.0e-6

    def __post_init__(self) -> None:
        if self.page_migration_overhead_s < 0:
            raise ValueError("migration overhead must be non-negative")

    @property
    def dram_fraction_of_total(self) -> float:
        total = self.dram.capacity_bytes + self.pm.capacity_bytes
        return self.dram.capacity_bytes / total

    def tier(self, name: str) -> TierSpec:
        if name == self.dram.name:
            return self.dram
        if name == self.pm.name:
            return self.pm
        raise KeyError(name)


# ----------------------------------------------------------------------
# Tier factories (shared by the 2-tier configs and the N-tier presets, so
# the same tier built either way has bit-identical floats)
# ----------------------------------------------------------------------

def dram_tier(scale: float = DEFAULT_SCALE) -> TierSpec:
    """DDR4 DRAM, the paper platform's fast tier."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    lat = 1.0 / scale  # latency counter-scaling, see module docstring
    return TierSpec(
        name="dram",
        capacity_bytes=int(192 * GIB * scale),
        seq_read_latency_ns=81.0 * lat,
        rand_read_latency_ns=101.0 * lat,
        read_bandwidth=180.0 * GIB * scale,
        write_bandwidth=120.0 * GIB * scale,
    )


def pm_tier(scale: float = DEFAULT_SCALE, name: str = "pm") -> TierSpec:
    """Optane PM 100, the paper platform's slow tier (Section 2 ratios)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    lat = 1.0 / scale
    return TierSpec(
        name=name,
        capacity_bytes=int(1536 * GIB * scale),
        seq_read_latency_ns=81.0 * 2.08 * lat,
        rand_read_latency_ns=101.0 * 3.77 * lat,
        read_bandwidth=180.0 * GIB * scale / 3.87,
        write_bandwidth=120.0 * GIB * scale / 4.74,
    )


def cxl_tier(scale: float = DEFAULT_SCALE, name: str = "cxl") -> TierSpec:
    """A CXL.mem expander: ~one NUMA hop of latency (2.2x local DRAM,
    little sequential/random asymmetry) at about half the local bandwidth,
    symmetric reads/writes."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    lat = 1.0 / scale
    return TierSpec(
        name=name,
        capacity_bytes=int(1024 * GIB * scale),
        seq_read_latency_ns=81.0 * 2.2 * lat,
        rand_read_latency_ns=101.0 * 2.2 * lat,
        read_bandwidth=180.0 * GIB * scale / 2.0,
        write_bandwidth=120.0 * GIB * scale / 2.0,
    )


def hbm_tier(scale: float = DEFAULT_SCALE) -> TierSpec:
    """On-package HBM: small, slightly faster per access than DRAM and far
    higher bandwidth (an idealised HBM2-class stack)."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    lat = 1.0 / scale
    return TierSpec(
        name="hbm",
        capacity_bytes=int(16 * GIB * scale),
        seq_read_latency_ns=81.0 * 0.9 * lat,
        rand_read_latency_ns=101.0 * 0.95 * lat,
        read_bandwidth=180.0 * GIB * scale * 2.5,
        write_bandwidth=120.0 * GIB * scale * 2.5,
    )


def optane_hm_config(scale: float = DEFAULT_SCALE) -> HMConfig:
    """The paper's evaluation platform, scaled by ``scale``.

    With the default scale the system has 192 MiB DRAM and 1.5 GiB PM, and
    bandwidths of 180/52 MB-per-virtual-second -- the same capacity ratio and
    tier asymmetry as the real machine, so placement trade-offs (and the
    resulting execution-time *shapes*) are preserved.
    """
    return HMConfig(dram=dram_tier(scale), pm=pm_tier(scale))


def cxl_hm_config(scale: float = DEFAULT_SCALE) -> HMConfig:
    """A CXL-attached-memory heterogeneous system (Section 2 names CXL as
    the emerging HM trend; Section 5.3's extensibility workflow retargets
    Merchandiser to systems like this one).

    CXL.mem expanders are a very different trade-off surface from Optane,
    which is what makes retraining the correlation function necessary.
    The slow tier keeps the canonical name ``pm`` so 2-tier policies work
    unchanged.
    """
    return HMConfig(dram=dram_tier(scale), pm=cxl_tier(scale, name="pm"))


# ----------------------------------------------------------------------
# N-tier topologies
# ----------------------------------------------------------------------

class TopologyError(ValueError):
    """An invalid N-tier topology (ordering, duplicate names, bad counts)."""


@dataclass(frozen=True)
class TopologySpec:
    """An ordered N-tier memory system, fastest tier first.

    Tiers must be ordered by non-decreasing random-read latency and
    non-increasing read bandwidth -- the two asymmetries that drive
    placement.  (Sequential latency is deliberately *not* ordered: real
    CXL expanders have higher sequential latency than Optane PM while
    being faster on random access.)  A 2-tier topology is exactly an
    :class:`HMConfig` -- :meth:`to_hm`/:meth:`from_hm` convert without
    changing a single float, which is how the degenerate case stays
    bit-exact.
    """

    tiers: tuple[TierSpec, ...]
    page_migration_overhead_s: float = 2.0e-6

    def __post_init__(self) -> None:
        if not isinstance(self.tiers, tuple):
            object.__setattr__(self, "tiers", tuple(self.tiers))
        if len(self.tiers) < 2:
            raise TopologyError("a topology needs at least two tiers")
        names = [t.name for t in self.tiers]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate tier names: {names}")
        for fast, slow in zip(self.tiers, self.tiers[1:]):
            if slow.rand_read_latency_ns < fast.rand_read_latency_ns:
                raise TopologyError(
                    f"tier {slow.name!r} has lower random latency than the "
                    f"faster-ordered tier {fast.name!r}"
                )
            if slow.read_bandwidth > fast.read_bandwidth:
                raise TopologyError(
                    f"tier {slow.name!r} has higher read bandwidth than the "
                    f"faster-ordered tier {fast.name!r}"
                )
        if self.page_migration_overhead_s < 0:
            raise TopologyError("migration overhead must be non-negative")

    @property
    def n_tiers(self) -> int:
        return len(self.tiers)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(t.name for t in self.tiers)

    @property
    def fastest(self) -> TierSpec:
        return self.tiers[0]

    @property
    def slowest(self) -> TierSpec:
        return self.tiers[-1]

    def tier(self, name: str) -> TierSpec:
        for t in self.tiers:
            if t.name == name:
                return t
        raise KeyError(name)

    def index(self, name: str) -> int:
        for i, t in enumerate(self.tiers):
            if t.name == name:
                return i
        raise KeyError(name)

    def capacity_vector(self) -> tuple[int, ...]:
        """Per-tier capacities in bytes, fastest first."""
        return tuple(t.capacity_bytes for t in self.tiers)

    def page_vector(self) -> tuple[int, ...]:
        """Per-tier capacities in pages, fastest first."""
        return tuple(t.n_pages for t in self.tiers)

    @classmethod
    def from_hm(cls, hm: HMConfig) -> "TopologySpec":
        return cls(
            tiers=(hm.dram, hm.pm),
            page_migration_overhead_s=hm.page_migration_overhead_s,
        )

    def to_hm(self) -> HMConfig:
        if self.n_tiers != 2:
            raise TopologyError(
                f"only a 2-tier topology converts to HMConfig, got {self.n_tiers}"
            )
        return HMConfig(
            dram=self.tiers[0],
            pm=self.tiers[1],
            page_migration_overhead_s=self.page_migration_overhead_s,
        )

    def to_jsonable(self) -> dict:
        return {
            "page_migration_overhead_s": self.page_migration_overhead_s,
            "tiers": [
                {
                    "name": t.name,
                    "capacity_bytes": t.capacity_bytes,
                    "seq_read_latency_ns": t.seq_read_latency_ns,
                    "rand_read_latency_ns": t.rand_read_latency_ns,
                    "read_bandwidth": t.read_bandwidth,
                    "write_bandwidth": t.write_bandwidth,
                }
                for t in self.tiers
            ],
        }

    @classmethod
    def from_jsonable(cls, payload: dict) -> "TopologySpec":
        return cls(
            tiers=tuple(TierSpec(**t) for t in payload["tiers"]),
            page_migration_overhead_s=payload["page_migration_overhead_s"],
        )


#: Named topology presets.  ``dram_pm`` is the paper's 2-tier platform --
#: ``topology_preset("dram_pm").to_hm() == optane_hm_config()`` holds with
#: identical floats because both build their tiers from the same factories.
TOPOLOGY_PRESETS: dict[str, tuple[str, ...]] = {
    "dram_pm": ("dram", "pm"),
    "hbm_dram_pm": ("hbm", "dram", "pm"),
    "hbm_dram_cxl_pm": ("hbm", "dram", "cxl", "pm"),
}

_TIER_FACTORIES = {
    "hbm": hbm_tier,
    "dram": dram_tier,
    "cxl": cxl_tier,
    "pm": pm_tier,
}


def topology_preset(name: str, scale: float = DEFAULT_SCALE) -> TopologySpec:
    """Build a named preset topology (see :data:`TOPOLOGY_PRESETS`)."""
    try:
        tier_names = TOPOLOGY_PRESETS[name]
    except KeyError:
        raise TopologyError(
            f"unknown topology preset {name!r}; "
            f"choices: {', '.join(sorted(TOPOLOGY_PRESETS))}"
        ) from None
    return TopologySpec(
        tiers=tuple(_TIER_FACTORIES[t](scale) for t in tier_names)
    )
