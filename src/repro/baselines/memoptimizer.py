"""Intel MemoryOptimizer-style hot-page migration daemon.

The industry-quality software baseline (Section 7): every interval it

1. samples a bounded random set of PTEs across the whole address space
   (:class:`~repro.profiling.pte.PTESampleProfiler`);
2. promotes the hottest sampled PM pages to DRAM;
3. when DRAM is short, demotes the least-frequently-accessed DRAM pages,
   found with Thermostat-style sampling (Section 6, "DRAM space
   management").

It is deliberately task-agnostic: the paper's core observation is that this
opportunistic, address-level policy concentrates DRAM on whichever task's
pages happen to sample hot, creating load imbalance at barriers.
"""

from __future__ import annotations

import numpy as np

from repro.common import make_rng
from repro.profiling.hotpages import top_k_hot_pages
from repro.profiling.pte import PTESampleProfiler
from repro.profiling.thermostat import ThermostatProfiler
from repro.sim.engine import EngineContext, PlacementPolicy
from repro.sim.pages import MigrationBatch

__all__ = ["MemoryOptimizerPolicy"]


class MemoryOptimizerPolicy(PlacementPolicy):
    """Sampling-based hot-page promotion with LFU-style demotion."""

    name = "memory-optimizer"

    def __init__(
        self,
        interval_s: float = 0.5,
        sample_pages: int = 2048,
        promote_per_interval: int = 1024,
        seed=None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if promote_per_interval < 1:
            raise ValueError("promote_per_interval must be >= 1")
        self.interval_s = interval_s
        self.promote_per_interval = promote_per_interval
        rng = make_rng(seed)
        self._pte = PTESampleProfiler(max_pages=sample_pages, seed=rng)
        self._thermostat = ThermostatProfiler(seed=rng)
        self._last_scan = -1e30

    def on_workload_start(self, ctx: EngineContext) -> None:
        for obj in ctx.page_table:
            obj.set_residency(0.0)
        self._last_scan = -1e30
        # the baseline's profilers see the same injected faults as
        # Merchandiser's, so robustness comparisons are apples-to-apples
        self._pte.faults = ctx.faults
        self._thermostat.faults = ctx.faults

    # ------------------------------------------------------------------
    def _select_promotions(
        self, ctx: EngineContext, rates: dict[str, np.ndarray]
    ) -> list[tuple[str, np.ndarray, bool]]:
        estimate = self._pte.sample(
            ctx.page_table, rates, self.interval_s, now=ctx.time
        )
        hot = top_k_hot_pages(estimate, self.promote_per_interval)
        moves: list[tuple[str, np.ndarray, bool]] = []
        for name, idx in hot:
            obj = ctx.page_table.object(name)
            not_resident = idx[obj.residency[idx] < 1.0 - 1e-12]
            if len(not_resident):
                moves.append((name, not_resident, True))
        return moves

    def _select_demotions(
        self,
        ctx: EngineContext,
        rates: dict[str, np.ndarray],
        pages_needed: int,
    ) -> list[tuple[str, np.ndarray, bool]]:
        """Free ``pages_needed`` pages by demoting the coldest DRAM regions."""
        if pages_needed <= 0:
            return []
        estimates = self._thermostat.sample(
            ctx.page_table, rates, self.interval_s, now=ctx.time
        )
        # rank all (object, region) pairs by estimated access count
        ranked: list[tuple[float, str, int]] = []
        for est in estimates:
            for start, count in zip(est.region_starts, est.estimated_accesses):
                ranked.append((float(count), est.obj, int(start)))
        ranked.sort()
        moves: list[tuple[str, np.ndarray, bool]] = []
        freed = 0
        for _, name, start in ranked:
            if freed >= pages_needed:
                break
            obj = ctx.page_table.object(name)
            stop = min(start + 512, obj.n_pages)
            span = np.arange(start, stop)
            resident = span[obj.residency[span] > 1e-12]
            if len(resident) == 0:
                continue
            take = resident[: pages_needed - freed]
            moves.append((name, take, False))
            freed += len(take)
        return moves

    # ------------------------------------------------------------------
    def on_tick(self, ctx: EngineContext, dt: float) -> MigrationBatch | None:
        if ctx.time - self._last_scan < self.interval_s:
            return None
        self._last_scan = ctx.time
        rates = ctx.page_access_rates()
        promotions = self._select_promotions(ctx, rates)
        n_promote = int(sum(len(idx) for _, idx, _ in promotions))
        if n_promote == 0:
            return None
        # respect the engine's per-tick migration bandwidth: when demotions
        # are needed they pair 1:1 with promotions inside the budget
        budget = max(1, ctx.migration_budget_pages)
        free = ctx.page_table.dram_free_pages()
        if n_promote > free:
            n_promote = min(n_promote, max(free, budget // 2))
        n_promote = min(n_promote, budget if n_promote <= free else budget // 2)
        n_promote = max(n_promote, 0)
        promotions = _trim(promotions, n_promote)
        if not promotions:
            return None
        deficit = n_promote - free
        demotions = self._select_demotions(ctx, rates, deficit)
        moves = tuple(demotions) + tuple(promotions)
        return MigrationBatch(moves=moves)


def _trim(
    moves: list[tuple[str, np.ndarray, bool]], limit: int
) -> list[tuple[str, np.ndarray, bool]]:
    """Keep at most ``limit`` pages across a move list (hottest-first order
    is preserved because the selector emits them ranked)."""
    out: list[tuple[str, np.ndarray, bool]] = []
    left = limit
    for name, idx, promote in moves:
        if left <= 0:
            break
        out.append((name, idx[:left], promote))
        left -= min(len(idx), left)
    return out
