"""Model-evaluation utilities (scikit-learn API subset)."""

from __future__ import annotations

import numpy as np

from repro.common import make_rng

__all__ = [
    "r2_score",
    "mean_absolute_percentage_error",
    "prediction_accuracy",
    "train_test_split",
    "StandardScaler",
]


def _as_1d(y) -> np.ndarray:
    arr = np.asarray(y, dtype=np.float64).ravel()
    if arr.size == 0:
        raise ValueError("empty target array")
    return arr


def r2_score(y_true, y_pred) -> float:
    """Coefficient of determination, the paper's Table 3 metric."""
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError("shape mismatch")
    ss_res = float(np.sum((yt - yp) ** 2))
    ss_tot = float(np.sum((yt - yt.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def mean_absolute_percentage_error(y_true, y_pred) -> float:
    """MAPE with a small floor to avoid division blow-ups."""
    yt, yp = _as_1d(y_true), _as_1d(y_pred)
    if yt.shape != yp.shape:
        raise ValueError("shape mismatch")
    denom = np.maximum(np.abs(yt), 1e-12)
    return float(np.mean(np.abs(yt - yp) / denom))


def prediction_accuracy(y_true, y_pred) -> float:
    """``1 - MAPE`` clipped to [0, 1]: the paper's "prediction accuracy"
    (Table 4, Figure 7) -- how close predictions are to measurements."""
    return float(np.clip(1.0 - mean_absolute_percentage_error(y_true, y_pred), 0.0, 1.0))


def train_test_split(X, y, test_fraction: float = 0.3, rng=None):
    """Shuffle and split into train/test (the paper uses 70/30)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    X = np.asarray(X, dtype=np.float64)
    y = _as_1d(y)
    if X.shape[0] != y.shape[0]:
        raise ValueError("X and y disagree on sample count")
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least two samples to split")
    perm = make_rng(rng).permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    n_test = min(n_test, n - 1)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return X[train_idx], X[test_idx], y[train_idx], y[test_idx]


class StandardScaler:
    """Per-feature standardisation (zero mean, unit variance)."""

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 0, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None or self.scale_ is None:
            raise RuntimeError("scaler not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)
