"""Virtual-time execution engine.

The engine runs a :class:`~repro.tasks.task.Workload` region by region under
a :class:`PlacementPolicy`.  Within a region it advances all task instances
in small virtual-time ticks:

* each tick, every unfinished instance's instantaneous execution time is
  computed from the ground-truth machine model and the *current* placement
  (page migrations mid-region change an instance's speed mid-flight);
* per-tier bandwidth demand is aggregated across instances and migration
  traffic; if it exceeds the tier's capability, progress is scaled back
  (bandwidth contention);
* the placement policy's ``on_tick`` hook may request page migrations,
  throttled to a configurable fraction of PM bandwidth;
* the region's barrier releases when every instance reaches progress 1;
  per-task busy and barrier-wait times are recorded (Figure 5's data).

All time is virtual; nothing depends on the wall clock, and the only
randomness comes from the seeded generator in :class:`EngineContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.common import PAGE_SIZE, make_rng
from repro.sim.faults import FaultInjector, RobustnessReport
from repro.sim.machine import MachineModel, TimeBreakdown
from repro.sim.memspec import HMConfig
from repro.sim.pages import MigrationBatch, PageTable
from repro.tasks.task import ParallelRegion, TaskInstanceSpec, Workload

__all__ = [
    "EngineConfig",
    "EngineContext",
    "PlacementPolicy",
    "RegionResult",
    "RunResult",
    "Engine",
]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs."""

    #: Target number of ticks across the fastest instance of a region;
    #: controls the time resolution of contention and migration.
    ticks_per_instance: int = 60
    #: Hard cap on ticks per region (runaway guard).
    max_ticks_per_region: int = 50_000
    #: Fraction of PM read bandwidth migrations may consume per tick.
    migration_bandwidth_fraction: float = 0.25
    #: Record the per-tick bandwidth trace (Figure 6) when True.
    record_bandwidth: bool = True


class EngineContext:
    """Mutable state the engine shares with the placement policy."""

    def __init__(
        self,
        workload: Workload,
        page_table: PageTable,
        machine: MachineModel,
        hm: HMConfig,
        rng: np.random.Generator,
        faults: FaultInjector | None = None,
    ) -> None:
        self.workload = workload
        self.page_table = page_table
        self.machine = machine
        self.hm = hm
        self.rng = rng
        #: fault injector the engine and profilers consult (None = healthy)
        self.faults = faults
        self.time = 0.0
        self.region: ParallelRegion | None = None
        self.region_index = -1
        #: instance progress in [0, 1] by task id (current region)
        self.progress: dict[str, float] = {}
        #: latest instantaneous execution-time estimate by task id
        self.instance_times: dict[str, float] = {}
        self.pages_migrated = 0
        self.migration_overhead_s = 0.0
        #: pages the engine will accept per tick (set each region from the
        #: migration bandwidth budget); policies should not request more
        self.migration_budget_pages = 1
        #: migration batches (or parts of batches) that failed to apply,
        #: for policies that implement retry; cleared at each region start
        self.failed_migrations: list[MigrationBatch] = []

    # -- helpers policies rely on --------------------------------------
    def dram_fractions(self) -> dict[str, float]:
        """Current per-object access-weighted DRAM fractions."""
        return self.page_table.access_fractions()

    def active_instances(self) -> list[TaskInstanceSpec]:
        assert self.region is not None
        return [
            inst
            for inst in self.region.instances
            if self.progress.get(inst.task_id, 0.0) < 1.0
        ]

    def page_access_rates(self) -> dict[str, np.ndarray]:
        """Per-page main-memory access rates (accesses/second), summed over
        the region's active instances.

        This is what the sampling profilers observe: address-level hotness
        with no task attribution unless a profiler adds it.
        """
        rates: dict[str, np.ndarray] = {}
        for inst in self.active_instances():
            t = max(self.instance_times.get(inst.task_id, 0.0), 1e-12)
            for acc in inst.footprint.accesses:
                obj = self.page_table.object(acc.obj)
                per_obj = acc.total / t
                if acc.obj in rates:
                    rates[acc.obj] = rates[acc.obj] + obj.weight * per_obj
                else:
                    rates[acc.obj] = obj.weight * per_obj
        return rates


class PlacementPolicy:
    """Base class for data-placement policies (baselines and Merchandiser).

    Policies may mutate residency directly in the start hooks (initial
    placement) and must route mid-run movement through ``on_tick``'s
    :class:`MigrationBatch` return so the engine can charge bandwidth.
    """

    name = "policy"

    def on_workload_start(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called once before the first region."""

    def on_region_start(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called when a region's tasks become known, before they start."""

    def on_tick(self, ctx: EngineContext, dt: float) -> MigrationBatch | None:
        """Called every tick; return page moves to perform (or None)."""
        return None

    def on_region_end(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called after the region's barrier releases."""


@dataclass
class RegionResult:
    """Per-region outcome: when each task finished and how long it worked."""

    name: str
    start_s: float
    end_s: float
    #: task id -> time the task was busy executing (its own work)
    busy_s: dict[str, float] = field(default_factory=dict)
    #: task id -> time spent waiting at the barrier for slower tasks
    wait_s: dict[str, float] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class RunResult:
    """Complete outcome of one engine run."""

    policy: str
    workload: str
    total_time_s: float
    regions: list[RegionResult]
    pages_migrated: int
    #: bandwidth trace: times plus per-tier bytes/second, one row per tick
    trace_time: np.ndarray
    trace_dram_bw: np.ndarray
    trace_pm_bw: np.ndarray
    trace_migration_bw: np.ndarray
    #: merged fault + guardrail events and per-kind counters for the run
    robustness: RobustnessReport = field(default_factory=RobustnessReport)

    def task_busy_times(self) -> dict[str, float]:
        """Total busy time per task across all regions (Figure 5's metric)."""
        out: dict[str, float] = {}
        for region in self.regions:
            for task, busy in region.busy_s.items():
                out[task] = out.get(task, 0.0) + busy
        return out

    def task_wait_times(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for region in self.regions:
            for task, wait in region.wait_s.items():
                out[task] = out.get(task, 0.0) + wait
        return out

    def mean_dram_bandwidth(self) -> float:
        """Time-averaged DRAM bandwidth (bytes/s) over the run."""
        if len(self.trace_time) == 0:
            return 0.0
        return float(np.mean(self.trace_dram_bw))

    def mean_pm_bandwidth(self) -> float:
        if len(self.trace_time) == 0:
            return 0.0
        return float(np.mean(self.trace_pm_bw))


class Engine:
    """Runs workloads on the simulated heterogeneous-memory node."""

    def __init__(
        self,
        machine: MachineModel | None = None,
        hm: HMConfig | None = None,
        config: EngineConfig | None = None,
        faults: FaultInjector | None = None,
    ) -> None:
        from repro.sim.memspec import optane_hm_config

        self.machine = machine or MachineModel()
        self.hm = hm or optane_hm_config()
        self.config = config or EngineConfig()
        #: optional fault injector; consulted by the tick loop and exposed
        #: to policies/profilers through the engine context
        self.faults = faults

    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload,
        policy: PlacementPolicy,
        seed=0,
        page_table: PageTable | None = None,
    ) -> RunResult:
        """Execute ``workload`` under ``policy`` and return the result."""
        rng = make_rng(seed)
        if page_table is None:
            page_table = PageTable(
                workload.objects, self.hm.dram.capacity_bytes, rng=rng
            )
        ctx = EngineContext(
            workload, page_table, self.machine, self.hm, rng, faults=self.faults
        )
        policy.on_workload_start(ctx)

        regions: list[RegionResult] = []
        trace_t: list[float] = []
        trace_d: list[float] = []
        trace_p: list[float] = []
        trace_m: list[float] = []

        for idx, region in enumerate(workload.regions):
            ctx.region = region
            ctx.region_index = idx
            ctx.progress = {inst.task_id: 0.0 for inst in region.instances}
            self._refresh_times(ctx)
            policy.on_region_start(ctx)
            self._refresh_times(ctx)

            result = self._run_region(ctx, policy, trace_t, trace_d, trace_p, trace_m)
            regions.append(result)
            policy.on_region_end(ctx)

        fault_log = self.faults.log if self.faults is not None else None
        guard_log = getattr(policy, "guardrail_log", None)
        return RunResult(
            policy=policy.name,
            workload=workload.name,
            total_time_s=ctx.time,
            regions=regions,
            pages_migrated=ctx.pages_migrated,
            trace_time=np.asarray(trace_t),
            trace_dram_bw=np.asarray(trace_d),
            trace_pm_bw=np.asarray(trace_p),
            trace_migration_bw=np.asarray(trace_m),
            robustness=RobustnessReport.merged(fault_log, guard_log),
        )

    # ------------------------------------------------------------------
    def _refresh_times(self, ctx: EngineContext) -> None:
        fractions = ctx.dram_fractions()
        assert ctx.region is not None
        for inst in ctx.region.instances:
            ctx.instance_times[inst.task_id] = self.machine.instance_time(
                inst.footprint, self.hm, fractions
            )

    # ------------------------------------------------------------------
    def _run_region(
        self,
        ctx: EngineContext,
        policy: PlacementPolicy,
        trace_t: list[float],
        trace_d: list[float],
        trace_p: list[float],
        trace_m: list[float],
    ) -> RegionResult:
        cfg = self.config
        region = ctx.region
        assert region is not None
        start = ctx.time
        finish: dict[str, float] = {}

        # tick size tracks the slowest instance: the region lives that long,
        # and short instances complete mid-tick via interpolation.  Tying dt
        # to the fastest instance would shrink ticks (and per-tick migration
        # budgets) arbitrarily under heavy skew.
        max_t = max(ctx.instance_times[i.task_id] for i in region.instances)
        dt = max(max_t / cfg.ticks_per_instance, 1e-9)
        mig_budget_bytes = cfg.migration_bandwidth_fraction * self.hm.pm.read_bandwidth * dt
        ctx.migration_budget_pages = max(1, int(mig_budget_bytes // PAGE_SIZE))
        ctx.failed_migrations.clear()

        ticks = 0
        while len(finish) < len(region.instances):
            ticks += 1
            if ticks > cfg.max_ticks_per_region:
                raise RuntimeError(
                    f"region {region.name!r} exceeded {cfg.max_ticks_per_region} ticks"
                )
            fractions = ctx.dram_fractions()
            active = ctx.active_instances()

            # phase 1: unconstrained progress and per-tier byte demand
            dprog: dict[str, float] = {}
            bds: dict[str, TimeBreakdown] = {}
            demand_dram = 0.0
            demand_pm = 0.0
            for inst in active:
                bd = self.machine.breakdown(inst.footprint, self.hm, fractions)
                bds[inst.task_id] = bd
                ctx.instance_times[inst.task_id] = bd.total_s
                d = dt / max(bd.total_s, 1e-12)
                dprog[inst.task_id] = d
                demand_dram += d * bd.dram_bytes
                demand_pm += d * bd.pm_bytes

            # phase 2: bandwidth contention scaling per tier.  Transient
            # PM-bandwidth degradation (an injected environment fault)
            # shrinks the PM cap for the affected ticks.
            cap_dram = self.hm.dram.read_bandwidth * dt
            pm_factor = (
                self.faults.pm_bandwidth_factor(ctx.time)
                if self.faults is not None
                else 1.0
            )
            cap_pm = self.hm.pm.read_bandwidth * dt * pm_factor
            s_dram = min(1.0, cap_dram / demand_dram) if demand_dram > 0 else 1.0
            s_pm = min(1.0, cap_pm / demand_pm) if demand_pm > 0 else 1.0

            tick_dram_bytes = 0.0
            tick_pm_bytes = 0.0
            for inst in active:
                bd = bds[inst.task_id]
                total_bytes = bd.dram_bytes + bd.pm_bytes
                if total_bytes > 0:
                    w_d = bd.dram_bytes / total_bytes
                    scale = w_d * s_dram + (1.0 - w_d) * s_pm
                else:
                    scale = 1.0
                step = dprog[inst.task_id] * scale
                prev = ctx.progress[inst.task_id]
                new = prev + step
                if new >= 1.0:
                    # interpolate the exact finish instant inside the tick
                    frac = (1.0 - prev) / max(step, 1e-15)
                    finish[inst.task_id] = ctx.time + frac * dt
                    new = 1.0
                ctx.progress[inst.task_id] = new
                done = new - prev
                # bd.*_bytes are whole-instance totals; this tick moved the
                # completed fraction of them
                tick_dram_bytes += done * bd.dram_bytes
                tick_pm_bytes += done * bd.pm_bytes

            # DRAM capacity-pressure spike: an external allocation steals
            # capacity, so the kernel demotes our coldest pages to make room
            # and promotions are admitted against the smaller DRAM.
            pressure = (
                self.faults.dram_pressure_bytes(
                    ctx.time, ctx.page_table.dram_capacity_bytes
                )
                if self.faults is not None
                else 0
            )
            if pressure > 0:
                evicted = _evict_for_pressure(ctx.page_table, pressure)
                if evicted:
                    ctx.pages_migrated += evicted
                    tick_pm_bytes += evicted * PAGE_SIZE
                    tick_dram_bytes += evicted * PAGE_SIZE

            # phase 3: policy-driven migration, throttled by bandwidth.
            # Injected faults may reject the batch or fail part of it
            # mid-copy.
            batch = policy.on_tick(ctx, dt)
            mig_bytes = 0.0
            if batch is not None and batch.n_pages > 0:
                # migrations read PM, so a degraded PM shrinks their budget
                max_pages = max(1, int(mig_budget_bytes * pm_factor // PAGE_SIZE))
                batch = _clamp_batch(batch, max_pages)
                if self.faults is not None:
                    batch, failed = self.faults.migration_outcome(batch, ctx.time)
                    if failed is not None:
                        ctx.failed_migrations.append(failed)
                if batch is not None and batch.n_pages > 0:
                    table = ctx.page_table
                    base_capacity = table.dram_capacity_bytes
                    table.dram_capacity_bytes = max(0, base_capacity - pressure)
                    try:
                        moved = table.apply_batch(batch)
                    finally:
                        table.dram_capacity_bytes = base_capacity
                    ctx.pages_migrated += moved
                    mig_bytes = moved * PAGE_SIZE
                    ctx.migration_overhead_s += (
                        moved * self.hm.page_migration_overhead_s
                    )
                    # migration reads PM and writes DRAM (promotions) or the
                    # reverse; charge both tiers the full copy traffic
                    tick_pm_bytes += mig_bytes
                    tick_dram_bytes += mig_bytes

            if cfg.record_bandwidth:
                trace_t.append(ctx.time)
                trace_d.append(tick_dram_bytes / dt)
                trace_p.append(tick_pm_bytes / dt)
                trace_m.append(mig_bytes / dt)

            ctx.time += dt

        # the barrier releases at the last finish time; snap region end there
        end = max(finish.values())
        ctx.time = end
        busy = {t: finish[t] - start for t in finish}
        wait = {t: end - finish[t] for t in finish}
        return RegionResult(
            name=region.name, start_s=start, end_s=end, busy_s=busy, wait_s=wait
        )


def _evict_for_pressure(table: PageTable, pressure_bytes: int) -> int:
    """Demote the coldest DRAM pages until the table fits the capacity left
    over by an external pressure spike.  Returns pages evicted."""
    capacity_pages = max(0, (table.dram_capacity_bytes - pressure_bytes) // PAGE_SIZE)
    used = int(sum(obj.dram_pages() for obj in table))
    need = used - capacity_pages
    if need <= 0:
        return 0
    evicted = 0
    for obj in sorted(table, key=lambda o: o.dram_access_fraction()):
        if evicted >= need:
            break
        cold = obj.coldest_dram_pages(limit=need - evicted)
        if len(cold):
            obj.residency[cold] = 0.0
            evicted += len(cold)
    return evicted


def _clamp_batch(batch: MigrationBatch, max_pages: int) -> MigrationBatch:
    """Limit a batch to ``max_pages`` promotions+demotions (keep order)."""
    if batch.n_pages <= max_pages:
        return batch
    moves: list[tuple[str, np.ndarray, bool]] = []
    left = max_pages
    for name, idx, promote in batch.moves:
        if left <= 0:
            break
        take = idx[:left]
        moves.append((name, take, promote))
        left -= len(take)
    return MigrationBatch(moves=tuple(moves))
