"""Performance prediction on homogeneous memory (Section 5.2).

Equation 2 needs the execution time of the task on DRAM-only and PM-only
(``T_new_dram_only``, ``T_new_pm_only``) for an input it has never run.
Following the paper (which builds on Monteil's profile+history method):

1. *offline*, input-independent basic blocks are identified and their unit
   execution times measured on each homogeneous memory;
2. *online*, the number of times each block executes is counted for the
   base input;
3. for a new input, the block counts are scaled by the similarity between
   the input-size vectors, and the homogeneous times are the weighted sums
   of unit block times.

The paper scales by the cosine similarity of the two size vectors; a raw
cosine is magnitude-blind, so we use the projection coefficient
``cos(base,new) * |new|/|base|`` -- equal to the cosine for proportionally
scaled inputs, and carrying the magnitude the count scaling needs.  (This
reading makes their DMRG/WarpX accuracy numbers reproducible; a pure cosine
would predict constant time for all inputs.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.sim.machine import MachineModel
from repro.sim.memspec import HMConfig
from repro.tasks.task import Footprint

__all__ = ["BasicBlock", "input_similarity_scale", "HomogeneousPredictor"]


@dataclass(frozen=True)
class BasicBlock:
    """An input-independent basic block of a task program.

    ``unit_footprint`` describes one execution of the block (its
    instructions and main-memory accesses); blocks whose *content* varies
    with the input are flagged ``input_independent=False`` and excluded from
    offline timing, as in [55].
    """

    name: str
    unit_footprint: Footprint
    input_independent: bool = True


def input_similarity_scale(base: Sequence[float], new: Sequence[float]) -> float:
    """Projection-coefficient similarity between two input-size vectors.

    ``cos(base, new) * ||new|| / ||base||`` = ``<base, new> / ||base||^2``.
    Returns 1.0 for identical vectors and scales linearly for proportional
    inputs.
    """
    b = np.asarray(base, dtype=np.float64)
    n = np.asarray(new, dtype=np.float64)
    if b.shape != n.shape:
        raise ValueError("input vectors must have the same length")
    bb = float(b @ b)
    if bb == 0.0:
        raise ValueError("base input vector is all zeros")
    return float(b @ n) / bb


class HomogeneousPredictor:
    """Predicts T_dram_only / T_pm_only for new inputs of known tasks."""

    def __init__(self, machine: MachineModel, hm: HMConfig) -> None:
        self.machine = machine
        self.hm = hm
        self._unit_times: dict[str, tuple[float, float]] = {}
        self._base_counts: dict[str, dict[str, float]] = {}
        self._base_inputs: dict[str, np.ndarray] = {}

    # -- offline -------------------------------------------------------
    def measure_blocks(self, blocks: Iterable[BasicBlock]) -> None:
        """Offline step 2 of Section 5.3: unit block times on each tier.

        On the real system this is a one-time profiled measurement; here the
        measurement device is the ground-truth machine model run with
        everything placed on a single tier.
        """
        for block in blocks:
            if not block.input_independent:
                continue
            t_dram, t_pm = self.machine.endpoint_times(block.unit_footprint, self.hm)
            self._unit_times[block.name] = (t_dram, t_pm)

    def has_block(self, name: str) -> bool:
        return name in self._unit_times

    # -- online --------------------------------------------------------
    def record_base(
        self,
        task_id: str,
        block_counts: Mapping[str, float],
        input_vector: Sequence[float],
    ) -> None:
        """Online step 1: block execution counts under the base input."""
        unknown = [b for b in block_counts if b not in self._unit_times]
        if unknown:
            raise KeyError(f"blocks not measured offline: {unknown}")
        self._base_counts[task_id] = {k: float(v) for k, v in block_counts.items()}
        self._base_inputs[task_id] = np.asarray(input_vector, dtype=np.float64)

    def predict(
        self, task_id: str, new_input_vector: Sequence[float]
    ) -> tuple[float, float]:
        """(T_new_dram_only, T_new_pm_only) for a new input of ``task_id``."""
        if task_id not in self._base_counts:
            raise KeyError(f"no base profile recorded for task {task_id!r}")
        scale = input_similarity_scale(self._base_inputs[task_id], new_input_vector)
        t_dram = 0.0
        t_pm = 0.0
        for block, count in self._base_counts[task_id].items():
            ud, up = self._unit_times[block]
            t_dram += count * scale * ud
            t_pm += count * scale * up
        return t_dram, t_pm

    # -- crash-consistency checkpoints (repro.core.journal) ------------
    def snapshot_state(self) -> dict:
        """JSON-able profile-history state (offline unit times are cheap to
        re-measure, but checkpointing them keeps recovery deterministic even
        if the binding's block list changed between incarnations)."""
        return {
            "unit_times": {
                name: [float(td), float(tp)]
                for name, (td, tp) in self._unit_times.items()
            },
            "base_counts": {
                task: dict(counts) for task, counts in self._base_counts.items()
            },
            "base_inputs": {
                task: [float(v) for v in vec]
                for task, vec in self._base_inputs.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        self._unit_times = {
            name: (float(td), float(tp))
            for name, (td, tp) in state["unit_times"].items()
        }
        self._base_counts = {
            task: {k: float(v) for k, v in counts.items()}
            for task, counts in state["base_counts"].items()
        }
        self._base_inputs = {
            task: np.asarray(vec, dtype=np.float64)
            for task, vec in state["base_inputs"].items()
        }
