"""Input-aware memory-access quantification (Section 4, Equation 1).

Given per-object profiled access counts from the task's *base input* and the
data-object sizes of a *new* input (known right before task execution via the
``LB_HM_config`` API), estimate the new input's per-object main-memory access
counts:

    esti_mem_acc = S_new / (S_base * alpha) * prof_mem_acc
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.common import AccessPattern
from repro.core.alpha import AlphaTable
from repro.tasks.task import Footprint

__all__ = ["ObjectDescriptor", "AccessEstimator"]


@dataclass(frozen=True)
class ObjectDescriptor:
    """Static-analysis facts about one managed object in one task.

    Produced by the pattern classifier plus the API call: pattern, stride,
    element size, and whether the pattern's shape depends on the input (an
    input-dependent stencil or any random pattern relies on runtime alpha
    refinement).
    """

    name: str
    pattern: AccessPattern
    element_size: int = 8
    stride: int = 1
    stencil_taps: int = 3
    input_dependent: bool = False

    @property
    def needs_refinement(self) -> bool:
        return self.pattern is AccessPattern.RANDOM or (
            self.pattern is AccessPattern.STENCIL and self.input_dependent
        )


class AccessEstimator:
    """Per-task estimator state: base profile, sizes, and alpha values."""

    def __init__(self, descriptors: Mapping[str, ObjectDescriptor], alpha: AlphaTable | None = None):
        self.descriptors = dict(descriptors)
        self.alphas = alpha or AlphaTable()
        self._base_sizes: dict[str, int] = {}
        self._base_counts: dict[str, float] = {}

    # ------------------------------------------------------------------
    def record_base_profile(
        self, sizes: Mapping[str, int], counts: Mapping[str, float]
    ) -> None:
        """Store the base input's sizes and profiled access counts.

        ``counts`` comes from the first instance's memory profiling
        (PTE-sampling on PM, Thermostat on DRAM -- Section 4).
        """
        for name in counts:
            if name not in self.descriptors:
                raise KeyError(f"no descriptor for profiled object {name!r}")
        self._base_sizes = {k: int(v) for k, v in sizes.items()}
        self._base_counts = {k: float(v) for k, v in counts.items()}

    @property
    def has_base_profile(self) -> bool:
        return bool(self._base_counts)

    def base_count(self, obj: str) -> float:
        return self._base_counts[obj]

    def base_size(self, obj: str) -> int:
        return self._base_sizes[obj]

    # ------------------------------------------------------------------
    def estimate(self, new_sizes: Mapping[str, int]) -> dict[str, float]:
        """Equation 1 for every profiled object under the new sizes."""
        if not self.has_base_profile:
            raise RuntimeError("base profile not recorded yet")
        out: dict[str, float] = {}
        for name, prof in self._base_counts.items():
            desc = self.descriptors[name]
            s_base = self._base_sizes[name]
            s_new = int(new_sizes.get(name, s_base))
            a = self.alphas.alpha(
                name,
                desc.pattern,
                s_base,
                s_new,
                element_size=desc.element_size,
                stride=desc.stride,
                stencil_taps=desc.stencil_taps,
                input_dependent=desc.input_dependent,
            )
            out[name] = s_new / (s_base * a) * prof
        return out

    def estimate_total(self, new_sizes: Mapping[str, int]) -> float:
        """Total estimated accesses (Equation 2's ``esti_mem_acc``)."""
        return sum(self.estimate(new_sizes).values())

    def estimated_footprint(
        self, base_footprint: Footprint, new_sizes: Mapping[str, int]
    ) -> Footprint:
        """Scale the base footprint's per-object counts to the new input.

        Instructions scale with the average access-scaling factor -- the
        best input-agnostic guess, consistent with Section 5.2's assumption
        that control flow is input-size-stable.
        """
        estimates = self.estimate(new_sizes)
        factors: dict[str, float] = {}
        for name, est in estimates.items():
            base = max(self._base_counts[name], 1e-12)
            factors[name] = est / base
        instr_factor = (
            sum(factors.values()) / len(factors) if factors else 1.0
        )
        return base_footprint.scaled(factors, instr_factor=instr_factor)

    # -- crash-consistency checkpoints (repro.core.journal) ------------
    def snapshot_state(self) -> dict:
        """JSON-able learned state: base profile plus refined alphas.

        Descriptors are static-analysis facts the binding regenerates, so
        they are not checkpointed; restore assumes the same descriptors.
        """
        return {
            "base_sizes": dict(self._base_sizes),
            "base_counts": dict(self._base_counts),
            "alphas": self.alphas.snapshot_state(),
        }

    def restore_state(self, state: dict) -> None:
        self._base_sizes = {k: int(v) for k, v in state["base_sizes"].items()}
        self._base_counts = {k: float(v) for k, v in state["base_counts"].items()}
        self.alphas.restore_state(state["alphas"])

    # ------------------------------------------------------------------
    def refine(
        self, new_sizes: Mapping[str, int], measured: Mapping[str, float]
    ) -> int:
        """Online alpha refinement after an instance ran (Section 4).

        ``measured`` holds PEBS-measured per-object access counts for the
        instance that just executed with ``new_sizes``.  Returns the number
        of objects whose alpha actually absorbed a measurement (telemetry's
        ``merch_policy_alpha_refinements_total``).
        """
        refined = 0
        for name, measured_acc in measured.items():
            desc = self.descriptors.get(name)
            if desc is None or not desc.needs_refinement:
                continue
            if name not in self._base_counts:
                continue
            self.alphas.refine(
                name,
                self._base_sizes[name],
                int(new_sizes.get(name, self._base_sizes[name])),
                self._base_counts[name],
                measured_acc,
            )
            refined += 1
        return refined
