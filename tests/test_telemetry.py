"""Unit tests for repro.core.telemetry: registry, spans, exporters."""

import json

import pytest

from repro.core.telemetry import (
    METRIC_SPECS,
    LabelCardinalityError,
    MetricRegistry,
    SpanTracer,
    Telemetry,
    chrome_trace,
    parse_exposition,
    render_exposition,
    spec_names,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricRegistry()
        c = reg.counter("x_total", "help")
        assert c.value() == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5

    def test_negative_increment_raises(self):
        c = MetricRegistry().counter("x_total")
        with pytest.raises(ValueError, match="< 0"):
            c.inc(-1.0)
        assert c.value() == 0.0

    def test_nan_increment_raises(self):
        c = MetricRegistry().counter("x_total")
        with pytest.raises(ValueError):
            c.inc(float("nan"))

    def test_labelled_series_are_independent(self):
        c = MetricRegistry().counter("x_total", labels=["cause"])
        c.inc(3, cause="policy")
        c.inc(4, cause="pressure")
        assert c.value(cause="policy") == 3
        assert c.value(cause="pressure") == 4

    def test_undeclared_label_raises(self):
        c = MetricRegistry().counter("x_total", labels=["cause"])
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1, cause="policy", extra="nope")
        with pytest.raises(ValueError, match="expected labels"):
            c.inc(1)  # missing declared label


class TestGauge:
    def test_set_inc_dec(self):
        g = MetricRegistry().gauge("g")
        g.set(10.0)
        g.inc(5.0)
        g.dec(2.0)
        assert g.value() == 13.0


class TestHistogram:
    def test_bucketing_le_semantics(self):
        h = MetricRegistry().histogram("h", buckets=(1.0, 5.0, 10.0))
        h.observe(1.0)   # == bound -> first bucket (le semantics)
        h.observe(0.5)   # first bucket
        h.observe(7.0)   # third bucket
        h.observe(100.0) # +inf bucket
        s = h.snapshot()
        assert s.bucket_counts == [2, 0, 1, 1]
        assert s.count == 4
        assert s.sum == pytest.approx(108.5)

    def test_bounds_must_strictly_increase(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError, match="strictly increase"):
            reg.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError, match="strictly increase"):
            reg.histogram("bad2", buckets=(2.0, 1.0))
        with pytest.raises(ValueError, match="finite"):
            reg.histogram("bad3", buckets=(1.0, float("inf")))

    def test_observe_nan_raises(self):
        h = MetricRegistry().histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError, match="NaN"):
            h.observe(float("nan"))


class TestCardinalityGuard:
    def test_guard_raises_past_the_cap(self):
        c = MetricRegistry(max_label_sets=3).counter("x_total", labels=["id"])
        for i in range(3):
            c.inc(1, id=str(i))
        with pytest.raises(LabelCardinalityError):
            c.inc(1, id="3")
        # existing series still work after the rejection
        c.inc(1, id="0")
        assert c.value(id="0") == 2

    def test_telemetry_facade_uses_the_guard(self):
        tel = Telemetry(max_label_sets=1)
        tel.inc("merch_engine_pages_migrated_total", 1, cause="policy")
        with pytest.raises(LabelCardinalityError):
            tel.inc("merch_engine_pages_migrated_total", 1, cause="pressure")


class TestRegistry:
    def test_reregistration_is_idempotent(self):
        reg = MetricRegistry()
        a = reg.counter("x_total", "h", labels=["l"])
        b = reg.counter("x_total", "h", labels=["l"])
        assert a is b

    def test_signature_conflict_raises(self):
        reg = MetricRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="different signature"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="different signature"):
            reg.counter("x_total", labels=["l"])

    def test_unknown_metric_raises(self):
        with pytest.raises(KeyError, match="not registered"):
            MetricRegistry().get("nope")

    def test_invalid_names_rejected(self):
        reg = MetricRegistry()
        with pytest.raises(ValueError):
            reg.counter("has space")
        with pytest.raises(ValueError):
            reg.counter("9starts_with_digit")


class TestSpans:
    def test_nesting_and_depth(self):
        tr = SpanTracer()
        outer = tr.begin("outer", 0.0)
        inner = tr.begin("inner", 1.0)
        assert (outer.depth, inner.depth) == (0, 1)
        tr.end(inner, 2.0)
        tr.end(outer, 3.0)
        assert [s.name for s in tr.closed_spans()] == ["outer", "inner"]
        assert inner.duration_s == 1.0

    def test_out_of_order_end_raises(self):
        tr = SpanTracer()
        outer = tr.begin("outer", 0.0)
        tr.begin("inner", 1.0)
        with pytest.raises(ValueError, match="out of order"):
            tr.end(outer, 2.0)

    def test_end_before_start_raises(self):
        tr = SpanTracer()
        s = tr.begin("s", 5.0)
        with pytest.raises(ValueError, match="before it began"):
            tr.end(s, 4.0)

    def test_tracks_nest_independently(self):
        tr = SpanTracer()
        v = tr.begin("v", 0.0, track="virtual")
        w = tr.begin("w", 0.0, track="wall")
        tr.end(v, 1.0)  # no out-of-order error: separate stacks
        tr.end(w, 1.0)

    def test_add_complete_is_retroactive(self):
        tr = SpanTracer()
        outer = tr.begin("outer", 0.0)
        s = tr.add_complete("migrate", 2.0, 0.5, pages=7)
        assert s.depth == 1 and s.end_s == 2.5 and s.args["pages"] == 7
        with pytest.raises(ValueError, match="negative duration"):
            tr.add_complete("bad", 0.0, -1.0)
        tr.end(outer, 3.0)

    def test_wall_span_closes_on_exception(self):
        tr = SpanTracer()
        with pytest.raises(RuntimeError):
            with tr.wall_span("w"):
                raise RuntimeError("boom")
        assert tr.open_spans() == []
        assert tr.closed_spans()[0].name == "w"

    def test_duration_of_open_span_raises(self):
        tr = SpanTracer()
        s = tr.begin("s", 0.0)
        with pytest.raises(ValueError, match="still open"):
            _ = s.duration_s


EXPECTED_GOLDEN = """\
# HELP demo_count_total things counted
# TYPE demo_count_total counter
demo_count_total{kind="a"} 2
demo_count_total{kind="b"} 0.5
# HELP demo_lat_seconds latency
# TYPE demo_lat_seconds histogram
demo_lat_seconds_bucket{le="0.1"} 1
demo_lat_seconds_bucket{le="1"} 2
demo_lat_seconds_bucket{le="+Inf"} 3
demo_lat_seconds_sum 10.5625
demo_lat_seconds_count 3
# HELP demo_ratio current ratio
# TYPE demo_ratio gauge
demo_ratio 0.25
"""


def _golden_registry() -> MetricRegistry:
    reg = MetricRegistry()
    reg.counter("demo_count_total", "things counted", labels=["kind"])
    reg.histogram("demo_lat_seconds", "latency", buckets=(0.1, 1.0))
    reg.gauge("demo_ratio", "current ratio")
    reg.get("demo_count_total").inc(2, kind="a")
    reg.get("demo_count_total").inc(0.5, kind="b")
    # exactly representable in binary so the golden _sum is stable
    for v in (0.0625, 0.5, 10.0):
        reg.get("demo_lat_seconds").observe(v)
    reg.get("demo_ratio").set(0.25)
    return reg


class TestExposition:
    def test_golden_output(self):
        assert render_exposition(_golden_registry()) == EXPECTED_GOLDEN

    def test_deterministic(self):
        reg = _golden_registry()
        assert render_exposition(reg) == render_exposition(reg)

    def test_parse_round_trip(self):
        parsed = parse_exposition(render_exposition(_golden_registry()))
        assert parsed["types"] == {
            "demo_count_total": "counter",
            "demo_lat_seconds": "histogram",
            "demo_ratio": "gauge",
        }
        samples = parsed["samples"]
        assert samples[("demo_count_total", (("kind", "a"),))] == 2
        assert samples[("demo_ratio", ())] == 0.25
        assert samples[("demo_lat_seconds_bucket", (("le", "+Inf"),))] == 3
        assert samples[("demo_lat_seconds_sum", ())] == pytest.approx(10.5625)

    def test_label_values_escaped_and_round_tripped(self):
        reg = MetricRegistry()
        c = reg.counter("esc_total", labels=["path"])
        c.inc(1, path='a"b\\c')
        parsed = parse_exposition(render_exposition(reg))
        assert parsed["samples"][("esc_total", (("path", 'a"b\\c'),))] == 1

    def test_malformed_lines_raise(self):
        for bad in (
            "# TYPE broken",
            "# TYPE x sometype",
            "# UNKNOWN comment",
            "name_without_value",
            'metric{l="v"} not_a_number',
        ):
            with pytest.raises(ValueError):
                parse_exposition(bad)


class TestChromeTrace:
    def test_structure_and_timestamps(self):
        tr = SpanTracer()
        outer = tr.begin("run", 0.0, track="virtual", workload="wl")
        tr.add_complete("migrate", 1.0, 0.25, track="virtual", pages=3)
        tr.end(outer, 2.0)
        with tr.wall_span("plan"):
            pass
        doc = chrome_trace(tr)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert {m["pid"] for m in meta} == {1, 2}
        run = next(e for e in events if e["name"] == "run")
        assert run["ph"] == "X"
        assert run["ts"] == 0.0 and run["dur"] == pytest.approx(2e6)
        assert run["args"] == {"workload": "wl"}
        migrate = next(e for e in events if e["name"] == "migrate")
        assert migrate["ts"] == pytest.approx(1e6)
        assert migrate["dur"] == pytest.approx(0.25e6)
        plan = next(e for e in events if e["name"] == "plan")
        assert plan["pid"] == 2
        json.dumps(doc)  # must be serialisable

    def test_open_spans_become_begin_events(self):
        tr = SpanTracer()
        tr.begin("unclosed", 0.0)
        events = chrome_trace(tr)["traceEvents"]
        unclosed = next(e for e in events if e["name"] == "unclosed")
        assert unclosed["ph"] == "B"


class TestInstrumentCatalogue:
    def test_all_specs_registered_in_telemetry(self):
        tel = Telemetry()
        for name in spec_names():
            assert name in tel.registry

    def test_naming_conventions(self):
        for spec in METRIC_SPECS:
            assert spec.name.startswith("merch_"), spec.name
            if spec.kind == "counter":
                assert spec.name.endswith("_total"), spec.name
            else:
                assert not spec.name.endswith("_total"), spec.name
            assert spec.help, f"{spec.name} has no help text"

    def test_exposition_shows_every_family_at_zero(self):
        parsed = parse_exposition(Telemetry().exposition())
        assert set(parsed["types"]) == set(spec_names())

    def test_facade_helpers(self):
        tel = Telemetry()
        tel.inc("merch_engine_runs_total")
        tel.set("merch_engine_dram_occupancy_ratio", 0.5)
        tel.observe("merch_engine_region_duration_seconds", 10.0)
        assert tel.op_count == 3
        parsed = parse_exposition(tel.exposition())
        assert parsed["samples"][("merch_engine_runs_total", ())] == 1
