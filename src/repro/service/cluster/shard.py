"""One placement shard: a journaled, lease-governed ``PlacementServer``.

A shard is the unit of scale-out *and* the unit of failure.  It wraps the
PR-4 :class:`~repro.service.server.PlacementServer` with three cluster
duties:

* **decision journaling** -- every pump that decides requests runs as one
  PR-2 WAL epoch: ``epoch_begin`` before planning, ``epoch_commit``
  carrying the encoded decisions, and a periodic ``checkpoint`` of the
  decided-id record + lease state.  Commit-before-reply ordering means a
  committed decision can always be re-served after failover, and an
  uncommitted one was never observed by anyone -- so replay can safely
  roll it back and let the request be re-planned;
* **leased capacity** -- the shard plans only inside its live
  :class:`~repro.service.cluster.lease.QuotaLease`.  A lease past its
  expiry (renewals lost to a partition) degrades the shard to **zero**
  DRAM capacity: requests still get answered, with zero-page grants,
  because pages the coordinator may have re-granted elsewhere must never
  be promised twice;
* **kill surface** -- a per-shard :class:`~repro.sim.faults.FaultInjector`
  is consulted at the shard crash points (``shard_pump``,
  ``shard_mid_epoch``, ``shard_post_commit``, ``shard_lease_renew``);
  a fired kill raises :class:`ShardCrashed` and permanently deadens the
  instance, exactly like a killed process.  The router notices via missed
  heartbeats and promotes the replication follower.

The shard keeps the transport's idempotency contract: a request id it has
already decided (locally or inherited through failover replay) is answered
from the record, never re-planned.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING

from repro.common import PAGE_SIZE
from repro.core.journal import WriteAheadLog
from repro.service.cluster.lease import LeaseRejected, QuotaCoordinator, QuotaLease
from repro.service.cluster.replication import FollowerJournal, ReplicationSender
from repro.service.protocol import (
    PlacementDecision,
    PlacementRequest,
    encode_decision,
)
from repro.service.server import PlacementServer
from repro.sim.faults import RobustnessLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry
    from repro.sim.faults import FaultInjector

__all__ = ["PlacementShard", "ShardCrashed", "ShardDown"]


class ShardCrashed(RuntimeError):
    """An injected kill fired inside this shard (it is dead afterwards)."""

    def __init__(self, shard_id: str, point: str, time_s: float) -> None:
        super().__init__(f"shard {shard_id!r} killed at {point} (t={time_s:.3f}s)")
        self.shard_id = shard_id
        self.point = point
        self.time_s = time_s


class ShardDown(RuntimeError):
    """The shard is dead; the caller must wait for failover."""


class PlacementShard:
    """Journaled, replicated, lease-governed placement shard."""

    def __init__(
        self,
        shard_id: str,
        server: PlacementServer,
        coordinator: QuotaCoordinator,
        journal: WriteAheadLog | None = None,
        *,
        faults: "FaultInjector | None" = None,
        telemetry: "Telemetry | None" = None,
        checkpoint_every: int = 8,
        decided_window: int = 4096,
        base_demand_pages: int = 0,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if decided_window < 1:
            raise ValueError("decided_window must be >= 1")
        self.shard_id = shard_id
        self.server = server
        self.coordinator = coordinator
        self.journal = journal if journal is not None else WriteAheadLog()
        self.faults = faults
        self.telemetry = telemetry
        self.checkpoint_every = checkpoint_every
        self.decided_window = decided_window
        self.base_demand_pages = base_demand_pages
        self.replication = ReplicationSender(
            shard_id, self.journal, faults=faults, telemetry=telemetry
        )
        self.lease: QuotaLease | None = None
        self.alive = True
        self.log = RobustnessLog()
        #: bounded record of decided requests (idempotency across failover)
        self._decided: "OrderedDict[str, PlacementDecision]" = OrderedDict()
        self._epoch_seq = 0
        self._epochs_since_checkpoint = 0
        #: EWMA of recently granted pages: the demand telemetry leases
        #: are renewed from
        self._grant_ewma = 0.0
        self.stats: dict[str, int] = {
            "submitted": 0,
            "decided": 0,
            "idempotent_replays": 0,
            "epochs_committed": 0,
            "zero_capacity_pumps": 0,
        }

    # ------------------------------------------------------------------
    # lifecycle / fault surface
    # ------------------------------------------------------------------
    def _crash(self, point: str, now: float) -> None:
        if self.faults is not None and self.faults.crash_due(point, now):
            self.alive = False
            self.log.record(
                "cluster.shard_killed", now, shard=self.shard_id, point=point
            )
            raise ShardCrashed(self.shard_id, point, now)

    def _require_alive(self) -> None:
        if not self.alive:
            raise ShardDown(f"shard {self.shard_id!r} is dead")

    def heartbeat(self, now: float) -> bool:
        """One liveness probe: True iff the shard can still answer."""
        return self.alive

    # ------------------------------------------------------------------
    # leases
    # ------------------------------------------------------------------
    def demand_pages(self) -> int:
        """Observed demand: pending footprint + a grant EWMA, floored at
        the configured base share (so an idle shard keeps a minimum slice
        ready for its next burst)."""
        pending_pages = 0
        for entry in self.server.scheduler._pending:
            pending_pages += -(-entry.request.input_size_bytes // PAGE_SIZE)
        return max(
            self.base_demand_pages, pending_pages + int(round(self._grant_ewma))
        )

    def effective_capacity_bytes(self, now: float) -> int:
        """DRAM bytes this shard may plan with at ``now`` -- its live
        lease, or zero once the lease expired under it."""
        if self.lease is None or not self.lease.live(now):
            return 0
        return self.lease.pages * PAGE_SIZE

    def acquire_lease(self, now: float, demand_pages: int | None = None) -> QuotaLease:
        self._require_alive()
        demand = self.demand_pages() if demand_pages is None else demand_pages
        self.lease = self.coordinator.acquire(self.shard_id, demand, now)
        return self.lease

    def renew_lease(self, now: float) -> QuotaLease | None:
        """Renew (or re-acquire) the lease from current demand telemetry.

        Returns the applied lease, or ``None`` when the renewal message
        was lost in flight (``lease_renewal_drop_rate``): the shard keeps
        believing in its old lease while the coordinator's TTL keeps
        running -- the expiry race the coordinator's id check resolves.
        """
        self._require_alive()
        if self.lease is None:
            return self.acquire_lease(now)
        if self.faults is not None and self.faults.lease_renewal_lost(now):
            return None
        demand = self.demand_pages()
        try:
            renewed = self.coordinator.renew(self.lease, demand, now)
        except LeaseRejected:
            # expired (and possibly re-granted) under us: start fresh
            self.lease = None
            return self.acquire_lease(now, demand)
        # the coordinator applied the renewal; dying *here* leaves it
        # holding a lease its shard never learned about (reclaimed on TTL)
        self._crash("shard_lease_renew", now)
        self.lease = renewed
        return renewed

    # ------------------------------------------------------------------
    # request path
    # ------------------------------------------------------------------
    def submit(
        self, request: PlacementRequest, now: float
    ) -> PlacementDecision | None:
        """Admit one request; idempotent by request id across failover."""
        self._require_alive()
        self.stats["submitted"] += 1
        recorded = self._decided.get(request.request_id)
        if recorded is not None:
            self.stats["idempotent_replays"] += 1
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_cluster_requests_total", path="idempotent"
                )
            return recorded
        if self.telemetry is not None:
            self.telemetry.inc("merch_cluster_requests_total", path="routed")
        decision = self.server.submit(request, now)
        if decision is not None:
            # shed at admission: answered immediately (zero grants), and
            # remembered so a retry cannot turn one answer into two
            self._remember([decision])
        return decision

    def pump(self, now: float, flush: bool = False) -> list[PlacementDecision]:
        """Fire due batches as one journaled epoch; returns the decisions.

        Ordering is commit-before-reply: ``epoch_begin`` -> plan ->
        ``epoch_commit`` (decisions inside) -> record + return.  The
        injected kills land between those steps, which is exactly what the
        failover soak needs to prove nothing is lost either way.
        """
        self._require_alive()
        self._crash("shard_pump", now)
        scheduler = self.server.scheduler
        if not scheduler.pending_depth or not (flush or scheduler.due(now)):
            return []
        capacity = self.effective_capacity_bytes(now)
        if capacity == 0:
            self.stats["zero_capacity_pumps"] += 1
        scheduler.dram_capacity_bytes = capacity
        epoch = self.journal.begin_epoch(
            {
                "region": self._epoch_seq,
                "time_s": now,
                "dram_pages": {},
                "binary": False,
                "shard": self.shard_id,
            }
        )
        decisions = (
            self.server.flush(now) if flush else self.server.pump(now)
        )
        # planned but not yet committed: a kill here rolls the epoch back
        # on replay and the requests are re-planned by the promoted shard
        self._crash("shard_mid_epoch", now)
        self.journal.commit_epoch(
            epoch,
            {
                "region": self._epoch_seq,
                "time_s": now,
                "decisions": [encode_decision(d) for d in decisions],
            },
        )
        self._epoch_seq += 1
        self.stats["epochs_committed"] += 1
        # committed but not yet replied: a kill here is answered from the
        # replicated record when the retry lands on the promoted shard
        self._crash("shard_post_commit", now)
        self._remember(decisions)
        self._grant_ewma = 0.7 * self._grant_ewma + 0.3 * float(
            sum(d.dram_pages_granted for d in decisions)
        )
        self._epochs_since_checkpoint += 1
        if self._epochs_since_checkpoint >= self.checkpoint_every:
            self.checkpoint(now)
        return decisions

    def flush(self, now: float) -> list[PlacementDecision]:
        return self.pump(now, flush=True)

    def replicate(self, follower: FollowerJournal, now: float) -> int:
        """Ship the WAL to the follower; returns the acked-LSN floor."""
        self._require_alive()
        return self.replication.ship(follower, now)

    # ------------------------------------------------------------------
    # decided record + checkpoints (the warm-failover state)
    # ------------------------------------------------------------------
    def _remember(self, decisions: list[PlacementDecision]) -> None:
        self.stats["decided"] += len(decisions)
        for decision in decisions:
            self._decided[decision.request_id] = decision
            self._decided.move_to_end(decision.request_id)
        while len(self._decided) > self.decided_window:
            self._decided.popitem(last=False)

    def decided_record(self) -> dict[str, PlacementDecision]:
        return dict(self._decided)

    def checkpoint_state(self) -> dict:
        """The JSON-plain warm-resume state journaled in checkpoints."""
        return {
            "shard": self.shard_id,
            "epoch_seq": self._epoch_seq,
            "lease_pages": self.lease.pages if self.lease is not None else 0,
            "decided": {
                rid: encode_decision(d) for rid, d in self._decided.items()
            },
        }

    def checkpoint(self, now: float) -> None:
        self.journal.checkpoint(
            max(self._epoch_seq - 1, 0), self.checkpoint_state()
        )
        self._epochs_since_checkpoint = 0

    def adopt(
        self,
        decided: dict[str, PlacementDecision],
        epoch_seq: int,
        lease_demand_pages: int,
    ) -> None:
        """Install replayed failover state (router promotion path)."""
        self._decided = OrderedDict(decided)
        while len(self._decided) > self.decided_window:
            self._decided.popitem(last=False)
        self._epoch_seq = epoch_seq
        self._grant_ewma = float(lease_demand_pages)
        self.stats["decided"] += len(self._decided)
