"""DAG-runtime applications: inferred placement vs static baselines.

Runs the two Parla-ported task-DAG applications (Fox's algorithm, blocked
Cholesky) through the ``repro.runtime`` frontend and compares four ways of
placing their data on the heterogeneous memory:

* ``pm-only`` -- everything in PM (the paper's normalisation baseline);
* ``dram-greedy`` -- first-fit into DRAM until full, spill to PM;
* ``hand-static`` -- the developer's one-shot priority ranking (what
  Parla's manual ``placement=`` annotations amount to);
* ``merchandiser-dag`` -- placement inferred by the Merchandiser planner
  with the critical-path objective, no annotations in the program.

Also checks the fallback contract: a DAG that *is* a level sequence lowers
to barrier regions and must reproduce the hand-built barrier pipeline's
planner decisions bit-for-bit.
"""

from __future__ import annotations

from repro.apps import DAG_APPS
from repro.baselines import HandPlacedPolicy, PMOnlyPolicy
from repro.baselines.static import DRAMGreedyPolicy
from repro.experiments.common import ExperimentContext, acv, format_table
from repro.runtime import DAGBuilder, DAGExecutor, DAGMerchandiserPolicy
from repro.tasks.task import ParallelRegion, TaskInstanceSpec, Workload

DAG_POLICY_ORDER = ("pm-only", "dram-greedy", "hand-static", "merchandiser-dag")


def barrierify(dags):
    """Rebuild DAGs as explicit level sequences (every node depends on the
    whole previous level) -- the shape that must lower to barrier regions."""
    out = []
    for dag in dags:
        b = DAGBuilder(dag.name)
        for obj in dag.objects:
            b.declare_object(obj)
        prev: list[str] = []
        for level in dag.levels():
            ids = [n.task_id for n in level]
            for n in level:
                b.add_task(
                    n.task_id, n.footprint, deps=prev, input_vector=n.input_vector
                )
            prev = ids
        out.append(b.build())
    return out


def _barrier_workload(dags) -> Workload:
    """The hand-written barrier program equivalent to a level-sequence DAG."""
    regions = []
    for it, dag in enumerate(dags):
        for k, level in enumerate(dag.levels()):
            regions.append(
                ParallelRegion(
                    name=f"it{it}.wave{k}",
                    instances=tuple(
                        TaskInstanceSpec(n.task_id, n.footprint, n.input_vector)
                        for n in level
                    ),
                )
            )
    return Workload(
        name=dags[0].name, objects=dags[0].objects, regions=tuple(regions)
    )


def check_barrier_bitexact(ctx: ExperimentContext, app) -> dict[str, object]:
    """Level-sequence DAG through the runtime == hand-built barrier program."""
    dags = barrierify(app.build_dags())
    binding = app.binding(dags)

    dag_policy = ctx.system.policy(
        binding, seed=ctx.seed + 5, policy_cls=DAGMerchandiserPolicy
    )
    dag_result = DAGExecutor(ctx.engine).run(dags, dag_policy, seed=ctx.seed + 1)

    # same policy class with no DAG bound: the planner sees the identical
    # lifecycle but can only use the barrier objective
    hand_policy = ctx.system.policy(
        binding, seed=ctx.seed + 5, policy_cls=DAGMerchandiserPolicy
    )
    hand_run = ctx.engine.run(
        _barrier_workload(dags), hand_policy, seed=ctx.seed + 1
    )

    plans_equal = [
        p.r_by_task() for p in dag_policy.plans
    ] == [p.r_by_task() for p in hand_policy.plans]
    return {
        "mode": dag_result.mode,
        "plans": len(dag_policy.plans),
        "plans_bitexact": plans_equal,
        "makespan_dag_s": dag_result.makespan_s,
        "makespan_hand_s": hand_run.total_time_s,
        "makespan_bitexact": dag_result.makespan_s == hand_run.total_time_s,
    }


def run(ctx: ExperimentContext) -> dict[str, object]:
    results: dict[str, object] = {}
    rows = []
    for app_cls in DAG_APPS:
        app = app_cls.paper_scale(seed=ctx.seed)
        dags = app.build_dags()
        binding = app.binding(dags)
        policies = {
            "pm-only": PMOnlyPolicy(),
            "dram-greedy": DRAMGreedyPolicy(),
            "hand-static": HandPlacedPolicy(app.hand_priority()),
            "merchandiser-dag": ctx.system.policy(
                binding, seed=ctx.seed + 5, policy_cls=DAGMerchandiserPolicy
            ),
        }
        app_out: dict[str, object] = {}
        mode = None
        for name in DAG_POLICY_ORDER:
            res = DAGExecutor(ctx.engine).run(
                dags, policies[name], seed=ctx.seed + 1
            )
            mode = res.mode
            app_out[name] = {
                "makespan_s": res.makespan_s,
                "acv": acv(res.node_busy_times().values()),
            }
        pm = app_out["pm-only"]["makespan_s"]
        for name in DAG_POLICY_ORDER:
            app_out[name]["speedup_vs_pm"] = pm / app_out[name]["makespan_s"]

        merch = policies["merchandiser-dag"]
        dag = dags[0]
        app_out["graph"] = {
            "mode": mode,
            "tasks": len(dag.nodes),
            "edges": len(dag.edges()),
            "edge_sources": dag.edge_sources(),
            "levels": len(dag.levels()),
            "iterations": len(dags),
        }
        app_out["planner"] = {
            "plans": len(merch.plans),
            "dag_plans": len(merch.dag_plans),
            "critical_path_objective": any(
                p.shifted for p in merch.dag_plans
            ),
            "predicted_critical_paths_s": [
                p.predicted_critical_path_s for p in merch.dag_plans
            ],
        }
        app_out["barrier_fallback"] = check_barrier_bitexact(ctx, app)
        results[app.name] = app_out
        for name in DAG_POLICY_ORDER:
            rows.append(
                [
                    app.name,
                    name,
                    app_out[name]["makespan_s"],
                    app_out[name]["speedup_vs_pm"],
                    app_out[name]["acv"],
                ]
            )

    print(
        format_table(
            ["app", "policy", "makespan (s)", "speedup vs PM", "ACV"], rows
        )
    )
    for app_name, app_out in results.items():
        fb = app_out["barrier_fallback"]
        print(
            f"{app_name}: mode={app_out['graph']['mode']} "
            f"edges={app_out['graph']['edges']} (all inferred) | "
            f"barrier fallback bit-exact: plans={fb['plans_bitexact']} "
            f"makespan={fb['makespan_bitexact']}"
        )
    return results
