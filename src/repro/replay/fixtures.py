"""Record the committed golden replay fixtures.

``python -m repro.replay.fixtures`` stands up the real loopback transport
-- wire faults on, several concurrent retrying clients -- with a
streaming :class:`~repro.replay.recorder.FlightRecorder` tapped into the
placement server, records a full trace, then **immediately replays it**
and refuses to write a fixture that is not bit-exact.  The resulting
``golden_loopback.mfr`` is what CI's ``replay_gate`` smoke and the
nightly A/B job replay.

The recording's meta carries ``model_seed``/``fast`` instead of model
weights: the trained model is a deterministic function of those (the same
assumption the cluster bit-exactness tests already rely on), so any
checkout can rebuild the exact planner the fixture was recorded against.
"""

from __future__ import annotations

import argparse
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.replay.config import ServiceConfig, build_server
from repro.replay.recorder import FlightRecorder, Recording
from repro.replay.replayer import ReplayReport, replay_recording
from repro.service import (
    PlacementClient,
    PlacementRequest,
    PlacementTransportServer,
    RetryPolicy,
)
from repro.sim import optane_hm_config
from repro.sim.faults import FaultConfig, FaultInjector

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel
    from repro.core.telemetry import Telemetry

__all__ = ["DEFAULT_OUT_DIR", "GOLDEN_NAME", "main", "record_loopback_trace"]

DEFAULT_OUT_DIR = Path("results/replay_fixtures")
GOLDEN_NAME = "golden_loopback.mfr"

#: per-reply wire fault rates while recording (mirrors transport_load's
#: soak; wire faults exercise the retry/idempotency machinery without
#: perturbing the server-side command journal)
WIRE_FAULTS = dict(
    wire_torn_frame_rate=0.04,
    wire_corrupt_rate=0.04,
    wire_stall_rate=0.04,
    wire_stall_s=0.05,
    wire_disconnect_rate=0.03,
)


def _catalogue(seed: int, n_shapes: int, tasks_per_shape: int):
    from types import SimpleNamespace

    from repro.experiments.service_load import _region_catalogue

    # _region_catalogue only reads ctx.seed; a shim avoids training a
    # second system just to build task shapes
    return _region_catalogue(
        SimpleNamespace(seed=seed), n_shapes, tasks_per_shape
    )


def _client_worker(
    host: str, port: int, requests: list[PlacementRequest], seed: int
) -> None:
    with PlacementClient(
        host,
        port,
        retry=RetryPolicy(
            connect_timeout_s=2.0,
            request_timeout_s=1.0,
            max_attempts=6,
            backoff_base_s=0.01,
            backoff_cap_s=0.1,
        ),
        seed=seed,
    ) as client:
        for req in requests:
            client.request(req)


def record_loopback_trace(
    model: "PerformanceModel",
    out_path: str | Path,
    *,
    seed: int = 0,
    fast: bool = True,
    n_clients: int = 4,
    per_client: int = 60,
    tag: str = "fx",
    telemetry: "Telemetry | None" = None,
) -> tuple[Recording, dict]:
    """Record one wire-faulted loopback trace to ``out_path``.

    Returns the loaded :class:`Recording` plus the transport's stats.
    The recorder is flushed (durability barrier) before the transport
    shuts down, and the file is re-loaded from disk so what we return is
    exactly what a later replay will read.
    """
    catalogue = _catalogue(seed, n_shapes=8, tasks_per_shape=3)
    from repro.experiments.service_load import TENANTS

    hm = optane_hm_config()
    config = ServiceConfig(
        dram_capacity_bytes=hm.dram.capacity_bytes,
        window_s=0.005,
        max_batch=32,
        cache_capacity=512,
    )
    recorder = FlightRecorder(
        out_path,
        meta={
            "config": config.to_dict(),
            "model_seed": seed,
            "fast": fast,
            "recorded_over": "loopback",
            "wire_faults": WIRE_FAULTS,
            "clients": n_clients,
            "per_client": per_client,
        },
        telemetry=telemetry,
    )
    server = build_server(
        config, model, clock=time.monotonic,
        telemetry=telemetry, recorder=recorder,
    )
    transport = PlacementTransportServer(
        server,
        idle_timeout_s=10.0,
        telemetry=telemetry,
        faults=FaultInjector(FaultConfig(**WIRE_FAULTS), seed=seed + 301),
    )
    workloads = [
        [
            PlacementRequest(
                request_id=f"{tag}-c{c}-{i:04d}",
                tenant=TENANTS[(c + i) % len(TENANTS)],
                tasks=catalogue[(c * 7 + i) % len(catalogue)],
            )
            for i in range(per_client)
        ]
        for c in range(n_clients)
    ]
    with transport:
        host, port = transport.address
        threads = [
            threading.Thread(
                target=_client_worker,
                args=(host, port, workloads[c], seed + 400 + c),
                name=f"fixture-client-{c}",
            )
            for c in range(n_clients)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        recorder.flush()
    # snapshot after shutdown so teardown accounting (cancelled pump loop,
    # swallowed close errors) is included
    stats = dict(transport.stats)
    recorder.close()
    return Recording.load(out_path), stats


def verify_roundtrip(
    recording: Recording, model: "PerformanceModel"
) -> ReplayReport:
    """Replay the freshly-recorded trace; raise unless bit-exact."""
    report = replay_recording(recording, model)
    if not report.ok():
        detail = report.to_dict()
        raise AssertionError(
            f"fresh recording does not replay bit-exact: "
            f"divergent={detail['divergent']} lost={detail['lost']} "
            f"duplicated={detail['duplicated']} "
            f"first_divergence={detail['first_divergence']}"
        )
    return report


def main(
    argv: list[str] | None = None, *, model: "PerformanceModel | None" = None
) -> int:
    parser = argparse.ArgumentParser(
        prog="replay-fixtures",
        description="Record (and verify) the golden replay fixture traces.",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT_DIR),
        help="output directory (default: %(default)s)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full", action="store_true",
        help="record against the full-strength (paper-sized) model",
    )
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--per-client", type=int, default=60)
    args = parser.parse_args(argv)

    fast = not args.full
    if model is None:
        from repro.experiments.common import ExperimentContext

        model = ExperimentContext(seed=args.seed, fast=fast).system.performance_model

    out = Path(args.out) / GOLDEN_NAME
    recording, stats = record_loopback_trace(
        model,
        out,
        seed=args.seed,
        fast=fast,
        n_clients=args.clients,
        per_client=args.per_client,
    )
    report = verify_roundtrip(recording, model)
    print(
        f"recorded {recording.n_requests} requests / "
        f"{recording.n_decisions} decisions to {out} "
        f"({stats['resubmissions']} resubmissions, "
        f"{stats['replies']} replies on the wire)"
    )
    print(
        f"verified: replay matched {report.matched}/{report.expected_decisions} "
        f"decisions bit-exact (0 divergent, 0 lost, 0 duplicated)"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
