"""MPI-like and OpenMP-like front-ends for building workloads.

The paper studies both MPI-based applications (each MPI process performs a
task, Figure 1.a) and OpenMP-based ones (each thread in a parallel region
performs a task, Figure 1.b).  Both reduce to the same barrier-synchronised
:class:`~repro.tasks.task.Workload`; these front-ends give applications the
familiar vocabulary (ranks, thread teams) and enforce its conventions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.tasks.task import (
    DataObject,
    Footprint,
    ParallelRegion,
    TaskInstanceSpec,
    Workload,
)

__all__ = ["MPIProgram", "OpenMPProgram"]


class _ProgramBase:
    """Shared builder machinery for both front-ends."""

    def __init__(self, name: str, n_tasks: int, task_prefix: str) -> None:
        if n_tasks <= 0:
            raise ValueError("need at least one task")
        self.name = name
        self.n_tasks = n_tasks
        self._task_prefix = task_prefix
        self._objects: list[DataObject] = []
        self._regions: list[ParallelRegion] = []

    def task_id(self, index: int) -> str:
        """Canonical task id for a rank/thread index."""
        if not 0 <= index < self.n_tasks:
            raise IndexError(f"task index {index} out of range 0..{self.n_tasks - 1}")
        return f"{self._task_prefix}{index}"

    @property
    def task_ids(self) -> tuple[str, ...]:
        return tuple(self.task_id(i) for i in range(self.n_tasks))

    def declare_object(self, obj: DataObject) -> DataObject:
        """Register a data object (the LB_HM_config analogue happens later,
        in :func:`repro.core.api.lb_hm_config`)."""
        if any(o.name == obj.name for o in self._objects):
            raise ValueError(f"object {obj.name!r} declared twice")
        self._objects.append(obj)
        return obj

    def parallel_region(
        self,
        name: str,
        footprints: Sequence[Footprint],
        input_vectors: Sequence[Sequence[float]] | None = None,
        kind: str = "",
    ) -> ParallelRegion:
        """Add a barrier-terminated region with one instance per task.

        ``footprints[i]`` is executed by task ``i``; the implicit barrier at
        the end of the region is what couples the tasks' completion times.
        """
        if len(footprints) != self.n_tasks:
            raise ValueError(
                f"region {name!r}: expected {self.n_tasks} footprints, "
                f"got {len(footprints)}"
            )
        if input_vectors is None:
            input_vectors = [()] * self.n_tasks
        if len(input_vectors) != self.n_tasks:
            raise ValueError("one input vector per task required")
        instances = tuple(
            TaskInstanceSpec(
                task_id=self.task_id(i),
                footprint=fp,
                input_vector=tuple(float(v) for v in vec),
            )
            for i, (fp, vec) in enumerate(zip(footprints, input_vectors))
        )
        region = ParallelRegion(name=name, instances=instances, kind=kind)
        self._regions.append(region)
        return region

    def build(self) -> Workload:
        """Finalise into an immutable :class:`Workload`."""
        if not self._regions:
            raise ValueError(f"program {self.name!r} has no parallel regions")
        return Workload(
            name=self.name,
            objects=tuple(self._objects),
            regions=tuple(self._regions),
        )


class MPIProgram(_ProgramBase):
    """MPI-style program: one long-lived task per rank (Figure 1.a).

    Each iteration of the application's outer loop (a DMRG sweep, say)
    becomes one parallel region; the global synchronisation at the end of the
    iteration is the region barrier.
    """

    def __init__(self, name: str, n_ranks: int) -> None:
        super().__init__(name, n_ranks, task_prefix="rank")

    @property
    def n_ranks(self) -> int:
        return self.n_tasks


class OpenMPProgram(_ProgramBase):
    """OpenMP-style program: one task per thread in each parallel region
    (Figure 1.b); the implicit barrier at the region end synchronises them."""

    def __init__(self, name: str, n_threads: int) -> None:
        super().__init__(name, n_threads, task_prefix="thread")

    @property
    def n_threads(self) -> int:
        return self.n_tasks
