"""Batching scheduler: coalesce placement requests into one planner call.

The scheduler turns a stream of :class:`PlacementRequest` arrivals into
planner invocations, three mechanisms deep:

* **windowed coalescing** -- requests arriving within ``window_s`` of the
  oldest pending one (or once ``max_batch`` are waiting) form one batch;
* **in-flight deduplication** -- identical queries inside a batch (same
  tenant, region fingerprint, input size and quota bucket) are planned
  once and fanned back out, each duplicate answered with status
  ``deduplicated``;
* **shared-quota arbitration** -- all unique requests of a batch are
  planned *together*: their tasks are namespaced into one task set and
  priced by a single stacked model evaluation
  (:meth:`~repro.core.model.PerformanceModel.ratio_grids`), then
  Algorithm 1 splits the one shared DRAM budget across the union.  The
  sum of granted pages across a batch therefore never exceeds capacity,
  no matter how many tenants collide (quota conservation, tested).

Cached decisions short-circuit planning but still *count against* the
batch's capacity ledger, so a batch mixing hits and misses cannot
over-commit DRAM.

The scheduler is synchronous and clock-free: every method takes ``now``
explicitly.  The server layers real time (or a virtual clock) and worker
pools on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.common import PAGE_SIZE
from repro.core.planner import PlanResult, TaskQuota, greedy_plan
from repro.service.cache import PredictionCache, bucket_ratio
from repro.service.protocol import (
    PlacementDecision,
    PlacementRequest,
    TaskPlacement,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel, TaskModelInputs
    from repro.core.telemetry import Telemetry

__all__ = ["BatchScheduler", "PendingRequest", "PLANNER_BACKENDS"]


@dataclass
class PendingRequest:
    """One admitted, not-yet-decided request."""

    request: PlacementRequest
    admitted_s: float


# ----------------------------------------------------------------------
# planner backends
# ----------------------------------------------------------------------
def _plan_merchandiser(
    scheduler: "BatchScheduler",
    union: "list[TaskModelInputs]",
    task_bytes: dict[str, int],
    capacity_bytes: int,
) -> PlanResult:
    """Algorithm 1 (the incumbent): one stacked model call prices the whole
    union, then the greedy load-balance loop splits capacity."""
    grids = scheduler.model.ratio_grids(union, scheduler._levels)
    return greedy_plan(
        union,
        scheduler.model,
        capacity_bytes,
        task_bytes,
        step=scheduler.step,
        grids=grids,
    )


def _plan_ltr(
    scheduler: "BatchScheduler",
    union: "list[TaskModelInputs]",
    task_bytes: dict[str, int],
    capacity_bytes: int,
) -> PlanResult:
    """Learning-to-rank backend: a pairwise ranker orders the tasks by
    placement merit and each takes its full quota in rank order until the
    budget runs out.  Greedy by *rank*, blind to barrier balance."""
    from repro.ml.ranking import PairwiseRanker, default_object_features

    feats = np.asarray(
        [
            default_object_features(
                task_bytes[t.task_id],
                t.total_accesses / max(t.t_pm_only, 1e-12),
                min(1.0, max(0.0, 1.0 - t.t_dram_only / t.t_pm_only)),
            )
            for t in union
        ]
    )
    # training signal: modeled speedup per byte -- the ranker learns to
    # reproduce it from the features, then scores candidates
    relevance = np.asarray(
        [
            (t.t_pm_only - t.t_dram_only) / max(task_bytes[t.task_id], 1)
            for t in union
        ]
    )
    ranker = PairwiseRanker(feats.shape[1], seed=0)
    if len(union) >= 2 and len(np.unique(relevance)) >= 2:
        ranker.fit_ordered(feats, relevance)
    order = ranker.rank(feats)
    pages_left = capacity_bytes // PAGE_SIZE
    quotas: list[TaskQuota] = []
    by_index: dict[int, TaskQuota] = {}
    for i in order:
        t = union[int(i)]
        task_pages = max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE)))
        pages = min(task_pages, int(pages_left))
        pages_left -= pages
        r = pages / task_pages
        by_index[int(i)] = TaskQuota(
            task_id=t.task_id,
            dram_accesses=r * t.total_accesses,
            r_dram=r,
            dram_pages=pages,
            predicted_time_s=scheduler.model.predict_ratio(t, r),
        )
    quotas = [by_index[i] for i in range(len(union))]
    return PlanResult(
        quotas=tuple(quotas),
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=int(sum(q.dram_pages for q in quotas)),
        rounds=1,
    )


def _plan_interval(
    scheduler: "BatchScheduler",
    union: "list[TaskModelInputs]",
    task_bytes: dict[str, int],
    capacity_bytes: int,
) -> PlanResult:
    """Interval-reconfiguration backend: capacity follows measured access
    rate, re-derived from scratch on every batch (hotness-proportional,
    Olson-style).  No model of completion times, no balance objective."""
    rates = np.asarray(
        [t.total_accesses / max(t.t_pm_only, 1e-12) for t in union]
    )
    total_rate = float(rates.sum())
    capacity_pages = capacity_bytes // PAGE_SIZE
    task_pages = [
        max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE))) for t in union
    ]
    grant = [
        min(tp, int(capacity_pages * (float(r) / total_rate)))
        if total_rate > 0
        else 0
        for tp, r in zip(task_pages, rates)
    ]
    # leftover pages go to the hottest tasks first (deterministic order)
    left = capacity_pages - sum(grant)
    for i in np.argsort(-rates, kind="stable"):
        if left <= 0:
            break
        extra = min(task_pages[i] - grant[i], int(left))
        grant[i] += extra
        left -= extra
    quotas = []
    for t, tp, g in zip(union, task_pages, grant):
        r = g / tp
        quotas.append(
            TaskQuota(
                task_id=t.task_id,
                dram_accesses=r * t.total_accesses,
                r_dram=r,
                dram_pages=g,
                predicted_time_s=scheduler.model.predict_ratio(t, r),
            )
        )
    return PlanResult(
        quotas=tuple(quotas),
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=int(sum(q.dram_pages for q in quotas)),
        rounds=1,
    )


#: pluggable allocation strategies for :meth:`BatchScheduler._plan_union`.
#: "merchandiser" is the default and keeps the service bit-identical to the
#: registry-free scheduler; the alternatives are competing backends the
#: conformance harness holds to the same capacity-conservation invariants.
PLANNER_BACKENDS: dict = {
    "merchandiser": _plan_merchandiser,
    "ltr": _plan_ltr,
    "interval": _plan_interval,
}


class BatchScheduler:
    """Window/size-triggered batching over Algorithm 1."""

    def __init__(
        self,
        model: "PerformanceModel",
        dram_capacity_bytes: int,
        window_s: float = 0.005,
        max_batch: int = 32,
        step: float = 0.05,
        cache: PredictionCache | None = None,
        telemetry: "Telemetry | None" = None,
        backend: str = "merchandiser",
    ) -> None:
        if dram_capacity_bytes <= 0:
            raise ValueError("dram_capacity_bytes must be positive")
        if window_s < 0:
            raise ValueError("window_s must be >= 0 (0 = singleton batches)")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if backend not in PLANNER_BACKENDS:
            raise ValueError(
                f"unknown planner backend {backend!r}; "
                f"available: {sorted(PLANNER_BACKENDS)}"
            )
        self.backend = backend
        self.model = model
        self.dram_capacity_bytes = dram_capacity_bytes
        self.window_s = window_s
        self.max_batch = max_batch
        self.step = step
        self.cache = cache
        self.telemetry = telemetry
        self._pending: list[PendingRequest] = []
        # the planner's ratio grid, shared by every batch
        levels = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
        levels[-1] = min(levels[-1], 1.0)
        self._levels = levels

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    @property
    def pending_depth(self) -> int:
        return len(self._pending)

    def submit(self, request: PlacementRequest, now: float) -> None:
        self._pending.append(PendingRequest(request=request, admitted_s=now))
        if self.telemetry is not None:
            self.telemetry.set(
                "merch_service_queue_depth", float(len(self._pending))
            )

    def due(self, now: float) -> bool:
        """Whether a batch should fire at virtual/wall time ``now``."""
        if not self._pending:
            return False
        if len(self._pending) >= self.max_batch:
            return True
        return now - self._pending[0].admitted_s >= self.window_s

    def next_due_at(self) -> float | None:
        """When the oldest pending request's window closes (None if idle)."""
        if not self._pending:
            return None
        return self._pending[0].admitted_s + self.window_s

    def take_batch(self) -> list[PendingRequest]:
        """Remove and return the next batch (oldest ``max_batch`` entries)."""
        batch = self._pending[: self.max_batch]
        self._pending = self._pending[self.max_batch :]
        if self.telemetry is not None:
            self.telemetry.set(
                "merch_service_queue_depth", float(len(self._pending))
            )
        return batch

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def quota_bucket(self, request: PlacementRequest) -> float:
        """The request's DRAM-pressure bucket: capacity / footprint,
        clamped to [0, 1] and snapped to the planner step.  Part of the
        cache key -- a decision is only reusable under the same pressure."""
        ratio = self.dram_capacity_bytes / max(request.input_size_bytes, 1)
        return bucket_ratio(min(ratio, 1.0), self.step)

    def plan_batch(
        self, batch: Sequence[PendingRequest], now: float
    ) -> list[PlacementDecision]:
        """Decide every request of one batch; order follows the batch.

        Never raises for planner-level problems with a single request;
        the caller (server) handles crash faults around the whole call.
        """
        if not batch:
            return []
        capacity_pages = self.dram_capacity_bytes // PAGE_SIZE
        # 1. deduplicate identical in-flight queries
        unique: dict[tuple, list[PendingRequest]] = {}
        for entry in batch:
            key = entry.request.dedup_key(self.quota_bucket(entry.request))
            unique.setdefault(key, []).append(entry)
        # 2. serve what the cache already knows; its grants join the ledger
        decisions: dict[str, PlacementDecision] = {}
        planned_entries: list[tuple[tuple, PendingRequest]] = []
        pages_granted = 0
        for key, entries in unique.items():
            primary = entries[0]
            cached = None
            if self.cache is not None:
                cached = self.cache.get(
                    primary.request.cache_key(self.quota_bucket(primary.request))
                )
            if cached is not None:
                decisions[primary.request.request_id] = self._restamp(
                    cached, primary.request, "cached", len(batch)
                )
                pages_granted += cached.dram_pages_granted
            else:
                planned_entries.append((key, primary))
        # 3. one shared-quota plan over the union of the remaining tasks
        if planned_entries:
            fresh = self._plan_union(
                planned_entries,
                capacity_bytes=max(
                    (capacity_pages - pages_granted) * PAGE_SIZE, 0
                ),
                batch_size=len(batch),
            )
            for (key, primary), decision in zip(planned_entries, fresh):
                decisions[primary.request.request_id] = decision
                pages_granted += decision.dram_pages_granted
                if self.cache is not None:
                    self.cache.put(
                        primary.request.cache_key(
                            self.quota_bucket(primary.request)
                        ),
                        decision,
                        tags=(primary.request.region_fingerprint,),
                    )
        # 4. fan decisions back out to duplicates, in batch order
        out: list[PlacementDecision] = []
        for entry in batch:
            req = entry.request
            if req.request_id in decisions:
                out.append(decisions[req.request_id])
                continue
            key = req.dedup_key(self.quota_bucket(req))
            primary = unique[key][0]
            out.append(
                self._restamp(
                    decisions[primary.request.request_id],
                    req,
                    "deduplicated",
                    len(batch),
                )
            )
        if self.telemetry is not None:
            self.telemetry.inc("merch_service_batches_total")
            self.telemetry.observe(
                "merch_service_batch_size_requests", float(len(batch))
            )
            for dec in out:
                self.telemetry.inc(
                    "merch_service_requests_total", status=dec.status
                )
            if pages_granted:
                self.telemetry.inc(
                    "merch_service_dram_pages_granted_total", pages_granted
                )
        return out

    # ------------------------------------------------------------------
    def _plan_union(
        self,
        entries: Sequence[tuple[tuple, PendingRequest]],
        capacity_bytes: int,
        batch_size: int,
    ) -> list[PlacementDecision]:
        """Plan several requests as one namespaced task set."""
        from repro.core.model import TaskModelInputs

        union: list[TaskModelInputs] = []
        task_bytes: dict[str, int] = {}
        for i, (_, entry) in enumerate(entries):
            for spec in entry.request.tasks:
                uid = f"{i}:{spec.task_id}"
                union.append(
                    TaskModelInputs(
                        task_id=uid,
                        t_pm_only=spec.t_pm_only,
                        t_dram_only=spec.t_dram_only,
                        total_accesses=spec.total_accesses,
                        pmcs=spec.pmcs,
                    )
                )
                task_bytes[uid] = spec.size_bytes
        if capacity_bytes < PAGE_SIZE:
            # the ledger is exhausted (cache hits already hold every page):
            # answer with zero grants rather than refusing
            zero = [
                PlacementDecision(
                    request_id=entry.request.request_id,
                    status="planned",
                    policy=self.backend,
                    placements=tuple(
                        TaskPlacement(
                            task_id=spec.task_id,
                            r_dram=0.0,
                            dram_pages=0,
                            predicted_time_s=spec.t_pm_only,
                        )
                        for spec in entry.request.tasks
                    ),
                    predicted_makespan_s=max(
                        spec.t_pm_only for spec in entry.request.tasks
                    ),
                    dram_pages_granted=0,
                    batch_size=batch_size,
                )
                for _, entry in entries
            ]
            return zero
        # allocation strategy is pluggable; "merchandiser" is Algorithm 1
        # with one stacked model call pricing the whole union
        plan = PLANNER_BACKENDS[self.backend](
            self, union, task_bytes, capacity_bytes
        )
        quotas_by_uid = {q.task_id: q for q in plan.quotas}
        out: list[PlacementDecision] = []
        for i, (_, entry) in enumerate(entries):
            placements = []
            for spec in entry.request.tasks:
                q = quotas_by_uid[f"{i}:{spec.task_id}"]
                placements.append(
                    TaskPlacement(
                        task_id=spec.task_id,
                        r_dram=q.r_dram,
                        dram_pages=q.dram_pages,
                        predicted_time_s=q.predicted_time_s,
                    )
                )
            out.append(
                PlacementDecision(
                    request_id=entry.request.request_id,
                    status="planned",
                    policy=self.backend,
                    placements=tuple(placements),
                    predicted_makespan_s=max(
                        p.predicted_time_s for p in placements
                    ),
                    dram_pages_granted=sum(p.dram_pages for p in placements),
                    batch_size=batch_size,
                )
            )
        return out

    @staticmethod
    def _restamp(
        decision: PlacementDecision,
        request: PlacementRequest,
        status: str,
        batch_size: int,
    ) -> PlacementDecision:
        """A shared decision re-addressed to another request."""
        import dataclasses

        return dataclasses.replace(
            decision,
            request_id=request.request_id,
            status=status,
            batch_size=batch_size,
        )
