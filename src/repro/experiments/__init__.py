"""Experiment harness: one module per table/figure of the paper.

Run everything with::

    python -m repro.experiments.runner all

or a single experiment (``fig4``, ``table3``, ...).  Each module exposes a
``run(ctx)`` function returning a dict of results and printing the paper's
rows/series; ``repro.experiments.common`` provides the shared machinery
(one trained Merchandiser instance, cached engine runs).
"""

from repro.experiments.common import ExperimentContext

__all__ = ["ExperimentContext"]
