"""Differential policy-conformance harness.

Every placement backend in the :mod:`repro.policies` registry -- the
Merchandiser incumbent, the baselines, and the learned-ranking /
interval-reconfiguration alternatives -- is run through one shared
battery of invariants:

* **no over-commit**: at every engine hook, no tier holds more pages
  than its capacity (the 2-tier DRAM budget is the degenerate case);
* **determinism**: two runs with the same seed are identical, tick
  traces included;
* **degenerate bit-exactness**: on a 2-tier topology the ``topology=``
  engine entry point reproduces the classic ``HMConfig`` path
  bit-for-bit, for every backend;
* **plan serialisation**: planner outputs survive a JSON round-trip.

Adding a policy means registering it in
:mod:`repro.policies.registry` -- this file picks it up automatically.
The nightly chaos job re-runs the harness under fault injection
(``MERCH_CHAOS``), which must not break any invariant either.
"""

import json
import os

import numpy as np
import pytest

from repro.common import PAGE_SIZE, AccessPattern
from repro.core import default_system
from repro.core.model import PerformanceModel
from repro.core.planner import (
    PlanResult,
    TaskQuota,
    TieredPlanResult,
    tiered_greedy_plan,
)
from repro.policies import PolicyBuildContext, build_policy, registered_policies
from repro.sim import Engine, MachineModel, optane_hm_config
from repro.sim.faults import FaultConfig, FaultInjector
from repro.sim.memspec import TierSpec, TopologySpec
from repro.sim.pages import TieredPageTable
from repro.tasks import DataObject, Footprint, MPIProgram, ObjectAccess

MB = 1 << 20

#: chaos mode: re-run every invariant under fault injection (nightly CI)
CHAOS = os.environ.get("MERCH_CHAOS", "") not in ("", "0")


@pytest.fixture(scope="module")
def model():
    return PerformanceModel(default_system(seed=0, fast=True).correlation)


def small_topology(n_tiers: int) -> TopologySpec:
    """A shrunk n-tier machine whose fast tiers cannot hold the workload,
    so capacity pressure (the invariant under test) is real."""
    caps = {
        2: (16 * MB, 1024 * MB),
        3: (8 * MB, 16 * MB, 1024 * MB),
        4: (8 * MB, 12 * MB, 16 * MB, 1024 * MB),
    }[n_tiers]
    tiers = tuple(
        TierSpec(
            name=f"t{k}",
            capacity_bytes=cap,
            seq_read_latency_ns=10.0 * (k + 1),
            rand_read_latency_ns=60.0 * (k + 1),
            read_bandwidth=1e11 / (k + 1),
            write_bandwidth=5e10 / (k + 1),
        )
        for k, cap in enumerate(caps)
    )
    return TopologySpec(tiers=tiers)


def toy_workload(n_tasks=3, regions=2):
    prog = MPIProgram("conform", n_tasks)
    fps = []
    for i in range(n_tasks):
        prog.declare_object(
            DataObject(f"obj{i}", 16 * MB, owner=prog.task_id(i))
        )
        fps.append(
            Footprint(
                accesses=(
                    ObjectAccess(
                        f"obj{i}",
                        AccessPattern.RANDOM,
                        reads=200_000 * (1 + i),
                    ),
                ),
                instructions=1_000_000,
            )
        )
    for r in range(regions):
        prog.parallel_region(f"iter{r}", fps, kind="iter")
    return prog.build()


class InvariantProbe:
    """Delegating policy wrapper that checks occupancy at every hook."""

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self.violations: list[tuple[float, int, float, float]] = []

    def _check(self, ctx) -> None:
        table = ctx.page_table
        if isinstance(table, TieredPageTable):
            for k in range(table.n_tiers):
                used = table.tier_used_pages(k)
                cap = table.tier_capacity_pages[k]
                if used > cap + 1e-6:
                    self.violations.append((ctx.time, k, used, float(cap)))
        else:
            used = table.dram_used_bytes()
            cap = table.dram_capacity_bytes
            if used > cap + 1e-6 * PAGE_SIZE:
                self.violations.append((ctx.time, 0, used, float(cap)))

    def on_workload_start(self, ctx):
        self.inner.on_workload_start(ctx)
        self._check(ctx)

    def on_region_start(self, ctx):
        self.inner.on_region_start(ctx)
        self._check(ctx)

    def on_tick(self, ctx, dt):
        batch = self.inner.on_tick(ctx, dt)
        self._check(ctx)
        return batch

    def on_region_end(self, ctx):
        self.inner.on_region_end(ctx)
        self._check(ctx)

    def snapshot_state(self):
        return self.inner.snapshot_state()

    def restore_state(self, state):
        self.inner.restore_state(state)

    def on_recover(self, ctx):
        self.inner.on_recover(ctx)


def engine_for(topo: TopologySpec) -> Engine:
    faults = None
    if CHAOS:
        faults = FaultInjector(
            FaultConfig(
                migration_fail_rate=0.1,
                pm_bw_degradation_rate=0.2,
                dram_pressure_rate=0.2,
            ),
            seed=7,
        )
    return Engine(MachineModel(), topology=topo, faults=faults)


def build(spec, topo, model, seed=3):
    ctx = PolicyBuildContext(
        machine=MachineModel(), topology=topo, model=model, seed=seed
    )
    return build_policy(spec.name, ctx)


def _cases():
    out = []
    for n in (2, 3, 4):
        for spec in registered_policies(n):
            out.append(pytest.param(spec, n, id=f"{spec.name}-{n}tier"))
    return out


@pytest.mark.parametrize("spec,n_tiers", _cases())
class TestEveryRegisteredPolicy:
    def test_no_tier_overcommitted(self, spec, n_tiers, model):
        topo = small_topology(n_tiers)
        probe = InvariantProbe(build(spec, topo, model))
        res = engine_for(topo).run(toy_workload(), probe, seed=3)
        assert res.total_time_s > 0
        assert probe.violations == []

    def test_deterministic_per_seed(self, spec, n_tiers, model):
        topo = small_topology(n_tiers)
        wl = toy_workload()
        a = engine_for(topo).run(wl, build(spec, topo, model), seed=3)
        b = engine_for(topo).run(wl, build(spec, topo, model), seed=3)
        assert a.total_time_s == b.total_time_s
        assert a.pages_migrated == b.pages_migrated
        np.testing.assert_array_equal(a.trace_time, b.trace_time)
        np.testing.assert_array_equal(a.trace_dram_bw, b.trace_dram_bw)
        np.testing.assert_array_equal(a.trace_pm_bw, b.trace_pm_bw)
        np.testing.assert_array_equal(a.trace_migration_bw, b.trace_migration_bw)


@pytest.mark.parametrize(
    "spec", [pytest.param(s, id=s.name) for s in registered_policies(2)]
)
class TestDegenerateTwoTier:
    """``Engine(topology=2-tier)`` must equal ``Engine(hm=...)`` exactly."""

    def test_bit_exact_against_hm_path(self, spec, model):
        hm = optane_hm_config()
        topo = TopologySpec.from_hm(hm)
        wl = toy_workload()
        classic = Engine(MachineModel(), hm).run(
            wl, build(spec, topo, model), seed=3
        )
        via_topo = Engine(MachineModel(), topology=topo).run(
            wl, build(spec, topo, model), seed=3
        )
        assert classic.total_time_s == via_topo.total_time_s
        assert classic.pages_migrated == via_topo.pages_migrated
        np.testing.assert_array_equal(classic.trace_time, via_topo.trace_time)
        np.testing.assert_array_equal(
            classic.trace_dram_bw, via_topo.trace_dram_bw
        )
        np.testing.assert_array_equal(
            classic.trace_pm_bw, via_topo.trace_pm_bw
        )


class TestPlanSerialisation:
    def test_two_tier_plan_roundtrip(self):
        plan = PlanResult(
            quotas=(
                TaskQuota("a", 1000.0, 0.25, 64, 1.5),
                TaskQuota("b", 500.0, 0.75, 192, 1.4),
            ),
            predicted_makespan_s=1.5,
            dram_pages_used=256,
            rounds=3,
        )
        back = PlanResult.from_jsonable(json.loads(json.dumps(plan.to_jsonable())))
        assert back == plan

    def test_tiered_plan_roundtrip_from_live_policy(self, model):
        topo = small_topology(3)
        policy = build(registered_policies()[0], topo, model)
        engine_for(topo).run(toy_workload(), policy, seed=3)
        assert policy.plans, "incumbent produced no plans"
        for plan in policy.plans:
            payload = json.loads(json.dumps(plan.to_jsonable()))
            back = TieredPlanResult.from_jsonable(payload)
            assert back == plan

    def test_tiered_plan_never_exceeds_capacity(self, model):
        topo = small_topology(4)
        policy = build(registered_policies()[0], topo, model)
        engine_for(topo).run(toy_workload(), policy, seed=3)
        caps = tuple(c // PAGE_SIZE for c in topo.capacity_vector())
        for plan in policy.plans:
            for k in range(topo.n_tiers):
                granted = sum(q.pages[k] for q in plan.quotas)
                assert granted <= caps[k] + 1e-6


class TestRegistry:
    def test_unknown_policy_raises_keyerror(self, model):
        topo = small_topology(2)
        ctx = PolicyBuildContext(
            machine=MachineModel(), topology=topo, model=model
        )
        with pytest.raises(KeyError):
            build_policy("no-such-policy", ctx)

    def test_two_tier_only_backends_rejected_on_three_tiers(self, model):
        topo = small_topology(3)
        ctx = PolicyBuildContext(
            machine=MachineModel(), topology=topo, model=model
        )
        names = {s.name for s in registered_policies(3)}
        assert "memory-mode" not in names
        with pytest.raises(ValueError):
            build_policy("memory-mode", ctx)

    def test_duplicate_registration_rejected(self):
        from repro.policies.registry import PolicySpec, register_policy

        taken = registered_policies()[0]
        with pytest.raises(ValueError):
            register_policy(
                PolicySpec(
                    name=taken.name,
                    description="dup",
                    build=taken.build,
                )
            )

    def test_every_spec_reports_supported_tier_range(self):
        for spec in registered_policies():
            assert not spec.supports(1)
            assert spec.supports(2)
