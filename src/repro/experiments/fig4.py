"""Figure 4: overall performance, normalised to PM-only.

The paper's headline numbers (Section 7.1):

* Merchandiser over PM-only:        +23.6% average (up to +37.8%)
* Merchandiser over Memory Mode:    +17.1% average (up to +26.0%)
* Merchandiser over MemoryOptimizer:+15.4% average (up to +23.2%)
* vs application-specific systems:  +17.3% over Sparta (SpGEMM),
                                    -4.6% vs WarpX-PM (WarpX)

Shape requirements: Merchandiser wins on every app; its edge over Memory
Mode is largest on the irregular apps (SpGEMM, BFS, NWChem-TC), its edge
over MemoryOptimizer on the regular ones (WarpX, DMRG).
"""

from __future__ import annotations

import numpy as np

from repro.apps import ALL_APPS, SpGEMMApp, WarpXApp
from repro.experiments.common import (
    POLICY_ORDER,
    ExperimentContext,
    format_table,
)

PAPER_AVERAGES = {
    "merch_over_pm": 1.236,
    "merch_over_mm": 1.171,
    "merch_over_mo": 1.154,
}


def run(ctx: ExperimentContext) -> dict[str, object]:
    speedups: dict[str, dict[str, float]] = {}
    rows = []
    for app_cls in ALL_APPS:
        name = ctx.app(app_cls).name
        pm = ctx.run(app_cls, "pm-only").total_time_s
        per_policy = {}
        for policy in POLICY_ORDER[1:]:
            per_policy[policy] = pm / ctx.run(app_cls, policy).total_time_s
        if app_cls is SpGEMMApp:
            per_policy["sparta"] = pm / ctx.run(app_cls, "sparta").total_time_s
        if app_cls is WarpXApp:
            per_policy["warpx-pm"] = pm / ctx.run(app_cls, "warpx-pm").total_time_s
        speedups[name] = per_policy
        rows.append(
            [
                name,
                per_policy["memory-mode"],
                per_policy["memory-optimizer"],
                per_policy["merchandiser"],
                per_policy.get("sparta", per_policy.get("warpx-pm", "-")),
            ]
        )

    merch = np.array([s["merchandiser"] for s in speedups.values()])
    mm = np.array([s["memory-mode"] for s in speedups.values()])
    mo = np.array([s["memory-optimizer"] for s in speedups.values()])
    summary = {
        "merch_over_pm": float(merch.mean()),
        "merch_over_pm_max": float(merch.max()),
        "merch_over_mm": float((merch / mm).mean()),
        "merch_over_mm_max": float((merch / mm).max()),
        "merch_over_mo": float((merch / mo).mean()),
        "merch_over_mo_max": float((merch / mo).max()),
    }
    sp = speedups["SpGEMM"]
    wx = speedups["WarpX"]
    summary["merch_over_sparta"] = sp["merchandiser"] / sp["sparta"]
    summary["merch_vs_warpx_pm"] = wx["merchandiser"] / wx["warpx-pm"]

    print("Figure 4: speedup over PM-only execution")
    print(
        format_table(
            ["application", "Memory Mode", "MemoryOptimizer", "Merchandiser", "app-specific"],
            rows,
        )
    )
    print(
        f"  Merchandiser avg over PM-only: {summary['merch_over_pm']:.3f} "
        f"(max {summary['merch_over_pm_max']:.3f}; paper avg {PAPER_AVERAGES['merch_over_pm']})"
    )
    print(
        f"  Merchandiser avg over Memory Mode: {summary['merch_over_mm']:.3f} "
        f"(max {summary['merch_over_mm_max']:.3f}; paper avg {PAPER_AVERAGES['merch_over_mm']})"
    )
    print(
        f"  Merchandiser avg over MemoryOptimizer: {summary['merch_over_mo']:.3f} "
        f"(max {summary['merch_over_mo_max']:.3f}; paper avg {PAPER_AVERAGES['merch_over_mo']})"
    )
    print(
        f"  vs Sparta (SpGEMM): {summary['merch_over_sparta']:.3f} (paper 1.173); "
        f"vs WarpX-PM (WarpX): {summary['merch_vs_warpx_pm']:.3f} (paper 0.954)"
    )
    return {"speedups": speedups, "summary": summary}
