"""Observability experiment: telemetry cost and non-interference.

Quantifies what ``repro.core.telemetry`` costs and proves what it must not
change, on the five table1 application workloads under the full
Merchandiser policy:

* **telemetry off is free**: a run with ``telemetry=None`` (the default) is
  bit-identical to a second off run -- attaching nothing changes nothing;
* **telemetry on is invisible in virtual time**: a run with a live
  :class:`~repro.core.telemetry.Telemetry` produces bit-identical *virtual*
  results (total time, per-region busy/wait times, migrated pages,
  bandwidth traces) -- instrumentation draws no RNG and never touches
  engine state;
* **telemetry on is cheap**: the recording cost stays under the 5% budget
  documented in OBSERVABILITY.md.

Measurement methodology.  End-to-end timing diffs cannot resolve the real
cost: one run takes seconds while the instrumentation adds fractions of a
millisecond, far below the run-to-run noise of a shared host (the paired
CPU-time delta is still reported, as ``end_to_end_overhead_ratio``, for
cross-checking).  The headline ``overhead_ratio`` is therefore measured by
*direct accounting*: count every telemetry operation the instrumented run
actually records (metric updates via :attr:`Telemetry.op_count`, spans via
``len(tracer.spans)``), microbenchmark the per-operation cost of those same
code paths, and divide the total accounted cost by the run's CPU time.
That counts every operation at full measured cost -- an upper estimate of
the added work, yet still orders of magnitude below the budget.
"""

from __future__ import annotations

import hashlib
import time

from repro.apps import ALL_APPS
from repro.core.telemetry import Telemetry, parse_exposition
from repro.experiments.common import ExperimentContext, format_table
from repro.sim import Engine, MachineModel, RunResult, optane_hm_config

#: overhead budget for a fully instrumented run (documented in
#: OBSERVABILITY.md and enforced by tests/test_telemetry_integration.py)
OVERHEAD_BUDGET = 0.05

#: timed runs per mode per app (minimum taken, fingerprints from all)
REPEATS = 2

#: iterations for the per-operation microbenchmark
BENCH_N = 20_000


def _fingerprint(res: RunResult) -> str:
    """Hash of everything a run computes in *virtual* time."""
    h = hashlib.sha256()
    h.update(f"{res.total_time_s!r}|{res.pages_migrated}|".encode())
    for region in res.regions:
        h.update(f"{region.name}|{region.start_s!r}|{region.end_s!r}".encode())
        for task in sorted(region.busy_s):
            h.update(f"{task}={region.busy_s[task]!r}".encode())
        for task in sorted(region.wait_s):
            h.update(f"{task}={region.wait_s[task]!r}".encode())
    for arr in (
        res.trace_time,
        res.trace_dram_bw,
        res.trace_pm_bw,
        res.trace_migration_bw,
    ):
        h.update(arr.tobytes())
    return h.hexdigest()


def _per_op_costs() -> tuple[float, float]:
    """(seconds per metric update, seconds per span) on this host.

    Exercises the same code paths the engine/policy instrumentation uses:
    labelled counter inc, histogram observe, gauge set, and a begin/end
    span pair.
    """
    tel = Telemetry()
    t0 = time.process_time()
    for _ in range(BENCH_N):
        tel.inc("merch_engine_pages_migrated_total", 1.0, cause="policy")
        tel.observe("merch_engine_region_duration_seconds", 1.0)
        tel.set("merch_engine_dram_occupancy_ratio", 0.5)
    metric_cost = (time.process_time() - t0) / (3 * BENCH_N)
    tracer = Telemetry().tracer
    t0 = time.process_time()
    for i in range(BENCH_N):
        span = tracer.begin("bench", float(i), track="virtual", idx=i)
        tracer.end(span, float(i) + 0.5)
    span_cost = (time.process_time() - t0) / BENCH_N
    return metric_cost, span_cost


def run(ctx: ExperimentContext) -> dict[str, object]:
    machine = MachineModel()
    hm = optane_hm_config()
    metric_cost, span_cost = _per_op_costs()
    apps: dict[str, dict[str, object]] = {}
    rows = []
    all_off_identical = True
    all_virtual_identical = True
    last_telemetry: Telemetry | None = None

    for app_cls in ALL_APPS:
        app = ctx.app(app_cls)
        wl = ctx.workload(app_cls)

        def one_run(telemetry: Telemetry | None) -> tuple[RunResult, float]:
            engine = Engine(machine, hm, telemetry=telemetry)
            policy = ctx.system.policy(app.binding(wl), seed=ctx.seed + 5)
            t0 = time.process_time()
            res = engine.run(wl, policy, seed=ctx.seed + 1)
            return res, time.process_time() - t0

        # interleaved off/on pairs: fingerprints from every run, CPU-time
        # minimum per mode
        off_fps: list[str] = []
        on_fps: list[str] = []
        cpu_off = float("inf")
        cpu_on = float("inf")
        metric_ops = 0
        span_ops = 0
        for _ in range(REPEATS):
            res, dt = one_run(None)
            off_fps.append(_fingerprint(res))
            cpu_off = min(cpu_off, dt)
            last_telemetry = Telemetry()
            res, dt = one_run(last_telemetry)
            on_fps.append(_fingerprint(res))
            cpu_on = min(cpu_on, dt)
            metric_ops = last_telemetry.op_count
            span_ops = len(last_telemetry.tracer.spans)

        off_identical = len(set(off_fps)) == 1
        virtual_identical = off_identical and set(off_fps) == set(on_fps)
        all_off_identical &= off_identical
        all_virtual_identical &= virtual_identical
        accounted_s = metric_ops * metric_cost + span_ops * span_cost
        overhead = accounted_s / cpu_off if cpu_off > 0 else 0.0
        end_to_end = (cpu_on - cpu_off) / cpu_off if cpu_off > 0 else 0.0
        apps[app.name] = {
            "cpu_off_s": cpu_off,
            "cpu_on_s": cpu_on,
            "metric_ops": metric_ops,
            "span_ops": span_ops,
            "accounted_cost_s": accounted_s,
            "overhead_ratio": overhead,
            "end_to_end_overhead_ratio": end_to_end,
            "telemetry_off_bit_identical": off_identical,
            "virtual_results_bit_identical": virtual_identical,
        }
        rows.append(
            [
                app.name,
                cpu_off,
                metric_ops + span_ops,
                accounted_s * 1e3,
                overhead * 100,
                "yes" if virtual_identical else "NO",
            ]
        )

    assert last_telemetry is not None
    parsed = parse_exposition(last_telemetry.exposition())
    nonzero = sum(1 for v in parsed["samples"].values() if v)
    max_overhead = max(a["overhead_ratio"] for a in apps.values())

    print("Observability: accounted telemetry cost per app")
    print(
        format_table(
            ["application", "run cpu [s]", "ops", "cost [ms]", "overhead [%]", "virtual identical"],
            rows,
        )
    )
    print(
        f"per-op cost: metric {metric_cost * 1e6:.2f}us, span {span_cost * 1e6:.2f}us; "
        f"max overhead {max_overhead * 100:.3f}% (budget {OVERHEAD_BUDGET * 100:.0f}%); "
        f"{len(parsed['types'])} metric families, {nonzero} non-zero samples"
    )

    return {
        "apps": apps,
        "per_metric_op_s": metric_cost,
        "per_span_s": span_cost,
        "max_overhead_ratio": max_overhead,
        "overhead_budget": OVERHEAD_BUDGET,
        "within_budget": max_overhead < OVERHEAD_BUDGET,
        "telemetry_off_bit_identical": all_off_identical,
        "virtual_results_bit_identical": all_virtual_identical,
        "metric_families": len(parsed["types"]),
        "nonzero_samples": nonzero,
        "trace_events": len(last_telemetry.trace()["traceEvents"]),
    }
