"""SLO regression gate: replay + backtest vs committed thresholds.

:func:`evaluate_gate` checks two surfaces against
``.github/slo-baseline.json``:

* **replay** -- divergence / lost / duplicated counts from a
  :class:`~repro.replay.replayer.ReplayReport` (the bit-exact contract;
  all baselines are 0);
* **slo** -- the candidate's backtested SLO relative to the incumbent's
  on the *same* recording (latency ratios, shed-rate increase, migration
  and quota-high-water ratios).

Every violation is structured -- ``{"threshold", "limit", "observed"}``
plus detail -- so CI logs name exactly which contract broke.

The module is also the ``replay-gate`` CLI: replay a recording, backtest
incumbent vs candidate overrides, evaluate, emit JSON, exit non-zero on
any violation.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Mapping

from repro.replay.backtest import CostModel, backtest
from repro.replay.config import ServiceConfig
from repro.replay.recorder import Recording
from repro.replay.replayer import ReplayReport, replay_recording

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel
    from repro.core.telemetry import Telemetry

__all__ = ["DEFAULT_BASELINE_PATH", "evaluate_gate", "load_baseline", "main"]

DEFAULT_BASELINE_PATH = Path(".github/slo-baseline.json")


def load_baseline(path: str | Path = DEFAULT_BASELINE_PATH) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _ratio(candidate: float, incumbent: float) -> float:
    if incumbent > 0:
        return candidate / incumbent
    return math.inf if candidate > 0 else 1.0


def evaluate_gate(
    baseline: Mapping,
    *,
    replay: ReplayReport | Mapping | None = None,
    incumbent: Mapping | None = None,
    candidate: Mapping | None = None,
    telemetry: "Telemetry | None" = None,
) -> list[dict]:
    """All threshold violations (empty list == gate passes).

    ``replay`` gates the bit-exact contract; ``incumbent``/``candidate``
    are per-config SLO dicts from :func:`~repro.replay.backtest.backtest`
    and gate the relative SLO thresholds.  Either surface may be omitted.
    """
    violations: list[dict] = []

    def violate(threshold: str, limit, observed, **detail) -> None:
        violations.append(
            {"threshold": threshold, "limit": limit, "observed": observed, **detail}
        )
        if telemetry is not None:
            telemetry.inc(
                "merch_replay_gate_violations_total", threshold=threshold
            )

    replay_limits = baseline.get("replay", {})
    if replay is not None:
        rep = replay.to_dict() if isinstance(replay, ReplayReport) else dict(replay)
        checks = (
            ("divergence_max", rep.get("divergent", 0)),
            ("lost_max", rep.get("lost", 0)),
            ("duplicated_max", rep.get("duplicated", 0)),
        )
        for name, observed in checks:
            limit = replay_limits.get(name)
            if limit is not None and observed > limit:
                detail = {}
                if name == "divergence_max" and rep.get("first_divergence"):
                    detail["first_divergence"] = rep["first_divergence"]
                violate(f"replay.{name}", limit, observed, **detail)

    slo_limits = baseline.get("slo", {})
    if incumbent is not None and candidate is not None:
        ratios = (
            ("p50_latency_ratio_max", "p50_s"),
            ("p95_latency_ratio_max", "p95_s"),
            ("migration_pages_ratio_max", "migration_pages"),
            ("quota_highwater_ratio_max", "quota_highwater_pages"),
        )
        for name, key in ratios:
            limit = slo_limits.get(name)
            if limit is None:
                continue
            observed = _ratio(float(candidate[key]), float(incumbent[key]))
            if observed > limit:
                violate(
                    f"slo.{name}",
                    limit,
                    observed,
                    incumbent=incumbent[key],
                    candidate=candidate[key],
                )
        limit = slo_limits.get("shed_rate_increase_max")
        if limit is not None:
            observed = float(candidate["shed_rate"]) - float(incumbent["shed_rate"])
            if observed > limit:
                violate(
                    "slo.shed_rate_increase_max",
                    limit,
                    observed,
                    incumbent=incumbent["shed_rate"],
                    candidate=candidate["shed_rate"],
                )
    return violations


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def _coerce_override(incumbent: ServiceConfig, key: str, raw: str):
    """Parse a ``--candidate key=value`` string to the field's type."""
    fields = {f.name: f for f in dataclasses.fields(ServiceConfig)}
    if key not in fields:
        raise SystemExit(
            f"unknown ServiceConfig field {key!r} "
            f"(choose from {sorted(fields)})"
        )
    current = getattr(incumbent, key)
    if key == "faults":
        return json.loads(raw) if raw.lower() != "none" else None
    if isinstance(current, bool):
        return raw.lower() in ("1", "true", "yes")
    if isinstance(current, int):
        return int(raw)
    if isinstance(current, float) or raw.lower() in ("inf", "infinity"):
        return float(raw)
    return raw


def _build_model(meta: Mapping, seed: int | None, full: bool) -> "PerformanceModel":
    from repro.experiments.common import ExperimentContext

    model_seed = int(meta.get("model_seed", seed if seed is not None else 0))
    fast = bool(meta.get("fast", not full))
    ctx = ExperimentContext(seed=model_seed, fast=fast)
    return ctx.system.performance_model


def main(argv: list[str] | None = None, *, model: "PerformanceModel | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="replay-gate",
        description="Replay a flight recording, A/B-backtest candidate "
        "config overrides, and gate against SLO baselines.",
    )
    parser.add_argument("recording", help="flight recording file (.mfr)")
    parser.add_argument(
        "--baseline",
        default=str(DEFAULT_BASELINE_PATH),
        help="threshold file (default: %(default)s)",
    )
    parser.add_argument(
        "--candidate",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="candidate config override vs the recorded incumbent "
        "(repeatable, e.g. --candidate cache_capacity=1024)",
    )
    parser.add_argument("--json", dest="json_out", help="write the report here")
    parser.add_argument(
        "--seed", type=int, default=None,
        help="model seed fallback when the recording's meta lacks one",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="full-strength model fallback when the meta lacks 'fast'",
    )
    args = parser.parse_args(argv)

    recording = Recording.load(args.recording)
    baseline = load_baseline(args.baseline)
    if model is None:
        model = _build_model(recording.meta, args.seed, args.full)
    incumbent_config = ServiceConfig.from_dict(recording.meta["config"])

    replay = replay_recording(recording, model)

    overrides = {}
    for item in args.candidate:
        key, _, raw = item.partition("=")
        if not _:
            raise SystemExit(f"--candidate expects KEY=VALUE, got {item!r}")
        overrides[key] = _coerce_override(incumbent_config, key, raw)
    configs = {"incumbent": incumbent_config}
    if overrides:
        configs["candidate"] = incumbent_config.with_overrides(**overrides)
    ab = backtest(recording, model, configs, cost=CostModel())

    incumbent_slo = ab["configs"]["incumbent"]
    candidate_slo = ab["configs"].get("candidate")
    violations = evaluate_gate(
        baseline,
        replay=replay,
        incumbent=incumbent_slo if candidate_slo is not None else None,
        candidate=candidate_slo,
    )
    report = {
        "recording": str(args.recording),
        "baseline": str(args.baseline),
        "candidate_overrides": overrides,
        "replay": replay.to_dict(),
        "backtest": ab,
        "violations": violations,
        "ok": not violations,
    }
    if args.json_out:
        out = Path(args.json_out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True))

    print(
        f"replay: {replay.requests} requests, {replay.matched} matched, "
        f"{replay.divergent} divergent, {replay.lost} lost, "
        f"{replay.duplicated} duplicated"
    )
    if candidate_slo is not None:
        print(
            "backtest: incumbent p95 "
            f"{incumbent_slo['p95_s']:.4f}s shed {incumbent_slo['shed_rate']:.3f} | "
            f"candidate p95 {candidate_slo['p95_s']:.4f}s "
            f"shed {candidate_slo['shed_rate']:.3f}"
        )
    if violations:
        print("GATE FAILED -- violated thresholds:", file=sys.stderr)
        for v in violations:
            print(
                f"  {v['threshold']}: observed {v['observed']} "
                f"> limit {v['limit']}",
                file=sys.stderr,
            )
        return 1
    print("gate passed: no divergence, no SLO regression")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
