"""RBF kernel ridge regression -- the SVR stand-in.

Table 3 lists an SVR with an RBF kernel.  A full SMO solver adds nothing to
the reproduction (the SVR is one of the five *rejected* models), so we use
kernel ridge regression with the same RBF kernel: identical hypothesis class,
L2 instead of epsilon-insensitive loss.  The substitution is recorded in
DESIGN.md.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg

from repro.ml.metrics import StandardScaler

__all__ = ["KernelRidgeRegressor"]


class KernelRidgeRegressor:
    """Closed-form kernel ridge with an RBF kernel.

    ``gamma=None`` uses the median-distance heuristic.
    """

    def __init__(self, alpha: float = 1.0, gamma: float | None = None) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.gamma = gamma
        self._scaler = StandardScaler()
        self._X: np.ndarray | None = None
        self._dual: np.ndarray | None = None
        self._y_mean = 0.0
        self._gamma_eff: float | None = None

    @staticmethod
    def _sq_dists(A: np.ndarray, B: np.ndarray) -> np.ndarray:
        aa = (A * A).sum(axis=1)[:, None]
        bb = (B * B).sum(axis=1)[None, :]
        return np.maximum(aa + bb - 2.0 * A @ B.T, 0.0)

    def fit(self, X, y) -> "KernelRidgeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        Xs = self._scaler.fit_transform(X)
        d2 = self._sq_dists(Xs, Xs)
        if self.gamma is None:
            med = np.median(d2[d2 > 0]) if (d2 > 0).any() else 1.0
            self._gamma_eff = 1.0 / max(med, 1e-12)
        else:
            self._gamma_eff = self.gamma
        K = np.exp(-self._gamma_eff * d2)
        self._y_mean = float(y.mean())
        n = K.shape[0]
        self._dual = linalg.solve(
            K + self.alpha * np.eye(n), y - self._y_mean, assume_a="pos"
        )
        self._X = Xs
        return self

    def predict(self, X) -> np.ndarray:
        if self._X is None or self._dual is None:
            raise RuntimeError("model not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        Xs = self._scaler.transform(X)
        K = np.exp(-self._gamma_eff * self._sq_dists(Xs, self._X))
        return K @ self._dual + self._y_mean
