"""Load-balance-aware DRAM allocation (Section 6, Algorithm 1).

Deciding how many of each task's accesses should be served from DRAM is a
knapsack-style NP-hard problem (DRAM capacity = knapsack weight, pages =
items, predicted speedup = value).  The paper's greedy heuristic repeatedly
takes the task with the longest *predicted* execution time and grows its
DRAM accesses in 5 % steps until it dips under the second-longest task,
stopping when DRAM is exhausted.

Pages are mapped from accesses under Algorithm 1's stated assumption that a
task's accesses are evenly distributed over its pages:
``pages(DRAM_Acc_i) = DRAM_Acc_i / Total_Acc_i * task_pages_i``.

For the ablation study we also implement the makespan-optimal allocation
under the same model and 5 % discretisation (:func:`optimal_quotas`, by
bisection on the makespan), so the greedy's gap to optimum is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.common import PAGE_SIZE
from repro.core.model import PerformanceModel, TaskModelInputs

__all__ = ["TaskQuota", "PlanResult", "greedy_plan", "optimal_quotas", "throughput_plan"]


@dataclass(frozen=True)
class TaskQuota:
    """Planner output for one task."""

    task_id: str
    dram_accesses: float
    r_dram: float
    dram_pages: int
    predicted_time_s: float


@dataclass(frozen=True)
class PlanResult:
    """Planner output for a region's task set."""

    quotas: tuple[TaskQuota, ...]
    predicted_makespan_s: float
    dram_pages_used: int
    rounds: int

    def quota(self, task_id: str) -> TaskQuota:
        for q in self.quotas:
            if q.task_id == task_id:
                return q
        raise KeyError(task_id)

    def r_by_task(self) -> dict[str, float]:
        return {q.task_id: q.r_dram for q in self.quotas}


def _pages_for(task_pages: int, r: float) -> int:
    """MAP_TO_PAGES under the even-distribution assumption."""
    return int(np.ceil(task_pages * min(max(r, 0.0), 1.0)))


def greedy_plan(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float = 0.05,
    grids: Mapping[str, "np.ndarray"] | None = None,
) -> PlanResult:
    """Algorithm 1.

    ``task_bytes[task_id]`` is the total size of the task's data objects
    (what MAP_TO_PAGES converts access quotas into).  Beyond the paper's
    pseudocode, two termination details are made explicit: a task saturated
    at 100 % DRAM accesses is excluded from further rounds, and the final
    allocation is clamped to capacity.

    ``grids`` may carry precomputed per-task predicted-time grids over this
    step's ratio levels (``model.ratio_grids``); the placement service uses
    it to price a whole request batch with one stacked model call.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    task_pages = {
        t.task_id: max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE)))
        for t in tasks
    }

    # precompute every task's predicted time on the 5% ratio grid with one
    # stacked model call per task (Algorithm 1 only ever visits grid points)
    levels = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
    levels[-1] = min(levels[-1], 1.0)
    if grids is None:
        grid = {t.task_id: model.ratio_grid(t, levels) for t in tasks}
    else:
        grid = {t.task_id: grids[t.task_id] for t in tasks}
        if any(len(g) != len(levels) for g in grid.values()):
            raise ValueError("precomputed grids do not match the step grid")
    by_id = {t.task_id: t for t in tasks}

    def level_index(value: float) -> int:
        return int(np.clip(round(value / step), 0, len(levels) - 1))

    r: dict[str, float] = {t.task_id: 0.0 for t in tasks}
    d_pred: dict[str, float] = {t.task_id: t.t_pm_only for t in tasks}
    saturated: set[str] = set()
    rounds = 0

    def pages_used() -> int:
        return sum(_pages_for(task_pages[tid], r[tid]) for tid in r)

    while True:
        rounds += 1
        candidates = [tid for tid in r if tid not in saturated]
        if not candidates:
            break
        longest = max(candidates, key=lambda tid: d_pred[tid])
        others = [d_pred[tid] for tid in r if tid != longest]
        second_t = max(others) if others else 0.0

        r_i = r[longest]
        while True:
            r_i = min(1.0, r_i + step)
            d_pred[longest] = float(grid[longest][level_index(r_i)])
            if d_pred[longest] <= second_t or r_i >= 1.0:
                break
        r[longest] = r_i
        if r_i >= 1.0:
            saturated.add(longest)
        if pages_used() >= capacity_pages:
            break

    # clamp the final overshoot back under capacity (shrink the last-grown
    # task until the plan fits), keeping quotas on the step grid so the
    # reported predictions stay consistent with the allocations
    overshoot = pages_used() - capacity_pages
    if overshoot > 0:
        order = sorted(r, key=lambda tid: r[tid], reverse=True)
        for tid in order:
            if overshoot <= 0:
                break
            removable = _pages_for(task_pages[tid], r[tid])
            shrink_pages = min(removable, overshoot)
            shrunk = max(0.0, r[tid] - shrink_pages / task_pages[tid])
            r[tid] = np.floor(shrunk / step) * step
            d_pred[tid] = float(grid[tid][level_index(r[tid])])
            overshoot = pages_used() - capacity_pages

    quotas = tuple(
        TaskQuota(
            task_id=tid,
            dram_accesses=r[tid] * by_id[tid].total_accesses,
            r_dram=r[tid],
            dram_pages=_pages_for(task_pages[tid], r[tid]),
            predicted_time_s=d_pred[tid],
        )
        for tid in r
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=max(d_pred.values()),
        dram_pages_used=pages_used(),
        rounds=rounds,
    )


def optimal_quotas(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float = 0.05,
) -> PlanResult:
    """Makespan-optimal allocation at the same 5 % granularity.

    Because each task's predicted time is (weakly) decreasing in its own
    DRAM share and tasks are independent, the minimum feasible makespan can
    be found by bisection: a makespan ``M`` is feasible iff the cheapest
    per-task shares achieving time <= M fit in DRAM together.  This is the
    oracle the greedy heuristic approximates.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    levels = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
    task_pages = {
        t.task_id: max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE)))
        for t in tasks
    }
    # precompute predicted time per (task, level); enforce monotonicity so
    # bisection is sound even if the learned f(.) wiggles
    times: dict[str, np.ndarray] = {}
    for t in tasks:
        raw = model.ratio_grid(t, levels)
        times[t.task_id] = np.minimum.accumulate(raw)

    def min_pages_for_makespan(m: float) -> int | None:
        total = 0
        for t in tasks:
            feasible = np.flatnonzero(times[t.task_id] <= m)
            if len(feasible) == 0:
                return None
            total += _pages_for(task_pages[t.task_id], float(levels[feasible[0]]))
        return total

    candidates = sorted({float(v) for arr in times.values() for v in arr})
    lo, hi = 0, len(candidates) - 1
    best: float | None = None
    while lo <= hi:
        mid = (lo + hi) // 2
        pages = min_pages_for_makespan(candidates[mid])
        if pages is not None and pages <= capacity_pages:
            best = candidates[mid]
            hi = mid - 1
        else:
            lo = mid + 1
    if best is None:
        best = candidates[-1]

    quotas = []
    used = 0
    for t in tasks:
        feasible = np.flatnonzero(times[t.task_id] <= best)
        level = float(levels[feasible[0]]) if len(feasible) else 1.0
        pages = _pages_for(task_pages[t.task_id], level)
        used += pages
        quotas.append(
            TaskQuota(
                task_id=t.task_id,
                dram_accesses=level * t.total_accesses,
                r_dram=level,
                dram_pages=pages,
                predicted_time_s=float(
                    times[t.task_id][feasible[0]] if len(feasible) else times[t.task_id][-1]
                ),
            )
        )
    return PlanResult(
        quotas=tuple(quotas),
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=used,
        rounds=1,
    )


def throughput_plan(
    tasks: Sequence[TaskModelInputs],
    model: PerformanceModel,
    dram_capacity_bytes: int,
    task_bytes: Mapping[str, int],
    step: float = 0.05,
) -> PlanResult:
    """Throughput-greedy knapsack baseline (for the ablation study).

    The natural-but-wrong objective: repeatedly give the next 5% of DRAM
    accesses to whichever task buys the most *total time saved per page*,
    ignoring the barrier.  This is what a task-aware but balance-unaware
    allocator would do -- it showers fast memory on the most
    placement-sensitive tasks even when they are nowhere near the critical
    path.  Comparing its makespan against Algorithm 1's isolates the value
    of the paper's load-balance objective from the value of task awareness.
    """
    if not tasks:
        raise ValueError("no tasks to plan for")
    if not 0.0 < step <= 1.0:
        raise ValueError("step must be in (0, 1]")
    capacity_pages = dram_capacity_bytes // PAGE_SIZE
    levels = np.round(np.arange(0.0, 1.0 + step / 2, step), 10)
    levels[-1] = min(levels[-1], 1.0)
    grid = {t.task_id: np.minimum.accumulate(model.ratio_grid(t, levels)) for t in tasks}
    task_pages = {
        t.task_id: max(1, int(np.ceil(task_bytes[t.task_id] / PAGE_SIZE)))
        for t in tasks
    }
    by_id = {t.task_id: t for t in tasks}

    level_idx = {t.task_id: 0 for t in tasks}

    def pages_used() -> int:
        return sum(
            _pages_for(task_pages[tid], float(levels[level_idx[tid]]))
            for tid in level_idx
        )

    while True:
        best: tuple[float, str] | None = None
        for tid, k in level_idx.items():
            if k + 1 >= len(levels):
                continue
            saved = float(grid[tid][k] - grid[tid][k + 1])
            extra_pages = _pages_for(task_pages[tid], float(levels[k + 1])) - _pages_for(
                task_pages[tid], float(levels[k])
            )
            density = saved / max(extra_pages, 1)
            if best is None or density > best[0]:
                best = (density, tid)
        if best is None or best[0] <= 0:
            break
        tid = best[1]
        level_idx[tid] += 1
        if pages_used() > capacity_pages:
            level_idx[tid] -= 1
            break

    quotas = tuple(
        TaskQuota(
            task_id=tid,
            dram_accesses=float(levels[k]) * by_id[tid].total_accesses,
            r_dram=float(levels[k]),
            dram_pages=_pages_for(task_pages[tid], float(levels[k])),
            predicted_time_s=float(grid[tid][k]),
        )
        for tid, k in level_idx.items()
    )
    return PlanResult(
        quotas=quotas,
        predicted_makespan_s=max(q.predicted_time_s for q in quotas),
        dram_pages_used=pages_used(),
        rounds=sum(level_idx.values()),
    )
