"""The placement-policy registry.

One place that knows every competing backend: the Merchandiser incumbent,
the static and hardware baselines, and the learned-ranking /
interval-reconfiguration alternatives.  The multitier experiment iterates
it to race policies, and the conformance harness iterates it to hold every
backend to the same invariants (no tier over-commit, determinism per seed,
plan serialisation round-trips).

Backends differ in which topologies they support: the registry records a
tier range per spec, and :func:`registered_policies` can filter by the
topology under test instead of every caller re-encoding that knowledge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.core.model import PerformanceModel
from repro.sim.engine import PlacementPolicy
from repro.sim.machine import MachineModel
from repro.sim.memspec import TopologySpec

__all__ = [
    "PolicyBuildContext",
    "PolicySpec",
    "register_policy",
    "registered_policies",
    "build_policy",
]


@dataclass(frozen=True)
class PolicyBuildContext:
    """Everything a backend factory may need to construct a policy."""

    machine: MachineModel
    topology: TopologySpec
    model: PerformanceModel
    seed: int = 0
    #: free-form per-policy knob overrides (factories pick what they know)
    options: Mapping[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class PolicySpec:
    """A registered placement backend."""

    name: str
    description: str
    build: Callable[[PolicyBuildContext], PlacementPolicy]
    #: inclusive tier-count range the backend supports (None = unbounded)
    min_tiers: int = 2
    max_tiers: int | None = None

    def supports(self, n_tiers: int) -> bool:
        if n_tiers < self.min_tiers:
            return False
        return self.max_tiers is None or n_tiers <= self.max_tiers


_REGISTRY: dict[str, PolicySpec] = {}


def register_policy(spec: PolicySpec) -> PolicySpec:
    if spec.name in _REGISTRY:
        raise ValueError(f"policy {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def registered_policies(n_tiers: int | None = None) -> tuple[PolicySpec, ...]:
    """All registered backends, optionally only those supporting a tier
    count, in registration order."""
    specs = tuple(_REGISTRY.values())
    if n_tiers is None:
        return specs
    return tuple(s for s in specs if s.supports(n_tiers))


def build_policy(name: str, ctx: PolicyBuildContext) -> PlacementPolicy:
    spec = _REGISTRY.get(name)
    if spec is None:
        raise KeyError(
            f"unknown policy {name!r}; registered: {sorted(_REGISTRY)}"
        )
    if not spec.supports(ctx.topology.n_tiers):
        raise ValueError(
            f"policy {name!r} does not support {ctx.topology.n_tiers}-tier "
            "topologies"
        )
    return spec.build(ctx)


# ----------------------------------------------------------------------
# built-in backends
# ----------------------------------------------------------------------
def _build_merchandiser(ctx: PolicyBuildContext) -> PlacementPolicy:
    from repro.policies.merchandiser import TieredMerchandiserPolicy

    return TieredMerchandiserPolicy(
        model=ctx.model,
        step=float(ctx.options.get("step", 0.05)),
        seed=ctx.seed,
    )


def _build_ltr(ctx: PolicyBuildContext) -> PlacementPolicy:
    from repro.policies.ltr import LearnedRankingPolicy

    return LearnedRankingPolicy(seed=ctx.seed)


def _build_interval(ctx: PolicyBuildContext) -> PlacementPolicy:
    from repro.policies.interval import IntervalReconfigPolicy

    return IntervalReconfigPolicy(seed=ctx.seed)


def _build_static(ctx: PolicyBuildContext) -> PlacementPolicy:
    # the slowest-tier-only normalisation baseline; on N-tier tables the
    # waterfall start state already is all-in-slowest, so a no-op policy is
    # the exact generalisation of PMOnlyPolicy
    if ctx.topology.n_tiers == 2:
        from repro.baselines.static import PMOnlyPolicy

        return PMOnlyPolicy()

    class _SlowestOnly(PlacementPolicy):
        name = "pm-only"

    return _SlowestOnly()


def _build_memory_mode(ctx: PolicyBuildContext) -> PlacementPolicy:
    from repro.baselines.memorymode import MemoryModePolicy

    return MemoryModePolicy(seed=ctx.seed or 0x5EED)


def _build_memoptimizer(ctx: PolicyBuildContext) -> PlacementPolicy:
    from repro.baselines.memoptimizer import MemoryOptimizerPolicy

    return MemoryOptimizerPolicy(seed=ctx.seed)


register_policy(
    PolicySpec(
        name="merchandiser",
        description="Algorithm 1 generalised: per-task quotas over the "
        "capacity vector, bit-exact greedy_plan at 2 tiers",
        build=_build_merchandiser,
    )
)
register_policy(
    PolicySpec(
        name="static",
        description="everything stays in the slowest tier (normalisation "
        "baseline)",
        build=_build_static,
    )
)
register_policy(
    PolicySpec(
        name="memory-mode",
        description="hardware direct-mapped DRAM cache (Optane Memory Mode)",
        build=_build_memory_mode,
        max_tiers=2,
    )
)
register_policy(
    PolicySpec(
        name="memory-optimizer",
        description="sampling-based hot-page daemon (task-agnostic software "
        "baseline)",
        build=_build_memoptimizer,
        max_tiers=2,
    )
)
register_policy(
    PolicySpec(
        name="ltr",
        description="pairwise learned ranking of objects, tiers filled "
        "best-first (Moura et al.)",
        build=_build_ltr,
    )
)
register_policy(
    PolicySpec(
        name="interval",
        description="periodic hotness-ranked re-placement from sampled "
        "telemetry (Olson et al.)",
        build=_build_interval,
    )
)
