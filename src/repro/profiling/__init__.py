"""Memory-profiling substrate.

The paper (Sections 2 and 4) builds on three real profiling mechanisms, all
of which observe page-level access activity with different cost/accuracy
trade-offs.  Each gets a faithful simulated counterpart that observes the
engine's per-page access-rate arrays through the same noisy, sampled lens:

* :class:`PTESampleProfiler` -- MemoryOptimizer-style constrained random PTE
  sampling, used on PM (cheap, noisy, task-agnostic);
* :class:`ThermostatProfiler` -- Thermostat-style one-4KB-page-per-2MB-region
  sampling, used on DRAM (accurate, too expensive for TB-scale PM);
* :class:`PEBSProfiler` -- event-based sampling that attributes accesses to
  data objects, used for the online alpha refinement;
* :func:`top_k_hot_pages` -- hot-page detection over sampled counts.
"""

from repro.profiling.pte import PTESampleProfiler
from repro.profiling.thermostat import ThermostatProfiler
from repro.profiling.pebs import PEBSProfiler
from repro.profiling.hybrid import HybridBaseProfiler
from repro.profiling.hotpages import top_k_hot_pages

__all__ = [
    "PTESampleProfiler",
    "ThermostatProfiler",
    "PEBSProfiler",
    "HybridBaseProfiler",
    "top_k_hot_pages",
]
