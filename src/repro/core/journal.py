"""Crash-consistent control plane: WAL-backed transactional migration epochs.

PR 1 made the runtime survive *bad data*; this module makes it survive a
*dead control plane*.  The simulated placement daemon can now be killed at
any tick (see the crash fault models in :mod:`repro.sim.faults`) and come
back with consistent state, because every placement decision flows through
a write-ahead log first:

* ``epoch_begin`` -- one record per migration epoch (one epoch per parallel
  region), carrying the pre-epoch placement snapshot (per-object DRAM page
  counts, per-task DRAM-access fractions, the planner's quota targets);
* ``move`` -- one record per migration batch *before* it is applied,
  carrying per-page before-images so an uncommitted epoch can be rolled
  back exactly;
* ``epoch_commit`` -- the epoch's barrier released; its effects are
  durable;
* ``checkpoint`` -- a periodic snapshot of planner state (base profiles,
  alpha table, homogeneous-predictor records, guardrail/watchdog state,
  RNG stream) so recovery resumes *warm* instead of re-profiling cold;
* ``recovered`` -- a recovery marker, so a journal can witness several
  crash/recover cycles.

Records are serialised (canonical JSON) and checksummed, which makes a
*torn tail* -- the control plane dying mid-append -- detectable: replay
validates each record and truncates the log at the first corrupt one.
Because the log is write-ahead, a torn record's mutation never happened,
so truncation is always safe.

The epoch state machine::

    (no epoch) --epoch_begin--> OPEN --epoch_commit--> COMMITTED
                                  |
                                  +-- crash --> rolled back on recovery

Recovery (:func:`recover_journal`) replays the log, rolls back the single
open epoch (restoring every touched page's before-image in reverse order),
verifies placement invariants (:func:`verify_placement`), and reports where
to resume: the open epoch's region with its pre-epoch start time, or the
region after the last committed epoch.
"""

from __future__ import annotations

import json
import math
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.common import PAGE_SIZE
from repro.sim.faults import RobustnessLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry
    from repro.sim.pages import PageTable

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "CrashImage",
    "SimulatedCrash",
    "RecoveryOutcome",
    "recover_journal",
    "verify_placement",
]

#: residency values within this distance of 0 or 1 count as "in one tier"
_BINARY_EPS = 1e-9


def _plain(value):
    """Recursively convert payload data to JSON-encodable plain Python."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_plain(v) for v in value.tolist()]
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


@dataclass(frozen=True)
class WalRecord:
    """One decoded write-ahead-log record."""

    lsn: int
    kind: str  # epoch_begin | move | epoch_commit | checkpoint | recovered
    epoch: int
    payload: dict


def _encode(lsn: int, kind: str, epoch: int, payload: dict) -> str:
    body = json.dumps(
        {"lsn": lsn, "kind": kind, "epoch": epoch, "payload": _plain(payload)},
        sort_keys=True,
    )
    return f"{zlib.crc32(body.encode()):08x} {body}"


def _decode(entry: str) -> WalRecord | None:
    """Decode one serialised record; ``None`` means torn/corrupt."""
    if len(entry) < 10 or entry[8] != " ":
        return None
    crc, body = entry[:8], entry[9:]
    try:
        if int(crc, 16) != zlib.crc32(body.encode()):
            return None
        raw = json.loads(body)
        return WalRecord(
            lsn=int(raw["lsn"]),
            kind=str(raw["kind"]),
            epoch=int(raw["epoch"]),
            payload=dict(raw["payload"]),
        )
    except (ValueError, KeyError, TypeError):
        return None


class WriteAheadLog:
    """The durable medium of the control plane.

    ``entries`` (serialised, checksummed records) and the page table are the
    only state assumed to survive a control-plane crash; everything else is
    reconstructed from them.  ``log`` collects ``journal.*`` robustness
    events (torn tails, rollbacks, invariant violations) that the engine
    merges into ``RunResult.robustness``.
    """

    def __init__(self) -> None:
        self.entries: list[str] = []
        self.log = RobustnessLog()
        #: optional repro.core.telemetry.Telemetry; the engine attaches its
        #: own when both are configured.  ``None`` records nothing.
        self.telemetry: "Telemetry | None" = None
        self._next_lsn = 0
        self._next_epoch = 0

    def __len__(self) -> int:
        return len(self.entries)

    def _count_append(self, kind: str, entry: str) -> None:
        tel = self.telemetry
        if tel is None:
            return
        tel.inc("merch_journal_appends_total", kind=kind)
        tel.inc("merch_journal_bytes_appended_total", len(entry))
        if kind == "checkpoint":
            tel.observe("merch_journal_checkpoint_bytes", len(entry))

    # -- append path ---------------------------------------------------
    def append(self, kind: str, epoch: int, payload: dict) -> WalRecord:
        record = WalRecord(self._next_lsn, kind, epoch, _plain(payload))
        entry = _encode(record.lsn, kind, epoch, record.payload)
        self.entries.append(entry)
        self._next_lsn += 1
        self._count_append(kind, entry)
        return record

    def append_torn(self, kind: str, epoch: int, payload: dict) -> None:
        """A crash mid-append: the record's bytes are cut short on 'disk'.

        Write-ahead ordering means the mutation the record describes has
        NOT been applied yet, so replay may simply truncate it.
        """
        entry = _encode(self._next_lsn, kind, epoch, payload)
        torn = entry[: max(10, len(entry) // 2)]
        self.entries.append(torn)
        self._next_lsn += 1
        self._count_append(kind, torn)

    # -- epoch helpers (the engine's transactional API) ----------------
    def begin_epoch(self, payload: dict) -> int:
        epoch = self._next_epoch
        self._next_epoch += 1
        self.append("epoch_begin", epoch, payload)
        return epoch

    def log_moves(self, epoch: int, moves: list[dict], cause: str) -> None:
        self.append("move", epoch, {"cause": cause, "moves": moves})

    def commit_epoch(self, epoch: int, payload: dict) -> None:
        self.append("epoch_commit", epoch, payload)

    def checkpoint(self, epoch: int, state: dict) -> None:
        self.append("checkpoint", epoch, {"state": state})

    # -- replay path ---------------------------------------------------
    def reopen(self) -> tuple[list[WalRecord], bool]:
        """Validate + decode all records, truncating at the first torn one.

        Returns ``(records, torn_tail_found)`` and resets the internal LSN
        and epoch counters, so the reopened journal keeps appending where
        the crashed incarnation left off.

        Beyond per-record CRCs, the LSN sequence itself is validated --
        the adversarial tails a replicated journal can accumulate:

        * an **exact duplicate** of the previous entry (an idempotent
          retransmission that slipped past the acked-LSN floor) is
          dropped and replay continues;
        * an **LSN regression** with different content (two writers
          interleaved into one journal, or an append racing a truncate)
          is indistinguishable from corruption past that point, so the
          log is truncated there exactly like a torn tail.
        """
        records: list[WalRecord] = []
        kept: list[str] = []
        torn = False
        for entry in self.entries:
            record = _decode(entry)
            if record is None:
                torn = True
                break
            if records:
                last = records[-1]
                if record.lsn == last.lsn and entry == kept[-1]:
                    self.log.record(
                        "journal.duplicate_dropped", 0.0, lsn=record.lsn
                    )
                    continue
                if record.lsn <= last.lsn:
                    self.log.record(
                        "journal.lsn_regression",
                        0.0,
                        expected=last.lsn + 1,
                        got=record.lsn,
                        entries_kept=len(kept),
                    )
                    torn = True
                    break
            records.append(record)
            kept.append(entry)
        self.entries[:] = kept
        self._next_lsn = records[-1].lsn + 1 if records else 0
        begins = [r.epoch for r in records if r.kind == "epoch_begin"]
        self._next_epoch = max(begins) + 1 if begins else 0
        return records, torn

    def records(self) -> list[WalRecord]:
        """Decode without truncating (read-only inspection)."""
        out = []
        for entry in self.entries:
            record = _decode(entry)
            if record is None:
                break
            out.append(record)
        return out


# ----------------------------------------------------------------------
# crash propagation
# ----------------------------------------------------------------------
@dataclass
class CrashImage:
    """What survives a control-plane kill: the journal and the machine's
    page placement (pages stay where the kernel left them)."""

    journal: WriteAheadLog | None
    page_table: "PageTable"
    time_s: float


class SimulatedCrash(RuntimeError):
    """Raised by the engine when an injected kill fault fires."""

    def __init__(self, image: CrashImage) -> None:
        super().__init__(f"control plane killed at t={image.time_s:.3f}s")
        self.image = image


# ----------------------------------------------------------------------
# recovery replay
# ----------------------------------------------------------------------
@dataclass
class RecoveryOutcome:
    """What :func:`recover_journal` reconstructed."""

    resume_region: int
    resume_time_s: float
    last_committed_epoch: int  # -1 when none committed yet
    open_epoch: int  # -1 when the crash fell between epochs
    open_begin_payload: dict | None
    rolled_back_pages: int
    torn_tail: bool
    checkpoint_state: dict | None
    violations: list[str] = field(default_factory=list)


def _undo_moves(page_table: "PageTable", move_records: list[WalRecord]) -> int:
    """Restore before-images of an uncommitted epoch, newest batch first.

    Idempotent and exact: pages the crashed apply never reached simply get
    their current value rewritten.
    """
    restored = 0
    for record in reversed(move_records):
        for move in reversed(record.payload["moves"]):
            obj = page_table.object(move["obj"])
            idx = np.asarray(move["pages"], dtype=np.intp)
            before = np.asarray(move["before"], dtype=np.float64)
            obj.residency[idx] = before
            restored += len(idx)
    return restored


def verify_placement(
    page_table: "PageTable", begin_payload: dict | None = None
) -> list[str]:
    """Check the placement invariants; returns human-readable violations.

    1. every page is in exactly one tier (binary residency -- checked only
       when the epoch began from a binary placement, so Memory Mode's
       fractional accounting is not misflagged);
    2. DRAM capacity is never exceeded;
    3. placement restoration / quota conservation: after a rollback, every
       object holds exactly the DRAM pages it held at epoch begin (hence
       every task's DRAM-access share is conserved too).
    """
    violations: list[str] = []
    binary = begin_payload.get("binary", True) if begin_payload else True
    if binary:
        for obj in page_table:
            r = obj.residency
            off = np.abs(r - np.round(r)) > _BINARY_EPS
            if off.any():
                violations.append(
                    f"object {obj.name!r}: {int(off.sum())} pages in no/both tiers"
                )
    used = page_table.dram_used_bytes()
    if used > page_table.dram_capacity_bytes + PAGE_SIZE * _BINARY_EPS:
        violations.append(
            f"DRAM over capacity: {used:.0f} B used of "
            f"{page_table.dram_capacity_bytes} B"
        )
    if begin_payload is not None:
        want = begin_payload.get("dram_pages", {})
        for name, expected in want.items():
            if name not in page_table:
                violations.append(f"object {name!r} vanished from the page table")
                continue
            actual = page_table.object(name).dram_pages()
            if not math.isclose(actual, float(expected), abs_tol=1e-6):
                violations.append(
                    f"object {name!r}: {actual:.3f} DRAM pages after rollback, "
                    f"epoch began with {float(expected):.3f}"
                )
    return violations


def recover_journal(
    journal: WriteAheadLog, page_table: "PageTable"
) -> RecoveryOutcome:
    """Replay the journal against the surviving page table.

    Discards the uncommitted epoch (if any) by restoring before-images,
    verifies the placement invariants, picks the newest usable checkpoint,
    and reports where execution resumes.  Every step is logged as a
    ``journal.*`` robustness event on ``journal.log``.
    """
    tel = journal.telemetry
    recover_span = (
        tel.tracer.begin("recover", tel.tracer.wall_now(), track="wall")
        if tel is not None
        else None
    )
    wall_start = tel.tracer.wall_now() if tel is not None else 0.0

    records, torn = journal.reopen()
    if torn:
        journal.log.record("journal.torn_tail", 0.0, entries_kept=len(records))

    begins: dict[int, WalRecord] = {}
    commits: dict[int, WalRecord] = {}
    moves: dict[int, list[WalRecord]] = {}
    checkpoints: list[WalRecord] = []
    for record in records:
        if record.kind == "epoch_begin":
            # a region re-begun after an earlier crash gets a fresh epoch
            # id, so ids never collide
            begins[record.epoch] = record
            moves.setdefault(record.epoch, [])
        elif record.kind == "epoch_commit":
            commits[record.epoch] = record
        elif record.kind == "move":
            moves.setdefault(record.epoch, []).append(record)
        elif record.kind == "checkpoint":
            checkpoints.append(record)

    committed = [e for e in begins if e in commits]
    last_committed = max(committed) if committed else -1
    open_epochs = sorted(e for e in begins if e not in commits)
    open_epoch = open_epochs[-1] if open_epochs else -1
    open_begin = begins[open_epoch].payload if open_epoch >= 0 else None

    rolled_back = 0
    if open_epoch >= 0:
        rolled_back = _undo_moves(page_table, moves.get(open_epoch, []))
        journal.log.record(
            "journal.rollback",
            float(open_begin.get("time_s", 0.0)),
            epoch=open_epoch,
            region=int(open_begin.get("region", -1)),
            pages=rolled_back,
        )

    violations = verify_placement(page_table, open_begin)
    for text in violations:
        journal.log.record("journal.invariant_violation", 0.0, detail_text=text)

    # newest checkpoint belonging to a committed epoch
    checkpoint_state = None
    for record in reversed(checkpoints):
        if record.epoch <= last_committed:
            checkpoint_state = record.payload["state"]
            journal.log.record(
                "journal.checkpoint_restored", 0.0, epoch=record.epoch
            )
            break

    if open_begin is not None:
        resume_region = int(open_begin["region"])
        resume_time = float(open_begin["time_s"])
    elif last_committed >= 0:
        commit = commits[last_committed]
        resume_region = int(begins[last_committed].payload["region"]) + 1
        resume_time = float(commit.payload["time_s"])
    else:
        resume_region = 0
        resume_time = 0.0

    if tel is not None:
        tel.inc("merch_journal_recoveries_total")
        tel.inc("merch_journal_rollback_pages_total", rolled_back)
        tel.observe(
            "merch_journal_recovery_wall_seconds",
            tel.tracer.wall_now() - wall_start,
        )
        recover_span.args.update(
            resume_region=resume_region,
            rolled_back_pages=rolled_back,
            torn_tail=torn,
            warm=checkpoint_state is not None,
        )
        tel.tracer.end(recover_span, tel.tracer.wall_now())

    return RecoveryOutcome(
        resume_region=resume_region,
        resume_time_s=resume_time,
        last_committed_epoch=last_committed,
        open_epoch=open_epoch,
        open_begin_payload=open_begin,
        rolled_back_pages=rolled_back,
        torn_tail=torn,
        checkpoint_state=checkpoint_state,
        violations=violations,
    )
