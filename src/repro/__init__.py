"""Reproduction of Merchandiser (PPoPP 2023).

Merchandiser is a load-balance-aware data-placement system for task-parallel
HPC applications on heterogeneous memory (DRAM + Optane PM).  This package
reimplements the full system -- task-semantic profiling, input-aware memory
access estimation, a learned performance-correlation model, and the greedy
load-balancing migration planner -- on top of a simulated heterogeneous-memory
node (see DESIGN.md for the substitution map).
"""

from repro.common import AccessPattern, PAGE_SIZE, CACHE_LINE, make_rng
from repro.sim import (
    Engine,
    EngineConfig,
    HMConfig,
    MachineModel,
    MachineSpec,
    PageTable,
    PlacementPolicy,
    RunResult,
    TierSpec,
    optane_hm_config,
)
from repro.tasks import (
    DataObject,
    Footprint,
    KernelProfile,
    MPIProgram,
    ObjectAccess,
    OpenMPProgram,
    ParallelRegion,
    TaskInstanceSpec,
    Workload,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "PAGE_SIZE",
    "CACHE_LINE",
    "make_rng",
    "TierSpec",
    "HMConfig",
    "optane_hm_config",
    "MachineSpec",
    "MachineModel",
    "PageTable",
    "Engine",
    "EngineConfig",
    "PlacementPolicy",
    "RunResult",
    "DataObject",
    "ObjectAccess",
    "KernelProfile",
    "Footprint",
    "TaskInstanceSpec",
    "ParallelRegion",
    "Workload",
    "MPIProgram",
    "OpenMPProgram",
    "Merchandiser",
]


def __getattr__(name):
    # Lazy import: repro.core pulls in the ML stack, which simulator-only
    # users do not need at import time.
    if name == "Merchandiser":
        from repro.core import Merchandiser

        return Merchandiser
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
