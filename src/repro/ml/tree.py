"""CART regression trees with variance-reduction splits.

The tree is the workhorse of Table 3: the paper's best model (GBR) boosts
these, and the Random Forest bags them.  Split finding is fully vectorised:
per candidate feature, targets are sorted by feature value and the best
threshold is found from prefix sums of ``y`` and ``y**2`` in one pass.

Feature importance is the variance-reduction ("Gini") importance the paper
uses to select performance events (Section 5.1, citing Louppe et al.).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import make_rng, scalar_kernels_enabled
from repro.ml.kernels import TreeArrays, pack_tree, tree_apply

__all__ = ["DecisionTreeRegressor"]


@dataclass
class _Node:
    feature: int = -1          # -1 => leaf
    threshold: float = 0.0
    left: int = -1
    right: int = -1
    value: float = 0.0
    n_samples: int = 0


def _best_split(
    X: np.ndarray,
    y: np.ndarray,
    idx: np.ndarray,
    features: np.ndarray,
    min_samples_leaf: int,
) -> tuple[int, float, float]:
    """Return (feature, threshold, impurity_decrease) or (-1, 0, 0).

    Impurity decrease is measured as reduction of total SSE within the node,
    i.e. ``SSE(node) - SSE(left) - SSE(right)``.
    """
    n = len(idx)
    y_node = y[idx]
    sse_node = float(np.sum((y_node - y_node.mean()) ** 2))
    best = (-1, 0.0, 0.0)
    if sse_node <= 1e-18:
        return best
    best_gain = 1e-12
    for f in features:
        x = X[idx, f]
        order = np.argsort(x, kind="stable")
        xs = x[order]
        ys = y_node[order]
        # candidate split after position i (1-based counts)
        c1 = np.cumsum(ys)
        c2 = np.cumsum(ys * ys)
        total1, total2 = c1[-1], c2[-1]
        counts = np.arange(1, n, dtype=np.float64)  # left sizes 1..n-1
        l1, l2 = c1[:-1], c2[:-1]
        r1, r2 = total1 - l1, total2 - l2
        sse_l = l2 - l1 * l1 / counts
        sse_r = r2 - r1 * r1 / (n - counts)
        gain = sse_node - (sse_l + sse_r)
        # a split is valid only between distinct feature values and with
        # enough samples on both sides
        valid = xs[1:] != xs[:-1]
        if min_samples_leaf > 1:
            k = min_samples_leaf
            valid = valid.copy()
            valid[: k - 1] = False
            if k > 1:
                valid[len(valid) - (k - 1):] = False
        gain = np.where(valid, gain, -np.inf)
        pos = int(np.argmax(gain))
        if gain[pos] > best_gain:
            best_gain = float(gain[pos])
            threshold = 0.5 * (xs[pos] + xs[pos + 1])
            best = (int(f), float(threshold), best_gain)
    return best


class DecisionTreeRegressor:
    """CART regressor (mean-leaf, SSE splits).

    Parameters mirror scikit-learn where Table 3 sets them:
    ``max_depth=10`` is the paper's DTR configuration.
    """

    def __init__(
        self,
        max_depth: int = 10,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: int | float | None = None,
        rng=None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        if min_samples_split < 2:
            raise ValueError("min_samples_split must be >= 2")
        if min_samples_leaf < 1:
            raise ValueError("min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._rng = make_rng(rng)
        self._nodes: list[_Node] = []
        self._arrays: TreeArrays | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    # ------------------------------------------------------------------
    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if isinstance(mf, float):
            if not 0.0 < mf <= 1.0:
                raise ValueError("max_features fraction must be in (0, 1]")
            return max(1, int(round(mf * d)))
        return max(1, min(int(mf), d))

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64).ravel()
        if X.ndim != 2:
            raise ValueError("X must be 2-D")
        if X.shape[0] != y.shape[0]:
            raise ValueError("X and y disagree on sample count")
        if X.shape[0] == 0:
            raise ValueError("cannot fit on empty data")
        n, d = X.shape
        self.n_features_ = d
        self._nodes = []
        importances = np.zeros(d)
        n_cand = self._n_candidate_features(d)

        def build(idx: np.ndarray, depth: int) -> int:
            node_id = len(self._nodes)
            node = _Node(value=float(y[idx].mean()), n_samples=len(idx))
            self._nodes.append(node)
            if (
                depth >= self.max_depth
                or len(idx) < self.min_samples_split
                or len(idx) < 2 * self.min_samples_leaf
            ):
                return node_id
            if n_cand == d:
                features = np.arange(d)
            else:
                features = self._rng.choice(d, size=n_cand, replace=False)
            f, thr, gain = _best_split(X, y, idx, features, self.min_samples_leaf)
            if f < 0:
                return node_id
            mask = X[idx, f] <= thr
            left_idx, right_idx = idx[mask], idx[~mask]
            if len(left_idx) == 0 or len(right_idx) == 0:
                return node_id
            importances[f] += gain
            node.feature = f
            node.threshold = thr
            node.left = build(left_idx, depth + 1)
            node.right = build(right_idx, depth + 1)
            return node_id

        build(np.arange(n), 0)
        self._arrays = pack_tree(self._nodes)
        total = importances.sum()
        self.feature_importances_ = importances / total if total > 0 else importances
        return self

    # ------------------------------------------------------------------
    def arrays(self) -> TreeArrays:
        """Struct-of-arrays encoding of the fitted tree (PERFORMANCE.md).

        Packed once at fit time; every inference call reuses it instead
        of re-walking the Python ``_Node`` list.
        """
        if self._arrays is None:
            if not self._nodes:
                raise RuntimeError("tree not fitted")
            # trees fitted before the arrays cache existed (e.g. unpickled
            # from an old artifact) pack lazily
            self._arrays = pack_tree(self._nodes)
        return self._arrays

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        if not self._nodes:
            raise RuntimeError("tree not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        if X.shape[1] != self.n_features_:
            raise ValueError("feature-count mismatch")
        if scalar_kernels_enabled():
            return self._predict_scalar(X)
        return tree_apply(self.arrays(), X)

    def _predict_scalar(self, X: np.ndarray) -> np.ndarray:
        """Reference per-sample descent over the Python node list.

        Split comparisons are identical to the batched kernel's
        (``x <= threshold`` on the same float64 values), so both paths
        land each sample on the same leaf -- the bit-identity contract
        ``tests/test_kernels.py`` enforces.
        """
        out = np.empty(X.shape[0])
        for i in range(X.shape[0]):
            node = self._nodes[0]
            while node.feature >= 0:
                if X[i, node.feature] <= node.threshold:
                    node = self._nodes[node.left]
                else:
                    node = self._nodes[node.right]
            out[i] = node.value
        return out

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    @property
    def depth(self) -> int:
        if not self._nodes:
            return 0

        def d(i: int) -> int:
            nd = self._nodes[i]
            if nd.feature < 0:
                return 0
            return 1 + max(d(nd.left), d(nd.right))

        return d(0)
