"""Synthetic code-region corpus (the CERE + NAS/SPEC stand-in).

Section 5.1 trains the correlation function on 281 code regions that CERE
extracts from the NAS parallel benchmarks and SPEC 2006 FP.  Those loops
span a wide range of pattern mixes, compute intensities and working sets --
which is exactly what this generator produces: each :class:`CodeSample` is a
parameterised loop nest that can be instantiated at any input scale, so the
"seed input" used for feature collection can differ from the inputs used to
generate training placements (as the paper requires).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import CACHE_LINE, MIB, AccessPattern, make_rng
from repro.tasks.task import Footprint, KernelProfile, ObjectAccess

__all__ = ["CodeSample", "generate_corpus"]

_PATTERNS = (
    AccessPattern.STREAM,
    AccessPattern.STRIDED,
    AccessPattern.STENCIL,
    AccessPattern.RANDOM,
)


@dataclass(frozen=True)
class CodeSample:
    """One extracted "code region": a loop nest over 1-4 data objects."""

    name: str
    #: per-object (pattern, base main-memory accesses, write fraction)
    objects: tuple[tuple[AccessPattern, int, float], ...]
    #: instructions per main-memory access (compute intensity)
    intensity: float
    profile: KernelProfile

    def footprint(self, scale: float = 1.0) -> Footprint:
        """Instantiate the region at an input scale (1.0 = base input)."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        accesses = []
        total = 0
        for i, (pattern, base_acc, write_frac) in enumerate(self.objects):
            n = max(1, int(round(base_acc * scale)))
            writes = int(round(n * write_frac))
            accesses.append(
                ObjectAccess(
                    obj=f"{self.name}.obj{i}",
                    pattern=pattern,
                    reads=n - writes,
                    writes=writes,
                )
            )
            total += n
        instructions = max(1, int(round(total * self.intensity)))
        return Footprint(
            accesses=tuple(accesses),
            instructions=instructions,
            profile=self.profile,
        )

    @property
    def object_names(self) -> tuple[str, ...]:
        return tuple(f"{self.name}.obj{i}" for i in range(len(self.objects)))


def generate_corpus(n_samples: int = 281, seed=0) -> list[CodeSample]:
    """Generate the training corpus (default size matches the paper's 281).

    The latent parameters are drawn to cover the space the five evaluation
    applications live in: compute intensities from memory-bound (~4
    instructions/access) to compute-bound (~600), pattern mixes from pure
    stream to random-dominated, and footprints from a few MiB of traffic to
    hundreds.
    """
    rng = make_rng(seed)
    samples: list[CodeSample] = []
    for i in range(n_samples):
        n_objects = int(rng.integers(1, 5))
        # Dirichlet mix over patterns, then one dominant pattern per object
        mix = rng.dirichlet(np.ones(len(_PATTERNS)) * 0.7)
        objects = []
        total_acc = float(10 ** rng.uniform(4.5, 6.8))  # 30K .. 6M accesses
        shares = rng.dirichlet(np.ones(n_objects))
        for j in range(n_objects):
            pattern = _PATTERNS[int(rng.choice(len(_PATTERNS), p=mix))]
            write_frac = float(rng.uniform(0.0, 0.45))
            objects.append((pattern, max(1, int(total_acc * shares[j])), write_frac))
        profile = KernelProfile(
            branch_rate=float(rng.uniform(0.01, 0.2)),
            branch_misp_rate=float(rng.uniform(0.005, 0.08)),
            vector_fraction=float(rng.uniform(0.0, 0.8)),
            ilp=float(rng.uniform(1.0, 3.5)),
        )
        samples.append(
            CodeSample(
                name=f"region{i:03d}",
                objects=tuple(objects),
                intensity=float(10 ** rng.uniform(0.6, 2.8)),  # 4 .. 630
                profile=profile,
            )
        )
    return samples
