"""Merchandiser policy variant that plans against a task DAG.

:class:`DAGMerchandiserPolicy` is the full Merchandiser runtime
(profiling, estimation, prediction, quota gating, hot-page daemon,
guardrails -- all inherited) with one behavioural change: the planning
objective.  Where the base policy balances the slowest task of the
barrier region, this one minimises the region's predicted *critical
path* over the dependency edges of the bound DAG
(:mod:`repro.runtime.planning`).

Edges are restricted to the tasks being planned: for a barrier-lowered
wave the region's induced subgraph has no edges and the plan is the
barrier plan bit for bit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.baselines.appspecific import fill_dram_by_priority
from repro.core.model import TaskModelInputs
from repro.core.planner import PlanResult
from repro.core.runtime import MerchandiserPolicy
from repro.runtime.dag import TaskDAG
from repro.runtime.planning import CriticalPathPlan, critical_path_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import EngineContext

__all__ = ["DAGMerchandiserPolicy"]


class DAGMerchandiserPolicy(MerchandiserPolicy):
    """Critical-path-aware Merchandiser for DAG-lowered workloads."""

    name = "merchandiser-dag"

    def __init__(
        self,
        *args,
        dag: TaskDAG | None = None,
        profile_staging: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        #: dependency structure of the lowered program; the executor binds
        #: it at run start when not given up front
        self.dag = dag
        #: stage a default density-ranked placement while base profiles are
        #: still being collected, instead of running the profiling
        #: iteration from PM (profiling here measures access *counts*, not
        #: times, so a better interim placement does not bias the profile)
        self.profile_staging = profile_staging
        #: per-region DAG plans, for inspection/experiments (parallel to
        #: the inherited ``plans`` list)
        self.dag_plans: list[CriticalPathPlan] = []

    def bind_dag(self, dag: TaskDAG) -> None:
        self.dag = dag

    # ------------------------------------------------------------------
    def _build_promotion_queue(self, ctx, plan, from_scratch: bool = True) -> None:
        """Apply a fresh plan as between-phase staging, not tick migration.

        The gated regions replan as inputs drift, so the target placement
        moves every iteration; draining that delta through the migration
        budget means early-level tasks run before their pages arrive.  Task
        runtimes stage data while the previous phase's barrier resolves --
        the same region-boundary convention the static baselines use
        (:func:`fill_dram_by_priority`) -- so the planned placement is
        installed directly here and the tick-level queue stays empty.
        """
        table = ctx.page_table
        for obj in table:
            obj.set_residency(0.0)
        # with DRAM emptied the from-scratch queue *is* the full target
        super()._build_promotion_queue(ctx, plan, from_scratch=from_scratch)
        for name, idx in self._promotion_queue:
            table.object(name).residency[idx] = 1.0
        self._promotion_queue = []

    def on_region_start(self, ctx: "EngineContext") -> None:
        super().on_region_start(ctx)
        if (
            self.profile_staging
            and self._quotas is None
            and ctx.region is not None
        ):
            # no plan yet (base profiles pending or planning disabled):
            # fill DRAM with the region's objects in access-density order
            # -- the same between-phase staging the static baselines get --
            # rather than leaving the profiling iteration all-PM
            totals: dict[str, float] = {}
            for inst in ctx.region.instances:
                for acc in inst.footprint.accesses:
                    totals[acc.obj] = totals.get(acc.obj, 0.0) + acc.total
            density = {
                name: count / ctx.page_table.object(name).spec.size_bytes
                for name, count in totals.items()
            }
            fill_dram_by_priority(
                ctx, sorted(density, key=density.__getitem__, reverse=True)
            )

    # ------------------------------------------------------------------
    def _plan_region(
        self,
        ctx: "EngineContext",
        ready: list[TaskModelInputs],
        task_bytes: dict[str, int],
    ) -> tuple[PlanResult, float]:
        if self.dag is None:
            return super()._plan_region(ctx, ready, task_bytes)
        known = set(self.dag.task_ids)
        planned = {t.task_id for t in ready}
        if not planned <= known:
            # tasks outside the bound DAG (mixed workloads): no topology
            # to reason about, keep the barrier objective
            return super()._plan_region(ctx, ready, task_bytes)
        deps = {
            tid: tuple(d for d in self.dag.node(tid).deps if d in planned)
            for tid in planned
        }
        table = ctx.page_table
        footprints = {}
        for inst in ctx.region.instances:
            if inst.task_id not in planned:
                continue
            total = inst.footprint.total_accesses
            footprints[inst.task_id] = tuple(
                (acc.obj, acc.total / total, table.object(acc.obj).n_pages)
                for acc in inst.footprint.accesses
            ) if total > 0 else ()
        cp = critical_path_plan(
            ready,
            self.model,
            ctx.page_table.dram_capacity_bytes,
            task_bytes,
            deps,
            footprints=footprints,
        )
        self.dag_plans.append(cp)
        tel = self._telemetry
        if tel is not None:
            tel.inc(
                "merch_runtime_plans_total",
                objective="critical-path" if cp.shifted else "barrier",
            )
            tel.observe(
                "merch_runtime_critical_path_seconds",
                cp.predicted_critical_path_s,
            )
            weights = {t.task_id: t.t_pm_only for t in ready}
            tails = self.dag.tails(weights, within=planned)
            for t in ready:
                tel.observe("merch_runtime_tail_seconds", tails.get(t.task_id, 0.0))
        return cp.plan, cp.predicted_critical_path_s
