"""Shared low-level vocabulary for the Merchandiser reproduction.

This module defines the handful of concepts that every layer of the stack
(simulator, task runtime, profilers, Merchandiser core) needs to agree on:
the memory-access-pattern taxonomy of the paper (Section 4), byte-level
constants, and seeding helpers so that every stochastic component is
reproducible.
"""

from __future__ import annotations

import enum
import os
from typing import Union

import numpy as np

__all__ = [
    "AccessPattern",
    "PAGE_SIZE",
    "CACHE_LINE",
    "KIB",
    "MIB",
    "GIB",
    "make_rng",
    "spawn_rng",
    "zipf_weights",
    "scalar_kernels_enabled",
]

#: Floor version for numpy (also declared in pyproject.toml).  The batched
#: kernels (PERFORMANCE.md) rely on ordered ``np.add.at`` accumulation,
#: stable argsort kinds, and ``np.random.Generator.spawn`` -- all present
#: well before this floor, which simply matches the declared dependency.
NUMPY_FLOOR = (1, 23)


def _check_numpy_capabilities() -> None:
    """Import-time capability check with an actionable error message.

    The vectorized plan/predict kernels need a real numpy (not a stub) at
    or above the declared floor.  Failing fast here beats a cryptic
    AttributeError deep inside a kernel.
    """
    version = getattr(np, "__version__", "0")
    try:
        parts = tuple(int(p) for p in version.split(".")[:2])
    except ValueError:  # pragma: no cover - exotic dev builds ("2.x.dev0")
        parts = NUMPY_FLOOR
    problems = []
    if parts < NUMPY_FLOOR:
        problems.append(
            f"numpy {version} is older than the declared floor "
            f"{'.'.join(map(str, NUMPY_FLOOR))}"
        )
    for attr in ("add", "random", "argsort"):
        if not hasattr(np, attr):
            problems.append(f"numpy is missing `np.{attr}` (stubbed install?)")
    if hasattr(np, "add") and not hasattr(np.add, "at"):
        problems.append(
            "numpy lacks `np.add.at` (ordered scatter-add), required for "
            "bit-identical batched kernels"
        )
    if problems:
        raise ImportError(
            "repro's vectorized kernels cannot run on this numpy: "
            + "; ".join(problems)
            + ". Install `numpy>="
            + ".".join(map(str, NUMPY_FLOOR))
            + "` (see pyproject.toml and PERFORMANCE.md)."
        )


_check_numpy_capabilities()

#: Size of a memory page in bytes (4 KiB, matching Linux / the paper).
PAGE_SIZE: int = 4096

#: Size of a CPU cache line in bytes (Section 4 uses 64 B in its alpha example).
CACHE_LINE: int = 64

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024


class AccessPattern(str, enum.Enum):
    """The four object-level memory-access patterns of the paper (Section 4).

    * ``STREAM``  -- ``A[i] = B[i] + C[i]``; includes delta, reduction and
      transpose forms.
    * ``STRIDED`` -- ``A[i*stride] = B[i*stride]`` with a compile-time-known
      constant stride.
    * ``STENCIL`` -- ``A[i] = A[i-1] + A[i+1]``; sequential walk with
      loop-carried neighbour reuse (5/7/9-point stencils and friends).
    * ``RANDOM``  -- indirect addressing: pointer chase, gather
      (``A[i] = B[C[i]]``) and scatter (``A[B[i]] = C[i]``).

    Unknown patterns are treated as ``RANDOM`` (Section 4, "Handling unknown
    patterns").
    """

    STREAM = "stream"
    STRIDED = "strided"
    STENCIL = "stencil"
    RANDOM = "random"

    @property
    def is_regular(self) -> bool:
        """Whether the hardware prefetcher can follow this pattern."""
        return self is not AccessPattern.RANDOM


SeedLike = Union[int, None, np.random.Generator]


def scalar_kernels_enabled() -> bool:
    """Whether the ``MERCH_SCALAR_KERNELS`` escape hatch is armed.

    When the environment variable is set to ``1``/``true``/``yes``/``on``,
    every dispatch point that normally runs a batched numpy kernel (GBR
    forest evaluation, stacked correlation features, the array-native
    planner, the sim engine's batched tick breakdowns) falls back to the
    reference scalar implementation.  The two paths are bit-identical by
    contract (PERFORMANCE.md documents the float-ordering rules that keep
    them so; ``tests/test_kernels.py`` enforces it), so the hatch exists
    for differential testing and for bisecting kernel regressions -- not
    for correctness workarounds.

    Read per call, so tests can flip it with ``monkeypatch.setenv``.
    """
    return os.environ.get("MERCH_SCALAR_KERNELS", "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    Every stochastic component in the library takes a ``seed`` argument and
    funnels it through here, so a single integer makes an entire experiment
    reproducible.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Uses the SeedSequence spawn mechanism, which guarantees statistical
    independence between parent and children; drawing integers from the
    parent to reseed children does not, and silently correlates streams.
    """
    return rng.spawn(1)[0]


def zipf_weights(n: int, s: float = 1.1, rng: SeedLike = None) -> np.ndarray:
    """Normalised Zipf-like popularity weights over ``n`` items.

    Used to model the skewed page-hotness distribution of RANDOM-pattern
    objects: a few pages absorb most indirect accesses.  When ``rng`` is
    given the rank order is shuffled so hot pages are scattered through the
    address range (as they are in a real heap) rather than sorted.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-s)
    if rng is not None:
        make_rng(rng).shuffle(w)
    return w / w.sum()
