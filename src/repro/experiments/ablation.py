"""Ablation studies (ours, extending the paper's evaluation).

1. **Planner comparison**: Algorithm 1 is a greedy heuristic for an
   NP-hard allocation; we compare its predicted makespan against (a) the
   makespan-optimal allocation at the same 5% granularity
   (:func:`repro.core.planner.optimal_quotas`) and (b) a throughput-greedy
   knapsack that maximises total time saved with no balance awareness
   (:func:`repro.core.planner.throughput_plan`) -- isolating the value of
   the paper's load-balance objective from mere task awareness.
2. **Component knock-outs**: the runtime with Algorithm-1 planning
   disabled (pure gated daemon), with daemon gating disabled, and with
   alpha refinement disabled, on the most placement-sensitive apps.
"""

from __future__ import annotations

import numpy as np

from repro.apps import BFSApp, NWChemTCApp, SpGEMMApp
from repro.core.model import PerformanceModel, TaskModelInputs
from repro.core.planner import greedy_plan, optimal_quotas, throughput_plan
from repro.sim.counters import collect_pmcs
from repro.common import make_rng
from repro.experiments.common import ExperimentContext, format_table

ABLATION_APPS = (SpGEMMApp, BFSApp, NWChemTCApp)


def _task_inputs(ctx: ExperimentContext, app_cls, region_index: int = 1):
    """Oracle TaskModelInputs for one region (isolates planner quality)."""
    machine, hm = ctx.engine.machine, ctx.engine.hm
    wl = ctx.workload(app_cls)
    region = wl.regions[region_index]
    rng = make_rng(ctx.seed + 11)
    tasks = []
    task_bytes = {}
    sharers: dict[str, int] = {}
    for inst in region.instances:
        for acc in inst.footprint.accesses:
            sharers[acc.obj] = sharers.get(acc.obj, 0) + 1
    for inst in region.instances:
        fp = inst.footprint
        t_dram, t_pm = machine.endpoint_times(fp, hm)
        tasks.append(
            TaskModelInputs(
                task_id=inst.task_id,
                t_pm_only=t_pm,
                t_dram_only=t_dram,
                total_accesses=fp.total_accesses,
                pmcs=collect_pmcs(fp, machine, hm, rng=rng),
            )
        )
        task_bytes[inst.task_id] = int(
            sum(
                wl.object(acc.obj).size_bytes / sharers[acc.obj]
                for acc in fp.accesses
            )
        )
    return tasks, task_bytes


def run(ctx: ExperimentContext) -> dict[str, object]:
    model = PerformanceModel(ctx.system.correlation)
    capacity = ctx.engine.hm.dram.capacity_bytes

    planner_rows = []
    planner_out = {}
    for app_cls in ABLATION_APPS:
        name = ctx.app(app_cls).name
        tasks, task_bytes = _task_inputs(ctx, app_cls)
        greedy = greedy_plan(tasks, model, capacity, task_bytes)
        optimal = optimal_quotas(tasks, model, capacity, task_bytes)
        throughput = throughput_plan(tasks, model, capacity, task_bytes)
        gap = greedy.predicted_makespan_s / max(optimal.predicted_makespan_s, 1e-12)
        planner_out[name] = {
            "greedy_makespan": greedy.predicted_makespan_s,
            "optimal_makespan": optimal.predicted_makespan_s,
            "throughput_makespan": throughput.predicted_makespan_s,
            "gap": gap,
            "greedy_pages": greedy.dram_pages_used,
            "optimal_pages": optimal.dram_pages_used,
        }
        planner_rows.append(
            [
                name,
                greedy.predicted_makespan_s,
                optimal.predicted_makespan_s,
                throughput.predicted_makespan_s,
                gap,
            ]
        )
    print("Ablation 1: Algorithm 1 vs makespan-optimal vs throughput-greedy")
    print(
        format_table(
            [
                "application",
                "Alg.1 makespan",
                "optimal",
                "throughput-greedy",
                "Alg.1/optimal",
            ],
            planner_rows,
        )
    )

    knockout_rows = []
    knockout_out = {}
    variants = {
        "full": {},
        "no-planning": {"enable_planning": False},
        "no-gating": {"enable_gating": False},
        "no-refinement": {"enable_refinement": False},
    }
    for app_cls in (SpGEMMApp, NWChemTCApp):
        app = ctx.app(app_cls)
        wl = ctx.workload(app_cls)
        times = {}
        for label, kwargs in variants.items():
            policy = ctx.system.policy(
                app.binding(wl), seed=ctx.seed + 5, **kwargs
            )
            res = ctx.engine.run(wl, policy, seed=ctx.seed + 1)
            times[label] = res.total_time_s
        knockout_out[app.name] = times
        knockout_rows.append(
            [app.name]
            + [times[v] for v in variants]
            + [times["no-planning"] / times["full"]]
        )
    print("\nAblation 2: Merchandiser component knock-outs (total time, s)")
    print(
        format_table(
            ["application", *variants.keys(), "planning benefit"], knockout_rows
        )
    )
    return {"planner": planner_out, "knockouts": knockout_out}
