"""Shadow A/B backtesting: one recording, many candidate configs.

The backtester extracts the **arrival schedule** (request envelopes +
timestamps) from a flight recording and re-runs it through the same
single-worker virtual-time queueing loop the ``service_load`` experiment
uses -- once per named config.  Where ``service_load`` charges *measured
wall seconds* per planner call (host-dependent, the point of a load
test), the backtester charges a deterministic :class:`CostModel`: the
same recording backtested twice, anywhere, produces byte-identical SLO
reports, which is what lets CI compare runs across machines.

Per config the report carries the gate's SLO surface: p50/p95/mean
virtual latency, shed rate, throughput, migration volume (total DRAM
pages granted), and the DRAM-quota high-water mark (max pages granted by
any single fired batch -- the instantaneous pressure a candidate puts on
the shared budget).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.replay.config import ServiceConfig, VirtualClock, build_server
from repro.replay.recorder import Recording
from repro.service.protocol import PlacementRequest, decode_request

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel
    from repro.core.telemetry import Telemetry

__all__ = ["CostModel", "arrivals_from_recording", "backtest"]


@dataclass(frozen=True)
class CostModel:
    """Deterministic virtual service time for one fired batch.

    A batch that plans anything pays one planner-call overhead
    (``plan_call_s``) plus ``per_task_s`` per freshly-planned task;
    cache hits and in-batch dedups cost ``cached_s`` each; admission
    sheds are free (the daemon fallback needs no planner).  The defaults
    approximate the measured shape of the real planner (call overhead
    dominates; cached answers are ~100x cheaper) without depending on it.
    """

    plan_call_s: float = 0.015
    per_task_s: float = 0.0005
    cached_s: float = 0.0002

    def batch_service_s(self, decisions: Sequence) -> float:
        planned_tasks = sum(
            len(dec.placements) for dec in decisions if dec.status == "planned"
        )
        cheap = sum(
            1 for dec in decisions if dec.status in ("cached", "deduplicated")
        )
        service = self.cached_s * cheap
        if planned_tasks:
            service += self.plan_call_s + self.per_task_s * planned_tasks
        return service

    def to_dict(self) -> dict:
        return {
            "plan_call_s": self.plan_call_s,
            "per_task_s": self.per_task_s,
            "cached_s": self.cached_s,
        }


def arrivals_from_recording(
    recording: Recording,
) -> list[tuple[float, PlacementRequest]]:
    """The recorded arrival schedule: (timestamp, request) in order."""
    return [
        (float(rec["t"]), decode_request(rec["request"]))
        for rec in recording.events("request")
    ]


def _simulate_costed(
    config: ServiceConfig,
    model: "PerformanceModel",
    arrivals: list[tuple[float, PlacementRequest]],
    cost: CostModel,
    telemetry: "Telemetry | None",
) -> dict[str, object]:
    """``service_load``'s single-worker queueing loop with cost-model
    service times instead of measured wall seconds."""
    clock = VirtualClock()
    server = build_server(config, model, clock=clock, telemetry=telemetry)
    sched = server.scheduler
    arrival_at: dict[str, float] = {}
    done_at: dict[str, float] = {}
    statuses: dict[str, int] = {}
    migration_pages = 0
    quota_highwater_pages = 0
    worker_free = 0.0
    i = 0
    while i < len(arrivals) or sched.pending_depth:
        if sched.pending_depth >= sched.max_batch:
            fire_at = max(worker_free, clock.now)
        elif sched.pending_depth:
            fire_at = max(sched.next_due_at(), worker_free)
        else:
            fire_at = math.inf
        if i < len(arrivals) and arrivals[i][0] <= fire_at:
            t, req = arrivals[i]
            i += 1
            clock.advance_to(t)
            arrival_at[req.request_id] = t
            shed = server.submit(req, now=t)
            if shed is not None:
                done_at[req.request_id] = t
                statuses[shed.status] = statuses.get(shed.status, 0) + 1
            continue
        clock.advance_to(fire_at)
        decisions = server.step(now=fire_at)
        finish = fire_at + cost.batch_service_s(decisions)
        worker_free = finish
        batch_pages = 0
        for dec in decisions:
            done_at[dec.request_id] = finish
            statuses[dec.status] = statuses.get(dec.status, 0) + 1
            migration_pages += dec.dram_pages_granted
            batch_pages += dec.dram_pages_granted
        quota_highwater_pages = max(quota_highwater_pages, batch_pages)

    latencies = np.array(
        [done_at[rid] - arrival_at[rid] for rid in arrival_at],
        dtype=np.float64,
    )
    shed = statuses.get("shed", 0)
    first_arrival = arrivals[0][0] if arrivals else 0.0
    makespan = (max(done_at.values()) - first_arrival) if done_at else 0.0
    return {
        "requests": len(arrivals),
        "answered": len(done_at),
        "shed": shed,
        "shed_rate": shed / len(arrivals) if arrivals else 0.0,
        "p50_s": float(np.percentile(latencies, 50)) if len(latencies) else 0.0,
        "p95_s": float(np.percentile(latencies, 95)) if len(latencies) else 0.0,
        "mean_s": float(latencies.mean()) if len(latencies) else 0.0,
        "throughput_rps": (
            len(done_at) / makespan if makespan > 0 else math.inf
        ),
        "makespan_s": makespan,
        "migration_pages": migration_pages,
        "quota_highwater_pages": quota_highwater_pages,
        "statuses": statuses,
    }


def backtest(
    recording: Recording,
    model: "PerformanceModel",
    configs: Mapping[str, ServiceConfig],
    *,
    cost: CostModel | None = None,
    telemetry: "Telemetry | None" = None,
) -> dict[str, object]:
    """Replay ``recording``'s arrival schedule against every config.

    Returns ``{"cost_model": ..., "requests": N, "configs": {name: SLO}}``
    -- side-by-side, same arrivals, same cost model, so any SLO delta is
    attributable to the config alone.
    """
    cost = cost or CostModel()
    arrivals = arrivals_from_recording(recording)
    results = {
        name: _simulate_costed(config, model, arrivals, cost, telemetry)
        for name, config in configs.items()
    }
    return {
        "cost_model": cost.to_dict(),
        "requests": len(arrivals),
        "configs": results,
    }
