"""The Merchandiser incumbent generalised to N tiers.

Algorithm 1's load-balance-aware planning over a capacity *vector*: per
region, every task gets per-tier access-fraction quotas from
:func:`~repro.core.planner.tiered_greedy_plan` (which delegates to the
paper's 2-tier ``greedy_plan`` bit-exactly on 2-tier topologies), and the
quotas are realised by queueing each task's hottest pages toward the fast
tiers, throttled by the engine's migration budget.

Unlike :class:`~repro.core.runtime.MerchandiserPolicy` -- the full online
system with profiling, Equation-1 estimation and endpoint prediction --
this backend prices endpoints directly from the machine model (the task
footprints are known in the simulator), which is exactly what the
competing backends get: the comparison isolates the *placement decision*,
not the profiling stack.
"""

from __future__ import annotations

import numpy as np

from repro.common import make_rng
from repro.core.model import PerformanceModel, TieredTaskInputs
from repro.core.planner import TieredPlanResult, tiered_greedy_plan
from repro.policies.base import drain_queue, make_batch, page_tiers, table_n_tiers
from repro.sim.counters import collect_pmcs
from repro.sim.engine import EngineContext, PlacementPolicy
from repro.sim.pages import TieredPageTable

__all__ = ["TieredMerchandiserPolicy"]


class TieredMerchandiserPolicy(PlacementPolicy):
    """Load-balance-aware per-task tier quotas (Algorithm 1, N tiers)."""

    name = "merchandiser"

    def __init__(
        self,
        model: PerformanceModel,
        step: float = 0.05,
        promote_per_interval: int = 1024,
        seed=None,
    ) -> None:
        self.model = model
        self.step = step
        self.promote_per_interval = promote_per_interval
        self._rng = make_rng(seed)
        self._queue: list[tuple[str, np.ndarray, int]] = []
        #: planner decisions per region, for inspection/experiments
        self.plans: list[TieredPlanResult] = []

    # ------------------------------------------------------------------
    def on_region_start(self, ctx: EngineContext) -> None:
        assert ctx.region is not None
        topo = ctx.topology
        n = table_n_tiers(ctx.page_table)
        # how many tasks touch each object, to split shared bytes
        sharers: dict[str, int] = {}
        for inst in ctx.region.instances:
            for acc in inst.footprint.accesses:
                sharers[acc.obj] = sharers.get(acc.obj, 0) + 1

        tasks: list[TieredTaskInputs] = []
        task_bytes: dict[str, int] = {}
        for inst in ctx.region.instances:
            fp = inst.footprint
            total = fp.total_accesses
            if total <= 0:
                continue
            tasks.append(
                TieredTaskInputs(
                    task_id=inst.task_id,
                    tier_times=ctx.machine.tier_endpoint_times(fp, topo),
                    total_accesses=total,
                    pmcs=collect_pmcs(fp, ctx.machine, ctx.hm, rng=self._rng),
                )
            )
            task_bytes[inst.task_id] = int(
                sum(
                    ctx.workload.object(acc.obj).size_bytes
                    / max(sharers.get(acc.obj, 1), 1)
                    for acc in fp.accesses
                )
            )

        self._queue = []
        if not tasks:
            return
        table = ctx.page_table
        if isinstance(table, TieredPageTable):
            capacities = table.capacities_bytes
        else:
            capacities = (table.dram_capacity_bytes, topo.slowest.capacity_bytes)
        plan = tiered_greedy_plan(
            tasks, self.model, capacities, task_bytes, step=self.step
        )
        self.plans.append(plan)
        self._build_queue(ctx, plan, n)

    def _build_queue(
        self, ctx: EngineContext, plan: TieredPlanResult, n: int
    ) -> None:
        """Turn per-task page quotas into ordered page moves.

        Tasks are served largest-fast-tier-quota first; each assigns its
        hottest unclaimed pages to tier 0 up to its tier-0 page quota, the
        next hottest to tier 1, and so on.  Pages already on their target
        tier cost nothing; the rest queue as moves, fastest targets first
        so partial drains (budget-clamped ticks) help the most.
        """
        assert ctx.region is not None
        table = ctx.page_table
        by_task = {inst.task_id: inst for inst in ctx.region.instances}
        claimed: dict[str, np.ndarray] = {}
        current: dict[str, np.ndarray] = {}
        moves: dict[int, list[tuple[str, np.ndarray]]] = {k: [] for k in range(n)}
        order = sorted(
            plan.quotas,
            key=lambda q: (-q.fractions[0], q.task_id),
        )
        for quota in order:
            inst = by_task.get(quota.task_id)
            if inst is None:
                continue
            fp = inst.footprint
            total = fp.total_accesses
            names: list[str] = []
            pages: list[np.ndarray] = []
            gains: list[np.ndarray] = []
            for acc in fp.accesses:
                obj = table.object(acc.obj)
                if acc.obj not in claimed:
                    claimed[acc.obj] = np.zeros(obj.n_pages, dtype=bool)
                    current[acc.obj] = page_tiers(table, acc.obj)
                cand = np.flatnonzero(~claimed[acc.obj])
                if not len(cand):
                    continue
                names.extend([acc.obj] * len(cand))
                pages.append(cand)
                gains.append(obj.weight[cand] * (acc.total / total))
            if not pages:
                continue
            all_pages = np.concatenate(pages)
            all_gains = np.concatenate(gains)
            name_arr = np.array(names)
            rank = np.argsort(-all_gains, kind="stable")
            pos = 0
            for k in range(n):
                want = int(round(quota.pages[k]))
                if want <= 0:
                    continue
                take = rank[pos : pos + want]
                pos += len(take)
                for name in np.unique(name_arr[take]):
                    sel = all_pages[take[name_arr[take] == name]]
                    claimed[name][sel] = True
                    mismatched = sel[current[name][sel] != k]
                    if len(mismatched):
                        obj = table.object(name)
                        hot = mismatched[
                            np.argsort(-obj.weight[mismatched], kind="stable")
                        ]
                        moves[k].append((name, hot))
                if pos >= len(rank):
                    break
        queue: list[tuple[str, np.ndarray, int]] = []
        for k in range(n):
            for name, idx in moves[k]:
                queue.append((name, idx, k))
        self._queue = queue

    # ------------------------------------------------------------------
    def on_tick(self, ctx: EngineContext, dt: float):
        if not self._queue:
            return None
        budget = min(self.promote_per_interval, ctx.migration_budget_pages)
        return make_batch(ctx.page_table, drain_queue(self._queue, budget))
