"""BFS: level-synchronous breadth-first search (com-Orkut stand-in).

Table 2: com-Orkut (3.07E+9 edges after symmetrisation), 731.9 GB, 12
OpenMP threads.  The graph is vertex-partitioned across threads; each BFS
level is a parallel region ending in the frontier-exchange barrier.  The
intrinsic load imbalance the paper attributes to "the uneven graph
partitioning approach" shows up as wildly different per-partition frontier
edge counts per level.

Layers:

* :func:`bfs_levels` -- a real level-synchronous BFS on a CSR adjacency
  matrix (validated against networkx in the tests), which also reports the
  per-partition edges traversed at every level;
* :class:`BFSApp` -- workload builder: the per-level, per-partition edge
  counts of an actual R-MAT graph drive the footprints, so imbalance comes
  from genuine graph structure;
* kernel IR: stream over the frontier and row pointers, random gather on
  neighbour/visited state -- Table 1's "Stream + Random".
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.common import AccessPattern, MIB, make_rng
from repro.apps.base import AppConfig, Application
from repro.apps.synth import rmat_graph
from repro.core.patterns import Affine, ArrayRef, Indirect, Loop
from repro.tasks.task import (
    DataObject,
    Footprint,
    KernelProfile,
    ObjectAccess,
    Workload,
)
from repro.tasks.frontends import OpenMPProgram

__all__ = ["bfs_levels", "partition_vertices", "BFSApp"]


def partition_vertices(n_vertices: int, n_parts: int) -> np.ndarray:
    """Contiguous vertex partition bounds (n_parts + 1 entries)."""
    if n_parts < 1:
        raise ValueError("need at least one partition")
    return np.linspace(0, n_vertices, n_parts + 1).astype(np.int64)


def bfs_levels(
    graph: sparse.csr_matrix, source: int, n_parts: int
) -> tuple[np.ndarray, np.ndarray]:
    """Level-synchronous BFS.

    Returns ``(distances, work)`` where ``distances[v]`` is the BFS level of
    vertex ``v`` (-1 if unreachable) and ``work[l, p]`` counts the edges
    partition ``p`` traverses while expanding level ``l``'s frontier.
    """
    n = graph.shape[0]
    if not 0 <= source < n:
        raise IndexError("source out of range")
    bounds = partition_vertices(n, n_parts)
    part_of = np.searchsorted(bounds, np.arange(n), side="right") - 1
    dist = np.full(n, -1, dtype=np.int64)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    work_rows: list[np.ndarray] = []
    level = 0
    indptr, indices = graph.indptr, graph.indices
    while len(frontier):
        # per-partition edge work for this level: owners expand their
        # frontier vertices
        degrees = indptr[frontier + 1] - indptr[frontier]
        row = np.bincount(part_of[frontier], weights=degrees, minlength=n_parts)
        work_rows.append(row)
        # expand
        neigh = np.concatenate(
            [indices[indptr[v] : indptr[v + 1]] for v in frontier]
        ) if len(frontier) else np.empty(0, dtype=np.int64)
        neigh = np.unique(neigh)
        new = neigh[dist[neigh] < 0]
        dist[new] = level + 1
        frontier = new
        level += 1
    return dist, np.vstack(work_rows) if work_rows else np.zeros((0, n_parts))


class BFSApp(Application):
    """Task-parallel BFS at simulated scale."""

    name = "BFS"
    paper_memory_gb = 731.9
    paper_problem = "com-Orkut with 3.07E+9 edges (after symmetrisation)"

    @classmethod
    def small_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=4,
            footprint_bytes=96 * MIB,
            iterations=2,
            mpi_processes=1,
            openmp_threads=4,
            reference_scale=10,
        )

    @classmethod
    def paper_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=12,
            footprint_bytes=int(731.9 * MIB),
            iterations=3,
            mpi_processes=1,
            openmp_threads=12,
            reference_scale=12,
        )

    # ------------------------------------------------------------------
    def _level_statistics(self, seed) -> tuple[np.ndarray, np.ndarray]:
        """(per-partition edge shares per level, partition vertex shares).

        Runs real BFS instances from a few sources on an R-MAT graph and
        keeps the level-by-partition work matrix of the deepest run.
        """
        rng = make_rng(seed)
        g = rmat_graph(self.config.reference_scale, seed=seed)
        deg = np.diff(g.indptr)
        candidates = np.flatnonzero(deg > 0)
        best: np.ndarray | None = None
        for _ in range(3):
            src = int(rng.choice(candidates))
            _, work = bfs_levels(g, src, self.n_tasks)
            if best is None or work.shape[0] > best.shape[0]:
                best = work
        assert best is not None
        # drop levels with negligible work, keep at most 6 meaty levels
        totals = best.sum(axis=1)
        keep = totals > totals.max() * 1e-3
        best = best[keep][:6]
        bounds = partition_vertices(g.shape[0], self.n_tasks)
        vertex_share = np.diff(bounds) / g.shape[0]
        shares = best / np.maximum(best.sum(axis=1, keepdims=True), 1.0)
        # hub partitions dominate every sizeable frontier level, so blend
        # each level's share toward the run-average share (stabilises which
        # partition is the heavy one); temper the small-R-MAT extremes
        mean_share = shares.mean(axis=0, keepdims=True)
        shares = 0.5 * mean_share + 0.5 * shares
        uniform = np.full(self.n_tasks, 1.0 / self.n_tasks)
        shares = 0.8 * uniform[None, :] + 0.2 * shares
        shares /= shares.sum(axis=1, keepdims=True)
        return shares, vertex_share

    # ------------------------------------------------------------------
    def build_workload(self, seed=None) -> Workload:
        seed = self.seed if seed is None else seed
        rng = make_rng(seed)
        cfg = self.config
        level_shares, vertex_share = self._level_statistics(seed)
        n_levels = level_shares.shape[0]

        prog = OpenMPProgram(self.name, cfg.n_tasks)
        budget = cfg.footprint_bytes
        # CSR adjacency dominates (~75%); visited/frontier state is shared
        graph_bytes = (0.75 * budget * vertex_share).astype(np.int64)
        state_bytes = int(0.25 * budget)
        prog.declare_object(
            DataObject(
                "visited", size_bytes=state_bytes, owner=None,
                hotness="zipf", zipf_s=0.5,
            )
        )
        for t in range(cfg.n_tasks):
            prog.declare_object(
                DataObject(
                    f"graph_part{t}",
                    size_bytes=max(int(graph_bytes[t]), MIB),
                    owner=prog.task_id(t),
                    hotness="zipf",
                    # per-partition locality differs with community
                    # structure: hub-heavy partitions cache well, others not
                    zipf_s=float(rng.uniform(0.1, 0.5)),
                )
            )

        # one BFS run traverses every edge once: budget the whole traversal
        # at ~0.9x footprint in line accesses, split across levels
        traversal_accesses = 0.9 * budget / 64
        level_weight = np.array(
            [0.05, 0.25, 0.45, 0.15, 0.07, 0.03][:n_levels]
        )
        level_weight /= level_weight.sum()

        profile = KernelProfile(
            branch_rate=0.18, branch_misp_rate=0.06, vector_fraction=0.02, ilp=1.5
        )
        for it in range(cfg.iterations):
            scale = float(rng.uniform(0.85, 1.2)) if it > 0 else 1.0
            # each run starts from a different source: the frontier shape
            # (and hence random traffic per edge) drifts non-proportionally
            density = float(rng.uniform(0.7, 1.4)) if it > 0 else 1.0
            for lvl in range(n_levels):
                fps = []
                vecs = []
                region_name = f"bfs{it}.level{lvl}"
                lvl_acc = traversal_accesses * level_weight[lvl] * scale
                for t in range(cfg.n_tasks):
                    edges = max(int(lvl_acc * level_shares[lvl, t]), 64)
                    g_reads = self.mem_accesses(
                        AccessPattern.STREAM, edges, 8, int(graph_bytes[t])
                    )
                    v_acc = self.mem_accesses(
                        AccessPattern.RANDOM, max(int(edges * density), 64), 4, state_bytes
                    )
                    fp = Footprint(
                        accesses=(
                            ObjectAccess(
                                f"graph_part{t}", AccessPattern.STREAM, reads=g_reads
                            ),
                            ObjectAccess(
                                "visited",
                                AccessPattern.RANDOM,
                                reads=max(v_acc * 3 // 4, 1),
                                writes=max(v_acc // 4, 1),
                            ),
                        ),
                        instructions=max(int(edges * 120), 1000),
                        profile=profile,
                    )
                    fps.append(fp)
                    sizes = {
                        f"graph_part{t}": max(int(graph_bytes[t]), MIB),
                        "visited": state_bytes,
                    }
                    # the graph does not change across runs; the frontier
                    # (captured in the input vector) does
                    self._instance_sizes[(prog.task_id(t), region_name)] = {
                        k: max(int(v * scale), 1) for k, v in sizes.items()
                    }
                    vecs.append((edges * 64.0, state_bytes * scale))
                prog.parallel_region(
                    region_name, fps, input_vectors=vecs, kind=f"level{lvl}"
                )
        return prog.build()

    # ------------------------------------------------------------------
    def task_kernels(self) -> dict[str, list[Loop]]:
        kernels = {}
        for t in range(self.n_tasks):
            tid = f"thread{t}"
            expand = Loop(
                "f",
                (
                    Loop(
                        "e",
                        (
                            ArrayRef(f"graph_part{t}", Affine("e")),
                            ArrayRef(
                                "visited",
                                Indirect(f"graph_part{t}", Affine("e")),
                                is_write=True,
                            ),
                        ),
                    ),
                ),
            )
            kernels[tid] = [expand]
        return kernels

    def managed_objects(self, workload: Workload) -> dict[str, list[DataObject]]:
        return {
            f"thread{t}": [
                workload.object(f"graph_part{t}"),
                workload.object("visited"),
            ]
            for t in range(self.n_tasks)
        }

    def input_dependent_objects(self) -> dict[str, tuple[str, ...]]:
        # the frontier (and thus which parts of 'visited' are touched)
        # changes with every input: alpha must be refined online
        return {f"thread{t}": ("visited",) for t in range(self.n_tasks)}

    def sparta_input_objects(self) -> list[str] | None:
        return None  # Sparta is SpGEMM-specific; not used for BFS
