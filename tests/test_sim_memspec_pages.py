"""Tests for memory-tier specs and page tables."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import PAGE_SIZE, make_rng
from repro.sim.memspec import HMConfig, TierSpec, optane_hm_config
from repro.sim.pages import MigrationBatch, PagedObject, PageTable
from repro.tasks import DataObject


class TestTierSpec:
    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            TierSpec("t", 100, 1, 1, 1, 1)

    def test_rejects_nonpositive_latency(self):
        with pytest.raises(ValueError):
            TierSpec("t", PAGE_SIZE, 0, 1, 1, 1)

    def test_latency_selector(self):
        t = TierSpec("t", PAGE_SIZE, 10, 20, 1, 1)
        assert t.latency_ns(random=False) == 10
        assert t.latency_ns(random=True) == 20

    def test_n_pages(self):
        t = TierSpec("t", 10 * PAGE_SIZE, 1, 1, 1, 1)
        assert t.n_pages == 10


class TestOptaneConfig:
    def test_capacity_ratio_matches_paper(self):
        hm = optane_hm_config()
        assert hm.pm.capacity_bytes / hm.dram.capacity_bytes == pytest.approx(8.0)

    def test_pm_latency_asymmetry(self):
        """Section 2: PM seq latency 2.08x, random 3.77x DRAM's."""
        hm = optane_hm_config()
        assert hm.pm.seq_read_latency_ns / hm.dram.seq_read_latency_ns == pytest.approx(2.08)
        assert hm.pm.rand_read_latency_ns / hm.dram.rand_read_latency_ns == pytest.approx(3.77)

    def test_pm_bandwidth_asymmetry(self):
        """Section 2: PM read bw 3.87x lower, write bw 4.74x lower."""
        hm = optane_hm_config()
        assert hm.dram.read_bandwidth / hm.pm.read_bandwidth == pytest.approx(3.87)
        assert hm.dram.write_bandwidth / hm.pm.write_bandwidth == pytest.approx(4.74)

    def test_scaling_preserves_time_invariants(self):
        """Latency x capacity scaling: latency-bound time of a fixed byte
        volume is scale-invariant (accesses scale with bytes, latency
        counter-scales)."""
        a = optane_hm_config(scale=1 / 1024)
        b = optane_hm_config(scale=1 / 512)
        # bytes_at_scale * latency = const  =>  latency ratio = inverse scale ratio
        assert a.pm.seq_read_latency_ns / b.pm.seq_read_latency_ns == pytest.approx(2.0)
        assert b.pm.capacity_bytes / a.pm.capacity_bytes == pytest.approx(2.0, rel=1e-6)

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            optane_hm_config(scale=0)

    def test_tier_lookup(self):
        hm = optane_hm_config()
        assert hm.tier("dram") is hm.dram
        assert hm.tier("pm") is hm.pm
        with pytest.raises(KeyError):
            hm.tier("hbm")


def make_table(sizes=(10, 20), dram_pages=16, hotness="uniform", rng=None):
    objects = [
        DataObject(f"o{i}", n * PAGE_SIZE, hotness=hotness) for i, n in enumerate(sizes)
    ]
    return PageTable(objects, dram_pages * PAGE_SIZE, rng=rng or make_rng(0))


class TestPagedObject:
    def test_uniform_weights(self):
        obj = PagedObject(DataObject("a", 10 * PAGE_SIZE))
        np.testing.assert_allclose(obj.weight, 0.1)

    def test_zipf_weights_sum_to_one(self):
        obj = PagedObject(DataObject("a", 64 * PAGE_SIZE, hotness="zipf"), rng=make_rng(0))
        assert obj.weight.sum() == pytest.approx(1.0)

    def test_zipf_block_averaging_bounds_skew(self):
        """Page-level skew is damped by the 64-line average: at moderate
        skew the hottest page carries far less than the hottest raw
        per-page Zipf rank would."""
        from repro.common import zipf_weights

        obj = PagedObject(
            DataObject("a", 256 * PAGE_SIZE, hotness="zipf", zipf_s=0.5),
            rng=make_rng(0),
        )
        raw_top = zipf_weights(256, 0.5)[0]
        assert obj.weight.max() < raw_top / 2

    def test_residency_starts_zero(self):
        obj = PagedObject(DataObject("a", 4 * PAGE_SIZE))
        assert obj.dram_pages() == 0
        assert obj.dram_access_fraction() == 0

    def test_set_residency_scalar(self):
        obj = PagedObject(DataObject("a", 4 * PAGE_SIZE))
        obj.set_residency(0.5)
        assert obj.dram_pages() == pytest.approx(2.0)
        assert obj.dram_access_fraction() == pytest.approx(0.5)

    def test_set_residency_rejects_out_of_range(self):
        obj = PagedObject(DataObject("a", 4 * PAGE_SIZE))
        with pytest.raises(ValueError):
            obj.set_residency(1.5)

    def test_set_residency_rejects_wrong_length(self):
        obj = PagedObject(DataObject("a", 4 * PAGE_SIZE))
        with pytest.raises(ValueError):
            obj.set_residency(np.ones(3))

    def test_hottest_pm_pages_ordering(self):
        obj = PagedObject(DataObject("a", 8 * PAGE_SIZE))
        obj.weight = np.array([1, 8, 2, 7, 3, 6, 4, 5], dtype=float)
        obj.weight /= obj.weight.sum()
        idx = obj.hottest_pm_pages()
        assert list(idx[:2]) == [1, 3]

    def test_hottest_excludes_resident(self):
        obj = PagedObject(DataObject("a", 4 * PAGE_SIZE))
        obj.residency[:2] = 1.0
        idx = obj.hottest_pm_pages()
        assert set(idx) == {2, 3}

    def test_coldest_dram_pages(self):
        obj = PagedObject(DataObject("a", 4 * PAGE_SIZE))
        obj.weight = np.array([0.4, 0.3, 0.2, 0.1])
        obj.residency[:] = 1.0
        assert list(obj.coldest_dram_pages(limit=2)) == [3, 2]


class TestPageTable:
    def test_capacity_accounting(self):
        table = make_table(sizes=(10, 20), dram_pages=16)
        assert table.total_pages == 30
        assert table.dram_free_pages() == 16
        table.object("o0").set_residency(1.0)
        assert table.dram_free_pages() == 6

    def test_place_all_respects_capacity(self):
        table = make_table(sizes=(10, 20), dram_pages=16)
        with pytest.raises(ValueError):
            table.place_all(1.0)
        table.place_all(0.5)
        assert table.dram_used_bytes() == pytest.approx(15 * PAGE_SIZE)

    def test_apply_batch_promotes(self):
        table = make_table()
        batch = MigrationBatch(moves=(("o0", np.arange(5), True),))
        moved = table.apply_batch(batch)
        assert moved == 5
        assert table.object("o0").dram_pages() == 5

    def test_apply_batch_clamps_to_capacity(self):
        table = make_table(sizes=(30,), dram_pages=8)
        batch = MigrationBatch(moves=(("o0", np.arange(30), True),))
        moved = table.apply_batch(batch)
        assert moved == 8
        assert table.dram_free_pages() == 0

    def test_apply_batch_demotes_first(self):
        """A swap batch (demote cold + promote hot) fits in a full DRAM."""
        table = make_table(sizes=(8, 8), dram_pages=8)
        table.object("o0").set_residency(1.0)
        batch = MigrationBatch(
            moves=(
                ("o0", np.arange(4), False),
                ("o1", np.arange(4), True),
            )
        )
        moved = table.apply_batch(batch)
        assert moved == 8
        assert table.object("o1").dram_pages() == 4
        assert table.dram_free_pages() == 0

    def test_duplicate_object_rejected(self):
        with pytest.raises(ValueError):
            PageTable([DataObject("a", PAGE_SIZE)] * 2, PAGE_SIZE)

    def test_access_fractions_keys(self):
        table = make_table()
        assert set(table.access_fractions()) == {"o0", "o1"}

    def test_sample_pages_within_bounds(self):
        table = make_table(sizes=(10, 20))
        picked = table.sample_pages(500, rng=make_rng(1))
        for name, idx in picked:
            assert (idx >= 0).all()
            assert (idx < table.object(name).n_pages).all()

    def test_sample_pages_total_count(self):
        table = make_table(sizes=(10, 20))
        picked = table.sample_pages(100, rng=make_rng(1))
        assert sum(len(idx) for _, idx in picked) == 100

    def test_sample_pages_roughly_proportional(self):
        table = make_table(sizes=(10, 90))
        picked = dict(table.sample_pages(5000, rng=make_rng(2)))
        share = len(picked["o1"]) / 5000
        assert 0.8 < share / 0.9 < 1.2

    @given(residency=st.floats(0.0, 1.0))
    @settings(max_examples=30, deadline=None)
    def test_dram_used_matches_residency(self, residency):
        table = make_table(sizes=(10,), dram_pages=100)
        table.object("o0").set_residency(residency)
        assert table.dram_used_bytes() == pytest.approx(
            10 * PAGE_SIZE * residency
        )


class TestMigrationBatch:
    def test_page_and_byte_counts(self):
        b = MigrationBatch(
            moves=(("a", np.arange(3), True), ("b", np.arange(2), False))
        )
        assert b.n_pages == 5
        assert b.bytes_moved == 5 * PAGE_SIZE
