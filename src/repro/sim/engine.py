"""Virtual-time execution engine.

The engine runs a :class:`~repro.tasks.task.Workload` region by region under
a :class:`PlacementPolicy`.  Within a region it advances all task instances
in small virtual-time ticks:

* each tick, every unfinished instance's instantaneous execution time is
  computed from the ground-truth machine model and the *current* placement
  (page migrations mid-region change an instance's speed mid-flight);
* per-tier bandwidth demand is aggregated across instances and migration
  traffic; if it exceeds the tier's capability, progress is scaled back
  (bandwidth contention);
* the placement policy's ``on_tick`` hook may request page migrations,
  throttled to a configurable fraction of PM bandwidth;
* the region's barrier releases when every instance reaches progress 1;
  per-task busy and barrier-wait times are recorded (Figure 5's data).

All time is virtual; nothing depends on the wall clock, and the only
randomness comes from the seeded generator in :class:`EngineContext`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from repro.common import PAGE_SIZE, make_rng, scalar_kernels_enabled
from repro.sim.faults import FaultInjector, RobustnessReport
from repro.sim.kernels import BreakdownKernel, TieredBreakdownKernel
from repro.sim.machine import MachineModel, TieredBreakdown, TimeBreakdown
from repro.sim.memspec import HMConfig, TopologySpec
from repro.sim.pages import (
    MigrationBatch,
    PageTable,
    TieredMigrationBatch,
    TieredPageTable,
)
from repro.tasks.task import ParallelRegion, TaskInstanceSpec, Workload

if TYPE_CHECKING:  # pragma: no cover
    # imported lazily at runtime: repro.core.journal pulls in the whole
    # core package, which itself imports this module
    from repro.core.journal import CrashImage, RecoveryOutcome, WriteAheadLog
    from repro.core.telemetry import Telemetry

__all__ = [
    "EngineConfig",
    "EngineContext",
    "PlacementPolicy",
    "RegionResult",
    "RunResult",
    "Engine",
]


@dataclass(frozen=True)
class EngineConfig:
    """Engine tuning knobs."""

    #: Target number of ticks across the fastest instance of a region;
    #: controls the time resolution of contention and migration.
    ticks_per_instance: int = 60
    #: Hard cap on ticks per region (runaway guard).
    max_ticks_per_region: int = 50_000
    #: Fraction of PM read bandwidth migrations may consume per tick.
    migration_bandwidth_fraction: float = 0.25
    #: Record the per-tick bandwidth trace (Figure 6) when True.
    record_bandwidth: bool = True
    #: With a journal attached: epochs between planner-state checkpoints
    #: (1 = checkpoint at every epoch commit).
    checkpoint_interval: int = 1


class EngineContext:
    """Mutable state the engine shares with the placement policy."""

    def __init__(
        self,
        workload: Workload,
        page_table: "PageTable | TieredPageTable",
        machine: MachineModel,
        hm: HMConfig,
        rng: np.random.Generator,
        faults: FaultInjector | None = None,
        telemetry: "Telemetry | None" = None,
        topology: TopologySpec | None = None,
    ) -> None:
        self.workload = workload
        self.page_table = page_table
        self.machine = machine
        self.hm = hm
        self.rng = rng
        #: the full topology (always set; 2-tier view of ``hm`` when the
        #: engine was built the classic way)
        self.topology = topology if topology is not None else TopologySpec.from_hm(hm)
        #: fault injector the engine and profilers consult (None = healthy)
        self.faults = faults
        #: shared telemetry (repro.core.telemetry); policies read it off the
        #: context so instrumentation follows the run, not the object graph
        self.telemetry = telemetry
        self.time = 0.0
        self.region: ParallelRegion | None = None
        self.region_index = -1
        #: instance progress in [0, 1] by task id (current region)
        self.progress: dict[str, float] = {}
        #: task ids whose intra-region gates have not opened yet (empty for
        #: classic barrier regions); gated instances make no progress and
        #: are invisible to :meth:`active_instances`
        self.gated: set[str] = set()
        #: latest instantaneous execution-time estimate by task id
        self.instance_times: dict[str, float] = {}
        self.pages_migrated = 0
        self.migration_overhead_s = 0.0
        #: pages the engine will accept per tick (set each region from the
        #: migration bandwidth budget); policies should not request more
        self.migration_budget_pages = 1
        #: migration batches (or parts of batches) that failed to apply,
        #: for policies that implement retry; cleared at each region start
        self.failed_migrations: list[MigrationBatch] = []

    # -- helpers policies rely on --------------------------------------
    def dram_fractions(self) -> dict[str, float]:
        """Current per-object access-weighted DRAM fractions."""
        return self.page_table.access_fractions()

    def tier_fraction_vectors(self) -> "dict[str, np.ndarray]":
        """Per-object per-tier access-fraction vectors (N-tier runs)."""
        return self.page_table.access_fraction_vectors()

    def active_instances(self) -> list[TaskInstanceSpec]:
        assert self.region is not None
        return [
            inst
            for inst in self.region.instances
            if self.progress.get(inst.task_id, 0.0) < 1.0
            and inst.task_id not in self.gated
        ]

    def page_access_rates(self) -> dict[str, np.ndarray]:
        """Per-page main-memory access rates (accesses/second), summed over
        the region's active instances.

        This is what the sampling profilers observe: address-level hotness
        with no task attribution unless a profiler adds it.
        """
        rates: dict[str, np.ndarray] = {}
        for inst in self.active_instances():
            t = max(self.instance_times.get(inst.task_id, 0.0), 1e-12)
            for acc in inst.footprint.accesses:
                obj = self.page_table.object(acc.obj)
                per_obj = acc.total / t
                if acc.obj in rates:
                    rates[acc.obj] = rates[acc.obj] + obj.weight * per_obj
                else:
                    rates[acc.obj] = obj.weight * per_obj
        return rates


class PlacementPolicy:
    """Base class for data-placement policies (baselines and Merchandiser).

    Policies may mutate residency directly in the start hooks (initial
    placement) and must route mid-run movement through ``on_tick``'s
    :class:`MigrationBatch` return so the engine can charge bandwidth.
    """

    name = "policy"

    def on_workload_start(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called once before the first region."""

    def on_region_start(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called when a region's tasks become known, before they start."""

    def on_tick(self, ctx: EngineContext, dt: float) -> MigrationBatch | None:
        """Called every tick; return page moves to perform (or None)."""
        return None

    def on_region_end(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called after the region's barrier releases."""

    # -- crash consistency hooks (see repro.core.journal) --------------
    def snapshot_state(self) -> dict | None:  # pragma: no cover
        """JSON-serialisable planner state for journal checkpoints.

        ``None`` (the default) means the policy has nothing worth
        checkpointing; recovery then restarts it cold.
        """
        return None

    def restore_state(self, state: dict) -> None:  # pragma: no cover
        """Restore :meth:`snapshot_state` output on a fresh policy."""

    def on_recover(self, ctx: EngineContext) -> None:  # pragma: no cover
        """Called instead of ``on_workload_start`` when resuming after a
        crash: page placement survived, so policies must NOT reset it."""


@dataclass
class RegionResult:
    """Per-region outcome: when each task finished and how long it worked."""

    name: str
    start_s: float
    end_s: float
    #: task id -> time the task was busy executing (its own work)
    busy_s: dict[str, float] = field(default_factory=dict)
    #: task id -> time spent waiting at the barrier for slower tasks
    wait_s: dict[str, float] = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class RunResult:
    """Complete outcome of one engine run."""

    policy: str
    workload: str
    total_time_s: float
    regions: list[RegionResult]
    pages_migrated: int
    #: bandwidth trace: times plus per-tier bytes/second, one row per tick
    trace_time: np.ndarray
    trace_dram_bw: np.ndarray
    trace_pm_bw: np.ndarray
    trace_migration_bw: np.ndarray
    #: merged fault + guardrail events and per-kind counters for the run
    robustness: RobustnessReport = field(default_factory=RobustnessReport)

    def task_busy_times(self) -> dict[str, float]:
        """Total busy time per task across all regions (Figure 5's metric)."""
        out: dict[str, float] = {}
        for region in self.regions:
            for task, busy in region.busy_s.items():
                out[task] = out.get(task, 0.0) + busy
        return out

    def task_wait_times(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for region in self.regions:
            for task, wait in region.wait_s.items():
                out[task] = out.get(task, 0.0) + wait
        return out

    def mean_dram_bandwidth(self) -> float:
        """Time-averaged DRAM bandwidth (bytes/s) over the run."""
        if len(self.trace_time) == 0:
            return 0.0
        return float(np.mean(self.trace_dram_bw))

    def mean_pm_bandwidth(self) -> float:
        if len(self.trace_time) == 0:
            return 0.0
        return float(np.mean(self.trace_pm_bw))


class Engine:
    """Runs workloads on the simulated heterogeneous-memory node."""

    def __init__(
        self,
        machine: MachineModel | None = None,
        hm: HMConfig | None = None,
        config: EngineConfig | None = None,
        faults: FaultInjector | None = None,
        journal: "WriteAheadLog | None" = None,
        telemetry: "Telemetry | None" = None,
        topology: TopologySpec | None = None,
    ) -> None:
        from repro.sim.memspec import optane_hm_config

        self.machine = machine or MachineModel()
        if topology is not None:
            if hm is not None:
                raise ValueError("pass either hm or topology, not both")
            self.topology = topology
            if topology.n_tiers == 2:
                # degenerate case: run the classic 2-tier engine verbatim so
                # every float matches the HMConfig pipeline bit for bit
                self.hm = topology.to_hm()
            else:
                if journal is not None:
                    raise ValueError(
                        "crash journaling is only supported on 2-tier topologies"
                    )
                # fastest/slowest compatibility view; only consulted for
                # knobs shared with the 2-tier loop (never for pricing)
                self.hm = HMConfig(
                    dram=topology.fastest,
                    pm=topology.slowest,
                    page_migration_overhead_s=topology.page_migration_overhead_s,
                )
        else:
            self.hm = hm or optane_hm_config()
            self.topology = TopologySpec.from_hm(self.hm)
        self._tiered = self.topology.n_tiers > 2
        self.config = config or EngineConfig()
        #: optional fault injector; consulted by the tick loop and exposed
        #: to policies/profilers through the engine context
        self.faults = faults
        #: optional write-ahead log (repro.core.journal).  ``None`` keeps
        #: the engine bit-identical to the journal-free pipeline; attached,
        #: every epoch/move/commit is logged ahead of application so a
        #: crashed run can be recovered via :meth:`recover`.
        self.journal = journal
        #: optional telemetry (repro.core.telemetry.Telemetry).  ``None``
        #: (the default) keeps the engine bit-identical to the
        #: uninstrumented pipeline; attached, the engine records migration/
        #: occupancy/duration metrics and virtual-time spans, and shares the
        #: object with the policy (via the context) and the journal.
        self.telemetry = telemetry
        if journal is not None and telemetry is not None and journal.telemetry is None:
            journal.telemetry = telemetry
        self._epochs_since_checkpoint = 0

    # ------------------------------------------------------------------
    def run(
        self,
        workload: Workload,
        policy: PlacementPolicy,
        seed=0,
        page_table: PageTable | None = None,
    ) -> RunResult:
        """Execute ``workload`` under ``policy`` and return the result.

        With a journal attached and crash faults armed this may raise
        :class:`~repro.core.journal.SimulatedCrash`; the exception carries
        the surviving state, which :meth:`recover` accepts.
        """
        rng = make_rng(seed)
        if page_table is None:
            if self._tiered:
                page_table = TieredPageTable(
                    workload.objects, self.topology.capacity_vector(), rng=rng
                )
            else:
                page_table = PageTable(
                    workload.objects, self.hm.dram.capacity_bytes, rng=rng
                )
        ctx = EngineContext(
            workload, page_table, self.machine, self.hm, rng,
            faults=self.faults, telemetry=self.telemetry,
            topology=self.topology,
        )
        if self.telemetry is not None:
            self.telemetry.inc("merch_engine_runs_total")
        policy.on_workload_start(ctx)
        self._epochs_since_checkpoint = 0
        return self._run_regions(ctx, policy, start_region=0)

    # ------------------------------------------------------------------
    def recover(
        self,
        workload: Workload,
        policy: PlacementPolicy,
        image: "CrashImage",
        seed=0,
    ) -> "tuple[RunResult, RecoveryOutcome]":
        """Bring a crashed run back and finish the workload.

        ``image`` is the surviving state off a :class:`SimulatedCrash`
        (journal + page placement).  The journal is replayed: the
        uncommitted epoch is rolled back to its pre-epoch placement,
        placement invariants are verified, planner state is restored from
        the newest committed checkpoint, and execution resumes at the
        interrupted region.  ``policy`` must be a *fresh* instance (the
        crashed one died with the process); it is warmed via
        ``restore_state`` + ``on_recover``.
        """
        from repro.core.journal import recover_journal

        if self._tiered:
            raise ValueError("crash recovery is only supported on 2-tier topologies")
        journal = image.journal if image.journal is not None else self.journal
        if journal is None:
            raise ValueError("cannot recover a run that was not journaled")
        self.journal = journal
        if self.telemetry is not None and journal.telemetry is None:
            journal.telemetry = self.telemetry
        outcome = recover_journal(journal, image.page_table)
        self._verify_task_conservation(workload, image, outcome)
        if outcome.checkpoint_state is not None:
            policy.restore_state(outcome.checkpoint_state)
        rng = make_rng(seed)
        ctx = EngineContext(
            workload, image.page_table, self.machine, self.hm, rng,
            faults=self.faults, telemetry=self.telemetry,
            topology=self.topology,
        )
        ctx.time = outcome.resume_time_s
        if self.telemetry is not None:
            self.telemetry.inc("merch_engine_runs_total")
        policy.on_recover(ctx)
        journal.append(
            "recovered",
            outcome.open_epoch,
            {
                "resume_region": outcome.resume_region,
                "time_s": outcome.resume_time_s,
                "rolled_back_pages": outcome.rolled_back_pages,
                "torn_tail": outcome.torn_tail,
                "warm": outcome.checkpoint_state is not None,
            },
        )
        journal.log.record(
            "journal.recovered",
            outcome.resume_time_s,
            region=outcome.resume_region,
            warm=outcome.checkpoint_state is not None,
        )
        self._epochs_since_checkpoint = 0
        result = self._run_regions(ctx, policy, start_region=outcome.resume_region)
        return result, outcome

    def _verify_task_conservation(
        self, workload: Workload, image: "CrashImage", outcome: "RecoveryOutcome"
    ) -> None:
        """Quota conservation per task: after the rollback, each task of the
        interrupted region holds exactly the DRAM-access share it had when
        the epoch began."""
        payload = outcome.open_begin_payload
        if payload is None or outcome.resume_region >= len(workload.regions):
            return
        region = workload.regions[outcome.resume_region]
        fractions = image.page_table.access_fractions()
        want = payload.get("task_r_dram", {})
        for inst in region.instances:
            expected = want.get(inst.task_id)
            if expected is None:
                continue
            total = inst.footprint.total_accesses
            actual = (
                sum(
                    acc.total * fractions.get(acc.obj, 0.0)
                    for acc in inst.footprint.accesses
                )
                / total
                if total > 0
                else 0.0
            )
            if abs(actual - float(expected)) > 1e-6:
                text = (
                    f"task {inst.task_id!r}: r_dram {actual:.6f} after "
                    f"rollback, epoch began at {float(expected):.6f}"
                )
                outcome.violations.append(text)
                image.journal.log.record(
                    "journal.invariant_violation", image.time_s, detail_text=text
                )

    # ------------------------------------------------------------------
    def _run_regions(
        self, ctx: EngineContext, policy: PlacementPolicy, start_region: int
    ) -> RunResult:
        workload = ctx.workload
        regions: list[RegionResult] = []
        trace_t: list[float] = []
        trace_d: list[float] = []
        trace_p: list[float] = []
        trace_m: list[float] = []
        tel = self.telemetry
        run_span = (
            tel.tracer.begin(
                "run", ctx.time, track="virtual",
                workload=workload.name, policy=policy.name,
            )
            if tel is not None
            else None
        )

        for idx in range(start_region, len(workload.regions)):
            region = workload.regions[idx]
            ctx.region = region
            ctx.region_index = idx
            ctx.progress = {inst.task_id: 0.0 for inst in region.instances}
            ctx.gated = set(region.gate_map())
            region_span = (
                tel.tracer.begin(
                    "region", ctx.time, track="virtual",
                    index=idx, region=region.name, instances=len(region.instances),
                )
                if tel is not None
                else None
            )
            self._refresh_times(ctx)
            policy.on_region_start(ctx)
            self._refresh_times(ctx)

            epoch: int | None = None
            begin_payload: dict | None = None
            if self.journal is not None:
                epoch, begin_payload = self._journal_epoch_begin(ctx, policy)
            if self._tiered:
                result = self._run_tiered_region(
                    ctx, policy, trace_t, trace_d, trace_p, trace_m
                )
            else:
                result = self._run_region(
                    ctx, policy, epoch, trace_t, trace_d, trace_p, trace_m
                )
            regions.append(result)
            policy.on_region_end(ctx)
            if self.journal is not None:
                self._journal_epoch_commit(ctx, epoch, begin_payload, policy)
            if tel is not None:
                tel.tracer.end(region_span, ctx.time)
                tel.inc("merch_engine_regions_total")
                tel.observe(
                    "merch_engine_region_duration_seconds", result.duration_s
                )
                for wait in result.wait_s.values():
                    tel.observe("merch_engine_barrier_wait_seconds", wait)
        if tel is not None:
            tel.tracer.end(run_span, ctx.time)

        fault_log = self.faults.log if self.faults is not None else None
        guard_log = getattr(policy, "guardrail_log", None)
        journal_log = self.journal.log if self.journal is not None else None
        return RunResult(
            policy=policy.name,
            workload=workload.name,
            total_time_s=ctx.time,
            regions=regions,
            pages_migrated=ctx.pages_migrated,
            trace_time=np.asarray(trace_t),
            trace_dram_bw=np.asarray(trace_d),
            trace_pm_bw=np.asarray(trace_p),
            trace_migration_bw=np.asarray(trace_m),
            robustness=RobustnessReport.merged(fault_log, guard_log, journal_log),
        )

    # ------------------------------------------------------------------
    # journal integration (no-ops when self.journal is None)
    # ------------------------------------------------------------------
    def _journal_epoch_begin(
        self, ctx: EngineContext, policy: PlacementPolicy
    ) -> tuple[int, dict]:
        """Open a migration epoch: durably snapshot the pre-epoch placement."""
        assert ctx.region is not None and self.journal is not None
        table = ctx.page_table
        binary = all(
            bool(np.all(np.abs(o.residency - np.round(o.residency)) <= 1e-9))
            for o in table
        )
        payload = {
            "region": ctx.region_index,
            "name": ctx.region.name,
            "time_s": ctx.time,
            "binary": binary,
            "dram_capacity_bytes": int(table.dram_capacity_bytes),
            "dram_pages": {o.name: float(o.residency.sum()) for o in table},
            "task_r_dram": self._task_r_dram_map(ctx),
            "quota_targets": {
                str(k): float(v)
                for k, v in (getattr(policy, "_quota_targets", None) or {}).items()
            },
        }
        return self.journal.begin_epoch(payload), payload

    def _task_r_dram_map(self, ctx: EngineContext) -> dict[str, float]:
        assert ctx.region is not None
        fractions = ctx.page_table.access_fractions()
        out: dict[str, float] = {}
        for inst in ctx.region.instances:
            total = inst.footprint.total_accesses
            if total <= 0:
                out[inst.task_id] = 0.0
                continue
            out[inst.task_id] = (
                sum(
                    acc.total * fractions.get(acc.obj, 0.0)
                    for acc in inst.footprint.accesses
                )
                / total
            )
        return out

    def _journal_epoch_commit(
        self,
        ctx: EngineContext,
        epoch: int | None,
        begin_payload: dict | None,
        policy: PlacementPolicy,
    ) -> None:
        from repro.core.journal import verify_placement

        assert self.journal is not None and epoch is not None
        self.journal.commit_epoch(
            epoch,
            {
                "region": ctx.region_index,
                "time_s": ctx.time,
                "pages_migrated": ctx.pages_migrated,
            },
        )
        binary = begin_payload.get("binary", True) if begin_payload else True
        for text in verify_placement(ctx.page_table, {"binary": binary}):
            self.journal.log.record(
                "journal.invariant_violation", ctx.time, detail_text=text
            )
        if self.telemetry is not None and begin_payload is not None:
            self.telemetry.observe(
                "merch_engine_epoch_duration_seconds",
                ctx.time - float(begin_payload["time_s"]),
            )
        self._epochs_since_checkpoint += 1
        if self._epochs_since_checkpoint >= max(1, self.config.checkpoint_interval):
            state = policy.snapshot_state()
            if state is not None:
                self.journal.checkpoint(epoch, state)
                self._epochs_since_checkpoint = 0

    def _journal_batch(
        self, ctx: EngineContext, epoch: int | None, batch: MigrationBatch, cause: str
    ) -> None:
        """Write-ahead: log a batch's moves with per-page before-images
        BEFORE any residency mutation.  A kill configured for the
        "wal_append" crash point dies here -- with ``crash_torn_tail`` the
        record's bytes are cut short, and either way the mutation never
        happens."""
        if self.journal is None or epoch is None:
            return
        table = ctx.page_table
        moves = [
            {
                "obj": name,
                "pages": np.asarray(idx, dtype=np.intp),
                "before": table.object(name).residency[idx].copy(),
                "promote": bool(promote),
            }
            for name, idx, promote in batch.moves
            if len(idx)
        ]
        if not moves:
            return
        if self.faults is not None and self.faults.crash_due("wal_append", ctx.time):
            if self.faults.config.crash_torn_tail:
                self.journal.append_torn(
                    "move", epoch, {"cause": cause, "moves": moves}
                )
            else:
                self.journal.log_moves(epoch, moves, cause)
            raise self._crash(ctx)
        self.journal.log_moves(epoch, moves, cause)

    def _crash(self, ctx: EngineContext) -> Exception:
        from repro.core.journal import CrashImage, SimulatedCrash

        return SimulatedCrash(
            CrashImage(
                journal=self.journal, page_table=ctx.page_table, time_s=ctx.time
            )
        )

    # ------------------------------------------------------------------
    def _refresh_times(self, ctx: EngineContext) -> None:
        assert ctx.region is not None
        if self._tiered:
            vectors = ctx.tier_fraction_vectors()
            for inst in ctx.region.instances:
                ctx.instance_times[inst.task_id] = self.machine.breakdown_tiered(
                    inst.footprint, self.topology, vectors
                ).total_s
            return
        fractions = ctx.dram_fractions()
        for inst in ctx.region.instances:
            ctx.instance_times[inst.task_id] = self.machine.instance_time(
                inst.footprint, self.hm, fractions
            )

    # ------------------------------------------------------------------
    def _run_region(
        self,
        ctx: EngineContext,
        policy: PlacementPolicy,
        epoch: int | None,
        trace_t: list[float],
        trace_d: list[float],
        trace_p: list[float],
        trace_m: list[float],
    ) -> RegionResult:
        cfg = self.config
        region = ctx.region
        assert region is not None
        tel = self.telemetry
        start = ctx.time
        finish: dict[str, float] = {}
        gates = region.gate_map()
        #: task id -> virtual time the instance was released to run (region
        #: start for ungated instances, gate-open tick for gated ones)
        released: dict[str, float] = {
            inst.task_id: start
            for inst in region.instances
            if inst.task_id not in ctx.gated
        }

        # tick size tracks the slowest instance: the region lives that long,
        # and short instances complete mid-tick via interpolation.  Tying dt
        # to the fastest instance would shrink ticks (and per-tick migration
        # budgets) arbitrarily under heavy skew.
        max_t = max(ctx.instance_times[i.task_id] for i in region.instances)
        dt = max(max_t / cfg.ticks_per_instance, 1e-9)
        mig_budget_bytes = cfg.migration_bandwidth_fraction * self.hm.pm.read_bandwidth * dt
        ctx.migration_budget_pages = max(1, int(mig_budget_bytes // PAGE_SIZE))
        ctx.failed_migrations.clear()

        # batched tick kernel: hoists the placement-independent parts of
        # every instance's breakdown out of the tick loop (PERFORMANCE.md).
        # The MERCH_SCALAR_KERNELS escape hatch keeps the per-instance
        # scalar model; both paths are bit-identical.
        kernel: BreakdownKernel | None = None
        if not scalar_kernels_enabled():
            kernel = BreakdownKernel(
                self.machine,
                self.hm,
                [(inst.task_id, inst.footprint) for inst in region.instances],
            )

        ticks = 0
        while len(finish) < len(region.instances):
            ticks += 1
            if ticks > cfg.max_ticks_per_region:
                raise RuntimeError(
                    f"region {region.name!r} exceeded {cfg.max_ticks_per_region} ticks"
                )
            if self.faults is not None and self.faults.crash_due("tick", ctx.time):
                raise self._crash(ctx)
            if ctx.gated:
                # open any gates whose dependencies have all finished; the
                # released instance starts progressing from this tick
                for tid in sorted(ctx.gated):
                    if all(dep in finish for dep in gates[tid]):
                        ctx.gated.discard(tid)
                        released[tid] = ctx.time
            fractions = ctx.dram_fractions()
            active = ctx.active_instances()
            if not active and ctx.gated:
                # unreachable for validated DAG gates (ParallelRegion rejects
                # cycles), kept as a runaway guard
                raise RuntimeError(
                    f"region {region.name!r}: gated instances "
                    f"{sorted(ctx.gated)} can never be released"
                )

            # phase 1: unconstrained progress and per-tier byte demand.
            # Demand sums stay sequential Python adds in instance order so
            # both breakdown paths produce the same contention scaling.
            dprog: dict[str, float] = {}
            bds: dict[str, TimeBreakdown] = {}
            demand_dram = 0.0
            demand_pm = 0.0
            if kernel is not None:
                bd_batch = kernel.breakdown_batch(
                    [inst.task_id for inst in active], fractions
                )
                breakdowns = zip(active, bd_batch)
            else:
                breakdowns = (
                    (inst, self.machine.breakdown(inst.footprint, self.hm, fractions))
                    for inst in active
                )
            for inst, bd in breakdowns:
                bds[inst.task_id] = bd
                ctx.instance_times[inst.task_id] = bd.total_s
                d = dt / max(bd.total_s, 1e-12)
                dprog[inst.task_id] = d
                demand_dram += d * bd.dram_bytes
                demand_pm += d * bd.pm_bytes

            # phase 2: bandwidth contention scaling per tier.  Transient
            # PM-bandwidth degradation (an injected environment fault)
            # shrinks the PM cap for the affected ticks.
            cap_dram = self.hm.dram.read_bandwidth * dt
            pm_factor = (
                self.faults.pm_bandwidth_factor(ctx.time)
                if self.faults is not None
                else 1.0
            )
            cap_pm = self.hm.pm.read_bandwidth * dt * pm_factor
            s_dram = min(1.0, cap_dram / demand_dram) if demand_dram > 0 else 1.0
            s_pm = min(1.0, cap_pm / demand_pm) if demand_pm > 0 else 1.0

            tick_dram_bytes = 0.0
            tick_pm_bytes = 0.0
            for inst in active:
                bd = bds[inst.task_id]
                total_bytes = bd.dram_bytes + bd.pm_bytes
                if total_bytes > 0:
                    w_d = bd.dram_bytes / total_bytes
                    scale = w_d * s_dram + (1.0 - w_d) * s_pm
                else:
                    scale = 1.0
                step = dprog[inst.task_id] * scale
                prev = ctx.progress[inst.task_id]
                new = prev + step
                if new >= 1.0:
                    # interpolate the exact finish instant inside the tick
                    frac = (1.0 - prev) / max(step, 1e-15)
                    finish[inst.task_id] = ctx.time + frac * dt
                    new = 1.0
                ctx.progress[inst.task_id] = new
                done = new - prev
                # bd.*_bytes are whole-instance totals; this tick moved the
                # completed fraction of them
                tick_dram_bytes += done * bd.dram_bytes
                tick_pm_bytes += done * bd.pm_bytes

            # DRAM capacity-pressure spike: an external allocation steals
            # capacity, so the kernel demotes our coldest pages to make room
            # and promotions are admitted against the smaller DRAM.
            pressure = (
                self.faults.dram_pressure_bytes(
                    ctx.time, ctx.page_table.dram_capacity_bytes
                )
                if self.faults is not None
                else 0
            )
            if pressure > 0:
                plan = _plan_pressure_evictions(ctx.page_table, pressure)
                if plan:
                    evict_batch = MigrationBatch(
                        moves=tuple((name, idx, False) for name, idx in plan)
                    )
                    # kernel-driven demotions mutate placement too, so they
                    # are journaled like policy moves
                    self._journal_batch(ctx, epoch, evict_batch, "pressure")
                    evicted = ctx.page_table.apply_batch(evict_batch)
                    if evicted:
                        ctx.pages_migrated += evicted
                        tick_pm_bytes += evicted * PAGE_SIZE
                        tick_dram_bytes += evicted * PAGE_SIZE
                        if tel is not None:
                            tel.inc(
                                "merch_engine_pages_migrated_total",
                                evicted, cause="pressure",
                            )
                            tel.inc(
                                "merch_engine_bytes_migrated_total",
                                evicted * PAGE_SIZE, cause="pressure",
                            )

            # phase 3: policy-driven migration, throttled by bandwidth.
            # Injected faults may reject the batch or fail part of it
            # mid-copy.
            batch = policy.on_tick(ctx, dt)
            mig_bytes = 0.0
            if batch is not None and batch.n_pages > 0:
                # migrations read PM, so a degraded PM shrinks their budget
                max_pages = max(1, int(mig_budget_bytes * pm_factor // PAGE_SIZE))
                batch = _clamp_batch(batch, max_pages)
                if self.faults is not None:
                    batch, failed = self.faults.migration_outcome(batch, ctx.time)
                    if failed is not None:
                        ctx.failed_migrations.append(failed)
                if batch is not None and batch.n_pages > 0:
                    # intent is durable before any page moves; a crash past
                    # this point leaves a half-applied batch the journal can
                    # roll back exactly
                    self._journal_batch(ctx, epoch, batch, "policy")
                    crash_mid = self.faults is not None and self.faults.crash_due(
                        "mid_batch", ctx.time
                    )
                    to_apply = batch
                    if crash_mid:
                        # the kill lands mid-copy: only the first half of the
                        # batch reaches the page table
                        to_apply = _clamp_batch(batch, max(1, batch.n_pages // 2))
                    table = ctx.page_table
                    base_capacity = table.dram_capacity_bytes
                    table.dram_capacity_bytes = max(0, base_capacity - pressure)
                    try:
                        moved = table.apply_batch(to_apply)
                    finally:
                        table.dram_capacity_bytes = base_capacity
                    if crash_mid:
                        raise self._crash(ctx)
                    ctx.pages_migrated += moved
                    mig_bytes = moved * PAGE_SIZE
                    ctx.migration_overhead_s += (
                        moved * self.hm.page_migration_overhead_s
                    )
                    if tel is not None and moved:
                        overhead = moved * self.hm.page_migration_overhead_s
                        tel.inc(
                            "merch_engine_pages_migrated_total", moved, cause="policy"
                        )
                        tel.inc(
                            "merch_engine_bytes_migrated_total",
                            mig_bytes, cause="policy",
                        )
                        tel.inc(
                            "merch_engine_migration_overhead_seconds_total", overhead
                        )
                        tel.tracer.add_complete(
                            "migrate", ctx.time, overhead,
                            track="virtual", pages=moved, cause="policy",
                        )
                    # migration reads PM and writes DRAM (promotions) or the
                    # reverse; charge both tiers the full copy traffic
                    tick_pm_bytes += mig_bytes
                    tick_dram_bytes += mig_bytes

            if cfg.record_bandwidth:
                trace_t.append(ctx.time)
                trace_d.append(tick_dram_bytes / dt)
                trace_p.append(tick_pm_bytes / dt)
                trace_m.append(mig_bytes / dt)

            if tel is not None:
                tel.inc("merch_engine_ticks_total")
                tel.set(
                    "merch_engine_dram_occupancy_ratio",
                    ctx.page_table.dram_used_bytes()
                    / max(ctx.page_table.dram_capacity_bytes, 1),
                )

            ctx.time += dt

        # the barrier releases at the last finish time; snap region end there
        end = max(finish.values())
        ctx.time = end
        if tel is not None:
            first = min(finish.values())
            tel.tracer.add_complete(
                "barrier", first, end - first,
                track="virtual", tasks=len(finish),
            )
        busy = {t: finish[t] - released.get(t, start) for t in finish}
        wait = {t: end - finish[t] for t in finish}
        return RegionResult(
            name=region.name, start_s=start, end_s=end, busy_s=busy, wait_s=wait
        )

    # ------------------------------------------------------------------
    def _run_tiered_region(
        self,
        ctx: EngineContext,
        policy: PlacementPolicy,
        trace_t: list[float],
        trace_d: list[float],
        trace_p: list[float],
        trace_m: list[float],
    ) -> RegionResult:
        """N-tier twin of :meth:`_run_region` (>2 tiers only).

        Same three phases per tick, generalised: per-tier byte demand and
        contention scaling, pressure spikes steal fastest-tier capacity,
        and policies move pages with :class:`TieredMigrationBatch`.  Crash
        journaling is excluded by construction (guarded in ``__init__``).
        """
        cfg = self.config
        topo = self.topology
        n = topo.n_tiers
        region = ctx.region
        assert region is not None
        table = ctx.page_table
        assert isinstance(table, TieredPageTable)
        tel = self.telemetry
        start = ctx.time
        finish: dict[str, float] = {}
        gates = region.gate_map()
        released: dict[str, float] = {
            inst.task_id: start
            for inst in region.instances
            if inst.task_id not in ctx.gated
        }

        max_t = max(ctx.instance_times[i.task_id] for i in region.instances)
        dt = max(max_t / cfg.ticks_per_instance, 1e-9)
        mig_budget_bytes = (
            cfg.migration_bandwidth_fraction * topo.slowest.read_bandwidth * dt
        )
        ctx.migration_budget_pages = max(1, int(mig_budget_bytes // PAGE_SIZE))
        ctx.failed_migrations.clear()

        kernel: TieredBreakdownKernel | None = None
        if not scalar_kernels_enabled():
            kernel = TieredBreakdownKernel(
                self.machine,
                topo,
                [(inst.task_id, inst.footprint) for inst in region.instances],
            )

        ticks = 0
        while len(finish) < len(region.instances):
            ticks += 1
            if ticks > cfg.max_ticks_per_region:
                raise RuntimeError(
                    f"region {region.name!r} exceeded {cfg.max_ticks_per_region} ticks"
                )
            if ctx.gated:
                for tid in sorted(ctx.gated):
                    if all(dep in finish for dep in gates[tid]):
                        ctx.gated.discard(tid)
                        released[tid] = ctx.time
            vectors = ctx.tier_fraction_vectors()
            active = ctx.active_instances()
            if not active and ctx.gated:
                raise RuntimeError(
                    f"region {region.name!r}: gated instances "
                    f"{sorted(ctx.gated)} can never be released"
                )

            # phase 1: unconstrained progress and per-tier byte demand
            dprog: dict[str, float] = {}
            bds: dict[str, TieredBreakdown] = {}
            demand = [0.0] * n
            if kernel is not None:
                bd_batch = kernel.breakdown_batch(
                    [inst.task_id for inst in active], vectors
                )
                breakdowns = zip(active, bd_batch)
            else:
                breakdowns = (
                    (
                        inst,
                        self.machine.breakdown_tiered(inst.footprint, topo, vectors),
                    )
                    for inst in active
                )
            for inst, bd in breakdowns:
                bds[inst.task_id] = bd
                ctx.instance_times[inst.task_id] = bd.total_s
                d = dt / max(bd.total_s, 1e-12)
                dprog[inst.task_id] = d
                for k in range(n):
                    demand[k] += d * bd.tier_bytes(k)

            # phase 2: per-tier bandwidth contention.  The injected
            # "pm bandwidth degraded" environment fault hits the slowest
            # tier, like its 2-tier counterpart.
            bw_factors = (
                self.faults.tier_bandwidth_factors(ctx.time, n)
                if self.faults is not None
                else (1.0,) * n
            )
            scales = []
            for k in range(n):
                cap = topo.tiers[k].read_bandwidth * dt * bw_factors[k]
                scales.append(min(1.0, cap / demand[k]) if demand[k] > 0 else 1.0)

            tick_bytes = [0.0] * n
            for inst in active:
                bd = bds[inst.task_id]
                total_bytes = sum(bd.tier_bytes(k) for k in range(n))
                if total_bytes > 0:
                    scale = sum(
                        (bd.tier_bytes(k) / total_bytes) * scales[k]
                        for k in range(n)
                    )
                else:
                    scale = 1.0
                step = dprog[inst.task_id] * scale
                prev = ctx.progress[inst.task_id]
                new = prev + step
                if new >= 1.0:
                    frac = (1.0 - prev) / max(step, 1e-15)
                    finish[inst.task_id] = ctx.time + frac * dt
                    new = 1.0
                ctx.progress[inst.task_id] = new
                done = new - prev
                for k in range(n):
                    tick_bytes[k] += done * bd.tier_bytes(k)

            # capacity-pressure spike steals fastest-tier capacity: demote
            # its coldest pages to the nearest tier with room
            pressure = (
                self.faults.tier_pressure_bytes(ctx.time, table.capacities_bytes)[0]
                if self.faults is not None
                else 0
            )
            if pressure > 0:
                evict_batch = _plan_tiered_pressure_evictions(table, pressure)
                if evict_batch is not None:
                    evicted = table.apply_batch(evict_batch)
                    if evicted:
                        ctx.pages_migrated += evicted
                        tick_bytes[0] += evicted * PAGE_SIZE
                        tick_bytes[-1] += evicted * PAGE_SIZE
                        if tel is not None:
                            tel.inc(
                                "merch_engine_pages_migrated_total",
                                evicted, cause="pressure",
                            )
                            tel.inc(
                                "merch_engine_bytes_migrated_total",
                                evicted * PAGE_SIZE, cause="pressure",
                            )

            # phase 3: policy-driven migration, throttled and fault-checked
            batch = policy.on_tick(ctx, dt)
            mig_bytes = 0.0
            if batch is not None and batch.n_pages > 0:
                max_pages = max(1, int(mig_budget_bytes * bw_factors[-1] // PAGE_SIZE))
                batch = _clamp_batch(batch, max_pages)
                if self.faults is not None:
                    batch, failed = self.faults.migration_outcome(batch, ctx.time)
                    if failed is not None:
                        ctx.failed_migrations.append(failed)
                if batch is not None and batch.n_pages > 0:
                    base = table.capacities_bytes
                    table.capacities_bytes = (
                        max(0, base[0] - pressure),
                    ) + base[1:]
                    try:
                        moved = table.apply_batch(batch)
                    finally:
                        table.capacities_bytes = base
                    ctx.pages_migrated += moved
                    mig_bytes = moved * PAGE_SIZE
                    overhead = moved * topo.page_migration_overhead_s
                    ctx.migration_overhead_s += overhead
                    if tel is not None and moved:
                        tel.inc(
                            "merch_engine_pages_migrated_total", moved, cause="policy"
                        )
                        tel.inc(
                            "merch_engine_bytes_migrated_total",
                            mig_bytes, cause="policy",
                        )
                        tel.inc(
                            "merch_engine_migration_overhead_seconds_total", overhead
                        )
                        tel.tracer.add_complete(
                            "migrate", ctx.time, overhead,
                            track="virtual", pages=moved, cause="policy",
                        )
                    # copies read the source tier and write the destination;
                    # charge the fast end and the slow aggregate like the
                    # 2-tier loop does
                    tick_bytes[0] += mig_bytes
                    tick_bytes[-1] += mig_bytes

            if cfg.record_bandwidth:
                trace_t.append(ctx.time)
                trace_d.append(tick_bytes[0] / dt)
                trace_p.append(sum(tick_bytes[1:]) / dt)
                trace_m.append(mig_bytes / dt)

            if tel is not None:
                tel.inc("merch_engine_ticks_total")
                tel.set(
                    "merch_engine_dram_occupancy_ratio",
                    table.tier_used_bytes(0) / max(table.capacities_bytes[0], 1),
                )

            ctx.time += dt

        end = max(finish.values())
        ctx.time = end
        if tel is not None:
            first = min(finish.values())
            tel.tracer.add_complete(
                "barrier", first, end - first,
                track="virtual", tasks=len(finish),
            )
        busy = {t: finish[t] - released.get(t, start) for t in finish}
        wait = {t: end - finish[t] for t in finish}
        return RegionResult(
            name=region.name, start_s=start, end_s=end, busy_s=busy, wait_s=wait
        )


def _plan_tiered_pressure_evictions(
    table: TieredPageTable, pressure_bytes: int
) -> TieredMigrationBatch | None:
    """Coldest fastest-tier pages out to the nearest tier with free pages.

    Same deterministic victim order as the 2-tier planner: objects by
    ``(tier-0 access fraction, name)``, pages coldest-first with stable
    id tie-breaks.  Destinations fill slower tiers in order (1, 2, ...),
    so demoted pages land as close to the fast tier as space allows.
    """
    if pressure_bytes <= 0:
        return None
    capacity_pages = max(0, (table.capacities_bytes[0] - pressure_bytes) // PAGE_SIZE)
    used = int(table.tier_used_pages(0))
    need = used - capacity_pages
    if need <= 0:
        return None
    free = [table.tier_free_pages(k) for k in range(table.n_tiers)]
    moves: list[tuple[str, np.ndarray, int]] = []
    picked = 0
    dst = 1
    for obj in sorted(
        table, key=lambda o: (float(o.tier_access_fractions()[0]), o.name)
    ):
        if picked >= need:
            break
        cold = obj.coldest_pages_in(0, limit=need - picked)
        pos = 0
        while pos < len(cold):
            while dst < table.n_tiers and free[dst] <= 0:
                dst += 1
            if dst >= table.n_tiers:
                break
            take = cold[pos : pos + free[dst]]
            moves.append((obj.name, take, dst))
            free[dst] -= len(take)
            picked += len(take)
            pos += len(take)
        if dst >= table.n_tiers:
            break
    return TieredMigrationBatch(moves=tuple(moves)) if moves else None


def _plan_pressure_evictions(
    table: PageTable, pressure_bytes: int
) -> list[tuple[str, np.ndarray]]:
    """Pick the coldest DRAM pages to demote so the table fits the capacity
    left over by an external pressure spike.  Pure planning (no mutation) so
    the choice can be journaled before it is applied.

    Victim order is a deterministic function of the placement: objects by
    ``(dram_access_fraction, name)`` -- the name tie-break pins the order
    when fractions tie, independent of dict insertion order -- and pages
    within an object coldest-first with id tie-breaks
    (:meth:`PagedObject.coldest_dram_pages` uses a stable sort).
    """
    if pressure_bytes <= 0:
        return []
    capacity_pages = max(0, (table.dram_capacity_bytes - pressure_bytes) // PAGE_SIZE)
    used = int(sum(obj.dram_pages() for obj in table))
    need = used - capacity_pages
    if need <= 0:
        return []
    plan: list[tuple[str, np.ndarray]] = []
    picked = 0
    for obj in sorted(table, key=lambda o: (o.dram_access_fraction(), o.name)):
        if picked >= need:
            break
        cold = obj.coldest_dram_pages(limit=need - picked)
        if len(cold):
            plan.append((obj.name, cold))
            picked += len(cold)
    return plan


def _evict_for_pressure(table: PageTable, pressure_bytes: int) -> int:
    """Demote the coldest DRAM pages until the table fits the capacity left
    over by an external pressure spike.  Returns pages evicted."""
    plan = _plan_pressure_evictions(table, pressure_bytes)
    if not plan:
        return 0
    return table.apply_batch(
        MigrationBatch(moves=tuple((name, idx, False) for name, idx in plan))
    )


def _clamp_batch(batch: MigrationBatch, max_pages: int) -> MigrationBatch:
    """Limit a batch to ``max_pages`` promotions+demotions (keep order).

    A non-positive budget yields an empty batch, and moves with no pages are
    dropped rather than carried along as zero-length entries.  The batch
    class is preserved so :class:`TieredMigrationBatch` (same move-triple
    shape, destination tier in the third slot) clamps identically.
    """
    cls = type(batch)
    if max_pages <= 0:
        return cls(moves=())
    if batch.n_pages <= max_pages:
        return batch
    moves: list[tuple[str, np.ndarray, bool]] = []
    left = max_pages
    for name, idx, promote in batch.moves:
        if left <= 0:
            break
        take = idx[:left]
        if len(take) == 0:
            continue
        moves.append((name, take, promote))
        left -= len(take)
    return cls(moves=tuple(moves))
