"""Deterministic replay with bit-exact divergence detection.

The replayer treats a recording as a **command journal**: it rebuilds a
fresh server from the recorded :class:`~repro.replay.config.ServiceConfig`
(same cache geometry, admission watermarks, fault schedule and seed),
pins a virtual clock to each record's timestamp, and re-issues the exact
``submit``/``pump``/``step``/``flush`` sequence the original server ran.
Everything behind :meth:`PlacementServer.submit` is deterministic given
the op sequence and timestamps, so the replayed decision stream must
match the recorded one *bit for bit* -- compared as canonical JSON of the
encoded decisions.

The one excluded field is ``latency_s``: on a wall-clock recording it
includes real compute time between admission and decision, which a
virtual-clock replay cannot (and should not) reproduce.  It is timing
metadata, not part of the decision.

Divergence reporting is structural: the first mismatch names the request,
the differing field path, expected vs got, and a context snapshot of the
replay server (cache hit/miss state, admission saturation, queue depth)
so the upstream cause is diagnosable from the report alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.replay.config import ServiceConfig, VirtualClock, build_server
from repro.replay.recorder import Recording
from repro.service.protocol import (
    PlacementDecision,
    decode_request,
    encode_decision,
    to_json,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import PerformanceModel
    from repro.core.telemetry import Telemetry

__all__ = ["Divergence", "ReplayReport", "replay_recording", "decision_fingerprint"]

#: fields excluded from the bit-exact comparison (timing metadata whose
#: value depends on the recording-side clock, not on the decision)
TIMING_FIELDS = ("latency_s",)

_FIRE_OPS = ("pump", "step", "flush")


def _strip_timing(decision_payload: Mapping) -> dict:
    return {k: v for k, v in decision_payload.items() if k not in TIMING_FIELDS}


def decision_fingerprint(decision: PlacementDecision | Mapping) -> str:
    """Canonical JSON of a decision minus timing metadata -- equal strings
    iff the decisions are bit-exact equivalents."""
    payload = (
        decision
        if isinstance(decision, Mapping)
        else encode_decision(decision)
    )
    return to_json(_strip_timing(payload))


def first_field_diff(expected, got, path: str = "") -> tuple[str, object, object]:
    """(field path, expected, got) of the first structural difference."""
    if isinstance(expected, Mapping) and isinstance(got, Mapping):
        for key in sorted(set(expected) | set(got)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in expected:
                return (sub, "<absent>", got[key])
            if key not in got:
                return (sub, expected[key], "<absent>")
            if expected[key] != got[key]:
                return first_field_diff(expected[key], got[key], sub)
        return (path or "<root>", expected, got)
    if isinstance(expected, (list, tuple)) and isinstance(got, (list, tuple)):
        if len(expected) != len(got):
            return (f"{path}.length", len(expected), len(got))
        for i, (e, g) in enumerate(zip(expected, got)):
            if e != g:
                return first_field_diff(e, g, f"{path}[{i}]")
        return (path or "<root>", expected, got)
    return (path or "<root>", expected, got)


@dataclass(frozen=True)
class Divergence:
    """The first replayed decision that differed from the record."""

    request_id: str
    field: str
    expected: object
    got: object
    #: replay-server snapshot at detection time (cache/admission/queue)
    context: dict

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "field": self.field,
            "expected": self.expected,
            "got": self.got,
            "context": self.context,
        }


@dataclass
class ReplayReport:
    """Outcome of one deterministic replay."""

    requests: int = 0
    expected_decisions: int = 0
    replayed_decisions: int = 0
    matched: int = 0
    divergent: int = 0
    #: recorded ids the replay decided fewer times than the record
    lost_ids: list[str] = field(default_factory=list)
    #: ids the replay decided more times than the record
    duplicated_ids: list[str] = field(default_factory=list)
    #: replayed ids with no recorded decision at all
    unexpected_ids: list[str] = field(default_factory=list)
    #: recorded request ids that never reached a replayed decision
    undecided_ids: list[str] = field(default_factory=list)
    first_divergence: Divergence | None = None

    @property
    def lost(self) -> int:
        return len(self.lost_ids)

    @property
    def duplicated(self) -> int:
        return len(self.duplicated_ids)

    def ok(self) -> bool:
        return (
            self.divergent == 0
            and not self.lost_ids
            and not self.duplicated_ids
            and not self.unexpected_ids
            and not self.undecided_ids
        )

    def to_dict(self, max_ids: int = 20) -> dict:
        return {
            "ok": self.ok(),
            "requests": self.requests,
            "expected_decisions": self.expected_decisions,
            "replayed_decisions": self.replayed_decisions,
            "matched": self.matched,
            "divergent": self.divergent,
            "lost": self.lost,
            "duplicated": self.duplicated,
            "unexpected": len(self.unexpected_ids),
            "undecided": len(self.undecided_ids),
            "lost_ids": self.lost_ids[:max_ids],
            "duplicated_ids": self.duplicated_ids[:max_ids],
            "unexpected_ids": self.unexpected_ids[:max_ids],
            "undecided_ids": self.undecided_ids[:max_ids],
            "first_divergence": (
                self.first_divergence.to_dict()
                if self.first_divergence is not None
                else None
            ),
        }


def _context_snapshot(server) -> dict:
    cache = None
    if server.cache is not None:
        cache = {
            "entries": len(server.cache),
            "hits": server.cache.hits,
            "misses": server.cache.misses,
        }
    return {
        "pending_depth": server.scheduler.pending_depth,
        "decided": server.decided,
        "admission_saturated": server.admission.saturated,
        "admission_shed_count": server.admission.shed_count,
        "cache": cache,
    }


def replay_recording(
    recording: Recording,
    model: "PerformanceModel",
    *,
    config: ServiceConfig | None = None,
    telemetry: "Telemetry | None" = None,
) -> ReplayReport:
    """Drive a fresh server through ``recording``'s command journal and
    compare every replayed decision against the recorded one.

    ``config`` overrides the recording's embedded config (used by tests
    that deliberately replay under a different configuration to watch
    divergence detection fire); by default the recorded config is used,
    which is the bit-exact contract.
    """
    if config is None:
        config_payload = recording.meta.get("config")
        if config_payload is None:
            raise ValueError(
                "recording carries no config in its meta and none was given"
            )
        config = ServiceConfig.from_dict(config_payload)
    clock = VirtualClock()
    server = build_server(config, model, clock=clock, telemetry=telemetry)

    expected: dict[str, list[dict]] = {}
    replayed: dict[str, list[PlacementDecision]] = {}
    request_order: list[str] = []

    def collect(decisions) -> None:
        for dec in decisions:
            replayed.setdefault(dec.request_id, []).append(dec)

    for rec in recording.records:
        event = rec.get("event")
        if event == "request":
            clock.advance_to(rec["t"])
            request = decode_request(rec["request"])
            request_order.append(request.request_id)
            shed = server.submit(request, now=float(rec["t"]))
            if shed is not None:
                collect([shed])
        elif event == "fire":
            op = rec.get("op")
            if op not in _FIRE_OPS:
                raise ValueError(f"unknown fire op {op!r} at seq {rec.get('seq')}")
            clock.advance_to(rec["t"])
            collect(getattr(server, op)(now=float(rec["t"])))
        elif event == "decision":
            payload = rec["decision"]
            expected.setdefault(payload["request_id"], []).append(payload)
        # observational events (wire_fault/resubmission/teardown/...) are
        # wire accounting, not commands: the replayer skips them

    report = ReplayReport(
        requests=len(request_order),
        expected_decisions=sum(len(v) for v in expected.values()),
        replayed_decisions=sum(len(v) for v in replayed.values()),
    )
    for rid, exp_list in expected.items():
        got_list = replayed.get(rid, [])
        for exp_payload, got_dec in zip(exp_list, got_list):
            got_payload = encode_decision(got_dec)
            if decision_fingerprint(exp_payload) == decision_fingerprint(got_payload):
                report.matched += 1
                if telemetry is not None:
                    telemetry.inc("merch_replay_replayed_total", outcome="matched")
            else:
                report.divergent += 1
                if telemetry is not None:
                    telemetry.inc("merch_replay_replayed_total", outcome="divergent")
                if report.first_divergence is None:
                    path, e, g = first_field_diff(
                        _strip_timing(exp_payload), _strip_timing(got_payload)
                    )
                    report.first_divergence = Divergence(
                        request_id=rid,
                        field=path,
                        expected=e,
                        got=g,
                        context=_context_snapshot(server),
                    )
        if len(got_list) < len(exp_list):
            report.lost_ids.append(rid)
        elif len(got_list) > len(exp_list):
            report.duplicated_ids.append(rid)
    for rid, got_list in replayed.items():
        if rid not in expected:
            report.unexpected_ids.append(rid)
    decided = set(replayed)
    report.undecided_ids = [rid for rid in request_order if rid not in decided]
    return report
