"""Span tracer: nested, named time intervals over the placement pipeline.

Two *tracks* (clocks) coexist in one trace, because the repository runs on
two kinds of time:

* ``virtual`` -- the engine's simulated clock.  Regions, migrations and
  barriers live here; their timestamps are deterministic and seeded runs
  produce identical span timelines.
* ``wall`` -- real ``perf_counter`` time, measured from tracer creation.
  The control plane's own cost lives here: estimation, endpoint
  prediction, Algorithm-1 planning, base profiling, alpha refinement and
  journal recovery all take *host* time while virtual time stands still.

Spans on a track must nest (begin/end are LIFO per track); the tracer
enforces that, so the Chrome ``trace_event`` exporter can emit complete
("X") events that Perfetto renders as properly stacked slices.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Span", "SpanTracer", "TRACKS"]

#: track name -> trace process id (see exporters.chrome_trace)
TRACKS = {"virtual": 1, "wall": 2}


@dataclass
class Span:
    """One recorded interval.  ``end_s`` is None while the span is open."""

    name: str
    track: str
    start_s: float
    end_s: float | None = None
    depth: int = 0
    args: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ValueError(f"span {self.name!r} is still open")
        return self.end_s - self.start_s


class SpanTracer:
    """Collects spans; one instance per :class:`~repro.core.telemetry.Telemetry`."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stacks: dict[str, list[Span]] = {name: [] for name in TRACKS}
        self._wall_epoch = time.perf_counter()

    # -- clocks ---------------------------------------------------------
    def wall_now(self) -> float:
        """Seconds of wall time since the tracer was created."""
        return time.perf_counter() - self._wall_epoch

    # -- explicit begin/end (virtual-time callers own the clock) --------
    def begin(self, name: str, ts: float, track: str = "virtual", **args) -> Span:
        stack = self._stacks[track]  # KeyError on unknown track is deliberate
        span = Span(
            name=name, track=track, start_s=float(ts), depth=len(stack), args=args
        )
        stack.append(span)
        self.spans.append(span)
        return span

    def end(self, span: Span, ts: float) -> Span:
        stack = self._stacks[span.track]
        if not stack or stack[-1] is not span:
            raise ValueError(
                f"span {span.name!r} ended out of order on track {span.track!r}"
            )
        if float(ts) < span.start_s:
            raise ValueError(
                f"span {span.name!r} ends at {ts} before it began at {span.start_s}"
            )
        stack.pop()
        span.end_s = float(ts)
        return span

    def add_complete(
        self, name: str, ts: float, duration_s: float, track: str = "virtual", **args
    ) -> Span:
        """Record an already-finished interval (retroactive; no stack walk).

        Its depth is one below the innermost currently-open span on the
        track, so the exporter nests it where it happened.
        """
        if duration_s < 0:
            raise ValueError(f"span {name!r} has negative duration {duration_s}")
        span = Span(
            name=name,
            track=track,
            start_s=float(ts),
            end_s=float(ts) + float(duration_s),
            depth=len(self._stacks[track]),
            args=args,
        )
        self.spans.append(span)
        return span

    # -- wall-clock convenience ----------------------------------------
    @contextmanager
    def wall_span(self, name: str, **args):
        span = self.begin(name, self.wall_now(), track="wall", **args)
        try:
            yield span
        finally:
            self.end(span, self.wall_now())

    # -- inspection -----------------------------------------------------
    def open_spans(self, track: str | None = None) -> list[Span]:
        if track is not None:
            return list(self._stacks[track])
        return [s for stack in self._stacks.values() for s in stack]

    def closed_spans(self, track: str | None = None) -> list[Span]:
        return [
            s
            for s in self.spans
            if s.end_s is not None and (track is None or s.track == track)
        ]

    def by_name(self, name: str) -> list[Span]:
        return [s for s in self.spans if s.name == name]
