"""Dependency-free metrics registry: counters, gauges, histograms.

Prometheus-shaped but stdlib-only: metrics are declared up front with a
name, a help string and (optionally) label names; each distinct label-value
combination is one time series.  The registry enforces the conventions the
exposition format relies on:

* **counters are monotone** -- a negative increment raises;
* **histograms have fixed bucket layouts** chosen at registration (the
  exporter renders cumulative ``le`` buckets plus ``_sum``/``_count``);
* **labels are declared** -- observing with an undeclared or missing label
  raises, so series never silently fork;
* **cardinality is bounded** -- each metric may materialise at most
  ``max_label_sets`` distinct series; the guard raises
  :class:`LabelCardinalityError` instead of letting an unbounded label
  (page ids, task ids of huge runs) eat memory.

Nothing in here touches the simulator's RNG or state: recording telemetry
can never perturb a run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

__all__ = [
    "LabelCardinalityError",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
]

#: generic default layout (powers-of-ten-ish, seconds or ratios)
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class LabelCardinalityError(RuntimeError):
    """A metric tried to materialise more label sets than the guard allows."""


def _check_name(name: str) -> None:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name must not start with a digit: {name!r}")


class _Metric:
    """Shared series bookkeeping for the three metric kinds."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        max_label_sets: int,
    ) -> None:
        _check_name(name)
        self.name = name
        self.help = help
        self.label_names: tuple[str, ...] = tuple(label_names)
        self.max_label_sets = max_label_sets
        #: label-value tuple (in declared order) -> series state
        self._series: dict[tuple[str, ...], object] = {}
        if not self.label_names:
            # an unlabelled metric is exactly one series, live from birth
            # (so exposition shows it at zero before the first event)
            self._series[()] = self._new_series()

    # -- series management ---------------------------------------------
    def _new_series(self) -> object:
        raise NotImplementedError

    def _key(self, labels: Mapping[str, str]) -> tuple[str, ...]:
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        return tuple(str(labels[n]) for n in self.label_names)

    def _series_for(self, labels: Mapping[str, str]) -> object:
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            if len(self._series) >= self.max_label_sets:
                raise LabelCardinalityError(
                    f"{self.name}: more than {self.max_label_sets} label sets "
                    f"(rejected {dict(zip(self.label_names, key))})"
                )
            series = self._new_series()
            self._series[key] = series
        return series

    def series(self) -> dict[tuple[str, ...], object]:
        """Materialised series, keyed by label-value tuple (exporter API)."""
        return dict(self._series)


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def _new_series(self) -> list[float]:
        return [0.0]

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        if not (amount >= 0.0):  # also rejects NaN
            raise ValueError(f"{self.name}: counter increment {amount!r} < 0")
        self._series_for(labels)[0] += amount

    def value(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return series[0] if series is not None else 0.0


class Gauge(_Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def _new_series(self) -> list[float]:
        return [0.0]

    def set(self, value: float, **labels: str) -> None:
        self._series_for(labels)[0] = float(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self._series_for(labels)[0] += amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: str) -> float:
        series = self._series.get(self._key(labels))
        return series[0] if series is not None else 0.0


@dataclass
class HistogramSeries:
    """One histogram time series: cumulative-style bucket counts + sum."""

    bucket_counts: list[int]
    sum: float = 0.0
    count: int = 0


class Histogram(_Metric):
    """Distribution over a fixed, finite bucket layout (+inf is implicit)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        label_names: Sequence[str],
        max_label_sets: int,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError(f"{name}: bucket bounds must strictly increase")
        if any(not math.isfinite(b) for b in bounds):
            raise ValueError(f"{name}: bucket bounds must be finite (+inf is implicit)")
        self.buckets = bounds
        super().__init__(name, help, label_names, max_label_sets)

    def _new_series(self) -> HistogramSeries:
        # one extra slot for the implicit +inf bucket
        return HistogramSeries(bucket_counts=[0] * (len(self.buckets) + 1))

    def observe(self, value: float, **labels: str) -> None:
        if math.isnan(value):
            raise ValueError(f"{self.name}: observed NaN")
        series = self._series_for(labels)
        # first bucket whose upper bound admits the value (<= semantics)
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        series.bucket_counts[idx] += 1
        series.sum += value
        series.count += 1

    def snapshot(self, **labels: str) -> HistogramSeries | None:
        series = self._series.get(self._key(labels))
        return series


class MetricRegistry:
    """Owns every metric; the unit the exporters serialise.

    ``max_label_sets`` is the per-metric cardinality guard (instrumentation
    in this repo only uses closed, enumerable label values, so the default
    is generous).
    """

    def __init__(self, max_label_sets: int = 64) -> None:
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be >= 1")
        self.max_label_sets = max_label_sets
        self._metrics: dict[str, _Metric] = {}

    # -- registration ---------------------------------------------------
    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            same = (
                type(existing) is type(metric)
                and existing.label_names == metric.label_names
                and getattr(existing, "buckets", None)
                == getattr(metric, "buckets", None)
            )
            if not same:
                raise ValueError(
                    f"metric {metric.name!r} already registered with a "
                    f"different signature"
                )
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: Sequence[str] = ()
    ) -> Counter:
        return self._register(Counter(name, help, labels, self.max_label_sets))

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge(name, help, labels, self.max_label_sets))

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(
            Histogram(name, help, labels, self.max_label_sets, buckets=buckets)
        )

    # -- lookup / iteration --------------------------------------------
    def get(self, name: str) -> _Metric:
        try:
            return self._metrics[name]
        except KeyError:
            raise KeyError(f"metric {name!r} is not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def collect(self) -> Iterable[_Metric]:
        """Metrics in name order (the exporters' deterministic ordering)."""
        for name in self.names():
            yield self._metrics[name]
