"""Figure 5: per-task execution time variance (load imbalance).

The paper draws boxplots of per-task execution time (normalised to the
slowest task of each configuration) and quantifies imbalance with the
average coefficient of variation (A.C.V).  Headline numbers (Section 7.2):

* Merchandiser reduces A.C.V by 51.6% vs Memory Mode and 42.7% vs
  MemoryOptimizer on average;
* SpGEMM/BFS/NWChem-TC show intrinsic imbalance even PM-only; Merchandiser
  reduces A.C.V below even the PM-only level for SpGEMM (-39.1%) and BFS
  (-21.4%).
"""

from __future__ import annotations

import numpy as np

from repro.apps import ALL_APPS
from repro.experiments.common import (
    POLICY_ORDER,
    ExperimentContext,
    acv,
    format_table,
)


def box_stats(values: list[float]) -> dict[str, float]:
    """Quartiles + whiskers of normalised task times (boxplot geometry)."""
    arr = np.asarray(values, dtype=np.float64)
    norm = arr / arr.max()
    q1, med, q3 = np.percentile(norm, [25, 50, 75])
    return {
        "min": float(norm.min()),
        "q1": float(q1),
        "median": float(med),
        "q3": float(q3),
        "max": float(norm.max()),
        "acv": acv(arr),
    }


def run(ctx: ExperimentContext) -> dict[str, object]:
    stats: dict[str, dict[str, dict[str, float]]] = {}
    rows = []
    for app_cls in ALL_APPS:
        name = ctx.app(app_cls).name
        stats[name] = {}
        for policy in POLICY_ORDER:
            busy = list(ctx.run(app_cls, policy).task_busy_times().values())
            stats[name][policy] = box_stats(busy)
        rows.append(
            [name]
            + [stats[name][p]["acv"] for p in POLICY_ORDER]
        )

    acv_matrix = {
        p: np.array([stats[a][p]["acv"] for a in stats]) for p in POLICY_ORDER
    }

    def reduction(frm: str) -> float:
        base = acv_matrix[frm]
        ours = acv_matrix["merchandiser"]
        mask = base > 1e-9
        return float(np.mean(1.0 - ours[mask] / base[mask]))

    summary = {
        "acv_reduction_vs_memory_mode": reduction("memory-mode"),
        "acv_reduction_vs_memory_optimizer": reduction("memory-optimizer"),
        "acv_reduction_vs_pm_only": reduction("pm-only"),
    }
    print("Figure 5: per-task execution-time A.C.V (lower = better balanced)")
    print(format_table(["application", *POLICY_ORDER], rows))
    print("  boxplot quartiles (normalised to slowest task):")
    for name in stats:
        for policy in POLICY_ORDER:
            s = stats[name][policy]
            print(
                f"    {name:10s} {policy:17s} "
                f"[{s['min']:.2f} | {s['q1']:.2f} {s['median']:.2f} {s['q3']:.2f} | {s['max']:.2f}]"
            )
    print(
        f"  A.C.V reduction vs Memory Mode: {summary['acv_reduction_vs_memory_mode']:.1%} (paper 51.6%)"
    )
    print(
        f"  A.C.V reduction vs MemoryOptimizer: {summary['acv_reduction_vs_memory_optimizer']:.1%} (paper 42.7%)"
    )
    return {"stats": stats, "summary": summary}
