"""Tests for the baseline placement policies."""

import numpy as np
import pytest

from repro.common import PAGE_SIZE, AccessPattern
from repro.baselines import (
    DRAMOnlyPolicy,
    MemoryModePolicy,
    MemoryOptimizerPolicy,
    PMOnlyPolicy,
    SpartaPolicy,
    WarpXPMPolicy,
)
from repro.sim import Engine, MachineModel, optane_hm_config
from repro.tasks import DataObject, Footprint, MPIProgram, ObjectAccess

HM = optane_hm_config()


def workload(n_tasks=3, obj_mib=16, shared=False, regions=2, pattern=AccessPattern.RANDOM):
    prog = MPIProgram("wl", n_tasks)
    fps = []
    if shared:
        prog.declare_object(DataObject("shared", obj_mib << 20, hotness="zipf", zipf_s=0.5))
    for i in range(n_tasks):
        prog.declare_object(
            DataObject(f"obj{i}", obj_mib << 20, owner=prog.task_id(i))
        )
        accesses = [ObjectAccess(f"obj{i}", pattern, reads=300_000 * (i + 1))]
        if shared:
            accesses.append(ObjectAccess("shared", AccessPattern.RANDOM, reads=200_000))
        fps.append(Footprint(accesses=tuple(accesses), instructions=2_000_000))
    for r in range(regions):
        prog.parallel_region(f"r{r}", fps, kind="iter")
    return prog.build()


def run(wl, policy, seed=1):
    return Engine(MachineModel(), HM).run(wl, policy, seed=seed)


class TestStaticPolicies:
    def test_pm_only_never_uses_dram(self):
        res = run(workload(), PMOnlyPolicy())
        assert res.mean_dram_bandwidth() == 0.0

    def test_dram_only_faster(self):
        wl = workload(n_tasks=2, obj_mib=8)
        t_pm = run(wl, PMOnlyPolicy()).total_time_s
        t_dram = run(wl, DRAMOnlyPolicy()).total_time_s
        assert t_dram < t_pm

    def test_dram_only_requires_fit(self):
        wl = workload(n_tasks=4, obj_mib=256)  # 1 GiB >> 192 MiB DRAM
        with pytest.raises(ValueError):
            run(wl, DRAMOnlyPolicy())


class TestMemoryMode:
    def test_runs_and_uses_dram(self):
        res = run(workload(shared=True), MemoryModePolicy())
        assert res.mean_dram_bandwidth() > 0

    def test_no_software_migrations(self):
        res = run(workload(), MemoryModePolicy())
        assert res.pages_migrated == 0

    def test_never_beats_explicit_dram(self):
        wl = workload(n_tasks=2, obj_mib=8)
        t_mm = run(wl, MemoryModePolicy()).total_time_s
        t_dram = run(wl, DRAMOnlyPolicy()).total_time_s
        assert t_dram <= t_mm * 1.001

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModePolicy(update_interval_s=0)


class TestMemoryOptimizer:
    def test_migrates_pages(self):
        res = run(workload(), MemoryOptimizerPolicy(seed=0))
        assert res.pages_migrated > 0

    def test_improves_over_pm_only(self):
        wl = workload(regions=4)
        t_pm = run(wl, PMOnlyPolicy()).total_time_s
        t_mo = run(wl, MemoryOptimizerPolicy(seed=0)).total_time_s
        assert t_mo < t_pm

    def test_capacity_respected(self):
        wl = workload(n_tasks=6, obj_mib=64, regions=3)

        class Checked(MemoryOptimizerPolicy):
            max_used = 0.0

            def on_tick(self, ctx, dt):
                out = super().on_tick(ctx, dt)
                Checked.max_used = max(Checked.max_used, ctx.page_table.dram_used_bytes())
                return out

        run(wl, Checked(seed=0))
        assert Checked.max_used <= HM.dram.capacity_bytes + PAGE_SIZE

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryOptimizerPolicy(interval_s=0)
        with pytest.raises(ValueError):
            MemoryOptimizerPolicy(promote_per_interval=0)


class TestSparta:
    def test_stages_whole_objects_only(self):
        wl = workload(n_tasks=3, obj_mib=16, shared=True)

        class Checked(SpartaPolicy):
            fracs = {}

            def on_tick(self, ctx, dt):
                if not Checked.fracs:
                    for obj in ctx.page_table:
                        Checked.fracs[obj.name] = obj.dram_access_fraction()
                return None

        run(wl, Checked())
        for name, frac in Checked.fracs.items():
            assert frac == pytest.approx(0.0) or frac == pytest.approx(1.0)

    def test_input_filter(self):
        wl = workload(n_tasks=2, obj_mib=8, shared=True)

        class Checked(SpartaPolicy):
            fracs = {}

            def on_tick(self, ctx, dt):
                if not Checked.fracs:
                    for obj in ctx.page_table:
                        Checked.fracs[obj.name] = obj.dram_access_fraction()
                return None

        run(wl, Checked(input_objects=["shared"]))
        assert Checked.fracs["shared"] == pytest.approx(1.0)
        assert Checked.fracs["obj0"] == pytest.approx(0.0)

    def test_improves_over_pm(self):
        wl = workload(n_tasks=2, obj_mib=16)
        t_pm = run(wl, PMOnlyPolicy()).total_time_s
        t_sp = run(wl, SpartaPolicy()).total_time_s
        assert t_sp < t_pm


class TestWarpXPM:
    def test_fills_dram_with_oracle_balance(self):
        wl = workload(n_tasks=3, obj_mib=96)  # 288 MiB > DRAM
        used = {}

        class Checked(WarpXPMPolicy):
            def on_tick(self, ctx, dt):
                used.setdefault("bytes", ctx.page_table.dram_used_bytes())
                return None

        run(wl, Checked())
        assert used["bytes"] > 0.9 * HM.dram.capacity_bytes

    def test_beats_pm_only(self):
        wl = workload(n_tasks=3, obj_mib=32, regions=2)
        t_pm = run(wl, PMOnlyPolicy()).total_time_s
        t_wx = run(wl, WarpXPMPolicy()).total_time_s
        assert t_wx < t_pm

    def test_helps_slowest_task_most(self):
        wl = workload(n_tasks=3, obj_mib=96)
        res_pm = run(wl, PMOnlyPolicy())
        res_wx = run(wl, WarpXPMPolicy())
        slow_gain = (
            res_pm.task_busy_times()["rank2"] / res_wx.task_busy_times()["rank2"]
        )
        fast_gain = (
            res_pm.task_busy_times()["rank0"] / res_wx.task_busy_times()["rank0"]
        )
        assert slow_gain > fast_gain
