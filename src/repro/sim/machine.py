"""Ground-truth execution-time model.

This is the simulator's stand-in for the physical machine: given a task
instance's :class:`~repro.tasks.task.Footprint` and the current per-object
DRAM access fractions, it computes how long the instance takes.

The model (DESIGN.md Section 5) is deliberately *nonlinear* in the DRAM
ratio ``r_dram``:

* regular patterns are bandwidth-bound and deeply pipelined (high
  memory-level parallelism), random patterns are latency-bound (MLP ~ 1.5);
* memory time overlaps with compute to a pattern-dependent degree;
* traffic to the two tiers partially overlaps (p-norm combination).

Merchandiser's learned correlation function ``f`` (Section 5 of the paper)
never sees these internals -- only synthetic performance counters and the two
homogeneous endpoints -- so learning ``f`` is an honest reconstruction
problem, just as learning it from real hardware is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from typing import Sequence

from repro.common import CACHE_LINE, AccessPattern
from repro.sim.memspec import HMConfig, TierSpec, TopologySpec
from repro.tasks.task import Footprint

__all__ = ["MachineSpec", "TimeBreakdown", "TieredBreakdown", "MachineModel"]


@dataclass(frozen=True)
class MachineSpec:
    """CPU-side parameters of the simulated node."""

    frequency_ghz: float = 2.1          # Xeon Gold 6252N base clock
    base_cpi: float = 0.55              # cycles/instruction with no mem stalls
    #: Footprint scale of the paired HM config (see repro.sim.memspec): CPU
    #: frequency is scaled down by this factor so compute times keep the
    #: unscaled machine's magnitudes, like the counter-scaled latencies.
    scale: float = 1.0 / 1024.0
    #: Memory-level parallelism per access pattern: how many outstanding
    #: misses the pattern sustains, i.e. how well latency is amortised.
    #: Stream/stencil values include the hardware prefetcher's pipelining
    #: (per-core streaming throughput ~64B * 24 / 81ns ~ 19 GB/s).
    mlp: Mapping[AccessPattern, float] = field(
        default_factory=lambda: {
            AccessPattern.STREAM: 24.0,
            AccessPattern.STRIDED: 12.0,
            AccessPattern.STENCIL: 20.0,
            AccessPattern.RANDOM: 1.6,
        }
    )
    #: Compute/memory overlap per pattern (fraction of the shorter of the
    #: two that hides under the longer): prefetchable streams overlap well,
    #: dependent random chases do not.
    overlap: Mapping[AccessPattern, float] = field(
        default_factory=lambda: {
            AccessPattern.STREAM: 0.90,
            AccessPattern.STRIDED: 0.80,
            AccessPattern.STENCIL: 0.85,
            AccessPattern.RANDOM: 0.25,
        }
    )
    #: Cross-tier overlap exponent: per-tier memory times combine as a
    #: q-norm, between max (full overlap, q->inf) and sum (none, q=1).
    tier_overlap_q: float = 1.3

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0 or self.base_cpi <= 0:
            raise ValueError("frequency and CPI must be positive")
        if self.tier_overlap_q < 1.0:
            raise ValueError("tier_overlap_q must be >= 1")


@dataclass(frozen=True)
class TimeBreakdown:
    """Where an instance's time goes, plus tier traffic for the engine."""

    total_s: float
    cpu_s: float
    mem_s: float
    dram_s: float
    pm_s: float
    dram_read_bytes: float
    dram_write_bytes: float
    pm_read_bytes: float
    pm_write_bytes: float

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def pm_bytes(self) -> float:
        return self.pm_read_bytes + self.pm_write_bytes


@dataclass(frozen=True)
class TieredBreakdown:
    """Where an instance's time goes on an N-tier topology.

    Per-tier tuples are ordered like the topology (fastest first).  On a
    2-tier topology every field matches :class:`TimeBreakdown` bit-exactly
    when the fraction vectors are ``(r, 1 - r)``.
    """

    total_s: float
    cpu_s: float
    mem_s: float
    tier_s: tuple[float, ...]
    tier_read_bytes: tuple[float, ...]
    tier_write_bytes: tuple[float, ...]

    def tier_bytes(self, k: int) -> float:
        return self.tier_read_bytes[k] + self.tier_write_bytes[k]


class MachineModel:
    """Computes instance execution times on a given HM configuration."""

    def __init__(self, spec: MachineSpec | None = None) -> None:
        self.spec = spec or MachineSpec()

    # ------------------------------------------------------------------
    def cpu_time(self, footprint: Footprint) -> float:
        """Pure compute time (no memory stalls), seconds."""
        spec = self.spec
        prof = footprint.profile
        # branch mispredictions and poor vectorisation inflate the base CPI
        cpi = spec.base_cpi / min(prof.ilp, 4.0) * 2.0
        cpi *= 1.0 + 14.0 * prof.branch_rate * prof.branch_misp_rate
        cpi *= 1.0 - 0.35 * prof.vector_fraction
        cycles = footprint.instructions * cpi
        return cycles / (spec.frequency_ghz * spec.scale * 1e9)

    # ------------------------------------------------------------------
    def _tier_time(
        self,
        tier: TierSpec,
        accesses: Mapping[AccessPattern, tuple[float, float]],
    ) -> tuple[float, float, float]:
        """Time, read bytes, write bytes for one tier.

        ``accesses[p] = (reads, writes)`` counts cache-line accesses of
        pattern ``p`` hitting this tier.  Tier time is the max of the
        latency-bound estimate (serialised by limited MLP) and the
        bandwidth-bound estimate.
        """
        spec = self.spec
        latency_s = 0.0
        read_bytes = 0.0
        write_bytes = 0.0
        for pattern, (reads, writes) in accesses.items():
            n = reads + writes
            if n <= 0:
                continue
            lat_ns = tier.latency_ns(random=(pattern is AccessPattern.RANDOM))
            latency_s += n * lat_ns * 1e-9 / spec.mlp[pattern]
            read_bytes += reads * CACHE_LINE
            write_bytes += writes * CACHE_LINE
        bandwidth_s = read_bytes / tier.read_bandwidth + write_bytes / tier.write_bandwidth
        return max(latency_s, bandwidth_s), read_bytes, write_bytes

    # ------------------------------------------------------------------
    def breakdown(
        self,
        footprint: Footprint,
        hm: HMConfig,
        dram_fractions: Mapping[str, float],
        bandwidth_derate: float = 1.0,
    ) -> TimeBreakdown:
        """Full time breakdown for an instance under a placement.

        ``dram_fractions[obj]`` is the access-weighted DRAM fraction of each
        object (missing objects default to 0 = all-PM).  ``bandwidth_derate``
        models contention: effective bandwidth is ``bw * derate``.
        """
        if not 0.0 < bandwidth_derate <= 1.0:
            raise ValueError("bandwidth_derate must be in (0, 1]")
        dram_acc: dict[AccessPattern, tuple[float, float]] = {}
        pm_acc: dict[AccessPattern, tuple[float, float]] = {}
        for a in footprint.accesses:
            r = float(dram_fractions.get(a.obj, 0.0))
            r = min(1.0, max(0.0, r))
            dr, dw = dram_acc.get(a.pattern, (0.0, 0.0))
            dram_acc[a.pattern] = (dr + a.reads * r, dw + a.writes * r)
            pr, pw = pm_acc.get(a.pattern, (0.0, 0.0))
            pm_acc[a.pattern] = (pr + a.reads * (1 - r), pw + a.writes * (1 - r))

        # apply contention by scaling bandwidths down
        def derated(tier: TierSpec) -> TierSpec:
            if bandwidth_derate >= 1.0:
                return tier
            return TierSpec(
                name=tier.name,
                capacity_bytes=tier.capacity_bytes,
                seq_read_latency_ns=tier.seq_read_latency_ns,
                rand_read_latency_ns=tier.rand_read_latency_ns,
                read_bandwidth=tier.read_bandwidth * bandwidth_derate,
                write_bandwidth=tier.write_bandwidth * bandwidth_derate,
            )

        t_dram, d_rb, d_wb = self._tier_time(derated(hm.dram), dram_acc)
        t_pm, p_rb, p_wb = self._tier_time(derated(hm.pm), pm_acc)
        q = self.spec.tier_overlap_q
        t_mem = (t_dram**q + t_pm**q) ** (1.0 / q) if (t_dram or t_pm) else 0.0

        t_cpu = self.cpu_time(footprint)
        mix = footprint.pattern_mix()
        beta = sum(self.spec.overlap[p] * w for p, w in mix.items()) if mix else 0.0
        total = max(t_cpu, t_mem) + (1.0 - beta) * min(t_cpu, t_mem)
        return TimeBreakdown(
            total_s=total,
            cpu_s=t_cpu,
            mem_s=t_mem,
            dram_s=t_dram,
            pm_s=t_pm,
            dram_read_bytes=d_rb,
            dram_write_bytes=d_wb,
            pm_read_bytes=p_rb,
            pm_write_bytes=p_wb,
        )

    # ------------------------------------------------------------------
    def breakdown_tiered(
        self,
        footprint: Footprint,
        topo: TopologySpec,
        tier_fractions: Mapping[str, Sequence[float]],
        bandwidth_derates: Sequence[float] | None = None,
    ) -> TieredBreakdown:
        """N-tier generalisation of :meth:`breakdown`.

        ``tier_fractions[obj]`` is the object's access-fraction vector
        across the topology's tiers, fastest first (missing objects default
        to all-in-slowest).  ``bandwidth_derates`` optionally derates each
        tier's bandwidth independently (contention).  The arithmetic
        mirrors :meth:`breakdown` operation-for-operation so the 2-tier
        case with vectors ``(r, 1 - r)`` is bit-identical.
        """
        n = topo.n_tiers
        if bandwidth_derates is not None:
            if len(bandwidth_derates) != n:
                raise ValueError("one bandwidth derate per tier required")
            for d in bandwidth_derates:
                if not 0.0 < d <= 1.0:
                    raise ValueError("bandwidth derates must be in (0, 1]")
        default = (0.0,) * (n - 1) + (1.0,)
        accs: list[dict[AccessPattern, tuple[float, float]]] = [{} for _ in range(n)]
        for a in footprint.accesses:
            f = tier_fractions.get(a.obj, default)
            if len(f) != n:
                raise ValueError(
                    f"object {a.obj!r}: fraction vector has {len(f)} entries "
                    f"for a {n}-tier topology"
                )
            for k in range(n):
                fk = min(1.0, max(0.0, float(f[k])))
                r, w = accs[k].get(a.pattern, (0.0, 0.0))
                accs[k][a.pattern] = (r + a.reads * fk, w + a.writes * fk)

        def derated(tier: TierSpec, d: float) -> TierSpec:
            if d >= 1.0:
                return tier
            return TierSpec(
                name=tier.name,
                capacity_bytes=tier.capacity_bytes,
                seq_read_latency_ns=tier.seq_read_latency_ns,
                rand_read_latency_ns=tier.rand_read_latency_ns,
                read_bandwidth=tier.read_bandwidth * d,
                write_bandwidth=tier.write_bandwidth * d,
            )

        times: list[float] = []
        read_b: list[float] = []
        write_b: list[float] = []
        for k, tier in enumerate(topo.tiers):
            d = 1.0 if bandwidth_derates is None else float(bandwidth_derates[k])
            t, rb, wb = self._tier_time(derated(tier, d), accs[k])
            times.append(t)
            read_b.append(rb)
            write_b.append(wb)
        q = self.spec.tier_overlap_q
        t_mem = sum(t**q for t in times) ** (1.0 / q) if any(times) else 0.0

        t_cpu = self.cpu_time(footprint)
        mix = footprint.pattern_mix()
        beta = sum(self.spec.overlap[p] * w for p, w in mix.items()) if mix else 0.0
        total = max(t_cpu, t_mem) + (1.0 - beta) * min(t_cpu, t_mem)
        return TieredBreakdown(
            total_s=total,
            cpu_s=t_cpu,
            mem_s=t_mem,
            tier_s=tuple(times),
            tier_read_bytes=tuple(read_b),
            tier_write_bytes=tuple(write_b),
        )

    def tier_endpoint_times(
        self, footprint: Footprint, topo: TopologySpec
    ) -> tuple[float, ...]:
        """Homogeneous execution time with *all* accesses served by each
        tier in turn (fastest first) -- the N-tier endpoints that bracket
        the effective-ratio prediction."""
        objs = footprint.objects
        out = []
        for k in range(topo.n_tiers):
            vec = tuple(1.0 if i == k else 0.0 for i in range(topo.n_tiers))
            out.append(
                self.breakdown_tiered(footprint, topo, {o: vec for o in objs}).total_s
            )
        return tuple(out)

    # ------------------------------------------------------------------
    def instance_time(
        self,
        footprint: Footprint,
        hm: HMConfig,
        dram_fractions: Mapping[str, float],
        bandwidth_derate: float = 1.0,
    ) -> float:
        """Execution time in seconds (convenience wrapper)."""
        return self.breakdown(footprint, hm, dram_fractions, bandwidth_derate).total_s

    def endpoint_times(self, footprint: Footprint, hm: HMConfig) -> tuple[float, float]:
        """(T_dram_only, T_pm_only) -- the bounds of Equation 2."""
        objs = footprint.objects
        t_dram = self.instance_time(footprint, hm, {o: 1.0 for o in objs})
        t_pm = self.instance_time(footprint, hm, {o: 0.0 for o in objs})
        return t_dram, t_pm

    def uniform_ratio_time(
        self, footprint: Footprint, hm: HMConfig, r_dram: float
    ) -> float:
        """Time when every object serves ``r_dram`` of accesses from DRAM."""
        if not 0.0 <= r_dram <= 1.0:
            raise ValueError("r_dram must be in [0, 1]")
        return self.instance_time(
            footprint, hm, {o: r_dram for o in footprint.objects}
        )
