"""Placement-as-a-service: the batched placement control plane.

The paper's workflow (profile -> estimate -> predict -> plan) answers one
region at a time, in-process.  This subsystem wraps the same planner in a
long-running *service* shape -- the form online heterogeneous-memory
guidance systems actually ship in, where many clients contend for one
fast-memory budget:

* :mod:`repro.service.protocol`  -- typed request/decision messages with a
  versioned dict/JSON codec;
* :mod:`repro.service.cache`     -- LRU+TTL memoization of decisions and
  of f(.) evaluations, with tag-based invalidation;
* :mod:`repro.service.scheduler` -- windowed batching, in-flight dedup,
  and shared-DRAM-quota arbitration through one stacked planner call;
* :mod:`repro.service.pool`      -- thread/process worker pool with
  SeedSequence-spawned per-worker RNG streams;
* :mod:`repro.service.admission` -- bounded intake queue with
  degrade-to-daemon load shedding;
* :mod:`repro.service.server`    -- the facade tying it all together;
* :mod:`repro.service.transport` -- the network face: CRC-framed asyncio
  TCP server plus a resilient retrying client with degrade-to-daemon
  fallback;
* :mod:`repro.service.cluster`   -- the sharded control plane: consistent
  hashing, TTL quota leases, WAL replication to warm followers, and
  kill-tested failover through the journal replay path.

Everything is dependency-free, clock-injectable and telemetry-optional,
like the rest of the repo.  ``python -m repro.experiments.runner
service_load`` measures the subsystem under open-loop load.
"""

from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.cache import CachedCorrelation, PredictionCache, bucket_ratio
from repro.service.pool import JobResult, WorkerPool
from repro.service.protocol import (
    PROTOCOL_VERSION,
    PlacementDecision,
    PlacementRequest,
    ProtocolError,
    TaskPlacement,
    TaskSpec,
    decode_decision,
    decode_request,
    encode_decision,
    encode_request,
)
from repro.service.scheduler import BatchScheduler
from repro.service.server import PlacementServer, WorkerCrashed
from repro.service.transport import (
    FrameError,
    PlacementClient,
    PlacementTransportServer,
    RetryPolicy,
    TransportError,
)
from repro.service.cluster import (
    ClusterRouter,
    ConsistentHashRing,
    PlacementShard,
    QuotaCoordinator,
    QuotaLease,
    ShardCrashed,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "TaskSpec",
    "PlacementRequest",
    "TaskPlacement",
    "PlacementDecision",
    "encode_request",
    "decode_request",
    "encode_decision",
    "decode_decision",
    "PredictionCache",
    "CachedCorrelation",
    "bucket_ratio",
    "BatchScheduler",
    "WorkerPool",
    "JobResult",
    "AdmissionConfig",
    "AdmissionController",
    "PlacementServer",
    "WorkerCrashed",
    "FrameError",
    "PlacementTransportServer",
    "PlacementClient",
    "RetryPolicy",
    "TransportError",
    "ConsistentHashRing",
    "QuotaLease",
    "QuotaCoordinator",
    "PlacementShard",
    "ShardCrashed",
    "ClusterRouter",
]
