"""Shared low-level vocabulary for the Merchandiser reproduction.

This module defines the handful of concepts that every layer of the stack
(simulator, task runtime, profilers, Merchandiser core) needs to agree on:
the memory-access-pattern taxonomy of the paper (Section 4), byte-level
constants, and seeding helpers so that every stochastic component is
reproducible.
"""

from __future__ import annotations

import enum
from typing import Union

import numpy as np

__all__ = [
    "AccessPattern",
    "PAGE_SIZE",
    "CACHE_LINE",
    "KIB",
    "MIB",
    "GIB",
    "make_rng",
    "spawn_rng",
    "zipf_weights",
]

#: Size of a memory page in bytes (4 KiB, matching Linux / the paper).
PAGE_SIZE: int = 4096

#: Size of a CPU cache line in bytes (Section 4 uses 64 B in its alpha example).
CACHE_LINE: int = 64

KIB: int = 1024
MIB: int = 1024 * 1024
GIB: int = 1024 * 1024 * 1024


class AccessPattern(str, enum.Enum):
    """The four object-level memory-access patterns of the paper (Section 4).

    * ``STREAM``  -- ``A[i] = B[i] + C[i]``; includes delta, reduction and
      transpose forms.
    * ``STRIDED`` -- ``A[i*stride] = B[i*stride]`` with a compile-time-known
      constant stride.
    * ``STENCIL`` -- ``A[i] = A[i-1] + A[i+1]``; sequential walk with
      loop-carried neighbour reuse (5/7/9-point stencils and friends).
    * ``RANDOM``  -- indirect addressing: pointer chase, gather
      (``A[i] = B[C[i]]``) and scatter (``A[B[i]] = C[i]``).

    Unknown patterns are treated as ``RANDOM`` (Section 4, "Handling unknown
    patterns").
    """

    STREAM = "stream"
    STRIDED = "strided"
    STENCIL = "stencil"
    RANDOM = "random"

    @property
    def is_regular(self) -> bool:
        """Whether the hardware prefetcher can follow this pattern."""
        return self is not AccessPattern.RANDOM


SeedLike = Union[int, None, np.random.Generator]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    Every stochastic component in the library takes a ``seed`` argument and
    funnels it through here, so a single integer makes an entire experiment
    reproducible.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rng(rng: np.random.Generator) -> np.random.Generator:
    """Derive an independent child generator from ``rng``.

    Uses the SeedSequence spawn mechanism, which guarantees statistical
    independence between parent and children; drawing integers from the
    parent to reseed children does not, and silently correlates streams.
    """
    return rng.spawn(1)[0]


def zipf_weights(n: int, s: float = 1.1, rng: SeedLike = None) -> np.ndarray:
    """Normalised Zipf-like popularity weights over ``n`` items.

    Used to model the skewed page-hotness distribution of RANDOM-pattern
    objects: a few pages absorb most indirect accesses.  When ``rng`` is
    given the rank order is shuffled so hot pages are scattered through the
    address range (as they are in a real heap) rather than sorted.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    w = ranks ** (-s)
    if rng is not None:
        make_rng(rng).shuffle(w)
    return w / w.sum()
