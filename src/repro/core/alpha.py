"""The alpha parameter of Equation 1: caching-aware access scaling.

Equation 1 estimates the main-memory accesses of a new input from the
profiled accesses of the base input::

    esti_mem_acc = S_new / (S_base * alpha) * prof_mem_acc

``alpha`` absorbs the non-proportional part of the scaling -- the access
pattern may hit a different number of cache lines per byte as sizes change.
Following Section 4:

* **stream / strided**: alpha is computed analytically from the stride and
  data type against the 64-byte line size, enumerated offline
  (:func:`alpha_stream_strided`), with non-line-divisible sizes rounded up;
* **input-independent stencil**: alpha is measured offline by a
  microbenchmark that runs the stencil and compares program-level access
  counts against counter-measured memory accesses
  (:func:`alpha_stencil_offline`); here the "performance counter" is the
  on-chip cache model;
* **random / input-dependent stencil**: alpha starts at 1 and is refined
  online across task instances from PEBS-measured access counts
  (:class:`AlphaRefiner`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common import CACHE_LINE, AccessPattern
from repro.sim.cache import OnChipCacheModel

__all__ = [
    "round_to_line",
    "line_accesses",
    "alpha_stream_strided",
    "alpha_stencil_offline",
    "AlphaRefiner",
    "AlphaTable",
]


def round_to_line(size_bytes: int) -> int:
    """Round a size up to a multiple of the cache-line size (Section 4:
    "if S_new or S_base is not divisible by the cache line size, it is
    rounded to a slightly larger, divisible size")."""
    if size_bytes <= 0:
        raise ValueError("size must be positive")
    return -(-size_bytes // CACHE_LINE) * CACHE_LINE


def line_accesses(size_bytes: int, element_size: int, stride: int) -> int:
    """Distinct cache lines touched walking ``size_bytes`` at ``stride``."""
    if element_size <= 0 or stride <= 0:
        raise ValueError("element_size and stride must be positive")
    size = round_to_line(size_bytes)
    n_elements = size // element_size
    n_touched = -(-n_elements // stride)
    stride_bytes = stride * element_size
    if stride_bytes >= CACHE_LINE:
        return max(1, n_touched)
    return max(1, (n_touched * stride_bytes + CACHE_LINE - 1) // CACHE_LINE)


def alpha_stream_strided(
    s_base: int, s_new: int, element_size: int, stride: int = 1
) -> float:
    """Alpha for stream/strided patterns (exact, analytic).

    Defined so that Equation 1 reproduces the true line count of the new
    size: ``alpha = (S_new * acc(S_base)) / (S_base * acc(S_new))``.  For
    the paper's worked example (S_base=128 B, S_new=192 B, 4-byte ints,
    stream) this gives alpha = 1.
    """
    acc_base = line_accesses(s_base, element_size, stride)
    acc_new = line_accesses(s_new, element_size, stride)
    sb, sn = round_to_line(s_base), round_to_line(s_new)
    return (sn * acc_base) / (sb * acc_new)


def alpha_stencil_offline(
    taps: int,
    element_size: int,
    probe_bytes: int = 1 << 20,
    cache: OnChipCacheModel | None = None,
) -> float:
    """Offline stencil microbenchmark (Section 4).

    Runs a ``taps``-point stencil over a probe array, counts program-level
    accesses (every tap of every element) and counter-measured main-memory
    accesses (through the cache model), and returns their ratio -- how many
    program accesses one memory access represents.  Equation 1 divides by
    alpha, so a profiled *program-level* count scaled by 1/alpha lands on
    the memory-access count.
    """
    if taps < 2:
        raise ValueError("a stencil has at least 2 taps")
    cache = cache or OnChipCacheModel()
    n_elements = probe_bytes // element_size
    program_accesses = n_elements * taps
    counter_accesses = cache.mem_accesses(
        AccessPattern.STENCIL, n_elements, element_size, probe_bytes
    )
    return program_accesses / max(counter_accesses, 1)


@dataclass
class AlphaRefiner:
    """Online alpha refinement for input-dependent patterns (Section 4).

    Starts at ``alpha = 1``; after each task instance the PEBS-measured
    access count yields the alpha that would have made Equation 1 exact,
    and an exponential moving average tracks it across instances.
    """

    eta: float = 0.5
    alpha: float = 1.0
    updates: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.eta <= 1.0:
            raise ValueError("eta must be in (0, 1]")

    def implied_alpha(
        self, s_base: int, s_new: int, prof_acc: float, measured_acc: float
    ) -> float:
        """Alpha that makes Equation 1 reproduce ``measured_acc`` exactly."""
        if min(s_base, s_new) <= 0:
            raise ValueError("sizes must be positive")
        if prof_acc <= 0 or measured_acc <= 0:
            return self.alpha  # nothing learnable from empty measurements
        return (s_new * prof_acc) / (s_base * measured_acc)

    def update(
        self, s_base: int, s_new: int, prof_acc: float, measured_acc: float
    ) -> float:
        """Fold one instance's measurement into alpha; returns new alpha."""
        implied = self.implied_alpha(s_base, s_new, prof_acc, measured_acc)
        self.alpha = (1.0 - self.eta) * self.alpha + self.eta * implied
        self.updates += 1
        return self.alpha


class AlphaTable:
    """Per-object alpha state for one task (the runtime's view).

    Dispatches to the right mechanism per pattern and records refiners for
    input-dependent objects.
    """

    def __init__(self, cache: OnChipCacheModel | None = None, eta: float = 0.5):
        self._cache = cache or OnChipCacheModel()
        self._eta = eta
        self._refiners: dict[str, AlphaRefiner] = {}
        self._stencil_cache: dict[tuple[int, int], float] = {}

    def refiner(self, obj: str) -> AlphaRefiner:
        if obj not in self._refiners:
            self._refiners[obj] = AlphaRefiner(eta=self._eta)
        return self._refiners[obj]

    def alpha(
        self,
        obj: str,
        pattern: AccessPattern,
        s_base: int,
        s_new: int,
        element_size: int = 8,
        stride: int = 1,
        stencil_taps: int = 3,
        input_dependent: bool = False,
    ) -> float:
        """Alpha for one object under Equation 1's conventions.

        Note the stencil case: offline alpha calibrates *program-level*
        profiled counts.  Our profilers already measure memory-level counts,
        so for input-independent stencils the residual alpha is the analytic
        line-ratio (same as stream) -- the taps factor cancels between
        profile and estimate.  Input-dependent stencils and randoms use the
        online refiner.
        """
        if pattern in (AccessPattern.STREAM, AccessPattern.STRIDED):
            return alpha_stream_strided(s_base, s_new, element_size, stride)
        if pattern is AccessPattern.STENCIL and not input_dependent:
            return alpha_stream_strided(s_base, s_new, element_size, 1)
        return self.refiner(obj).alpha

    def stencil_microbench_alpha(self, taps: int, element_size: int) -> float:
        """The paper's offline stencil alpha (cached per configuration)."""
        key = (taps, element_size)
        if key not in self._stencil_cache:
            self._stencil_cache[key] = alpha_stencil_offline(
                taps, element_size, cache=self._cache
            )
        return self._stencil_cache[key]

    def refine(
        self,
        obj: str,
        s_base: int,
        s_new: int,
        prof_acc: float,
        measured_acc: float,
    ) -> float:
        """Online refinement step after a task instance executes."""
        return self.refiner(obj).update(s_base, s_new, prof_acc, measured_acc)

    def mean_alpha(self) -> float:
        """Average refined alpha (Section 7.3 reports per-app averages)."""
        if not self._refiners:
            return 1.0
        return sum(r.alpha for r in self._refiners.values()) / len(self._refiners)

    # -- crash-consistency checkpoints (repro.core.journal) ------------
    def snapshot_state(self) -> dict:
        """JSON-able refiner state (the online-learned part of the table;
        analytic and microbenchmark alphas are recomputable)."""
        return {
            "eta": self._eta,
            "refiners": {
                name: {"eta": r.eta, "alpha": r.alpha, "updates": r.updates}
                for name, r in self._refiners.items()
            },
        }

    def restore_state(self, state: dict) -> None:
        self._eta = float(state["eta"])
        self._refiners = {
            name: AlphaRefiner(
                eta=float(r["eta"]),
                alpha=float(r["alpha"]),
                updates=int(r["updates"]),
            )
            for name, r in state["refiners"].items()
        }
