"""Trace-driven access-pattern recognition (Section 5.3, "Limitation").

Merchandiser normally needs application source code: the user inserts the
API and compiles with Spindle for static pattern analysis.  For binaries,
the paper prescribes the fallback pipeline: a dynamic binary instrumentation
tool intercepts allocations and emits per-object *address traces*, and a
trace-analysis tool (the paper cites QUAD and Park et al.'s trace-driven
recognition) classifies each object's pattern from the addresses alone.

This module implements both halves:

* :func:`synthesize_trace` -- the instrumentation stand-in: generates the
  address stream a kernel of a given pattern would emit (used by tests and
  by applications that want to exercise the binary-only path);
* :class:`TraceClassifier` -- the recognition tool: classifies an address
  trace as stream / strided / stencil / random from its delta histogram,
  and recovers the stride.

The classifier is deliberately source-free: it sees nothing but addresses,
exactly like the real binary-only pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common import CACHE_LINE, AccessPattern, make_rng
from repro.core.estimator import ObjectDescriptor

__all__ = ["synthesize_trace", "TraceClassifier", "TraceVerdict"]


def synthesize_trace(
    pattern: AccessPattern,
    n_accesses: int,
    object_bytes: int,
    element_size: int = 8,
    stride: int = 1,
    stencil_taps: int = 3,
    rng=None,
) -> np.ndarray:
    """Generate the address trace a kernel of ``pattern`` would emit.

    Addresses are object-relative byte offsets, as a binary-instrumentation
    tool would report after subtracting the allocation base.
    """
    if n_accesses <= 0:
        raise ValueError("n_accesses must be positive")
    if object_bytes < element_size:
        raise ValueError("object smaller than one element")
    rng = make_rng(rng)
    n_elements = max(1, object_bytes // element_size)

    if pattern is AccessPattern.STREAM:
        idx = np.arange(n_accesses, dtype=np.int64) % n_elements
    elif pattern is AccessPattern.STRIDED:
        if stride <= 1:
            raise ValueError("strided pattern needs stride > 1")
        idx = (np.arange(n_accesses, dtype=np.int64) * stride) % n_elements
    elif pattern is AccessPattern.STENCIL:
        # interleaved taps: i-1, i, i+1, i, i+1, i+2, ...
        base = np.repeat(np.arange(-(-n_accesses // stencil_taps)), stencil_taps)
        offsets = np.tile(
            np.arange(stencil_taps) - stencil_taps // 2, len(base) // stencil_taps + 1
        )
        idx = (base[:n_accesses] + offsets[:n_accesses]) % n_elements
    elif pattern is AccessPattern.RANDOM:
        idx = rng.integers(0, n_elements, size=n_accesses)
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(pattern)
    return (idx * element_size).astype(np.int64)


@dataclass(frozen=True)
class TraceVerdict:
    """Classification of one object's address trace."""

    pattern: AccessPattern
    #: recovered element stride (1 for stream/stencil, n for strided,
    #: meaningless for random)
    stride: int
    #: fraction of deltas explained by the dominant stride
    confidence: float

    def to_descriptor(self, name: str, element_size: int = 8) -> ObjectDescriptor:
        """Build the Equation-1 descriptor the runtime needs.

        Trace-classified random/stencil objects are marked input-dependent:
        without source analysis there is no way to prove a stencil's shape
        is input-invariant, so alpha falls back to online refinement (the
        safe default of Section 4).
        """
        return ObjectDescriptor(
            name=name,
            pattern=self.pattern,
            element_size=element_size,
            stride=self.stride,
            input_dependent=self.pattern
            in (AccessPattern.RANDOM, AccessPattern.STENCIL),
        )


class TraceClassifier:
    """Classifies address traces by their delta structure.

    The decision procedure, mirroring trace-recognition tools:

    1. compute successive address deltas (in elements);
    2. if no small set of deltas dominates, the access is RANDOM;
    3. if deltas alternate between small negative/positive steps around a
       slowly advancing base (the tap signature), it is a STENCIL;
    4. a single dominant positive delta of 1 element is a STREAM;
       a single dominant larger delta is STRIDED with that stride.
    """

    def __init__(
        self,
        element_size: int = 8,
        dominance: float = 0.6,
        max_trace: int = 1 << 16,
    ) -> None:
        if element_size <= 0:
            raise ValueError("element_size must be positive")
        if not 0.5 <= dominance <= 1.0:
            raise ValueError("dominance must be in [0.5, 1]")
        self.element_size = element_size
        self.dominance = dominance
        self.max_trace = max_trace

    # ------------------------------------------------------------------
    def classify(self, addresses: np.ndarray) -> TraceVerdict:
        """Classify one object-relative address trace."""
        addr = np.asarray(addresses, dtype=np.int64)
        if addr.ndim != 1 or len(addr) < 4:
            raise ValueError("need a 1-D trace of at least 4 accesses")
        if len(addr) > self.max_trace:
            # analyse a contiguous window: strided downsampling would
            # corrupt the delta structure (a stream would look strided)
            addr = addr[: self.max_trace]
        deltas = np.diff(addr) // self.element_size
        # drop wrap-arounds (object-end back to start)
        span = max(int(np.abs(deltas).max()), 1)
        body = deltas[np.abs(deltas) < max(span, 2) * 0.9] if span > 2 else deltas
        if len(body) == 0:
            body = deltas

        values, counts = np.unique(body, return_counts=True)
        order = np.argsort(counts)[::-1]
        top_vals = values[order[:3]]
        top_counts = counts[order[:3]]
        total = counts.sum()
        top1_share = top_counts[0] / total
        top3_share = top_counts[: len(top_vals)].sum() / total

        # RANDOM: no compact delta alphabet
        if top3_share < self.dominance:
            return TraceVerdict(AccessPattern.RANDOM, 1, float(1 - top3_share))

        # STENCIL: the tap signature -- recurring back-steps interleaved
        # with forward steps.  A pure stream has essentially no negative
        # deltas, so a substantial share of both signs among the dominant
        # deltas identifies the stencil before the stream/strided check.
        if len(top_vals) >= 2:
            shares = top_counts / total
            back = shares[(top_vals < 0)].sum() if (top_vals < 0).any() else 0.0
            fwd = shares[(top_vals > 0)].sum() if (top_vals > 0).any() else 0.0
            if back >= 0.15 and fwd >= 0.15:
                return TraceVerdict(AccessPattern.STENCIL, 1, float(top3_share))

        dominant = int(abs(top_vals[0]))
        if dominant <= 1:
            return TraceVerdict(AccessPattern.STREAM, 1, float(top1_share))
        return TraceVerdict(AccessPattern.STRIDED, dominant, float(top1_share))

    # ------------------------------------------------------------------
    def classify_objects(
        self, traces: dict[str, np.ndarray]
    ) -> dict[str, TraceVerdict]:
        """Classify every intercepted object of a task."""
        return {name: self.classify(trace) for name, trace in traces.items()}

    def descriptors(
        self, traces: dict[str, np.ndarray], element_size: int | None = None
    ) -> dict[str, ObjectDescriptor]:
        """The binary-only replacement for :func:`repro.core.api.lb_hm_config`."""
        esize = element_size or self.element_size
        return {
            name: verdict.to_descriptor(name, esize)
            for name, verdict in self.classify_objects(traces).items()
        }
