"""Batched numpy kernels for decision-tree and GBR inference.

This module is the compute core of the plan/predict hot path
(PERFORMANCE.md is the reference).  A fitted CART tree is frozen into a
struct-of-arrays encoding (:class:`TreeArrays`); a fitted boosted ensemble
is frozen into one flat node arena (:class:`ForestArrays`).  Inference then
never touches Python node objects:

* :func:`tree_apply` descends one tree for a whole sample batch with a
  per-sample cursor vector (one numpy pass per tree level);
* :func:`forest_apply` descends *every* tree of an ensemble for the whole
  batch at once with a ``(n_trees, n_samples)`` cursor matrix -- the loop
  count drops from ``n_trees`` Python iterations to ``max_depth`` numpy
  iterations;
* :func:`forest_predict` turns the leaf matrix into predictions with the
  exact float-accumulation order of the scalar boosting loop
  (``pred += learning_rate * tree_k(X)`` for k = 0, 1, ...), which is what
  keeps the vectorized path bit-identical to the scalar one;
* :func:`stacked_features` builds the tasks x ratio-grid feature matrix
  the correlation function feeds the ensemble (the batching contract:
  predictions are row-wise independent, so stacking k tasks' grids into
  one call returns the same bits as k separate calls).

The scalar reference implementations live next to their dispatch points
(``repro.ml.tree``, ``repro.ml.gbr``, ``repro.core.planner``,
``repro.sim.engine``) behind the ``MERCH_SCALAR_KERNELS`` escape hatch
(:func:`repro.common.scalar_kernels_enabled`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.common import scalar_kernels_enabled  # re-export  # noqa: F401

if TYPE_CHECKING:  # pragma: no cover
    from repro.ml.tree import DecisionTreeRegressor

__all__ = [
    "TreeArrays",
    "ForestArrays",
    "pack_tree",
    "pack_forest",
    "tree_apply",
    "forest_apply",
    "forest_predict",
    "stacked_features",
    "scalar_kernels_enabled",
    "KERNEL_ENTRY_POINTS",
]


@dataclass(frozen=True)
class TreeArrays:
    """Struct-of-arrays encoding of one fitted CART tree.

    ``feature[i] < 0`` marks node ``i`` as a leaf.  ``left``/``right`` are
    node indices into the same arrays; ``value`` is the leaf mean.  The
    arrays are read-only views conceptually -- kernels never mutate them.

    ``split_feature``/``split_threshold``/``children``/``depth`` are the
    descent-form encoding (leaves as self-loops that always compare
    "left" against ``+inf``), shared with :class:`ForestArrays` -- see
    there for why it removes all per-level leaf bookkeeping and why the
    index arrays are intp.
    """

    feature: np.ndarray          # (n_nodes,) int64, -1 for leaves
    threshold: np.ndarray        # (n_nodes,) float64
    left: np.ndarray             # (n_nodes,) int64
    right: np.ndarray            # (n_nodes,) int64
    value: np.ndarray            # (n_nodes,) float64
    split_feature: np.ndarray    # (n_nodes,) intp, 0 at leaves
    split_threshold: np.ndarray  # (n_nodes,) float64, +inf at leaves
    children: np.ndarray         # (2 * n_nodes,) intp, self-loop at leaves
    depth: int                   # edge-count depth (a lone root: 0)

    @property
    def n_nodes(self) -> int:
        return int(self.feature.shape[0])


@dataclass(frozen=True)
class ForestArrays:
    """Flat node arena for a whole ensemble of trees.

    Every tree's nodes are concatenated; ``roots[k]`` is the arena index of
    tree ``k``'s root and ``left``/``right`` hold arena-global indices, so
    one cursor matrix can descend all trees at once (:func:`forest_apply`).

    The descent itself reads the derived arrays, which encode leaves as
    self-loops so the inner loop needs no is-a-leaf bookkeeping: a leaf's
    ``split_feature`` is 0 and its ``split_threshold`` is ``+inf`` (every
    comparison routes "left"), and ``children[2 * i]`` / ``children[2 * i + 1]``
    are the left/right child of node ``i`` -- a leaf's both children are the
    leaf itself.  After ``depth`` iterations every lane provably rests on a
    leaf.  Index arrays are intp on purpose: numpy silently casts any other
    integer dtype to intp on every fancy-index, which would add a full
    cursor-matrix conversion pass to each of the descent's gathers.
    """

    roots: np.ndarray            # (n_trees,) int64
    feature: np.ndarray          # (total_nodes,) int64, -1 for leaves
    threshold: np.ndarray        # (total_nodes,) float64
    left: np.ndarray             # (total_nodes,) int64
    right: np.ndarray            # (total_nodes,) int64
    value: np.ndarray            # (total_nodes,) float64
    split_feature: np.ndarray    # (total_nodes,) intp, 0 at leaves
    split_threshold: np.ndarray  # (total_nodes,) float64, +inf at leaves
    children: np.ndarray         # (2 * total_nodes,) intp, self-loop at leaves
    depth: int                   # max tree depth (root-only tree: 0)

    @property
    def n_trees(self) -> int:
        return int(self.roots.shape[0])


def pack_tree(nodes: Sequence) -> TreeArrays:
    """Freeze a fitted tree's ``_Node`` list into :class:`TreeArrays`.

    Called once at fit time; inference reuses the arrays on every call
    instead of re-walking the Python node objects.
    """
    feature = np.array([nd.feature for nd in nodes], dtype=np.int64)
    threshold = np.array([nd.threshold for nd in nodes], dtype=np.float64)
    left = np.array([nd.left for nd in nodes], dtype=np.int64)
    right = np.array([nd.right for nd in nodes], dtype=np.int64)
    is_leaf = feature < 0
    node_ids = np.arange(feature.shape[0], dtype=np.int64)
    children = np.empty(2 * feature.shape[0], dtype=np.intp)
    children[0::2] = np.where(is_leaf, node_ids, left)
    children[1::2] = np.where(is_leaf, node_ids, right)
    return TreeArrays(
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        value=np.array([nd.value for nd in nodes], dtype=np.float64),
        split_feature=np.where(is_leaf, 0, feature).astype(np.intp),
        split_threshold=np.where(is_leaf, np.inf, threshold),
        children=children,
        depth=_tree_depth(feature, left, right),
    )


def pack_forest(trees: Sequence["DecisionTreeRegressor"]) -> ForestArrays:
    """Concatenate fitted trees into one :class:`ForestArrays` arena.

    ``left``/``right`` are rebased to arena-global indices.  Packing is a
    one-time cost per fitted ensemble (the GBR caches the result).
    """
    if not trees:
        raise ValueError("cannot pack an empty forest")
    parts = [t.arrays() for t in trees]
    sizes = np.array([p.n_nodes for p in parts], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)[:-1]])
    feature = np.concatenate([p.feature for p in parts])
    threshold = np.concatenate([p.threshold for p in parts])
    value = np.concatenate([p.value for p in parts])
    # child indices are -1 at leaves; rebasing must leave those alone
    left = np.concatenate(
        [np.where(p.left >= 0, p.left + off, p.left) for p, off in zip(parts, offsets)]
    ).astype(np.int64)
    right = np.concatenate(
        [np.where(p.right >= 0, p.right + off, p.right) for p, off in zip(parts, offsets)]
    ).astype(np.int64)

    # descent-form encoding: leaves become self-loops with an always-left
    # comparison, so forest_apply can run a fixed number of unmasked levels
    is_leaf = feature < 0
    nodes = np.arange(feature.shape[0], dtype=np.int64)
    children = np.empty(2 * feature.shape[0], dtype=np.intp)
    children[0::2] = np.where(is_leaf, nodes, left)
    children[1::2] = np.where(is_leaf, nodes, right)
    return ForestArrays(
        roots=offsets.astype(np.int64),
        feature=feature,
        threshold=threshold,
        left=left,
        right=right,
        value=value,
        split_feature=np.where(is_leaf, 0, feature).astype(np.intp),
        split_threshold=np.where(is_leaf, np.inf, threshold),
        children=children,
        depth=max(p.depth for p in parts),
    )


def _tree_depth(feature: np.ndarray, left: np.ndarray, right: np.ndarray) -> int:
    """Edge-count depth of a packed tree (a lone root has depth 0)."""
    depth = np.zeros(feature.shape[0], dtype=np.int64)
    deepest = 0
    # children always come after their parent in the fit-order node list,
    # so one forward pass assigns every node its root distance
    for i in range(feature.shape[0]):
        if feature[i] >= 0:
            d = depth[i] + 1
            depth[left[i]] = d
            depth[right[i]] = d
            if d > deepest:
                deepest = int(d)
    return deepest


def tree_apply(tree: TreeArrays, X: np.ndarray) -> np.ndarray:
    """Leaf values of one tree for every row of ``X`` (shape ``(n,)``).

    Iterative vectorized descent: a per-sample cursor walks the node
    arrays until every sample rests on a leaf.  Split comparisons are
    exact (``x <= threshold``), so the routing -- and therefore the leaf
    value -- is bit-identical to a scalar per-sample walk.  Uses the same
    self-looping descent encoding as :func:`forest_apply` (fixed ``depth``
    levels, four gathers per level, no leaf masking).
    """
    n, d = X.shape
    Xf = np.ascontiguousarray(X, dtype=np.float64).ravel()
    cursor = np.zeros(n, dtype=np.intp)
    rowbase = np.arange(n, dtype=np.intp) * d
    for _ in range(tree.depth):
        f = tree.split_feature[cursor]
        f += rowbase
        xv = Xf[f]
        go_right = xv > tree.split_threshold[cursor]
        cursor <<= 1
        cursor += go_right
        cursor = tree.children[cursor]
    return tree.value[cursor]


def forest_apply(forest: ForestArrays, X: np.ndarray) -> np.ndarray:
    """Leaf-value matrix ``(n_trees, n_samples)`` for the whole ensemble.

    One ``(n_trees, n_samples)`` cursor matrix descends all trees
    simultaneously; the loop runs ``max(tree depth)`` times, not
    ``n_trees`` times.  Each (tree, sample) lane routes exactly as the
    per-tree descent would, so the leaf matrix is bit-identical to
    stacking :func:`tree_apply` results.

    The inner loop is four gathers and two elementwise passes per level,
    all through the self-looping descent encoding (see
    :class:`ForestArrays`): lanes already on a leaf compare against
    ``+inf``, route "left", and stay put, so no activity mask is needed
    and the level count is the packed ``depth``.  The feature-value
    gather goes through the flattened row-major ``X`` with fused
    ``row * d + feature`` indices -- one take instead of a broadcast
    double fancy-index.
    """
    n, d = X.shape
    Xf = np.ascontiguousarray(X, dtype=np.float64).ravel()
    cursor = np.repeat(
        forest.roots.astype(np.intp)[:, None], n, axis=1
    )  # (T, n) intp
    rowbase = (np.arange(n, dtype=np.intp) * d)[None, :]
    for _ in range(forest.depth):
        f = forest.split_feature[cursor]
        f += rowbase
        xv = Xf[f]
        go_right = xv > forest.split_threshold[cursor]
        cursor <<= 1
        cursor += go_right
        cursor = forest.children[cursor]
    return forest.value[cursor]


def forest_predict(
    forest: ForestArrays,
    X: np.ndarray,
    init: float,
    learning_rate: float,
) -> np.ndarray:
    """Boosted-ensemble predictions with scalar-identical accumulation.

    The scalar GBR computes ``pred = init; pred += lr * tree_k(X)`` one
    tree at a time.  Float addition is not associative, so the kernel
    must NOT sum the leaf matrix with a (pairwise) ``np.sum``; it replays
    the same tree-ordered accumulation over the batched leaf matrix.
    The per-tree vector adds are elementwise, so the result is
    bit-identical to the scalar loop for every row.
    """
    leaves = forest_apply(forest, X)
    # scaling first is elementwise (exactly rounded per lane), so one 2-D
    # multiply equals the scalar's per-tree ``lr * tree_k(X)`` products;
    # only the ADDITION order must stay sequential in k
    scaled = learning_rate * leaves
    pred = np.full(X.shape[0], init, dtype=np.float64)
    for k in range(scaled.shape[0]):
        pred += scaled[k]
    return pred


def stacked_features(base: np.ndarray, ratios: np.ndarray) -> np.ndarray:
    """Tasks x grid feature matrix: ``(k * len(ratios), d + 1)``.

    ``base`` holds one row of counter features per task; each row is
    repeated across the shared ratio grid and the grid becomes the last
    column.  Values are placed, never recomputed, so the matrix is
    byte-identical to the per-task construction loop it replaces.  This
    is the batching contract's input side: because ensemble inference is
    row-wise independent, evaluating this one matrix returns the same
    bits as evaluating each task's grid separately.
    """
    base = np.asarray(base, dtype=np.float64)
    ratios = np.asarray(ratios, dtype=np.float64)
    if base.ndim != 2:
        raise ValueError("base must be 2-D (tasks x counter features)")
    if ratios.ndim != 1:
        raise ValueError("ratios must be 1-D")
    k, d = base.shape
    n_r = ratios.shape[0]
    X = np.empty((k * n_r, d + 1), dtype=np.float64)
    X[:, :-1] = np.repeat(base, n_r, axis=0)
    X[:, -1] = np.tile(ratios, k)
    return X


#: Public kernel entry points of the vectorized hot path.  Every dotted
#: name here must resolve to a real object AND be documented in
#: PERFORMANCE.md -- enforced by ``tests/test_performance_docs.py`` (the
#: same diff-against-the-doc pattern ``test_observability_docs.py`` uses
#: for the metric catalogue).
KERNEL_ENTRY_POINTS: tuple[str, ...] = (
    "repro.common.scalar_kernels_enabled",
    "repro.ml.kernels.pack_tree",
    "repro.ml.kernels.pack_forest",
    "repro.ml.kernels.tree_apply",
    "repro.ml.kernels.forest_apply",
    "repro.ml.kernels.forest_predict",
    "repro.ml.kernels.stacked_features",
    "repro.ml.tree.DecisionTreeRegressor.arrays",
    "repro.ml.gbr.GradientBoostedRegressor.forest",
    "repro.core.correlation.CorrelationFunction.predict_batch",
    "repro.core.correlation.CorrelationFunction.predict_stacked",
    "repro.core.model.PerformanceModel.ratio_grids",
    "repro.core.planner.greedy_plan",
    "repro.core.planner.optimal_quotas",
    "repro.core.planner.throughput_plan",
    "repro.sim.kernels.BreakdownKernel",
    "repro.sim.kernels.TieredBreakdownKernel",
    "repro.sim.pages.PageTable.weight_arena",
    "repro.sim.pages.PageTable.residency_arena",
    "repro.sim.pages.PageTable.object_slice",
    "repro.sim.pages.TieredPageTable.residency_arena",
)
