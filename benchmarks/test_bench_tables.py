"""Benchmarks regenerating the paper's tables.

* Table 1 -- static pattern classification of all five applications;
* Table 2 -- the workload registry (builds every workload);
* Table 3 -- the six-model comparison for f(.);
* Table 4 -- whole-pipeline prediction accuracy vs the regression baseline.

Each benchmark prints the same rows the paper reports and asserts the
reproduction's shape requirements.
"""

from conftest import run_once

from repro.experiments import table1, table2, table3, table4


def test_bench_table1(benchmark, ctx):
    result = run_once(benchmark, table1.run, ctx)
    assert result["detected"] == result["paper"]


def test_bench_table2(benchmark, ctx):
    rows = run_once(benchmark, table2.run, ctx)
    assert len(rows) == 5
    # footprints are the paper's GB figures at MB scale
    for row in rows.values():
        assert row["workload_mb"] > 100


def test_bench_table3(benchmark, ctx):
    result = run_once(benchmark, table3.run, ctx)
    scores = result["reports"]
    # every model learns something; the tree ensembles lead (paper: GBR
    # best at 94.1%, RFR 89.2%; our RFR/GBR may swap within a point or two)
    assert all(r2 > 0.5 for r2 in scores.values())
    assert result["best"] in ("GBR", "RFR")
    assert scores["GBR"] > 0.85
    assert scores["KNR"] < scores["GBR"]  # KNR trails, as in the paper


def test_bench_table4(benchmark, ctx):
    result = run_once(benchmark, table4.run, ctx)
    for app, scores in result.items():
        # the performance model beats size-ratio regression on every app
        assert scores["ours"] > scores["baseline"], app
        assert scores["ours"] > 0.7, app
