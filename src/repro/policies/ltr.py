"""Learning-to-rank placement backend (Moura et al. style).

Objects are placement candidates; a pairwise ranker
(:class:`~repro.ml.ranking.PairwiseRanker`) learns which of two objects
deserves the faster tier from the first region it observes, using measured
access density as the training signal.  Every later region is placed by
walking the learned ranking and filling tiers fastest-first.

Deliberately task-agnostic: the ranker sees objects, not tasks, so it
reproduces the address-level-policy failure mode the paper analyses --
hot shared objects hog the fast tier regardless of which task's critical
path needs it.  That is the point of carrying it as a competing backend.
"""

from __future__ import annotations

import numpy as np

from repro.ml.ranking import PairwiseRanker, default_object_features
from repro.policies.base import (
    drain_queue,
    make_batch,
    page_tiers,
    table_n_tiers,
    tier_free_pages,
)
from repro.sim.engine import EngineContext, PlacementPolicy

__all__ = ["LearnedRankingPolicy"]

_N_FEATURES = 4


class LearnedRankingPolicy(PlacementPolicy):
    """Rank objects pairwise, fill tiers best-first."""

    name = "ltr"

    def __init__(
        self,
        promote_per_interval: int = 1024,
        epochs: int = 200,
        seed: int = 0,
    ) -> None:
        self.promote_per_interval = promote_per_interval
        self._ranker = PairwiseRanker(_N_FEATURES, epochs=epochs, seed=seed)
        self._trained = False
        self._queue: list[tuple[str, np.ndarray, int]] = []

    # ------------------------------------------------------------------
    def _region_features(
        self, ctx: EngineContext
    ) -> tuple[list[str], np.ndarray, np.ndarray]:
        """Per-object (names, features, densities) for the current region."""
        assert ctx.region is not None
        totals: dict[str, float] = {}
        for inst in ctx.region.instances:
            for acc in inst.footprint.accesses:
                totals[acc.obj] = totals.get(acc.obj, 0.0) + acc.total
        names = sorted(totals)
        rows = []
        density = []
        for name in names:
            obj = ctx.page_table.object(name)
            size = ctx.workload.object(name).size_bytes
            w = np.sort(obj.weight)[::-1]
            top = max(1, int(np.ceil(0.1 * len(w))))
            hot_fraction = float(w[:top].sum())
            rows.append(
                default_object_features(size, totals[name], hot_fraction)
            )
            density.append(totals[name] / max(size, 1))
        return names, np.asarray(rows, dtype=np.float64), np.asarray(density)

    def on_region_start(self, ctx: EngineContext) -> None:
        names, feats, density = self._region_features(ctx)
        if not names:
            self._queue = []
            return
        if not self._trained and len(names) >= 2 and len(np.unique(density)) >= 2:
            # first observed region is the training set: access density is
            # the relevance label the ranker learns to reproduce from the
            # full feature vector
            self._ranker.fit_ordered(feats, density)
            self._trained = True
        order = self._ranker.rank(feats)

        # fill tiers fastest-first in ranking order, whole objects at a
        # time with hottest pages first when an object straddles tiers
        table = ctx.page_table
        n = table_n_tiers(table)
        free = [tier_free_pages(table, k) for k in range(n)]
        # plan against total capacity: pages vacating a tier free it up as
        # the queue drains, and the table clamps any transient excess
        for k in range(n):
            free[k] += int(round(sum(
                np.count_nonzero(page_tiers(table, nm) == k) for nm in names
            )))
        queue: list[tuple[str, np.ndarray, int]] = []
        tier = 0
        for i in order:
            name = names[i]
            obj = table.object(name)
            current = page_tiers(table, name)
            hot = np.argsort(-obj.weight, kind="stable")
            pos = 0
            while pos < len(hot) and tier < n:
                if free[tier] <= 0:
                    tier += 1
                    continue
                take = hot[pos : pos + free[tier]]
                free[tier] -= len(take)
                pos += len(take)
                mismatched = take[current[take] != tier]
                if len(mismatched):
                    queue.append((name, mismatched, tier))
            if tier >= n:
                break
        self._queue = queue

    # ------------------------------------------------------------------
    def on_tick(self, ctx: EngineContext, dt: float):
        if not self._queue:
            return None
        budget = min(self.promote_per_interval, ctx.migration_budget_pages)
        return make_batch(ctx.page_table, drain_queue(self._queue, budget))
