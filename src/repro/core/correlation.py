"""Construction of the correlation function f(.) (Section 5.1).

Equation 2 predicts hybrid-placement time as::

    T_hybrid = T_pm_only * (1 - r_dram) * f(PMCs, r_dram) + T_dram_only * r_dram

f(.) is a statistical model trained offline, once, on code samples:

1. each code region runs on PM-only and DRAM-only, then under 10 random
   data placements; solving Equation 2 for f gives the target value;
2. features are the region's performance counters collected with a *seed
   input* (deliberately different from the input that generated the
   placements) plus ``r_dram``;
3. six model families are compared on a 70/30 split (Table 3); the paper
   and this reproduction both select the Gradient Boosted Regressor;
4. hardware events are then reduced to the 8 most Gini-important ones via
   recursive elimination (Figure 7).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.common import make_rng, scalar_kernels_enabled, spawn_rng
from repro.ml.kernels import stacked_features
from repro.ml import (
    DecisionTreeRegressor,
    GradientBoostedRegressor,
    KernelRidgeRegressor,
    KNeighborsRegressor,
    MLPRegressor,
    RandomForestRegressor,
    r2_score,
    recursive_importance_elimination,
    train_test_split,
)
from repro.sim.counters import PMC_EVENTS, collect_pmcs, pmc_vector
from repro.sim.machine import MachineModel
from repro.sim.memspec import HMConfig

if False:  # import-cycle guard: codesamples lives in repro.apps
    from repro.apps.codesamples import CodeSample  # noqa: F401

__all__ = [
    "TrainingData",
    "generate_training_data",
    "solve_f_target",
    "CorrelationFunction",
    "ModelReport",
    "compare_models",
    "default_model_zoo",
]


def solve_f_target(
    t_hybrid: float, t_pm: float, t_dram: float, r_dram: float
) -> float:
    """Invert Equation 2 for the value of f(.) one measurement implies."""
    if not 0.0 <= r_dram < 1.0:
        raise ValueError("r_dram must be in [0, 1) to solve for f")
    if t_pm <= 0:
        raise ValueError("t_pm must be positive")
    return (t_hybrid - t_dram * r_dram) / (t_pm * (1.0 - r_dram))


@dataclass
class TrainingData:
    """Feature matrix / target vector for f(.) plus bookkeeping."""

    X: np.ndarray            # (n, len(events) + 1); last column is r_dram
    y: np.ndarray            # f targets
    events: tuple[str, ...]  # names of the PMC feature columns
    sample_names: tuple[str, ...]

    @property
    def feature_names(self) -> tuple[str, ...]:
        return self.events + ("r_dram",)

    def restrict_events(self, events: Sequence[str]) -> "TrainingData":
        """Project onto a subset of PMC events (keeps r_dram)."""
        idx = [self.events.index(e) for e in events]
        cols = idx + [len(self.events)]
        return TrainingData(
            X=self.X[:, cols],
            y=self.y,
            events=tuple(events),
            sample_names=self.sample_names,
        )


def generate_training_data(
    machine: MachineModel,
    hm: HMConfig,
    samples: Sequence["CodeSample"] | None = None,
    placements_per_sample: int = 10,
    seed_input_scale: float = 0.6,
    seed=0,
) -> TrainingData:
    """Run the paper's training-data generation procedure.

    For every code sample: measure endpoints, run ``placements_per_sample``
    random placements (measuring ``r_dram`` and ``T_hybrid``), solve for f,
    and pair each target with the PMC vector collected under the *seed*
    input.
    """
    rng = make_rng(seed)
    if samples is None:
        from repro.apps.codesamples import generate_corpus

        samples = generate_corpus(seed=rng)
    rows: list[np.ndarray] = []
    targets: list[float] = []
    names: list[str] = []
    for sample in samples:
        fp = sample.footprint(1.0)
        objs = fp.objects
        t_dram, t_pm = machine.endpoint_times(fp, hm)
        # features from the seed input, not the measured one
        seed_fp = sample.footprint(seed_input_scale)
        pmcs = pmc_vector(collect_pmcs(seed_fp, machine, hm, rng=rng))
        per_obj = fp.accesses_by_object()
        total = sum(per_obj.values())
        for _ in range(placements_per_sample):
            # Placements vary the DRAM ratio near-uniformly across the
            # region's objects (small per-object jitter).  This matches how
            # the model is queried at runtime: Algorithm 1 works in
            # per-task access ratios under its even-distribution
            # assumption, so f(PMCs, r) must answer "time at uniform ratio
            # r", not "time at an arbitrary per-object split" -- the latter
            # is not a function of the scalar r at all.
            base_r = float(rng.uniform(0.0, 0.97))
            fractions = {
                o: float(np.clip(base_r + rng.normal(0.0, 0.05), 0.0, 1.0))
                for o in objs
            }
            r = sum(per_obj[o] * fractions[o] for o in objs) / total
            r = min(r, 0.99)
            t_hyb = machine.instance_time(fp, hm, fractions)
            f_val = solve_f_target(t_hyb, t_pm, t_dram, r)
            rows.append(np.concatenate([pmcs, [r]]))
            targets.append(f_val)
            names.append(sample.name)
    return TrainingData(
        X=np.vstack(rows),
        y=np.asarray(targets),
        events=PMC_EVENTS,
        sample_names=tuple(names),
    )


@dataclass(frozen=True)
class ModelReport:
    """One row of Table 3."""

    name: str
    params: str
    r2: float
    fit_seconds: float


def default_model_zoo(seed=0) -> dict[str, tuple[Callable[[], object], str]]:
    """The six statistical models of Table 3, with the paper's parameters."""
    rng = make_rng(seed)

    def rng_child():
        return spawn_rng(rng)

    return {
        "DTR": (
            lambda: DecisionTreeRegressor(max_depth=10),
            "criterion=sse, max_depth=10",
        ),
        "SVR": (
            lambda: KernelRidgeRegressor(alpha=0.3),
            "kernel='rbf' (kernel-ridge stand-in)",
        ),
        "KNR": (lambda: KNeighborsRegressor(n_neighbors=8), "n_neighbors=8"),
        "RFR": (
            lambda: RandomForestRegressor(
                n_estimators=20, max_depth=10, rng=rng_child()
            ),
            "n_estimators=20, max_depth=10",
        ),
        "GBR": (
            lambda: GradientBoostedRegressor(
                n_estimators=400,
                max_depth=6,
                learning_rate=0.06,
                min_samples_leaf=2,
                rng=rng_child(),
            ),
            "base_estimator='DTR'",
        ),
        "ANN": (
            lambda: MLPRegressor(
                hidden_layers=(200, 20), alpha=1e-6, epochs=150, rng=rng_child()
            ),
            "alpha=1e-6, hidden_layer=(200, 20)",
        ),
    }


def compare_models(
    data: TrainingData,
    test_fraction: float = 0.3,
    seed=0,
    zoo: Mapping[str, tuple[Callable[[], object], str]] | None = None,
) -> list[ModelReport]:
    """Table 3: train all six models, report R-squared on the held-out 30%."""
    zoo = zoo or default_model_zoo(seed=seed)
    Xtr, Xte, ytr, yte = train_test_split(data.X, data.y, test_fraction, rng=seed)
    reports = []
    for name, (factory, params) in zoo.items():
        model = factory()
        t0 = time.perf_counter()
        model.fit(Xtr, ytr)
        elapsed = time.perf_counter() - t0
        r2 = r2_score(yte, model.predict(Xte))
        reports.append(ModelReport(name=name, params=params, r2=r2, fit_seconds=elapsed))
    return reports


class CorrelationFunction:
    """The trained f(.): predicts the Equation 2 correction factor.

    ``events`` lists the PMC events the model consumes (after feature
    selection this is the paper's top-8 list); inputs at prediction time are
    an event dict plus ``r_dram``.
    """

    def __init__(self, model, events: Sequence[str]) -> None:
        self.model = model
        self.events = tuple(events)

    @classmethod
    def train(
        cls,
        data: TrainingData,
        events: Sequence[str] | None = None,
        seed=0,
    ) -> "CorrelationFunction":
        """Fit the selected model (GBR) on the full dataset."""
        if events is not None:
            data = data.restrict_events(events)
        model = GradientBoostedRegressor(
            n_estimators=300, max_depth=4, learning_rate=0.08, rng=make_rng(seed)
        )
        model.fit(data.X, data.y)
        return cls(model=model, events=data.events)

    def predict(self, pmcs: Mapping[str, float], r_dram: float) -> float:
        """f(PMCs, r_dram); clipped to a sane positive range."""
        if not 0.0 <= r_dram <= 1.0:
            raise ValueError("r_dram must be in [0, 1]")
        x = np.array([[pmcs[e] for e in self.events] + [r_dram]])
        return float(np.clip(self.model.predict(x)[0], 0.05, 5.0))

    def predict_batch(self, pmcs: Mapping[str, float], ratios) -> np.ndarray:
        """Vectorised f(.) over many ratios with the same counters.

        One stacked model evaluation instead of a call per ratio: this is
        what keeps Algorithm 1's per-region planning cheap (the paper
        reports 0.031 ms per prediction on its C implementation).
        """
        ratios = np.asarray(ratios, dtype=np.float64)
        if ratios.ndim != 1:
            raise ValueError("ratios must be 1-D")
        if ((ratios < 0) | (ratios > 1)).any():
            raise ValueError("ratios must be within [0, 1]")
        base = np.array([pmcs[e] for e in self.events], dtype=np.float64)
        X = np.empty((len(ratios), len(base) + 1))
        X[:, :-1] = base
        X[:, -1] = ratios
        return np.clip(self.model.predict(X), 0.05, 5.0)

    def predict_stacked(
        self, pmcs_seq: Sequence[Mapping[str, float]], ratios
    ) -> np.ndarray:
        """f(.) for many counter sets over one shared ratio grid.

        Returns shape ``(len(pmcs_seq), len(ratios))``.  The whole batch is
        evaluated with a *single* model call: the GBR walks its estimator
        list once per call, so stacking k tasks' grids amortises that
        per-call cost k ways.  This is the kernel behind the placement
        service's batched planning (one call per request batch instead of
        one per task).
        """
        ratios = np.asarray(ratios, dtype=np.float64)
        if ratios.ndim != 1:
            raise ValueError("ratios must be 1-D")
        if ((ratios < 0) | (ratios > 1)).any():
            raise ValueError("ratios must be within [0, 1]")
        if len(pmcs_seq) == 0:
            return np.empty((0, len(ratios)))
        n_r = len(ratios)
        if scalar_kernels_enabled():
            # reference path: fill the stacked matrix block by block
            X = np.empty((len(pmcs_seq) * n_r, len(self.events) + 1))
            for i, pmcs in enumerate(pmcs_seq):
                block = slice(i * n_r, (i + 1) * n_r)
                X[block, :-1] = [pmcs[e] for e in self.events]
                X[block, -1] = ratios
        else:
            # kernel path: one (tasks, events) base matrix, then a single
            # repeat/tile placement -- byte-identical values, no per-block
            # assignment loop (PERFORMANCE.md, "stacked_features")
            base = np.array(
                [[pmcs[e] for e in self.events] for pmcs in pmcs_seq],
                dtype=np.float64,
            )
            X = stacked_features(base, ratios)
        flat = np.clip(self.model.predict(X), 0.05, 5.0)
        return flat.reshape(len(pmcs_seq), n_r)

    # -- feature selection ---------------------------------------------
    @staticmethod
    def select_events(
        data: TrainingData,
        n_events: int = 8,
        seed=0,
    ) -> tuple[tuple[str, ...], list]:
        """Section 5.1's recursive Gini-importance elimination.

        Returns (selected events, full elimination trace for Figure 7).
        The r_dram column is structural and never eliminated.
        """
        Xtr, Xte, ytr, yte = train_test_split(data.X, data.y, 0.3, rng=seed)
        rng = make_rng(seed)

        def factory():
            return GradientBoostedRegressor(
                n_estimators=150, max_depth=4, learning_rate=0.1,
                rng=spawn_rng(rng),
            )

        names = list(data.feature_names)
        steps = recursive_importance_elimination(
            factory, Xtr, ytr, Xte, yte, names, min_features=2,
            score_fn=r2_score, protected=("r_dram",),
        )
        # walk the trace and pick the step with n_events PMC features
        selected: tuple[str, ...] | None = None
        for step in steps:
            pmc_feats = tuple(f for f in step.features if f != "r_dram")
            if len(pmc_feats) == n_events:
                selected = pmc_feats
                break
        if selected is None:
            selected = tuple(f for f in steps[-1].features if f != "r_dram")
        return selected, steps
