"""Heterogeneous-memory machine simulator (substrate).

The paper evaluates on a real 192 GB DRAM + 1.5 TB Optane PM server; this
package is its software stand-in (see DESIGN.md Section 2).  It provides:

* :mod:`repro.sim.memspec` -- tier specifications with the paper's measured
  DRAM/PM asymmetries (Section 2 of the paper);
* :mod:`repro.sim.pages` -- page tables with per-page access popularity and
  fractional DRAM residency;
* :mod:`repro.sim.cache` -- on-chip cache filtering and the direct-mapped
  page cache used by Memory Mode;
* :mod:`repro.sim.machine` -- the ground-truth execution-time model;
* :mod:`repro.sim.counters` -- synthetic performance-monitor counters;
* :mod:`repro.sim.engine` -- the virtual-time tick engine that runs
  workloads under a placement policy, with bandwidth accounting and barriers;
* :mod:`repro.sim.faults` -- seeded fault injection (dropped samples,
  corrupted PMCs, failed migrations, bandwidth/capacity disturbances).
"""

from repro.sim.memspec import HMConfig, TierSpec, cxl_hm_config, optane_hm_config
from repro.sim.pages import PagedObject, PageTable
from repro.sim.machine import MachineModel, MachineSpec, TimeBreakdown
from repro.sim.counters import PMC_EVENTS, collect_pmcs
from repro.sim.engine import Engine, EngineConfig, PlacementPolicy, RunResult
from repro.sim.faults import (
    FaultConfig,
    FaultInjector,
    RobustnessEvent,
    RobustnessLog,
    RobustnessReport,
)

__all__ = [
    "TierSpec",
    "HMConfig",
    "optane_hm_config",
    "cxl_hm_config",
    "PagedObject",
    "PageTable",
    "MachineSpec",
    "MachineModel",
    "TimeBreakdown",
    "PMC_EVENTS",
    "collect_pmcs",
    "Engine",
    "EngineConfig",
    "PlacementPolicy",
    "RunResult",
    "FaultConfig",
    "FaultInjector",
    "RobustnessEvent",
    "RobustnessLog",
    "RobustnessReport",
]
