"""Open-loop load test of the placement service (our extension).

The placement server (:mod:`repro.service`) is driven by a seeded
open-loop arrival process over a catalogue of region shapes from several
tenants, inside a **virtual-time queueing simulation**: arrivals happen on
a virtual clock, and each planner invocation's *measured wall seconds*
are charged to that clock as the batch's service time.  Latency
percentiles therefore reflect queueing + batching window + real compute,
while staying single-threaded and reproducible in shape.

Three scenarios, matching the subsystem's three claims:

* **cache**  -- the same saturating request stream against a cold server
  with the prediction cache off vs on; with ~10 distinct region shapes
  the cache turns almost every plan into a lookup, so sustained
  throughput must rise by >= 3x;
* **batching** -- a window sweep (singleton ``window=0, max_batch=1`` up
  to several multiples of the measured singleton service time) at an
  offered load near singleton capacity; coalescing amortises the
  per-planner-call model cost, so a batched window beats the singleton
  configuration at p95;
* **saturation** -- an overload burst against a tight admission config;
  the controller must trip, shed to the hot-page-daemon fallback, and
  still *answer* every single request (zero lost).

Rates are calibrated against the host's measured singleton service time,
so the scenarios stress the same operating points on fast and slow
machines alike.
"""

from __future__ import annotations

import math
import time

import numpy as np

from repro.apps.codesamples import generate_corpus
from repro.common import make_rng, spawn_rng
from repro.experiments.common import ExperimentContext, format_table
from repro.service import (
    AdmissionConfig,
    PlacementRequest,
    PlacementServer,
    PredictionCache,
    TaskSpec,
)
from repro.sim import MachineModel, optane_hm_config
from repro.sim.counters import collect_pmcs

TENANTS = ("tenant-a", "tenant-b", "tenant-c", "tenant-d")


class _VirtualClock:
    """Mutable virtual time source the server reads through its clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


# ----------------------------------------------------------------------
# workload construction
# ----------------------------------------------------------------------
def _region_catalogue(
    ctx: ExperimentContext, n_shapes: int, tasks_per_shape: int
) -> list[tuple[TaskSpec, ...]]:
    """Distinct region shapes (task-spec tuples) clients will ask about."""
    machine, hm = MachineModel(), optane_hm_config()
    samples = generate_corpus(n_shapes * tasks_per_shape, seed=ctx.seed + 23)
    rng = make_rng(ctx.seed + 29)
    shapes: list[tuple[TaskSpec, ...]] = []
    for s in range(n_shapes):
        specs = []
        for k in range(tasks_per_shape):
            sample = samples[s * tasks_per_shape + k]
            fp = sample.footprint(1.0)
            t_dram, t_pm = machine.endpoint_times(fp, hm)
            pmcs = collect_pmcs(fp, machine, hm, rng=spawn_rng(rng))
            specs.append(
                TaskSpec(
                    task_id=f"shape{s}:task{k}",
                    t_pm_only=t_pm,
                    t_dram_only=t_dram,
                    total_accesses=fp.total_accesses,
                    pmcs=pmcs,
                    size_bytes=fp.total_bytes,
                )
            )
        shapes.append(tuple(specs))
    return shapes


def _arrivals(
    catalogue, n_requests: int, mean_interarrival_s: float, seed: int, tag: str
) -> list[tuple[float, PlacementRequest]]:
    """Seeded open-loop Poisson arrivals over (shape, tenant) picks."""
    rng = make_rng(seed)
    out: list[tuple[float, PlacementRequest]] = []
    t = 0.0
    for i in range(n_requests):
        t += float(rng.exponential(mean_interarrival_s))
        shape = catalogue[int(rng.integers(len(catalogue)))]
        tenant = TENANTS[int(rng.integers(len(TENANTS)))]
        out.append(
            (
                t,
                PlacementRequest(
                    request_id=f"{tag}-{i:05d}",
                    tenant=tenant,
                    tasks=shape,
                ),
            )
        )
    return out


# ----------------------------------------------------------------------
# the queueing simulation
# ----------------------------------------------------------------------
def _simulate(
    server: PlacementServer,
    clock: _VirtualClock,
    arrivals: list[tuple[float, PlacementRequest]],
) -> dict[str, object]:
    """Single-worker virtual-time simulation of one arrival stream.

    The one worker fires the oldest batch as soon as it is both *due*
    (window elapsed or ``max_batch`` reached) and the worker is free;
    the batch's measured planning wall time becomes its virtual service
    time.  Requests shed at admission complete instantly (the daemon
    fallback needs no planner).
    """
    sched = server.scheduler
    arrival_at: dict[str, float] = {}
    done_at: dict[str, float] = {}
    statuses: dict[str, int] = {}
    worker_free = 0.0
    i = 0
    while i < len(arrivals) or sched.pending_depth:
        if sched.pending_depth >= sched.max_batch:
            fire_at = max(worker_free, clock.now)
        elif sched.pending_depth:
            fire_at = max(sched.next_due_at(), worker_free)
        else:
            fire_at = math.inf
        if i < len(arrivals) and arrivals[i][0] <= fire_at:
            t, req = arrivals[i]
            i += 1
            clock.now = max(clock.now, t)
            arrival_at[req.request_id] = t
            shed = server.submit(req, now=t)
            if shed is not None:
                done_at[req.request_id] = t
                statuses[shed.status] = statuses.get(shed.status, 0) + 1
            continue
        clock.now = max(clock.now, fire_at)
        walls_before = len(server.batch_wall_s)
        decisions = server.step(now=fire_at)
        service_s = sum(server.batch_wall_s[walls_before:])
        finish = fire_at + service_s
        worker_free = finish
        for dec in decisions:
            done_at[dec.request_id] = finish
            statuses[dec.status] = statuses.get(dec.status, 0) + 1

    latencies = np.array(
        [done_at[rid] - arrival_at[rid] for rid in arrival_at], dtype=np.float64
    )
    first_arrival = arrivals[0][0]
    makespan = max(done_at.values()) - first_arrival
    return {
        "requests": len(arrivals),
        "answered": len(done_at),
        "unanswered": len(arrivals) - len(done_at),
        "throughput_rps": len(done_at) / makespan if makespan > 0 else math.inf,
        "makespan_s": makespan,
        "p50_s": float(np.percentile(latencies, 50)),
        "p95_s": float(np.percentile(latencies, 95)),
        "p99_s": float(np.percentile(latencies, 99)),
        "mean_s": float(latencies.mean()),
        "statuses": statuses,
        "submitted": server.submitted,
        "decided": server.decided,
        "shed": server.admission.shed_count,
    }


def _server(
    ctx: ExperimentContext,
    clock: _VirtualClock,
    *,
    window_s: float,
    max_batch: int,
    cache: PredictionCache | None = None,
    admission: AdmissionConfig | None = None,
) -> PlacementServer:
    hm = optane_hm_config()
    return PlacementServer(
        ctx.system.performance_model,
        dram_capacity_bytes=hm.dram.capacity_bytes,
        window_s=window_s,
        max_batch=max_batch,
        cache=cache,
        admission=admission,
        telemetry=ctx.telemetry,
        clock=clock,
    )


#: effectively-unbounded intake for the scenarios that must not shed
_NO_SHED = AdmissionConfig(max_queue=1_000_000, resume_below=0)


def _calibrate_singleton_s(ctx: ExperimentContext, catalogue) -> float:
    """Median wall time of one single-request planner call (no cache)."""
    clock = _VirtualClock()
    server = _server(
        ctx, clock, window_s=0.0, max_batch=1, admission=_NO_SHED
    )
    walls = []
    for j, shape in enumerate(catalogue[: min(5, len(catalogue))]):
        req = PlacementRequest(
            request_id=f"cal-{j}", tenant="tenant-a", tasks=shape
        )
        t0 = time.perf_counter()
        server.request(req, now=float(j))
        walls.append(time.perf_counter() - t0)
    return float(np.median(walls))


def run(ctx: ExperimentContext) -> dict[str, object]:
    n_shapes = 10 if ctx.fast else 16
    tasks_per_shape = 4
    n_requests = 240 if ctx.fast else 480
    catalogue = _region_catalogue(ctx, n_shapes, tasks_per_shape)

    singleton_s = _calibrate_singleton_s(ctx, catalogue)
    print(
        f"calibration: one singleton plan costs {singleton_s * 1e3:.1f}ms wall "
        f"({n_shapes} shapes x {tasks_per_shape} tasks, {len(TENANTS)} tenants)"
    )

    # ------------------------------------------------------------------
    # scenario 1: cache off vs on under a saturating stream
    # ------------------------------------------------------------------
    # arrivals far faster than the cache-off service rate: both servers
    # run back-to-back batches, so throughput measures service capacity
    burst = _arrivals(
        catalogue,
        n_requests,
        mean_interarrival_s=singleton_s / 50.0,
        seed=ctx.seed + 101,
        tag="cache",
    )
    cache_scenario: dict[str, object] = {}
    for label, cache in (
        ("cache_off", None),
        ("cache_on", PredictionCache(capacity=512, telemetry=ctx.telemetry)),
    ):
        clock = _VirtualClock()
        server = _server(
            ctx,
            clock,
            window_s=singleton_s,
            max_batch=32,
            cache=cache,
            admission=_NO_SHED,
        )
        result = _simulate(server, clock, burst)
        if cache is not None:
            result["cache"] = cache.stats()
        cache_scenario[label] = result
    off = cache_scenario["cache_off"]["throughput_rps"]
    on = cache_scenario["cache_on"]["throughput_rps"]
    cache_scenario["speedup"] = on / off
    print(
        f"saturating stream ({n_requests} requests): "
        f"{off:.0f} rps cache-off vs {on:.0f} rps cache-on "
        f"({on / off:.1f}x, want >= 3x)"
    )

    # ------------------------------------------------------------------
    # scenario 2: batching window sweep vs singleton planning
    # ------------------------------------------------------------------
    # offered load just under singleton capacity: the singleton server
    # runs at utilisation ~0.9 (long queueing tail), batched windows
    # amortise the per-call model cost and stay far from saturation
    load = _arrivals(
        catalogue,
        max(n_requests // 2, 120),
        mean_interarrival_s=singleton_s / 0.9,
        seed=ctx.seed + 103,
        tag="window",
    )
    sweep: dict[str, object] = {}
    windows = (
        ("singleton", 0.0, 1),
        ("window_1x", 1.0 * singleton_s, 16),
        ("window_2x", 2.0 * singleton_s, 16),
        ("window_4x", 4.0 * singleton_s, 16),
    )
    for label, window_s, max_batch in windows:
        clock = _VirtualClock()
        server = _server(
            ctx, clock, window_s=window_s, max_batch=max_batch,
            admission=_NO_SHED,
        )
        result = _simulate(server, clock, load)
        result["window_s"] = window_s
        result["max_batch"] = max_batch
        result["mean_batch_size"] = len(load) / max(len(server.batch_wall_s), 1)
        sweep[label] = result
    rows = [
        [label, sweep[label]["mean_batch_size"],
         sweep[label]["p50_s"], sweep[label]["p95_s"], sweep[label]["p99_s"]]
        for label, _, _ in windows
    ]
    print("Batch-window sweep (virtual seconds; cache off, load ~0.9x "
          "singleton capacity)")
    print(format_table(["config", "batch", "p50", "p95", "p99"], rows))
    best_batched = min(
        sweep[label]["p95_s"] for label, _, _ in windows[1:]
    )
    sweep["batched_beats_singleton_p95"] = bool(
        best_batched < sweep["singleton"]["p95_s"]
    )
    print(
        f"  best batched p95 {best_batched:.3f}s vs singleton p95 "
        f"{sweep['singleton']['p95_s']:.3f}s"
    )

    # ------------------------------------------------------------------
    # scenario 3: overload against a tight admission config
    # ------------------------------------------------------------------
    overload = _arrivals(
        catalogue,
        max(n_requests * 2 // 3, 160),
        mean_interarrival_s=singleton_s / 4.0,
        seed=ctx.seed + 107,
        tag="overload",
    )
    clock = _VirtualClock()
    server = _server(
        ctx,
        clock,
        window_s=2.0 * singleton_s,
        max_batch=8,
        admission=AdmissionConfig(max_queue=8, resume_below=2),
    )
    saturation = _simulate(server, clock, overload)
    saturation["saturation_events"] = sum(
        1 for ev in server.log.events if ev.kind == "service.saturated"
    )
    print(
        f"overload (4x capacity, max_queue=8): {saturation['shed']} of "
        f"{saturation['requests']} shed to the daemon, "
        f"{saturation['unanswered']} unanswered (want 0), "
        f"{saturation['saturation_events']} saturation trips"
    )

    return {
        "calibration": {
            "singleton_plan_wall_s": singleton_s,
            "n_shapes": n_shapes,
            "tasks_per_shape": tasks_per_shape,
            "tenants": len(TENANTS),
        },
        "cache": cache_scenario,
        "window_sweep": sweep,
        "saturation": saturation,
    }
