"""Core task-parallel data structures.

Terminology follows Section 2 of the paper:

* a *task* is the unit of parallelism (an MPI rank or an OpenMP thread);
* a *task instance* is one execution of a task, typically one iteration of an
  outer loop, possibly with a new input;
* tasks synchronise at barriers -- a :class:`ParallelRegion` is the set of
  task instances between two consecutive barriers;
* each task accesses a handful of major *data objects* (H/PSI in DMRG,
  A/B/C in SpGEMM) that account for almost all memory consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.common import CACHE_LINE, PAGE_SIZE, AccessPattern

__all__ = [
    "DataObject",
    "ObjectAccess",
    "KernelProfile",
    "Footprint",
    "TaskInstanceSpec",
    "ParallelRegion",
    "Workload",
]


@dataclass(frozen=True)
class DataObject:
    """A user-visible data object managed on heterogeneous memory.

    ``owner`` names the task that predominantly accesses the object, or
    ``None`` for objects shared by all tasks (e.g. the B matrix in SpGEMM).
    ``hotness`` selects the within-object page-popularity distribution:
    ``"uniform"`` for sequentially walked objects, ``"zipf"`` for objects
    reached through indirect addressing.
    """

    name: str
    size_bytes: int
    owner: str | None = None
    element_size: int = 8
    hotness: str = "uniform"
    zipf_s: float = 1.1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError(f"object {self.name!r} must have positive size")
        if self.element_size <= 0:
            raise ValueError("element_size must be positive")
        if self.hotness not in ("uniform", "zipf"):
            raise ValueError(f"unknown hotness model {self.hotness!r}")

    @property
    def n_pages(self) -> int:
        """Number of 4 KiB pages the object occupies."""
        return max(1, -(-self.size_bytes // PAGE_SIZE))


@dataclass(frozen=True)
class ObjectAccess:
    """Main-memory traffic of one task instance to one data object.

    ``reads``/``writes`` count *main-memory* accesses at cache-line
    granularity, i.e. after the on-chip caches have filtered the logical
    access stream (the paper's ``prof_mem_acc`` / ``esti_mem_acc`` are these
    counts).
    """

    obj: str
    pattern: AccessPattern
    reads: int
    writes: int = 0

    def __post_init__(self) -> None:
        if self.reads < 0 or self.writes < 0:
            raise ValueError("access counts must be non-negative")

    @property
    def total(self) -> int:
        return self.reads + self.writes

    @property
    def bytes_read(self) -> int:
        return self.reads * CACHE_LINE

    @property
    def bytes_written(self) -> int:
        return self.writes * CACHE_LINE

    def scaled(self, factor: float) -> "ObjectAccess":
        """Return a copy with access counts scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return ObjectAccess(
            obj=self.obj,
            pattern=self.pattern,
            reads=int(round(self.reads * factor)),
            writes=int(round(self.writes * factor)),
        )


@dataclass(frozen=True)
class KernelProfile:
    """Microarchitecture-facing characteristics of a task's kernel.

    These latent characteristics drive both the ground-truth machine model
    and the synthetic performance-counter vectors; Merchandiser itself only
    ever sees the counters.
    """

    branch_rate: float = 0.05       # branches per instruction
    branch_misp_rate: float = 0.02  # mispredictions per branch
    vector_fraction: float = 0.3    # fraction of instructions that are SIMD
    ilp: float = 2.0                # exploitable instruction-level parallelism

    def __post_init__(self) -> None:
        for name in ("branch_rate", "branch_misp_rate", "vector_fraction"):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")
        if self.ilp <= 0:
            raise ValueError("ilp must be positive")


@dataclass(frozen=True)
class Footprint:
    """Everything the machine model needs about one task instance.

    ``instructions`` is the retired-instruction count; ``accesses`` lists the
    main-memory traffic per (object, pattern) pair.
    """

    accesses: tuple[ObjectAccess, ...]
    instructions: int
    profile: KernelProfile = field(default_factory=KernelProfile)

    def __post_init__(self) -> None:
        if self.instructions <= 0:
            raise ValueError("instructions must be positive")
        object.__setattr__(self, "accesses", tuple(self.accesses))

    @property
    def total_accesses(self) -> int:
        return sum(a.total for a in self.accesses)

    @property
    def total_bytes(self) -> int:
        return self.total_accesses * CACHE_LINE

    @property
    def objects(self) -> tuple[str, ...]:
        return tuple(dict.fromkeys(a.obj for a in self.accesses))

    def accesses_by_object(self) -> dict[str, int]:
        """Total main-memory accesses per object name."""
        out: dict[str, int] = {}
        for a in self.accesses:
            out[a.obj] = out.get(a.obj, 0) + a.total
        return out

    def pattern_mix(self) -> dict[AccessPattern, float]:
        """Fraction of main-memory accesses per pattern (sums to 1)."""
        total = self.total_accesses
        mix: dict[AccessPattern, float] = {}
        if total == 0:
            return mix
        for a in self.accesses:
            mix[a.pattern] = mix.get(a.pattern, 0.0) + a.total / total
        return mix

    @property
    def random_fraction(self) -> float:
        return self.pattern_mix().get(AccessPattern.RANDOM, 0.0)

    @property
    def write_fraction(self) -> float:
        total = self.total_accesses
        if total == 0:
            return 0.0
        return sum(a.writes for a in self.accesses) / total

    def scaled(self, access_factors: Mapping[str, float], instr_factor: float = 1.0) -> "Footprint":
        """Return a new footprint with per-object access counts rescaled.

        Used by the input-aware estimator: the paper predicts the access
        counts of a new input by scaling the profiled counts of the base
        input (Equation 1).
        """
        new_accesses = tuple(
            a.scaled(access_factors.get(a.obj, 1.0)) for a in self.accesses
        )
        return Footprint(
            accesses=new_accesses,
            instructions=max(1, int(round(self.instructions * instr_factor))),
            profile=self.profile,
        )


@dataclass(frozen=True)
class TaskInstanceSpec:
    """One execution of a task inside a parallel region.

    ``input_vector`` holds the sizes of the instance's input data objects and
    is what Section 5.2 computes cosine similarity over.
    """

    task_id: str
    footprint: Footprint
    input_vector: tuple[float, ...] = ()

    def input_array(self) -> np.ndarray:
        return np.asarray(self.input_vector, dtype=np.float64)


@dataclass(frozen=True)
class ParallelRegion:
    """A set of task instances separated from the next set by a barrier.

    ``kind`` labels the program phase the region executes (e.g. the symbolic
    vs numeric passes of SpGEMM).  Per Section 2 of the paper, task instances
    whose algorithm or access patterns differ must be classified as different
    tasks -- Merchandiser therefore profiles and predicts per (task, kind).

    ``gates`` generalises the barrier to intra-region dependencies (the DAG
    runtime, ``repro.runtime``): a gated instance makes no progress until
    every named instance has finished.  ``None`` keeps classic barrier
    semantics -- every instance starts at the region start.  Gate edges must
    stay within the region and form a DAG.
    """

    name: str
    instances: tuple[TaskInstanceSpec, ...]
    kind: str = ""
    #: normalised ``((task_id, (dep_id, ...)), ...)``; accepts a mapping
    gates: tuple[tuple[str, tuple[str, ...]], ...] | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "instances", tuple(self.instances))
        if not self.instances:
            raise ValueError(f"region {self.name!r} has no task instances")
        ids = [i.task_id for i in self.instances]
        if len(set(ids)) != len(ids):
            raise ValueError(f"region {self.name!r} has duplicate task ids")
        if self.gates is not None:
            items = (
                self.gates.items()
                if isinstance(self.gates, Mapping)
                else self.gates
            )
            norm = tuple(
                (str(tid), tuple(str(d) for d in deps)) for tid, deps in items
            )
            object.__setattr__(self, "gates", norm)
            self._validate_gates(norm, set(ids))

    def _validate_gates(
        self,
        gates: tuple[tuple[str, tuple[str, ...]], ...],
        known: set[str],
    ) -> None:
        seen: set[str] = set()
        deps_of: dict[str, tuple[str, ...]] = {}
        for tid, deps in gates:
            if tid in seen:
                raise ValueError(f"region {self.name!r}: duplicate gate for {tid!r}")
            seen.add(tid)
            if tid not in known:
                raise ValueError(f"region {self.name!r}: gate for unknown task {tid!r}")
            for dep in deps:
                if dep not in known:
                    raise ValueError(
                        f"region {self.name!r}: task {tid!r} gated on unknown "
                        f"task {dep!r}"
                    )
                if dep == tid:
                    raise ValueError(
                        f"region {self.name!r}: task {tid!r} gated on itself"
                    )
            deps_of[tid] = deps
        # Kahn's algorithm over the gate edges: anything left is a cycle
        indeg = {tid: len(deps_of.get(tid, ())) for tid in known}
        ready = [tid for tid, d in indeg.items() if d == 0]
        done = 0
        succ: dict[str, list[str]] = {}
        for tid, deps in deps_of.items():
            for dep in deps:
                succ.setdefault(dep, []).append(tid)
        while ready:
            done += 1
            tid = ready.pop()
            for nxt in succ.get(tid, ()):
                indeg[nxt] -= 1
                if indeg[nxt] == 0:
                    ready.append(nxt)
        if done != len(known):
            raise ValueError(f"region {self.name!r}: gates contain a cycle")

    def gate_map(self) -> dict[str, tuple[str, ...]]:
        """Gates as a plain mapping (empty when the region is a barrier)."""
        if self.gates is None:
            return {}
        return {tid: deps for tid, deps in self.gates if deps}

    @property
    def task_ids(self) -> tuple[str, ...]:
        return tuple(i.task_id for i in self.instances)


@dataclass(frozen=True)
class Workload:
    """A complete task-parallel application run: objects + region sequence."""

    name: str
    objects: tuple[DataObject, ...]
    regions: tuple[ParallelRegion, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "objects", tuple(self.objects))
        object.__setattr__(self, "regions", tuple(self.regions))
        names = [o.name for o in self.objects]
        if len(set(names)) != len(names):
            raise ValueError("duplicate data-object names")
        known = set(names)
        for region in self.regions:
            for inst in region.instances:
                for acc in inst.footprint.accesses:
                    if acc.obj not in known:
                        raise ValueError(
                            f"region {region.name!r} task {inst.task_id!r} "
                            f"references undeclared object {acc.obj!r}"
                        )

    @property
    def total_footprint_bytes(self) -> int:
        return sum(o.size_bytes for o in self.objects)

    @property
    def task_ids(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for region in self.regions:
            for inst in region.instances:
                seen.setdefault(inst.task_id, None)
        return tuple(seen)

    def object(self, name: str) -> DataObject:
        for o in self.objects:
            if o.name == name:
                return o
        raise KeyError(name)
