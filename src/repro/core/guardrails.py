"""Runtime guardrails: keep Merchandiser sane under imperfect information.

The policy trusts three external information sources -- profiler samples,
PMC reads and the migration syscall path -- and each can fail (see
:mod:`repro.sim.faults`).  Four guardrails bound the damage:

* :class:`MigrationRetrier` -- failed migration batches are retried with
  exponential backoff, a bounded number of times, then dropped and logged;
* :class:`QuotaValidator` -- estimator/model outputs that are NaN,
  non-positive, or more than ``max_ratio`` times away from the last known
  good value for the same task are replaced with the last known good (or
  the task is sent back to base profiling when none exists yet);
* :class:`MispredictionWatchdog` -- predicted region time is compared with
  the measured one; after ``trip_after`` consecutive regions above the
  error threshold the policy *degrades* to the MemoryOptimizer-style
  hot-page daemon (planning and gating off), and re-arms once
  ``rearm_after`` consecutive regions predict well again;
* alpha quarantine -- refinement windows flagged by the fault injector are
  discarded instead of being folded into the alpha table (implemented in
  the policy, counted here).

Every activation is a typed ``guardrail.*`` event in a
:class:`~repro.sim.faults.RobustnessLog`, surfaced through ``RunResult``;
a fault-free run emits none.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.sim.faults import RobustnessLog
from repro.sim.pages import MigrationBatch

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.telemetry import Telemetry

__all__ = [
    "GuardrailConfig",
    "Guardrails",
    "MigrationRetrier",
    "QuotaValidator",
    "MispredictionWatchdog",
]


@dataclass(frozen=True)
class GuardrailConfig:
    """Thresholds of the guardrail layer (defaults documented in DESIGN.md)."""

    #: migration retry: bounded attempts with exponential backoff
    max_retry_attempts: int = 3
    retry_backoff_s: float = 0.02

    #: sanity validation: reject values > max_ratio x (or < 1/max_ratio x)
    #: away from the last known good
    max_ratio: float = 10.0

    #: watchdog: one-sided *under-delivery* error per region,
    #: max(0, measured - predicted) / predicted.  Healthy plans on the
    #: bundled apps systematically over-predict (migration lag and
    #: contention are not in the planner's model), so under-delivery is the
    #: distinctive signature of a broken model or a disturbed environment
    watchdog_error_threshold: float = 0.5
    #: consecutive bad regions before degrading to the hot-page daemon
    watchdog_trip_after: int = 3
    #: consecutive good regions (while degraded) before re-arming
    watchdog_rearm_after: int = 2
    #: per-key cap on base-profile re-collections after flagged windows
    max_base_reprofiles: int = 2


def _finite_positive(*values: float) -> bool:
    return all(math.isfinite(v) and v > 0.0 for v in values)


class MigrationRetrier:
    """Retry failed migration batches with bounded exponential backoff."""

    def __init__(self, config: GuardrailConfig, log: RobustnessLog) -> None:
        self.config = config
        self.log = log
        self.telemetry: "Telemetry | None" = None
        #: (moves, attempt number, not-before virtual time)
        self._queue: list[tuple[MigrationBatch, int, float]] = []
        #: attempt count of the most recently emitted tick batch (0 = all
        #: fresh moves); a failure reported next tick is charged against it
        self._emitted_attempts = 0

    def note_emitted(self, attempts: int) -> None:
        self._emitted_attempts = attempts

    def on_failure(self, batch: MigrationBatch, now: float) -> None:
        attempts = self._emitted_attempts + 1
        if attempts > self.config.max_retry_attempts:
            self.log.record(
                "guardrail.retry_dropped", now, pages=batch.n_pages, attempts=attempts
            )
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_guardrail_retries_total", outcome="dropped"
                )
            return
        delay = self.config.retry_backoff_s * (2.0 ** (attempts - 1))
        self._queue.append((batch, attempts, now + delay))
        self.log.record(
            "guardrail.retry_scheduled",
            now,
            pages=batch.n_pages,
            attempt=attempts,
            at_s=now + delay,
        )
        if self.telemetry is not None:
            self.telemetry.inc("merch_guardrail_retries_total", outcome="scheduled")

    def pop_due(self, now: float) -> tuple[list[tuple[str, np.ndarray, bool]], int]:
        """Moves whose backoff has elapsed, plus their max attempt count."""
        due = [entry for entry in self._queue if entry[2] <= now]
        if not due:
            return [], 0
        self._queue = [entry for entry in self._queue if entry[2] > now]
        moves: list[tuple[str, np.ndarray, bool]] = []
        for batch, _, _ in due:
            moves.extend(batch.moves)
        return moves, max(attempt for _, attempt, _ in due)

    @property
    def pending(self) -> int:
        return sum(batch.n_pages for batch, _, _ in self._queue)

    # -- crash-consistency checkpoints ---------------------------------
    def snapshot_state(self) -> dict:
        return {
            "emitted_attempts": self._emitted_attempts,
            "queue": [
                {
                    "attempt": attempt,
                    "not_before_s": not_before,
                    "moves": [
                        {
                            "obj": name,
                            "pages": [int(p) for p in idx],
                            "promote": bool(promote),
                        }
                        for name, idx, promote in batch.moves
                    ],
                }
                for batch, attempt, not_before in self._queue
            ],
        }

    def restore_state(self, state: dict) -> None:
        self._emitted_attempts = int(state["emitted_attempts"])
        self._queue = [
            (
                MigrationBatch(
                    moves=tuple(
                        (
                            move["obj"],
                            np.asarray(move["pages"], dtype=np.intp),
                            bool(move["promote"]),
                        )
                        for move in entry["moves"]
                    )
                ),
                int(entry["attempt"]),
                float(entry["not_before_s"]),
            )
            for entry in state["queue"]
        ]


class QuotaValidator:
    """Clamp insane estimator/model outputs to the last known good."""

    def __init__(self, config: GuardrailConfig, log: RobustnessLog) -> None:
        self.config = config
        self.log = log
        self.telemetry: "Telemetry | None" = None
        #: per profile key: last validated (t_dram, t_pm, total_accesses)
        self._lkg: dict[str, tuple[float, float, float]] = {}

    def validate_inputs(
        self, key: str, t_dram: float, t_pm: float, total_acc: float, now: float
    ) -> tuple[float, float, float] | None:
        """Validated (t_dram, t_pm, total_accesses) for one task instance.

        Healthy values become the new last-known-good.  Insane values are
        replaced by the last known good; ``None`` means there is none yet
        and the caller should re-run base profiling for the task.
        """
        vals = (t_dram, t_pm, total_acc)
        lkg = self._lkg.get(key)
        insane = not _finite_positive(*vals)
        if not insane and lkg is not None:
            ratio = self.config.max_ratio
            insane = any(
                v > r * ratio or v < r / ratio for v, r in zip(vals, lkg)
            )
        if not insane:
            self._lkg[key] = vals
            return vals
        self.log.record(
            "guardrail.quota_clamp",
            now,
            key=key,
            t_dram=float(t_dram),
            t_pm=float(t_pm),
            total_accesses=float(total_acc),
            recovered=lkg is not None,
        )
        if self.telemetry is not None:
            self.telemetry.inc(
                "merch_guardrail_quota_clamps_total",
                recovered="yes" if lkg is not None else "no",
            )
        return lkg

    # -- N-tier forms of the quota sanity checks -----------------------
    # ``validate_inputs`` bakes in the 2-tier (t_dram, t_pm) endpoint pair;
    # these take the per-tier vectors the generalised planner produces.
    def validate_tier_inputs(
        self,
        key: str,
        tier_times: "tuple[float, ...] | list[float]",
        total_acc: float,
        now: float,
    ) -> tuple[tuple[float, ...], float] | None:
        """Validated ``(tier_times, total_accesses)`` for one task instance.

        The same last-known-good protocol as :meth:`validate_inputs`,
        elementwise over the per-tier endpoint times; on 2-tier vectors it
        makes exactly the decisions the scalar form makes.
        """
        vals = tuple(float(t) for t in tier_times) + (float(total_acc),)
        lkg = self._lkg.get(key)
        insane = not _finite_positive(*vals)
        if not insane and lkg is not None and len(lkg) == len(vals):
            ratio = self.config.max_ratio
            insane = any(
                v > r * ratio or v < r / ratio for v, r in zip(vals, lkg)
            )
        if not insane:
            self._lkg[key] = vals
            return vals[:-1], vals[-1]
        self.log.record(
            "guardrail.quota_clamp",
            now,
            key=key,
            tier_times=[float(t) for t in tier_times],
            total_accesses=float(total_acc),
            recovered=lkg is not None,
        )
        if self.telemetry is not None:
            self.telemetry.inc(
                "merch_guardrail_quota_clamps_total",
                recovered="yes" if lkg is not None else "no",
            )
        if lkg is None or len(lkg) != len(vals):
            return None
        return lkg[:-1], lkg[-1]

    def validate_plan_pages(
        self,
        pages_by_tier: "dict[str, tuple[int, ...] | list[int]]",
        capacities_pages: "tuple[int, ...] | list[int]",
        now: float,
    ) -> dict[str, tuple[int, ...]]:
        """Clamp a plan's per-tier page grants to the tier capacities.

        ``pages_by_tier`` maps each task to its per-tier page grants
        (fastest tier first).  Any tier whose summed grants exceed its
        capacity gets every task's grant for that tier scaled down
        proportionally (floored), and the over-commit is logged as a
        ``guardrail.tier_overcommit`` event.  The scalar 2-tier DRAM
        budget check is the ``len(capacities_pages) == 2`` case.
        """
        caps = [int(c) for c in capacities_pages]
        n = len(caps)
        out = {
            task: [int(p) for p in grants]
            for task, grants in pages_by_tier.items()
        }
        for grants in out.values():
            if len(grants) != n:
                raise ValueError(
                    "per-task grants must have one entry per tier"
                )
        for k in range(n):
            total = sum(grants[k] for grants in out.values())
            if total <= caps[k]:
                continue
            scale = caps[k] / total
            for grants in out.values():
                grants[k] = int(grants[k] * scale)
            self.log.record(
                "guardrail.tier_overcommit",
                now,
                tier=k,
                requested_pages=total,
                capacity_pages=caps[k],
            )
            if self.telemetry is not None:
                self.telemetry.inc(
                    "merch_guardrail_tier_overcommits_total", tier=str(k)
                )
        return {task: tuple(grants) for task, grants in out.items()}

    # -- crash-consistency checkpoints ---------------------------------
    def snapshot_state(self) -> dict:
        return {"lkg": {k: [float(x) for x in v] for k, v in self._lkg.items()}}

    def restore_state(self, state: dict) -> None:
        # entries are (t_dram, t_pm, total) on 2-tier and one-per-tier
        # plus total from validate_tier_inputs; keep whatever length
        # was checkpointed
        self._lkg = {
            k: tuple(float(x) for x in v) for k, v in state["lkg"].items()
        }


class MispredictionWatchdog:
    """Degrade to the hot-page daemon while predictions are unusable.

    State machine::

        ARMED --(trip_after consecutive bad regions)--> DEGRADED
        DEGRADED --(rearm_after consecutive good regions)--> ARMED

    While DEGRADED the policy stops planning and gating (pure
    MemoryOptimizer-style behaviour) but keeps predicting each region so
    recovery is observable.
    """

    def __init__(self, config: GuardrailConfig, log: RobustnessLog) -> None:
        self.config = config
        self.log = log
        self.telemetry: "Telemetry | None" = None
        self.degraded = False
        self._bad_streak = 0
        self._good_streak = 0

    def observe(self, predicted_s: float, measured_s: float, now: float) -> None:
        """Feed one region's (predicted, measured) execution time.

        The error is one-sided: running *slower* than promised is the
        failure the watchdog guards against (finishing early just means the
        conservative planner left margin, which is healthy behaviour).
        """
        if measured_s <= 0.0:
            return
        if math.isfinite(predicted_s) and predicted_s > 0.0:
            error = max(0.0, measured_s - predicted_s) / predicted_s
        else:
            error = math.inf
        bad = error > self.config.watchdog_error_threshold
        if not self.degraded:
            self._bad_streak = self._bad_streak + 1 if bad else 0
            if self._bad_streak >= self.config.watchdog_trip_after:
                self.degraded = True
                self._bad_streak = 0
                self._good_streak = 0
                self.log.record(
                    "guardrail.watchdog_degrade", now, error=float(error)
                )
                if self.telemetry is not None:
                    self.telemetry.inc(
                        "merch_guardrail_watchdog_transitions_total", to="degraded"
                    )
        else:
            self._good_streak = 0 if bad else self._good_streak + 1
            if self._good_streak >= self.config.watchdog_rearm_after:
                self.degraded = False
                self._good_streak = 0
                self._bad_streak = 0
                self.log.record(
                    "guardrail.watchdog_rearm", now, error=float(error)
                )
                if self.telemetry is not None:
                    self.telemetry.inc(
                        "merch_guardrail_watchdog_transitions_total", to="armed"
                    )

    # -- crash-consistency checkpoints ---------------------------------
    def snapshot_state(self) -> dict:
        return {
            "degraded": self.degraded,
            "bad_streak": self._bad_streak,
            "good_streak": self._good_streak,
        }

    def restore_state(self, state: dict) -> None:
        self.degraded = bool(state["degraded"])
        self._bad_streak = int(state["bad_streak"])
        self._good_streak = int(state["good_streak"])


class Guardrails:
    """The assembled guardrail layer one policy instance owns."""

    def __init__(self, config: GuardrailConfig | None = None) -> None:
        self.config = config or GuardrailConfig()
        self.log = RobustnessLog()
        self.telemetry: "Telemetry | None" = None
        self.retrier = MigrationRetrier(self.config, self.log)
        self.validator = QuotaValidator(self.config, self.log)
        self.watchdog = MispredictionWatchdog(self.config, self.log)
        self._reprofiles: dict[str, int] = {}

    def attach_telemetry(self, telemetry: "Telemetry | None") -> None:
        """Share one telemetry object with every guardrail component."""
        self.telemetry = telemetry
        self.retrier.telemetry = telemetry
        self.validator.telemetry = telemetry
        self.watchdog.telemetry = telemetry

    # -- alpha quarantine ----------------------------------------------
    def quarantine_alpha(self, key: str, now: float) -> None:
        """Record that a fault-flagged PEBS window was discarded."""
        self.log.record("guardrail.alpha_quarantine", now, key=key)
        if self.telemetry is not None:
            self.telemetry.inc("merch_guardrail_alpha_quarantines_total")

    # -- base-profile retry bookkeeping --------------------------------
    def may_requeue_base(self, key: str, now: float, reason: str) -> bool:
        """Whether a suspect base profile may be re-collected (bounded)."""
        used = self._reprofiles.get(key, 0)
        if used >= self.config.max_base_reprofiles:
            return False
        self._reprofiles[key] = used + 1
        self.log.record(
            "guardrail.base_profile_requeued", now, key=key, reason=reason
        )
        if self.telemetry is not None:
            self.telemetry.inc("merch_guardrail_base_reprofiles_total")
        return True

    # -- crash-consistency checkpoints ---------------------------------
    def snapshot_state(self) -> dict:
        """JSON-able guardrail state.  The event log is deliberately not
        checkpointed: events are per-incarnation observability, and a
        recovered run reports its own."""
        return {
            "retrier": self.retrier.snapshot_state(),
            "validator": self.validator.snapshot_state(),
            "watchdog": self.watchdog.snapshot_state(),
            "reprofiles": dict(self._reprofiles),
        }

    def restore_state(self, state: dict) -> None:
        self.retrier.restore_state(state["retrier"])
        self.validator.restore_state(state["validator"])
        self.watchdog.restore_state(state["watchdog"])
        self._reprofiles = {k: int(v) for k, v in state["reprofiles"].items()}
