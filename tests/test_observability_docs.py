"""OBSERVABILITY.md must document 100% of registered metric names.

The doc's reference tables are diffed against the canonical instrument
catalogue (``repro.core.telemetry.instruments.METRIC_SPECS``): a metric
added to the code without a doc row fails, as does a doc row for a metric
that no longer exists.  Declared types, labels and span names are checked
too, so the reference cannot silently rot.
"""

import re
from pathlib import Path

import pytest

from repro.core.telemetry import METRIC_SPECS, Telemetry, spec_names

DOC = Path(__file__).resolve().parent.parent / "OBSERVABILITY.md"

#: a metric reference row: | `merch_...` | kind | labels | semantics |
ROW = re.compile(r"^\|\s*`(merch_[a-z0-9_]+)`\s*\|\s*(\w+)\s*\|\s*(.*?)\s*\|")


def _doc_rows() -> dict[str, tuple[str, str]]:
    rows: dict[str, tuple[str, str]] = {}
    for line in DOC.read_text().splitlines():
        m = ROW.match(line)
        if m:
            rows[m.group(1)] = (m.group(2), m.group(3))
    return rows


def test_doc_exists():
    assert DOC.exists(), "OBSERVABILITY.md is missing"


def test_every_registered_metric_is_documented():
    missing = spec_names() - set(_doc_rows())
    assert not missing, f"metrics missing from OBSERVABILITY.md: {sorted(missing)}"


def test_every_documented_metric_is_registered():
    stale = set(_doc_rows()) - spec_names()
    assert not stale, f"OBSERVABILITY.md documents unknown metrics: {sorted(stale)}"


def test_documented_types_match_the_catalogue():
    rows = _doc_rows()
    for spec in METRIC_SPECS:
        doc_kind, _ = rows[spec.name]
        assert doc_kind == spec.kind, (
            f"{spec.name}: documented as {doc_kind!r}, registered as {spec.kind!r}"
        )


def test_documented_labels_match_the_catalogue():
    rows = _doc_rows()
    for spec in METRIC_SPECS:
        _, doc_labels = rows[spec.name]
        for label in spec.labels:
            assert f"`{label}`" in doc_labels, (
                f"{spec.name}: label {label!r} not in doc row ({doc_labels!r})"
            )
        if not spec.labels:
            assert "`" not in doc_labels.replace("\\|", ""), (
                f"{spec.name}: doc row lists labels but the metric has none"
            )


def test_span_taxonomy_documents_emitted_spans():
    """Every span name the instrumentation emits appears in the doc."""
    text = DOC.read_text()
    for span in ("run", "region", "migrate", "barrier", "region_prepare",
                 "estimate", "predict", "plan", "profile", "refine",
                 "recover"):
        assert f"`{span}`" in text, f"span {span!r} undocumented"


def test_catalogue_sizes_agree():
    """The doc tables cover exactly the catalogue, and the live registry
    registers exactly the catalogue."""
    assert len(_doc_rows()) == len(METRIC_SPECS)
    assert set(Telemetry().registry.names()) == spec_names()
