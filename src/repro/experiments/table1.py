"""Table 1: access patterns detected in the five applications.

The Spindle-substitute classifies each application's kernel IR; the paper's
expected rows are:

=========== ======== ======= ======== ======== ===========
Application SpGEMM   WarpX   BFS      DMRG     NWChem-TC
Patterns    Stream   Strided Stream   Stream   Stream
            Random   Stencil Random   Strided  Random
=========== ======== ======= ======== ======== ===========
"""

from __future__ import annotations

from repro.apps import ALL_APPS
from repro.experiments.common import ExperimentContext, format_table

#: the paper's Table 1, for side-by-side comparison
PAPER_PATTERNS = {
    "SpGEMM": {"stream", "random"},
    "WarpX": {"strided", "stencil"},
    "BFS": {"stream", "random"},
    "DMRG": {"stream", "strided"},
    "NWChem-TC": {"stream", "random"},
}


def run(ctx: ExperimentContext) -> dict[str, object]:
    rows = []
    detected: dict[str, set[str]] = {}
    for app_cls in ALL_APPS:
        app = ctx.app(app_cls)
        patterns = app.classify().patterns_present()
        names = {p.value for p in patterns}
        detected[app.name] = names
        match = "yes" if names == PAPER_PATTERNS[app.name] else "NO"
        rows.append(
            [
                app.name,
                " + ".join(sorted(names)),
                " + ".join(sorted(PAPER_PATTERNS[app.name])),
                match,
            ]
        )
    print("Table 1: access patterns detected per application")
    print(format_table(["application", "detected", "paper", "match"], rows))
    return {"detected": detected, "paper": PAPER_PATTERNS}
