"""Shared fixtures for the benchmark suite.

One :class:`~repro.experiments.common.ExperimentContext` is shared by every
benchmark so engine runs are executed once and reused (Figures 4, 5, 6 and
the overhead study all read the same runs, as in the paper).
"""

import pytest

from repro.experiments import ExperimentContext


@pytest.fixture(scope="session")
def ctx():
    return ExperimentContext(seed=0, fast=True)


def run_once(benchmark, fn, *args):
    """Benchmark an experiment with a single timed round.

    Experiments are minutes-scale simulations, not microbenchmarks; one
    round gives the regeneration cost without multiplying the suite's
    runtime.
    """
    return benchmark.pedantic(fn, args=args, rounds=1, iterations=1, warmup_rounds=0)
