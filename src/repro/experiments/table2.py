"""Table 2: applications, inputs and configurations.

Prints the workload registry: the paper's problem/scale per application and
the simulated-scale equivalents this reproduction runs (footprints are the
paper's GB figures scaled by 1/1024 -- see DESIGN.md).
"""

from __future__ import annotations

from repro.apps import ALL_APPS
from repro.experiments.common import ExperimentContext, format_table


def run(ctx: ExperimentContext) -> dict[str, object]:
    rows = []
    table = {}
    for app_cls in ALL_APPS:
        app = ctx.app(app_cls)
        row = app.table2_row()
        wl = ctx.workload(app_cls)
        row["workload_mb"] = wl.total_footprint_bytes / (1 << 20)
        table[app.name] = row
        rows.append(
            [
                row["application"],
                row["problem"][:44],
                f"{row['paper_memory_gb']:.1f} GB",
                f"{row['workload_mb']:.0f} MB",
                f"{row['mpi_processes']}x{row['openmp_threads']}",
                row["tasks"],
                row["iterations"],
            ]
        )
    print("Table 2: applications and their inputs (paper GB -> simulated MB)")
    print(
        format_table(
            ["application", "problem", "paper mem", "sim mem", "MPIxOMP", "tasks", "iters"],
            rows,
        )
    )
    return table
