"""Batched tick kernel for the virtual-time engine (PERFORMANCE.md).

The engine's phase-1 loop computes a :class:`~repro.sim.machine.TimeBreakdown`
for every active instance on every tick.  The scalar
:meth:`MachineModel.breakdown` re-derives, per call, everything that does
not depend on the placement: the per-pattern accumulation structure, tier
latencies, MLP constants, pure-compute time and the compute/memory overlap
factor.  :class:`BreakdownKernel` hoists all of that to region start:

* access tensors -- flat arrays of (instance row, pattern slot, object
  column, reads, writes) covering every ``ObjectAccess`` of the region, in
  footprint order;
* per-(instance, slot) latency/MLP constants, where a "slot" is a pattern's
  first-appearance rank within its footprint (<= 4 slots, one per
  :class:`~repro.common.AccessPattern`);
* per-instance ``cpu_s`` and overlap ``beta`` scalars.

Per tick, one ordered ``np.add.at`` scatter-add rebuilds the per-tier
(reads, writes) buckets for *all* instances at once, and the rest of the
model is elementwise over instances.  Bit-identity with the scalar model
holds because every float reduction keeps the scalar loop's order:
``np.add.at`` adds in element order (= access order), slot accumulation
walks slots in first-appearance order, and unused slots contribute an
exact ``+0.0`` (an identity on the non-negative values involved).
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.common import CACHE_LINE
from repro.sim.machine import MachineModel, TieredBreakdown, TimeBreakdown
from repro.sim.memspec import HMConfig, TopologySpec
from repro.tasks.task import Footprint

__all__ = ["BreakdownKernel", "TieredBreakdownKernel"]

#: Upper bound on pattern slots per footprint (one per AccessPattern).
_MAX_SLOTS = 4


class BreakdownKernel:
    """Region-scoped batched replacement for per-instance ``breakdown``.

    Built once per region from ``(task_id, footprint)`` pairs; each
    :meth:`breakdown_batch` call then prices any subset of those instances
    under the current placement with a handful of numpy passes.  Only the
    engine's configuration is supported (``bandwidth_derate == 1.0``);
    contention is applied by the engine after the breakdown, exactly as on
    the scalar path.
    """

    def __init__(
        self,
        machine: MachineModel,
        hm: HMConfig,
        footprints: Sequence[tuple[str, Footprint]],
    ) -> None:
        spec = machine.spec
        self._rows: dict[str, int] = {}
        self._obj_cols: dict[str, int] = {}
        n_inst = len(footprints)

        inst_idx: list[int] = []
        slot_idx: list[int] = []
        obj_idx: list[int] = []
        reads: list[float] = []
        writes: list[float] = []
        lat_dram = np.zeros((n_inst, _MAX_SLOTS))
        lat_pm = np.zeros((n_inst, _MAX_SLOTS))
        mlp = np.ones((n_inst, _MAX_SLOTS))
        cpu = np.zeros(n_inst)
        beta = np.zeros(n_inst)

        for i, (task_id, fp) in enumerate(footprints):
            if task_id in self._rows:
                raise ValueError(f"duplicate task id {task_id!r}")
            self._rows[task_id] = i
            slots: dict = {}
            for a in fp.accesses:
                s = slots.setdefault(a.pattern, len(slots))
                inst_idx.append(i)
                slot_idx.append(s)
                obj_idx.append(self._obj_cols.setdefault(a.obj, len(self._obj_cols)))
                reads.append(float(a.reads))
                writes.append(float(a.writes))
            for pattern, s in slots.items():
                random = pattern.value == "random"
                lat_dram[i, s] = hm.dram.latency_ns(random=random)
                lat_pm[i, s] = hm.pm.latency_ns(random=random)
                mlp[i, s] = spec.mlp[pattern]
            cpu[i] = machine.cpu_time(fp)
            mix = fp.pattern_mix()
            beta[i] = (
                sum(spec.overlap[p] * w for p, w in mix.items()) if mix else 0.0
            )

        self._inst_idx = np.asarray(inst_idx, dtype=np.intp)
        self._slot_idx = np.asarray(slot_idx, dtype=np.intp)
        self._obj_idx = np.asarray(obj_idx, dtype=np.intp)
        self._reads = np.asarray(reads, dtype=np.float64)
        self._writes = np.asarray(writes, dtype=np.float64)
        self._lat_dram = lat_dram
        self._lat_pm = lat_pm
        self._mlp = mlp
        self._cpu = cpu
        self._beta = beta
        self._q = spec.tier_overlap_q
        self._dram_rbw = hm.dram.read_bandwidth
        self._dram_wbw = hm.dram.write_bandwidth
        self._pm_rbw = hm.pm.read_bandwidth
        self._pm_wbw = hm.pm.write_bandwidth
        self._n_inst = n_inst

    @property
    def task_ids(self) -> tuple[str, ...]:
        return tuple(self._rows)

    def _object_ratios(self, dram_fractions: Mapping[str, float]) -> np.ndarray:
        # _obj_cols maps names to 0..n-1 in insertion order, so iterating
        # its keys fills column order directly; clip(v, 0, 1) returns the
        # same bits as min(1.0, max(0.0, v)) for every float
        vals = np.fromiter(
            (dram_fractions.get(name, 0.0) for name in self._obj_cols),
            dtype=np.float64,
            count=len(self._obj_cols),
        )
        return np.clip(vals, 0.0, 1.0)

    def breakdown_batch(
        self,
        task_ids: Sequence[str],
        dram_fractions: Mapping[str, float],
    ) -> list[TimeBreakdown]:
        """Breakdowns for ``task_ids`` under the given placement.

        Returns one :class:`TimeBreakdown` per requested id, in order,
        bit-identical to calling the scalar ``machine.breakdown`` per
        instance with the same fractions.
        """
        r_obj = self._object_ratios(dram_fractions)
        r = r_obj[self._obj_idx]

        shape = (self._n_inst, _MAX_SLOTS)
        dr = np.zeros(shape)
        dw = np.zeros(shape)
        pr = np.zeros(shape)
        pw = np.zeros(shape)
        at = (self._inst_idx, self._slot_idx)
        # ordered scatter-add: element order == footprint access order, so
        # each (instance, slot) bucket accumulates exactly like the scalar
        # dict loop in MachineModel.breakdown
        np.add.at(dr, at, self._reads * r)
        np.add.at(dw, at, self._writes * r)
        np.add.at(pr, at, self._reads * (1 - r))
        np.add.at(pw, at, self._writes * (1 - r))

        t_dram, d_rb, d_wb = self._tier_time_batch(
            dr, dw, self._lat_dram, self._dram_rbw, self._dram_wbw
        )
        t_pm, p_rb, p_wb = self._tier_time_batch(
            pr, pw, self._lat_pm, self._pm_rbw, self._pm_wbw
        )
        # the q-norm stays scalar per instance: numpy's SIMD pow differs
        # from libm pow in the last bit for ~5% of inputs, which would
        # break bit-identity with the scalar model.  Everything else here
        # is exactly-rounded IEEE arithmetic (add/mul/div/min/max), where
        # vector and scalar paths agree bit for bit.
        q = self._q
        t_mem = np.empty(self._n_inst)
        for i in range(self._n_inst):
            td, tp = float(t_dram[i]), float(t_pm[i])
            t_mem[i] = (td**q + tp**q) ** (1.0 / q) if (td or tp) else 0.0
        total = np.maximum(self._cpu, t_mem) + (1.0 - self._beta) * np.minimum(
            self._cpu, t_mem
        )

        out = []
        for tid in task_ids:
            i = self._rows[tid]
            out.append(
                TimeBreakdown(
                    total_s=float(total[i]),
                    cpu_s=float(self._cpu[i]),
                    mem_s=float(t_mem[i]),
                    dram_s=float(t_dram[i]),
                    pm_s=float(t_pm[i]),
                    dram_read_bytes=float(d_rb[i]),
                    dram_write_bytes=float(d_wb[i]),
                    pm_read_bytes=float(p_rb[i]),
                    pm_write_bytes=float(p_wb[i]),
                )
            )
        return out

    def _tier_time_batch(
        self,
        reads: np.ndarray,
        writes: np.ndarray,
        lat_ns: np.ndarray,
        read_bw: float,
        write_bw: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Vector twin of ``MachineModel._tier_time`` over all instances.

        Slots are reduced sequentially (first-appearance order, like the
        scalar dict walk).  Empty slots have zero counts, so their terms
        are an exact ``+0.0``; the per-term expression keeps the scalar's
        operation order ``((n * lat) * 1e-9) / mlp``.
        """
        latency = np.zeros(reads.shape[0])
        read_bytes = np.zeros(reads.shape[0])
        write_bytes = np.zeros(reads.shape[0])
        for s in range(reads.shape[1]):
            n = reads[:, s] + writes[:, s]
            latency += n * lat_ns[:, s] * 1e-9 / self._mlp[:, s]
            read_bytes += reads[:, s] * CACHE_LINE
            write_bytes += writes[:, s] * CACHE_LINE
        bandwidth = read_bytes / read_bw + write_bytes / write_bw
        return np.maximum(latency, bandwidth), read_bytes, write_bytes


class TieredBreakdownKernel:
    """N-tier twin of :class:`BreakdownKernel`.

    Same hoisted access tensors, but latency constants and scatter targets
    exist per tier, and placements are per-object *fraction vectors*
    (fastest tier first) instead of scalar DRAM ratios.  Bit-identical to
    scalar :meth:`MachineModel.breakdown_tiered` by the same argument as
    the 2-tier kernel: ordered scatter-adds, first-appearance slot
    reduction, scalar per-instance q-norm.
    """

    def __init__(
        self,
        machine: MachineModel,
        topo: TopologySpec,
        footprints: Sequence[tuple[str, Footprint]],
    ) -> None:
        spec = machine.spec
        self._topo = topo
        n_tiers = topo.n_tiers
        self._rows: dict[str, int] = {}
        self._obj_cols: dict[str, int] = {}
        n_inst = len(footprints)

        inst_idx: list[int] = []
        slot_idx: list[int] = []
        obj_idx: list[int] = []
        reads: list[float] = []
        writes: list[float] = []
        lat = [np.zeros((n_inst, _MAX_SLOTS)) for _ in range(n_tiers)]
        mlp = np.ones((n_inst, _MAX_SLOTS))
        cpu = np.zeros(n_inst)
        beta = np.zeros(n_inst)

        for i, (task_id, fp) in enumerate(footprints):
            if task_id in self._rows:
                raise ValueError(f"duplicate task id {task_id!r}")
            self._rows[task_id] = i
            slots: dict = {}
            for a in fp.accesses:
                s = slots.setdefault(a.pattern, len(slots))
                inst_idx.append(i)
                slot_idx.append(s)
                obj_idx.append(self._obj_cols.setdefault(a.obj, len(self._obj_cols)))
                reads.append(float(a.reads))
                writes.append(float(a.writes))
            for pattern, s in slots.items():
                random = pattern.value == "random"
                for k, tier in enumerate(topo.tiers):
                    lat[k][i, s] = tier.latency_ns(random=random)
                mlp[i, s] = spec.mlp[pattern]
            cpu[i] = machine.cpu_time(fp)
            mix = fp.pattern_mix()
            beta[i] = (
                sum(spec.overlap[p] * w for p, w in mix.items()) if mix else 0.0
            )

        self._inst_idx = np.asarray(inst_idx, dtype=np.intp)
        self._slot_idx = np.asarray(slot_idx, dtype=np.intp)
        self._obj_idx = np.asarray(obj_idx, dtype=np.intp)
        self._reads = np.asarray(reads, dtype=np.float64)
        self._writes = np.asarray(writes, dtype=np.float64)
        self._lat = lat
        self._mlp = mlp
        self._cpu = cpu
        self._beta = beta
        self._q = spec.tier_overlap_q
        self._rbw = tuple(t.read_bandwidth for t in topo.tiers)
        self._wbw = tuple(t.write_bandwidth for t in topo.tiers)
        self._n_inst = n_inst
        self._n_tiers = n_tiers

    @property
    def task_ids(self) -> tuple[str, ...]:
        return tuple(self._rows)

    def _object_fractions(
        self, tier_fractions: Mapping[str, Sequence[float]]
    ) -> np.ndarray:
        """(n_obj, n_tiers) clipped fraction matrix in column order.

        Missing objects default to all-in-slowest, matching the scalar
        ``breakdown_tiered``.
        """
        n = self._n_tiers
        default = (0.0,) * (n - 1) + (1.0,)
        mat = np.empty((len(self._obj_cols), n), dtype=np.float64)
        for row, name in enumerate(self._obj_cols):
            f = tier_fractions.get(name, default)
            if len(f) != n:
                raise ValueError(
                    f"object {name!r}: fraction vector has {len(f)} entries "
                    f"for a {n}-tier topology"
                )
            mat[row, :] = f
        return np.clip(mat, 0.0, 1.0)

    def breakdown_batch(
        self,
        task_ids: Sequence[str],
        tier_fractions: Mapping[str, Sequence[float]],
    ) -> list[TieredBreakdown]:
        """Tiered breakdowns for ``task_ids``, bit-identical to calling the
        scalar ``machine.breakdown_tiered`` per instance."""
        f_obj = self._object_fractions(tier_fractions)
        shape = (self._n_inst, _MAX_SLOTS)
        at = (self._inst_idx, self._slot_idx)

        tier_t = []
        tier_rb = []
        tier_wb = []
        for k in range(self._n_tiers):
            fk = f_obj[self._obj_idx, k]
            rk = np.zeros(shape)
            wk = np.zeros(shape)
            # element order == footprint access order, like the scalar loop
            np.add.at(rk, at, self._reads * fk)
            np.add.at(wk, at, self._writes * fk)
            t, rb, wb = self._tier_time_batch(rk, wk, self._lat[k], self._rbw[k], self._wbw[k])
            tier_t.append(t)
            tier_rb.append(rb)
            tier_wb.append(wb)

        # scalar per-instance q-norm: the generator sum in breakdown_tiered
        # reduces tiers sequentially starting at 0, mirrored exactly here
        q = self._q
        t_mem = np.empty(self._n_inst)
        for i in range(self._n_inst):
            ts = [float(t[i]) for t in tier_t]
            t_mem[i] = sum(t**q for t in ts) ** (1.0 / q) if any(ts) else 0.0
        total = np.maximum(self._cpu, t_mem) + (1.0 - self._beta) * np.minimum(
            self._cpu, t_mem
        )

        out = []
        for tid in task_ids:
            i = self._rows[tid]
            out.append(
                TieredBreakdown(
                    total_s=float(total[i]),
                    cpu_s=float(self._cpu[i]),
                    mem_s=float(t_mem[i]),
                    tier_s=tuple(float(t[i]) for t in tier_t),
                    tier_read_bytes=tuple(float(b[i]) for b in tier_rb),
                    tier_write_bytes=tuple(float(b[i]) for b in tier_wb),
                )
            )
        return out

    _tier_time_batch = BreakdownKernel._tier_time_batch
