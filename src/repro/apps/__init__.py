"""The five evaluation applications (Table 2) plus the training corpus.

Each application provides a small *real* reference kernel (tested against
scipy/networkx/numpy), a task-parallel workload at simulated scale whose
footprints are calibrated from that kernel's structure, and the
``LB_HM_config`` binding Merchandiser consumes.
"""

from repro.apps.base import AppConfig, Application
from repro.apps.codesamples import CodeSample, generate_corpus
from repro.apps.spgemm import SpGEMMApp
from repro.apps.bfs import BFSApp
from repro.apps.warpx import WarpXApp
from repro.apps.dmrg import DMRGApp
from repro.apps.nwchem_tc import NWChemTCApp, TC_PHASES
from repro.apps.dag_base import DAGApplication
from repro.apps.fox import FoxApp
from repro.apps.cholesky import CholeskyApp

#: The evaluation suite, in the paper's Table 2 order.
ALL_APPS = (SpGEMMApp, WarpXApp, BFSApp, DMRGApp, NWChemTCApp)

#: The task-DAG applications driven through the ``repro.runtime`` frontend
#: (dag_apps experiment); kept out of ``ALL_APPS``, whose consumers expect
#: barrier pipelines.
DAG_APPS = (FoxApp, CholeskyApp)

__all__ = [
    "AppConfig",
    "Application",
    "CodeSample",
    "generate_corpus",
    "SpGEMMApp",
    "BFSApp",
    "WarpXApp",
    "DMRGApp",
    "NWChemTCApp",
    "TC_PHASES",
    "ALL_APPS",
    "DAGApplication",
    "FoxApp",
    "CholeskyApp",
    "DAG_APPS",
]
