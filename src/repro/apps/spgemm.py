"""SpGEMM: general sparse matrix-matrix multiplication (Ginkgo-style).

The paper's configuration (Table 2): C = A * A^T on GAP-kron, 429.3 GB,
1 MPI process x 12 OpenMP threads.  Figure 1.b gives the task structure: A
is partitioned into row bins, and each OpenMP thread runs the two Gustavson
phases over its bin -- a symbolic pass computing C's nonzero counts (sync
point 1) and a numeric pass computing values (sync point 2).

Three layers here:

* :func:`spgemm_symbolic` / :func:`spgemm_numeric` -- a real row-binned
  Gustavson SpGEMM on CSR (validated against scipy in the tests);
* :class:`SpGEMMApp` -- the workload builder: per-bin nonzero and flop
  counts from an actual R-MAT instance drive per-task footprints at
  simulated scale (the power-law row skew is the intrinsic load imbalance
  the paper observes for SpGEMM in Figure 5);
* the kernel IR -- streams over A and C, gathers on B through A's column
  indices: Table 1's "Stream + Random".
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.common import AccessPattern, MIB, make_rng
from repro.apps.base import AppConfig, Application
from repro.apps.synth import rmat_matrix
from repro.core.patterns import Affine, ArrayRef, Indirect, Loop
from repro.tasks.task import (
    DataObject,
    Footprint,
    KernelProfile,
    ObjectAccess,
    Workload,
)
from repro.tasks.frontends import OpenMPProgram

__all__ = ["spgemm_symbolic", "spgemm_numeric", "bin_rows", "SpGEMMApp"]


# ---------------------------------------------------------------------------
# reference kernel
# ---------------------------------------------------------------------------
def bin_rows(A: sparse.csr_matrix, n_bins: int) -> list[np.ndarray]:
    """Partition rows into contiguous bins with ~equal *row* counts.

    Ginkgo bins by rows, so nonzeros per bin stay skewed for power-law
    matrices -- that skew is the intrinsic imbalance.
    """
    if n_bins < 1:
        raise ValueError("need at least one bin")
    n = A.shape[0]
    bounds = np.linspace(0, n, n_bins + 1).astype(np.int64)
    return [np.arange(bounds[i], bounds[i + 1]) for i in range(n_bins)]


def spgemm_symbolic(
    A: sparse.csr_matrix, B: sparse.csr_matrix, rows: np.ndarray
) -> np.ndarray:
    """Phase S1 (Figure 1.b): nonzero count of each C row in ``rows``."""
    A = A.tocsr()
    B = B.tocsr()
    out = np.zeros(len(rows), dtype=np.int64)
    mask = np.zeros(B.shape[1], dtype=bool)
    for pos, i in enumerate(rows):
        cols: list[np.ndarray] = []
        for k in A.indices[A.indptr[i] : A.indptr[i + 1]]:
            cols.append(B.indices[B.indptr[k] : B.indptr[k + 1]])
        if cols:
            touched = np.concatenate(cols)
            mask[touched] = True
            out[pos] = int(mask.sum())
            mask[touched] = False
    return out


def spgemm_numeric(
    A: sparse.csr_matrix, B: sparse.csr_matrix, rows: np.ndarray
) -> sparse.csr_matrix:
    """Phase S2: values of the C rows in ``rows`` (Gustavson accumulation).

    Returns a matrix with ``len(rows)`` rows and B's column count.
    """
    A = A.tocsr()
    B = B.tocsr()
    acc = np.zeros(B.shape[1], dtype=np.float64)
    indptr = [0]
    indices: list[np.ndarray] = []
    data: list[np.ndarray] = []
    for i in rows:
        touched: list[np.ndarray] = []
        for off in range(A.indptr[i], A.indptr[i + 1]):
            k = A.indices[off]
            v = A.data[off]
            span = slice(B.indptr[k], B.indptr[k + 1])
            acc[B.indices[span]] += v * B.data[span]
            touched.append(B.indices[span])
        if touched:
            cols = np.unique(np.concatenate(touched))
            indices.append(cols)
            data.append(acc[cols].copy())
            acc[cols] = 0.0
            indptr.append(indptr[-1] + len(cols))
        else:
            indptr.append(indptr[-1])
    return sparse.csr_matrix(
        (
            np.concatenate(data) if data else np.empty(0),
            np.concatenate(indices) if indices else np.empty(0, dtype=np.int64),
            np.asarray(indptr, dtype=np.int64),
        ),
        shape=(len(rows), B.shape[1]),
    )


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------
class SpGEMMApp(Application):
    """Task-parallel SpGEMM at simulated scale."""

    name = "SpGEMM"
    paper_memory_gb = 429.3
    paper_problem = "A * A^T using matrix GAP-kron with 4.22E+9 nonzeros"

    @classmethod
    def small_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=4,
            footprint_bytes=96 * MIB,
            iterations=2,
            mpi_processes=1,
            openmp_threads=4,
            reference_scale=10,
        )

    @classmethod
    def paper_config(cls) -> AppConfig:
        return AppConfig(
            n_tasks=12,
            footprint_bytes=int(429.3 * MIB),
            iterations=5,
            mpi_processes=1,
            openmp_threads=12,
            reference_scale=12,
        )

    # -- structure calibration from the reference kernel -------------------
    def _bin_statistics(self, seed) -> tuple[np.ndarray, np.ndarray]:
        """(nnz share, flop share) per bin from a real R-MAT instance."""
        A = rmat_matrix(self.config.reference_scale, seed=seed)
        B = A.T.tocsr()
        bins = bin_rows(A, self.n_tasks)
        row_nnz_B = np.diff(B.indptr)
        # flops of row i = sum over k in A[i,:] of nnz(B[k,:])
        flops_per_row = A @ row_nnz_B.astype(np.float64)
        nnz = np.array([A.indptr[b[-1] + 1] - A.indptr[b[0]] for b in bins], dtype=np.float64)
        flops = np.array([flops_per_row[b].sum() for b in bins], dtype=np.float64)
        nnz = np.maximum(nnz, 1.0)
        flops = np.maximum(flops, 1.0)
        nnz_share = nnz / nnz.sum()
        flop_share = flops / flops.sum()
        # Ginkgo's binning partially balances nonzeros, and contiguous bins
        # average the power-law rows; temper the raw R-MAT skew toward
        # uniform so PM-only intrinsic imbalance lands near the paper's
        # Figure 5 spread rather than a single-bin blowout.
        uniform = np.full(self.n_tasks, 1.0 / self.n_tasks)
        nnz_share = 0.85 * uniform + 0.15 * nnz_share
        flop_share = 0.85 * uniform + 0.15 * flop_share
        return nnz_share / nnz_share.sum(), flop_share / flop_share.sum()

    # -- workload ----------------------------------------------------------
    def build_workload(self, seed=None) -> Workload:
        seed = self.seed if seed is None else seed
        rng = make_rng(seed)
        cfg = self.config
        nnz_share, flop_share = self._bin_statistics(seed)

        prog = OpenMPProgram(self.name, cfg.n_tasks)
        budget = cfg.footprint_bytes
        # Kronecker SpGEMM output explodes: C is the largest structure
        b_bytes = int(0.25 * budget)
        a_bytes = (0.20 * budget * nnz_share).astype(np.int64)
        c_bytes = (0.55 * budget * flop_share).astype(np.int64)

        prog.declare_object(
            DataObject("B", size_bytes=b_bytes, owner=None, hotness="zipf", zipf_s=0.55)
        )
        for t in range(cfg.n_tasks):
            prog.declare_object(
                DataObject(f"A_bin{t}", size_bytes=max(int(a_bytes[t]), MIB), owner=prog.task_id(t))
            )
            # accumulator locality differs per bin with the nonzero
            # structure: some bins concentrate on few hot rows, others
            # scatter.  Task-agnostic placement caches the former far
            # better -- a root of placement-induced load imbalance.
            prog.declare_object(
                DataObject(
                    f"C_bin{t}",
                    size_bytes=max(int(c_bytes[t]), MIB),
                    owner=prog.task_id(t),
                    hotness="zipf",
                    zipf_s=float(rng.uniform(0.1, 0.5)),
                )
            )

        # logical work per numeric region ~ 1x of footprint in line accesses;
        # random-dominated SpGEMM then runs latency-bound at a few percent
        # of PM bandwidth, like real sparse codes on Optane
        total_accesses = int(1.0 * budget / 64)
        self._instance_sizes: dict[tuple[str, str], dict[str, int]] = {}

        profile = KernelProfile(
            branch_rate=0.12, branch_misp_rate=0.04, vector_fraction=0.1, ilp=1.8
        )
        for it in range(cfg.iterations):
            # each main-loop iteration multiplies a different matrix pair:
            # scale drifts across iterations (new inputs, same patterns)
            scale = float(rng.uniform(0.8, 1.25)) if it > 0 else 1.0
            # nonzero structure changes across multiplications: the flop
            # count per byte of input drifts, so access counts do NOT scale
            # proportionally with sizes (this is what makes the random
            # patterns input-dependent and Equation 1's alpha refinement
            # necessary)
            density = float(rng.uniform(0.75, 1.35)) if it > 0 else 1.0
            for phase, frac in (("symbolic", 0.35), ("numeric", 1.0)):
                fps = []
                vecs = []
                region_name = f"iter{it}.{phase}"
                for t in range(cfg.n_tasks):
                    flops = flop_share[t] * total_accesses * frac * scale
                    nnz_acc = nnz_share[t] * total_accesses * 0.2 * scale
                    a_reads = self.mem_accesses(
                        AccessPattern.STREAM, max(int(nnz_acc), 64), 8, int(a_bytes[t])
                    )
                    # Gustavson: gather B rows, scatter-accumulate into the
                    # task's private C accumulator (both RANDOM -- Table 1)
                    # each gathered B row is short; the accumulator takes
                    # the bulk of the random traffic (B 25% / C 75%)
                    b_reads = self.mem_accesses(
                        AccessPattern.RANDOM,
                        max(int(flops * 0.25 * density), 64),
                        8,
                        b_bytes,
                    )
                    c_acc = self.mem_accesses(
                        AccessPattern.RANDOM,
                        max(int(flops * 0.75 * density), 64),
                        8,
                        int(c_bytes[t]),
                    )
                    writes_c = c_acc // 2 if phase == "numeric" else max(c_acc // 8, 1)
                    fp = Footprint(
                        accesses=(
                            ObjectAccess(f"A_bin{t}", AccessPattern.STREAM, reads=a_reads),
                            ObjectAccess("B", AccessPattern.RANDOM, reads=b_reads),
                            ObjectAccess(
                                f"C_bin{t}",
                                AccessPattern.RANDOM,
                                reads=max(c_acc - writes_c, 1),
                                writes=writes_c,
                            ),
                        ),
                        instructions=max(int(flops * 90), 1000),
                        profile=profile,
                    )
                    fps.append(fp)
                    sizes = {
                        f"A_bin{t}": max(int(a_bytes[t] * scale), MIB),
                        "B": max(int(b_bytes * scale), MIB),
                        f"C_bin{t}": max(int(c_bytes[t] * scale), MIB),
                    }
                    self._instance_sizes[(prog.task_id(t), region_name)] = sizes
                    vecs.append(
                        (sizes[f"A_bin{t}"], sizes["B"], sizes[f"C_bin{t}"])
                    )
                prog.parallel_region(region_name, fps, input_vectors=vecs, kind=phase)
        return prog.build()

    # -- Merchandiser registration ------------------------------------------
    def task_kernels(self) -> dict[str, list[Loop]]:
        kernels = {}
        for t in range(self.n_tasks):
            tid = f"thread{t}"
            gustavson = Loop(
                "i",
                (
                    Loop(
                        "k",
                        (
                            ArrayRef(f"A_bin{t}", Affine("k")),
                            ArrayRef("B", Indirect(f"A_bin{t}", Affine("k"))),
                            # scatter-accumulate into the dense accumulator
                            # through B's column indices: C[B_col[k]] += ...
                            ArrayRef(
                                f"C_bin{t}",
                                Indirect("B", Affine("k")),
                                is_write=True,
                            ),
                        ),
                    ),
                ),
            )
            kernels[tid] = [gustavson]
        return kernels

    def sparta_input_objects(self) -> list[str]:
        # Sparta stages the contraction inputs; the C accumulators are
        # allocated during the multiplication and are not stageable
        return ["B"] + [f"A_bin{t}" for t in range(self.n_tasks)]

    def managed_objects(self, workload: Workload) -> dict[str, list[DataObject]]:
        out = {}
        for t in range(self.n_tasks):
            out[f"thread{t}"] = [
                workload.object(f"A_bin{t}"),
                workload.object("B"),
                workload.object(f"C_bin{t}"),
            ]
        return out
